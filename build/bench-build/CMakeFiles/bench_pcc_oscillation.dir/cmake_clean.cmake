file(REMOVE_RECURSE
  "../bench/bench_pcc_oscillation"
  "../bench/bench_pcc_oscillation.pdb"
  "CMakeFiles/bench_pcc_oscillation.dir/bench_pcc_oscillation.cpp.o"
  "CMakeFiles/bench_pcc_oscillation.dir/bench_pcc_oscillation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pcc_oscillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
