# Empty compiler generated dependencies file for bench_pcc_oscillation.
# This may be replaced when dependencies are built.
