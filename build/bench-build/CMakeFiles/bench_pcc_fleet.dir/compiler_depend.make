# Empty compiler generated dependencies file for bench_pcc_fleet.
# This may be replaced when dependencies are built.
