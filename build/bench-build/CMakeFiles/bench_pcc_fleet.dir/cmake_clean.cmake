file(REMOVE_RECURSE
  "../bench/bench_pcc_fleet"
  "../bench/bench_pcc_fleet.pdb"
  "CMakeFiles/bench_pcc_fleet.dir/bench_pcc_fleet.cpp.o"
  "CMakeFiles/bench_pcc_fleet.dir/bench_pcc_fleet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pcc_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
