file(REMOVE_RECURSE
  "../bench/bench_blink_e2e"
  "../bench/bench_blink_e2e.pdb"
  "CMakeFiles/bench_blink_e2e.dir/bench_blink_e2e.cpp.o"
  "CMakeFiles/bench_blink_e2e.dir/bench_blink_e2e.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blink_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
