file(REMOVE_RECURSE
  "../bench/bench_nethide"
  "../bench/bench_nethide.pdb"
  "CMakeFiles/bench_nethide.dir/bench_nethide.cpp.o"
  "CMakeFiles/bench_nethide.dir/bench_nethide.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nethide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
