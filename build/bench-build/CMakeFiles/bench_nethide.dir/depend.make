# Empty dependencies file for bench_nethide.
# This may be replaced when dependencies are built.
