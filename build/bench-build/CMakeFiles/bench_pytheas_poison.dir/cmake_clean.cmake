file(REMOVE_RECURSE
  "../bench/bench_pytheas_poison"
  "../bench/bench_pytheas_poison.pdb"
  "CMakeFiles/bench_pytheas_poison.dir/bench_pytheas_poison.cpp.o"
  "CMakeFiles/bench_pytheas_poison.dir/bench_pytheas_poison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pytheas_poison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
