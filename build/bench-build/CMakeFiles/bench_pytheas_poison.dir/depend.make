# Empty dependencies file for bench_pytheas_poison.
# This may be replaced when dependencies are built.
