
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sketch_pollution.cpp" "bench-build/CMakeFiles/bench_sketch_pollution.dir/bench_sketch_pollution.cpp.o" "gcc" "bench-build/CMakeFiles/bench_sketch_pollution.dir/bench_sketch_pollution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sketch/CMakeFiles/intox_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/intox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/intox_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
