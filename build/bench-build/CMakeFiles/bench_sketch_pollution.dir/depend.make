# Empty dependencies file for bench_sketch_pollution.
# This may be replaced when dependencies are built.
