file(REMOVE_RECURSE
  "../bench/bench_sketch_pollution"
  "../bench/bench_sketch_pollution.pdb"
  "CMakeFiles/bench_sketch_pollution.dir/bench_sketch_pollution.cpp.o"
  "CMakeFiles/bench_sketch_pollution.dir/bench_sketch_pollution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sketch_pollution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
