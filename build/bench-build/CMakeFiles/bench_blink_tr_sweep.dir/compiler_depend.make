# Empty compiler generated dependencies file for bench_blink_tr_sweep.
# This may be replaced when dependencies are built.
