file(REMOVE_RECURSE
  "../bench/bench_blink_tr_sweep"
  "../bench/bench_blink_tr_sweep.pdb"
  "CMakeFiles/bench_blink_tr_sweep.dir/bench_blink_tr_sweep.cpp.o"
  "CMakeFiles/bench_blink_tr_sweep.dir/bench_blink_tr_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blink_tr_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
