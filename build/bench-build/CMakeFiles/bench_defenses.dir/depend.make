# Empty dependencies file for bench_defenses.
# This may be replaced when dependencies are built.
