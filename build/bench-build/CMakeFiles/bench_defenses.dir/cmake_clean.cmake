file(REMOVE_RECURSE
  "../bench/bench_defenses"
  "../bench/bench_defenses.pdb"
  "CMakeFiles/bench_defenses.dir/bench_defenses.cpp.o"
  "CMakeFiles/bench_defenses.dir/bench_defenses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
