file(REMOVE_RECURSE
  "../bench/bench_pytheas_cdn"
  "../bench/bench_pytheas_cdn.pdb"
  "CMakeFiles/bench_pytheas_cdn.dir/bench_pytheas_cdn.cpp.o"
  "CMakeFiles/bench_pytheas_cdn.dir/bench_pytheas_cdn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pytheas_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
