# Empty compiler generated dependencies file for bench_pytheas_cdn.
# This may be replaced when dependencies are built.
