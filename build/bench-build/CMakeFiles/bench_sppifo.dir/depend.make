# Empty dependencies file for bench_sppifo.
# This may be replaced when dependencies are built.
