file(REMOVE_RECURSE
  "../bench/bench_sppifo"
  "../bench/bench_sppifo.pdb"
  "CMakeFiles/bench_sppifo.dir/bench_sppifo.cpp.o"
  "CMakeFiles/bench_sppifo.dir/bench_sppifo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sppifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
