
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sketch/attack_test.cpp" "tests/CMakeFiles/test_sketch.dir/sketch/attack_test.cpp.o" "gcc" "tests/CMakeFiles/test_sketch.dir/sketch/attack_test.cpp.o.d"
  "/root/repo/tests/sketch/bloom_test.cpp" "tests/CMakeFiles/test_sketch.dir/sketch/bloom_test.cpp.o" "gcc" "tests/CMakeFiles/test_sketch.dir/sketch/bloom_test.cpp.o.d"
  "/root/repo/tests/sketch/flowradar_test.cpp" "tests/CMakeFiles/test_sketch.dir/sketch/flowradar_test.cpp.o" "gcc" "tests/CMakeFiles/test_sketch.dir/sketch/flowradar_test.cpp.o.d"
  "/root/repo/tests/sketch/rotation_test.cpp" "tests/CMakeFiles/test_sketch.dir/sketch/rotation_test.cpp.o" "gcc" "tests/CMakeFiles/test_sketch.dir/sketch/rotation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sketch/CMakeFiles/intox_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/intox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/intox_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
