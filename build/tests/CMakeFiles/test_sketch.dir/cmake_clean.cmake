file(REMOVE_RECURSE
  "CMakeFiles/test_sketch.dir/sketch/attack_test.cpp.o"
  "CMakeFiles/test_sketch.dir/sketch/attack_test.cpp.o.d"
  "CMakeFiles/test_sketch.dir/sketch/bloom_test.cpp.o"
  "CMakeFiles/test_sketch.dir/sketch/bloom_test.cpp.o.d"
  "CMakeFiles/test_sketch.dir/sketch/flowradar_test.cpp.o"
  "CMakeFiles/test_sketch.dir/sketch/flowradar_test.cpp.o.d"
  "CMakeFiles/test_sketch.dir/sketch/rotation_test.cpp.o"
  "CMakeFiles/test_sketch.dir/sketch/rotation_test.cpp.o.d"
  "test_sketch"
  "test_sketch.pdb"
  "test_sketch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
