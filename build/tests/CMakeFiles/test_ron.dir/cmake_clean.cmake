file(REMOVE_RECURSE
  "CMakeFiles/test_ron.dir/ron/attack_test.cpp.o"
  "CMakeFiles/test_ron.dir/ron/attack_test.cpp.o.d"
  "CMakeFiles/test_ron.dir/ron/overlay_test.cpp.o"
  "CMakeFiles/test_ron.dir/ron/overlay_test.cpp.o.d"
  "test_ron"
  "test_ron.pdb"
  "test_ron[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
