# Empty dependencies file for test_ron.
# This may be replaced when dependencies are built.
