# Empty compiler generated dependencies file for test_sppifo.
# This may be replaced when dependencies are built.
