file(REMOVE_RECURSE
  "CMakeFiles/test_sppifo.dir/sppifo/attack_test.cpp.o"
  "CMakeFiles/test_sppifo.dir/sppifo/attack_test.cpp.o.d"
  "CMakeFiles/test_sppifo.dir/sppifo/sppifo_test.cpp.o"
  "CMakeFiles/test_sppifo.dir/sppifo/sppifo_test.cpp.o.d"
  "test_sppifo"
  "test_sppifo.pdb"
  "test_sppifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sppifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
