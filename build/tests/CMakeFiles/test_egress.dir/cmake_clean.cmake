file(REMOVE_RECURSE
  "CMakeFiles/test_egress.dir/egress/selector_test.cpp.o"
  "CMakeFiles/test_egress.dir/egress/selector_test.cpp.o.d"
  "test_egress"
  "test_egress.pdb"
  "test_egress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_egress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
