# Empty dependencies file for test_egress.
# This may be replaced when dependencies are built.
