file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/properties/analysis_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/analysis_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/bandit_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/bandit_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/link_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/link_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/lpm_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/lpm_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/nethide_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/nethide_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/pcc_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/pcc_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/pifo_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/pifo_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/scheduler_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/scheduler_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/selector_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/selector_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/sketch_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/sketch_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/tcp_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/tcp_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/wire_fuzz_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/wire_fuzz_test.cpp.o.d"
  "test_properties"
  "test_properties.pdb"
  "test_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
