
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/properties/analysis_properties_test.cpp" "tests/CMakeFiles/test_properties.dir/properties/analysis_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/analysis_properties_test.cpp.o.d"
  "/root/repo/tests/properties/bandit_properties_test.cpp" "tests/CMakeFiles/test_properties.dir/properties/bandit_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/bandit_properties_test.cpp.o.d"
  "/root/repo/tests/properties/link_properties_test.cpp" "tests/CMakeFiles/test_properties.dir/properties/link_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/link_properties_test.cpp.o.d"
  "/root/repo/tests/properties/lpm_properties_test.cpp" "tests/CMakeFiles/test_properties.dir/properties/lpm_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/lpm_properties_test.cpp.o.d"
  "/root/repo/tests/properties/nethide_properties_test.cpp" "tests/CMakeFiles/test_properties.dir/properties/nethide_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/nethide_properties_test.cpp.o.d"
  "/root/repo/tests/properties/pcc_properties_test.cpp" "tests/CMakeFiles/test_properties.dir/properties/pcc_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/pcc_properties_test.cpp.o.d"
  "/root/repo/tests/properties/pifo_properties_test.cpp" "tests/CMakeFiles/test_properties.dir/properties/pifo_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/pifo_properties_test.cpp.o.d"
  "/root/repo/tests/properties/scheduler_properties_test.cpp" "tests/CMakeFiles/test_properties.dir/properties/scheduler_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/scheduler_properties_test.cpp.o.d"
  "/root/repo/tests/properties/selector_properties_test.cpp" "tests/CMakeFiles/test_properties.dir/properties/selector_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/selector_properties_test.cpp.o.d"
  "/root/repo/tests/properties/sketch_properties_test.cpp" "tests/CMakeFiles/test_properties.dir/properties/sketch_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/sketch_properties_test.cpp.o.d"
  "/root/repo/tests/properties/tcp_properties_test.cpp" "tests/CMakeFiles/test_properties.dir/properties/tcp_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/tcp_properties_test.cpp.o.d"
  "/root/repo/tests/properties/wire_fuzz_test.cpp" "tests/CMakeFiles/test_properties.dir/properties/wire_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/wire_fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blink/CMakeFiles/intox_blink.dir/DependInfo.cmake"
  "/root/repo/build/src/pcc/CMakeFiles/intox_pcc.dir/DependInfo.cmake"
  "/root/repo/build/src/pytheas/CMakeFiles/intox_pytheas.dir/DependInfo.cmake"
  "/root/repo/build/src/sppifo/CMakeFiles/intox_sppifo.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/intox_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/nethide/CMakeFiles/intox_nethide.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/intox_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/intox_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/intox_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/intox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/intox_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
