# Empty dependencies file for test_pytheas.
# This may be replaced when dependencies are built.
