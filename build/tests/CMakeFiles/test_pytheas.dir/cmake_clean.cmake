file(REMOVE_RECURSE
  "CMakeFiles/test_pytheas.dir/pytheas/attack_test.cpp.o"
  "CMakeFiles/test_pytheas.dir/pytheas/attack_test.cpp.o.d"
  "CMakeFiles/test_pytheas.dir/pytheas/engine_test.cpp.o"
  "CMakeFiles/test_pytheas.dir/pytheas/engine_test.cpp.o.d"
  "CMakeFiles/test_pytheas.dir/pytheas/mitm_test.cpp.o"
  "CMakeFiles/test_pytheas.dir/pytheas/mitm_test.cpp.o.d"
  "CMakeFiles/test_pytheas.dir/pytheas/ucb_test.cpp.o"
  "CMakeFiles/test_pytheas.dir/pytheas/ucb_test.cpp.o.d"
  "test_pytheas"
  "test_pytheas.pdb"
  "test_pytheas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pytheas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
