file(REMOVE_RECURSE
  "CMakeFiles/test_trafficgen.dir/trafficgen/driver_test.cpp.o"
  "CMakeFiles/test_trafficgen.dir/trafficgen/driver_test.cpp.o.d"
  "CMakeFiles/test_trafficgen.dir/trafficgen/synth_test.cpp.o"
  "CMakeFiles/test_trafficgen.dir/trafficgen/synth_test.cpp.o.d"
  "CMakeFiles/test_trafficgen.dir/trafficgen/trace_io_test.cpp.o"
  "CMakeFiles/test_trafficgen.dir/trafficgen/trace_io_test.cpp.o.d"
  "test_trafficgen"
  "test_trafficgen.pdb"
  "test_trafficgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trafficgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
