
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/failure_injection_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/failure_injection_test.cpp.o.d"
  "/root/repo/tests/integration/tcp_blink_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/tcp_blink_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/tcp_blink_test.cpp.o.d"
  "/root/repo/tests/integration/tcp_dapper_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/tcp_dapper_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/tcp_dapper_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/supervisor/CMakeFiles/intox_supervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/intox_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/dapper/CMakeFiles/intox_dapper.dir/DependInfo.cmake"
  "/root/repo/build/src/blink/CMakeFiles/intox_blink.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/intox_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/pytheas/CMakeFiles/intox_pytheas.dir/DependInfo.cmake"
  "/root/repo/build/src/pcc/CMakeFiles/intox_pcc.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/intox_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/intox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/intox_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
