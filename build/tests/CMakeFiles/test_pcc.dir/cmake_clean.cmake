file(REMOVE_RECURSE
  "CMakeFiles/test_pcc.dir/pcc/attack_test.cpp.o"
  "CMakeFiles/test_pcc.dir/pcc/attack_test.cpp.o.d"
  "CMakeFiles/test_pcc.dir/pcc/sender_test.cpp.o"
  "CMakeFiles/test_pcc.dir/pcc/sender_test.cpp.o.d"
  "CMakeFiles/test_pcc.dir/pcc/utility_test.cpp.o"
  "CMakeFiles/test_pcc.dir/pcc/utility_test.cpp.o.d"
  "test_pcc"
  "test_pcc.pdb"
  "test_pcc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
