# Empty dependencies file for test_nethide.
# This may be replaced when dependencies are built.
