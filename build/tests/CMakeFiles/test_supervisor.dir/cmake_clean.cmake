file(REMOVE_RECURSE
  "CMakeFiles/test_supervisor.dir/supervisor/attack_synth_test.cpp.o"
  "CMakeFiles/test_supervisor.dir/supervisor/attack_synth_test.cpp.o.d"
  "CMakeFiles/test_supervisor.dir/supervisor/blink_guard_test.cpp.o"
  "CMakeFiles/test_supervisor.dir/supervisor/blink_guard_test.cpp.o.d"
  "CMakeFiles/test_supervisor.dir/supervisor/pcc_defense_e2e_test.cpp.o"
  "CMakeFiles/test_supervisor.dir/supervisor/pcc_defense_e2e_test.cpp.o.d"
  "CMakeFiles/test_supervisor.dir/supervisor/pcc_guard_test.cpp.o"
  "CMakeFiles/test_supervisor.dir/supervisor/pcc_guard_test.cpp.o.d"
  "CMakeFiles/test_supervisor.dir/supervisor/pytheas_guard_test.cpp.o"
  "CMakeFiles/test_supervisor.dir/supervisor/pytheas_guard_test.cpp.o.d"
  "CMakeFiles/test_supervisor.dir/supervisor/pytheas_mitm_defense_test.cpp.o"
  "CMakeFiles/test_supervisor.dir/supervisor/pytheas_mitm_defense_test.cpp.o.d"
  "test_supervisor"
  "test_supervisor.pdb"
  "test_supervisor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_supervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
