# Empty dependencies file for test_blink.
# This may be replaced when dependencies are built.
