file(REMOVE_RECURSE
  "CMakeFiles/test_blink.dir/blink/analysis_test.cpp.o"
  "CMakeFiles/test_blink.dir/blink/analysis_test.cpp.o.d"
  "CMakeFiles/test_blink.dir/blink/attack_test.cpp.o"
  "CMakeFiles/test_blink.dir/blink/attack_test.cpp.o.d"
  "CMakeFiles/test_blink.dir/blink/blink_node_test.cpp.o"
  "CMakeFiles/test_blink.dir/blink/blink_node_test.cpp.o.d"
  "CMakeFiles/test_blink.dir/blink/flow_selector_test.cpp.o"
  "CMakeFiles/test_blink.dir/blink/flow_selector_test.cpp.o.d"
  "CMakeFiles/test_blink.dir/blink/multi_prefix_test.cpp.o"
  "CMakeFiles/test_blink.dir/blink/multi_prefix_test.cpp.o.d"
  "test_blink"
  "test_blink.pdb"
  "test_blink[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
