
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/blink/analysis_test.cpp" "tests/CMakeFiles/test_blink.dir/blink/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/test_blink.dir/blink/analysis_test.cpp.o.d"
  "/root/repo/tests/blink/attack_test.cpp" "tests/CMakeFiles/test_blink.dir/blink/attack_test.cpp.o" "gcc" "tests/CMakeFiles/test_blink.dir/blink/attack_test.cpp.o.d"
  "/root/repo/tests/blink/blink_node_test.cpp" "tests/CMakeFiles/test_blink.dir/blink/blink_node_test.cpp.o" "gcc" "tests/CMakeFiles/test_blink.dir/blink/blink_node_test.cpp.o.d"
  "/root/repo/tests/blink/flow_selector_test.cpp" "tests/CMakeFiles/test_blink.dir/blink/flow_selector_test.cpp.o" "gcc" "tests/CMakeFiles/test_blink.dir/blink/flow_selector_test.cpp.o.d"
  "/root/repo/tests/blink/multi_prefix_test.cpp" "tests/CMakeFiles/test_blink.dir/blink/multi_prefix_test.cpp.o" "gcc" "tests/CMakeFiles/test_blink.dir/blink/multi_prefix_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blink/CMakeFiles/intox_blink.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/intox_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/intox_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/intox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/intox_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
