file(REMOVE_RECURSE
  "CMakeFiles/test_dataplane.dir/dataplane/pipeline_order_test.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/pipeline_order_test.cpp.o.d"
  "CMakeFiles/test_dataplane.dir/dataplane/register_array_test.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/register_array_test.cpp.o.d"
  "CMakeFiles/test_dataplane.dir/dataplane/switch_test.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/switch_test.cpp.o.d"
  "test_dataplane"
  "test_dataplane.pdb"
  "test_dataplane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
