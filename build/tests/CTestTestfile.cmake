# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_trafficgen[1]_include.cmake")
include("/root/repo/build/tests/test_dataplane[1]_include.cmake")
include("/root/repo/build/tests/test_blink[1]_include.cmake")
include("/root/repo/build/tests/test_pcc[1]_include.cmake")
include("/root/repo/build/tests/test_pytheas[1]_include.cmake")
include("/root/repo/build/tests/test_sppifo[1]_include.cmake")
include("/root/repo/build/tests/test_sketch[1]_include.cmake")
include("/root/repo/build/tests/test_nethide[1]_include.cmake")
include("/root/repo/build/tests/test_supervisor[1]_include.cmake")
include("/root/repo/build/tests/test_ron[1]_include.cmake")
include("/root/repo/build/tests/test_dapper[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_innet[1]_include.cmake")
include("/root/repo/build/tests/test_egress[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
