file(REMOVE_RECURSE
  "libintox_net.a"
)
