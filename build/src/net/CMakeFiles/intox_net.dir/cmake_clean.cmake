file(REMOVE_RECURSE
  "CMakeFiles/intox_net.dir/checksum.cpp.o"
  "CMakeFiles/intox_net.dir/checksum.cpp.o.d"
  "CMakeFiles/intox_net.dir/hash.cpp.o"
  "CMakeFiles/intox_net.dir/hash.cpp.o.d"
  "CMakeFiles/intox_net.dir/ipv4.cpp.o"
  "CMakeFiles/intox_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/intox_net.dir/lpm.cpp.o"
  "CMakeFiles/intox_net.dir/lpm.cpp.o.d"
  "CMakeFiles/intox_net.dir/packet.cpp.o"
  "CMakeFiles/intox_net.dir/packet.cpp.o.d"
  "libintox_net.a"
  "libintox_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
