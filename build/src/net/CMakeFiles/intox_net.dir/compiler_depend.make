# Empty compiler generated dependencies file for intox_net.
# This may be replaced when dependencies are built.
