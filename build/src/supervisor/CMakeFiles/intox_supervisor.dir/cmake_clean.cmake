file(REMOVE_RECURSE
  "CMakeFiles/intox_supervisor.dir/attack_synth.cpp.o"
  "CMakeFiles/intox_supervisor.dir/attack_synth.cpp.o.d"
  "CMakeFiles/intox_supervisor.dir/blink_guard.cpp.o"
  "CMakeFiles/intox_supervisor.dir/blink_guard.cpp.o.d"
  "CMakeFiles/intox_supervisor.dir/input_quality.cpp.o"
  "CMakeFiles/intox_supervisor.dir/input_quality.cpp.o.d"
  "CMakeFiles/intox_supervisor.dir/pcc_guard.cpp.o"
  "CMakeFiles/intox_supervisor.dir/pcc_guard.cpp.o.d"
  "CMakeFiles/intox_supervisor.dir/pytheas_guard.cpp.o"
  "CMakeFiles/intox_supervisor.dir/pytheas_guard.cpp.o.d"
  "libintox_supervisor.a"
  "libintox_supervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_supervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
