file(REMOVE_RECURSE
  "libintox_supervisor.a"
)
