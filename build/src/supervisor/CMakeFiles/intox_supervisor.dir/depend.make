# Empty dependencies file for intox_supervisor.
# This may be replaced when dependencies are built.
