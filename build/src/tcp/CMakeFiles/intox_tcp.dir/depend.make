# Empty dependencies file for intox_tcp.
# This may be replaced when dependencies are built.
