file(REMOVE_RECURSE
  "CMakeFiles/intox_tcp.dir/receiver.cpp.o"
  "CMakeFiles/intox_tcp.dir/receiver.cpp.o.d"
  "CMakeFiles/intox_tcp.dir/sender.cpp.o"
  "CMakeFiles/intox_tcp.dir/sender.cpp.o.d"
  "libintox_tcp.a"
  "libintox_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
