file(REMOVE_RECURSE
  "libintox_tcp.a"
)
