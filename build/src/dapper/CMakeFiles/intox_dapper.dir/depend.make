# Empty dependencies file for intox_dapper.
# This may be replaced when dependencies are built.
