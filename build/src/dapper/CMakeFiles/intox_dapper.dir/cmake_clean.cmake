file(REMOVE_RECURSE
  "CMakeFiles/intox_dapper.dir/attack.cpp.o"
  "CMakeFiles/intox_dapper.dir/attack.cpp.o.d"
  "CMakeFiles/intox_dapper.dir/diagnoser.cpp.o"
  "CMakeFiles/intox_dapper.dir/diagnoser.cpp.o.d"
  "libintox_dapper.a"
  "libintox_dapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_dapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
