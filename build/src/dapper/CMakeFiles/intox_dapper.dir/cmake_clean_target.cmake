file(REMOVE_RECURSE
  "libintox_dapper.a"
)
