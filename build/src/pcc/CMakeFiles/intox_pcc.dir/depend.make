# Empty dependencies file for intox_pcc.
# This may be replaced when dependencies are built.
