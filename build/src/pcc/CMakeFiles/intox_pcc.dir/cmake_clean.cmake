file(REMOVE_RECURSE
  "CMakeFiles/intox_pcc.dir/attacker.cpp.o"
  "CMakeFiles/intox_pcc.dir/attacker.cpp.o.d"
  "CMakeFiles/intox_pcc.dir/baseline_reno.cpp.o"
  "CMakeFiles/intox_pcc.dir/baseline_reno.cpp.o.d"
  "CMakeFiles/intox_pcc.dir/experiment.cpp.o"
  "CMakeFiles/intox_pcc.dir/experiment.cpp.o.d"
  "CMakeFiles/intox_pcc.dir/receiver.cpp.o"
  "CMakeFiles/intox_pcc.dir/receiver.cpp.o.d"
  "CMakeFiles/intox_pcc.dir/sender.cpp.o"
  "CMakeFiles/intox_pcc.dir/sender.cpp.o.d"
  "CMakeFiles/intox_pcc.dir/utility.cpp.o"
  "CMakeFiles/intox_pcc.dir/utility.cpp.o.d"
  "libintox_pcc.a"
  "libintox_pcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_pcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
