file(REMOVE_RECURSE
  "libintox_pcc.a"
)
