
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcc/attacker.cpp" "src/pcc/CMakeFiles/intox_pcc.dir/attacker.cpp.o" "gcc" "src/pcc/CMakeFiles/intox_pcc.dir/attacker.cpp.o.d"
  "/root/repo/src/pcc/baseline_reno.cpp" "src/pcc/CMakeFiles/intox_pcc.dir/baseline_reno.cpp.o" "gcc" "src/pcc/CMakeFiles/intox_pcc.dir/baseline_reno.cpp.o.d"
  "/root/repo/src/pcc/experiment.cpp" "src/pcc/CMakeFiles/intox_pcc.dir/experiment.cpp.o" "gcc" "src/pcc/CMakeFiles/intox_pcc.dir/experiment.cpp.o.d"
  "/root/repo/src/pcc/receiver.cpp" "src/pcc/CMakeFiles/intox_pcc.dir/receiver.cpp.o" "gcc" "src/pcc/CMakeFiles/intox_pcc.dir/receiver.cpp.o.d"
  "/root/repo/src/pcc/sender.cpp" "src/pcc/CMakeFiles/intox_pcc.dir/sender.cpp.o" "gcc" "src/pcc/CMakeFiles/intox_pcc.dir/sender.cpp.o.d"
  "/root/repo/src/pcc/utility.cpp" "src/pcc/CMakeFiles/intox_pcc.dir/utility.cpp.o" "gcc" "src/pcc/CMakeFiles/intox_pcc.dir/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/intox_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/intox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/intox_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
