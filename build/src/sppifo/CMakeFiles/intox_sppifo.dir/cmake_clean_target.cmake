file(REMOVE_RECURSE
  "libintox_sppifo.a"
)
