file(REMOVE_RECURSE
  "CMakeFiles/intox_sppifo.dir/attack.cpp.o"
  "CMakeFiles/intox_sppifo.dir/attack.cpp.o.d"
  "CMakeFiles/intox_sppifo.dir/sppifo.cpp.o"
  "CMakeFiles/intox_sppifo.dir/sppifo.cpp.o.d"
  "libintox_sppifo.a"
  "libintox_sppifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_sppifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
