# Empty compiler generated dependencies file for intox_sppifo.
# This may be replaced when dependencies are built.
