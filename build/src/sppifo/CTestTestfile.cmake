# CMake generated Testfile for 
# Source directory: /root/repo/src/sppifo
# Build directory: /root/repo/build/src/sppifo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
