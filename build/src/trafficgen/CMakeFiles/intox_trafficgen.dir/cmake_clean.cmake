file(REMOVE_RECURSE
  "CMakeFiles/intox_trafficgen.dir/driver.cpp.o"
  "CMakeFiles/intox_trafficgen.dir/driver.cpp.o.d"
  "CMakeFiles/intox_trafficgen.dir/synth.cpp.o"
  "CMakeFiles/intox_trafficgen.dir/synth.cpp.o.d"
  "CMakeFiles/intox_trafficgen.dir/trace_io.cpp.o"
  "CMakeFiles/intox_trafficgen.dir/trace_io.cpp.o.d"
  "libintox_trafficgen.a"
  "libintox_trafficgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_trafficgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
