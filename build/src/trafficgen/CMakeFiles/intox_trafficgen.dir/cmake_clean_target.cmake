file(REMOVE_RECURSE
  "libintox_trafficgen.a"
)
