# Empty dependencies file for intox_trafficgen.
# This may be replaced when dependencies are built.
