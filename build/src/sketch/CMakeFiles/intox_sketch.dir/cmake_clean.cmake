file(REMOVE_RECURSE
  "CMakeFiles/intox_sketch.dir/attack.cpp.o"
  "CMakeFiles/intox_sketch.dir/attack.cpp.o.d"
  "CMakeFiles/intox_sketch.dir/bloom.cpp.o"
  "CMakeFiles/intox_sketch.dir/bloom.cpp.o.d"
  "CMakeFiles/intox_sketch.dir/flowradar.cpp.o"
  "CMakeFiles/intox_sketch.dir/flowradar.cpp.o.d"
  "CMakeFiles/intox_sketch.dir/lossradar.cpp.o"
  "CMakeFiles/intox_sketch.dir/lossradar.cpp.o.d"
  "CMakeFiles/intox_sketch.dir/rotation.cpp.o"
  "CMakeFiles/intox_sketch.dir/rotation.cpp.o.d"
  "libintox_sketch.a"
  "libintox_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
