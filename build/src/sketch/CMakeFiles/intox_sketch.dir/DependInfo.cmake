
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/attack.cpp" "src/sketch/CMakeFiles/intox_sketch.dir/attack.cpp.o" "gcc" "src/sketch/CMakeFiles/intox_sketch.dir/attack.cpp.o.d"
  "/root/repo/src/sketch/bloom.cpp" "src/sketch/CMakeFiles/intox_sketch.dir/bloom.cpp.o" "gcc" "src/sketch/CMakeFiles/intox_sketch.dir/bloom.cpp.o.d"
  "/root/repo/src/sketch/flowradar.cpp" "src/sketch/CMakeFiles/intox_sketch.dir/flowradar.cpp.o" "gcc" "src/sketch/CMakeFiles/intox_sketch.dir/flowradar.cpp.o.d"
  "/root/repo/src/sketch/lossradar.cpp" "src/sketch/CMakeFiles/intox_sketch.dir/lossradar.cpp.o" "gcc" "src/sketch/CMakeFiles/intox_sketch.dir/lossradar.cpp.o.d"
  "/root/repo/src/sketch/rotation.cpp" "src/sketch/CMakeFiles/intox_sketch.dir/rotation.cpp.o" "gcc" "src/sketch/CMakeFiles/intox_sketch.dir/rotation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/intox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/intox_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
