file(REMOVE_RECURSE
  "libintox_sketch.a"
)
