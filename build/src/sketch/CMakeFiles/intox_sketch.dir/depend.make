# Empty dependencies file for intox_sketch.
# This may be replaced when dependencies are built.
