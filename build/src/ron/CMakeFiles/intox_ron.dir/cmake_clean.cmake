file(REMOVE_RECURSE
  "CMakeFiles/intox_ron.dir/attack.cpp.o"
  "CMakeFiles/intox_ron.dir/attack.cpp.o.d"
  "CMakeFiles/intox_ron.dir/overlay.cpp.o"
  "CMakeFiles/intox_ron.dir/overlay.cpp.o.d"
  "libintox_ron.a"
  "libintox_ron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_ron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
