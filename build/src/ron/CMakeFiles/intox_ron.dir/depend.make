# Empty dependencies file for intox_ron.
# This may be replaced when dependencies are built.
