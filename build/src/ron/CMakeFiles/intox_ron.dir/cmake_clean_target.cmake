file(REMOVE_RECURSE
  "libintox_ron.a"
)
