file(REMOVE_RECURSE
  "CMakeFiles/intox_pytheas.dir/engine.cpp.o"
  "CMakeFiles/intox_pytheas.dir/engine.cpp.o.d"
  "CMakeFiles/intox_pytheas.dir/experiment.cpp.o"
  "CMakeFiles/intox_pytheas.dir/experiment.cpp.o.d"
  "CMakeFiles/intox_pytheas.dir/ucb.cpp.o"
  "CMakeFiles/intox_pytheas.dir/ucb.cpp.o.d"
  "libintox_pytheas.a"
  "libintox_pytheas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_pytheas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
