file(REMOVE_RECURSE
  "libintox_pytheas.a"
)
