# Empty compiler generated dependencies file for intox_pytheas.
# This may be replaced when dependencies are built.
