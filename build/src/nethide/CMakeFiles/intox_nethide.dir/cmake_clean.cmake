file(REMOVE_RECURSE
  "CMakeFiles/intox_nethide.dir/metrics.cpp.o"
  "CMakeFiles/intox_nethide.dir/metrics.cpp.o.d"
  "CMakeFiles/intox_nethide.dir/obfuscate.cpp.o"
  "CMakeFiles/intox_nethide.dir/obfuscate.cpp.o.d"
  "CMakeFiles/intox_nethide.dir/topology.cpp.o"
  "CMakeFiles/intox_nethide.dir/topology.cpp.o.d"
  "CMakeFiles/intox_nethide.dir/traceroute.cpp.o"
  "CMakeFiles/intox_nethide.dir/traceroute.cpp.o.d"
  "libintox_nethide.a"
  "libintox_nethide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_nethide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
