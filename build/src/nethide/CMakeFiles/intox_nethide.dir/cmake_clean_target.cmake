file(REMOVE_RECURSE
  "libintox_nethide.a"
)
