# Empty dependencies file for intox_nethide.
# This may be replaced when dependencies are built.
