# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("net")
subdirs("sim")
subdirs("trafficgen")
subdirs("dataplane")
subdirs("blink")
subdirs("pcc")
subdirs("pytheas")
subdirs("sppifo")
subdirs("sketch")
subdirs("nethide")
subdirs("supervisor")
subdirs("ron")
subdirs("dapper")
subdirs("tcp")
subdirs("egress")
subdirs("innet")
