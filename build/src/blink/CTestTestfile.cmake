# CMake generated Testfile for 
# Source directory: /root/repo/src/blink
# Build directory: /root/repo/build/src/blink
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
