file(REMOVE_RECURSE
  "CMakeFiles/intox_blink.dir/analysis.cpp.o"
  "CMakeFiles/intox_blink.dir/analysis.cpp.o.d"
  "CMakeFiles/intox_blink.dir/attacker.cpp.o"
  "CMakeFiles/intox_blink.dir/attacker.cpp.o.d"
  "CMakeFiles/intox_blink.dir/blink_node.cpp.o"
  "CMakeFiles/intox_blink.dir/blink_node.cpp.o.d"
  "CMakeFiles/intox_blink.dir/cell_process.cpp.o"
  "CMakeFiles/intox_blink.dir/cell_process.cpp.o.d"
  "CMakeFiles/intox_blink.dir/flow_selector.cpp.o"
  "CMakeFiles/intox_blink.dir/flow_selector.cpp.o.d"
  "libintox_blink.a"
  "libintox_blink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_blink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
