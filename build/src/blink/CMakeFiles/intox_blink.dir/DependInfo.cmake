
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blink/analysis.cpp" "src/blink/CMakeFiles/intox_blink.dir/analysis.cpp.o" "gcc" "src/blink/CMakeFiles/intox_blink.dir/analysis.cpp.o.d"
  "/root/repo/src/blink/attacker.cpp" "src/blink/CMakeFiles/intox_blink.dir/attacker.cpp.o" "gcc" "src/blink/CMakeFiles/intox_blink.dir/attacker.cpp.o.d"
  "/root/repo/src/blink/blink_node.cpp" "src/blink/CMakeFiles/intox_blink.dir/blink_node.cpp.o" "gcc" "src/blink/CMakeFiles/intox_blink.dir/blink_node.cpp.o.d"
  "/root/repo/src/blink/cell_process.cpp" "src/blink/CMakeFiles/intox_blink.dir/cell_process.cpp.o" "gcc" "src/blink/CMakeFiles/intox_blink.dir/cell_process.cpp.o.d"
  "/root/repo/src/blink/flow_selector.cpp" "src/blink/CMakeFiles/intox_blink.dir/flow_selector.cpp.o" "gcc" "src/blink/CMakeFiles/intox_blink.dir/flow_selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/intox_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/intox_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/intox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/intox_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
