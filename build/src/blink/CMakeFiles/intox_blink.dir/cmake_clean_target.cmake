file(REMOVE_RECURSE
  "libintox_blink.a"
)
