# Empty dependencies file for intox_blink.
# This may be replaced when dependencies are built.
