file(REMOVE_RECURSE
  "libintox_dataplane.a"
)
