# Empty compiler generated dependencies file for intox_dataplane.
# This may be replaced when dependencies are built.
