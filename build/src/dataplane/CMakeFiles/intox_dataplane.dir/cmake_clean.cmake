file(REMOVE_RECURSE
  "CMakeFiles/intox_dataplane.dir/switch.cpp.o"
  "CMakeFiles/intox_dataplane.dir/switch.cpp.o.d"
  "libintox_dataplane.a"
  "libintox_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
