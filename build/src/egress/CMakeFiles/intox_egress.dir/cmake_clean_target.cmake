file(REMOVE_RECURSE
  "libintox_egress.a"
)
