file(REMOVE_RECURSE
  "CMakeFiles/intox_egress.dir/attack.cpp.o"
  "CMakeFiles/intox_egress.dir/attack.cpp.o.d"
  "CMakeFiles/intox_egress.dir/selector.cpp.o"
  "CMakeFiles/intox_egress.dir/selector.cpp.o.d"
  "libintox_egress.a"
  "libintox_egress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_egress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
