# Empty dependencies file for intox_egress.
# This may be replaced when dependencies are built.
