# Empty compiler generated dependencies file for intox_egress.
# This may be replaced when dependencies are built.
