file(REMOVE_RECURSE
  "CMakeFiles/intox_sim.dir/event_queue.cpp.o"
  "CMakeFiles/intox_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/intox_sim.dir/link.cpp.o"
  "CMakeFiles/intox_sim.dir/link.cpp.o.d"
  "CMakeFiles/intox_sim.dir/network.cpp.o"
  "CMakeFiles/intox_sim.dir/network.cpp.o.d"
  "CMakeFiles/intox_sim.dir/rng.cpp.o"
  "CMakeFiles/intox_sim.dir/rng.cpp.o.d"
  "CMakeFiles/intox_sim.dir/stats.cpp.o"
  "CMakeFiles/intox_sim.dir/stats.cpp.o.d"
  "libintox_sim.a"
  "libintox_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
