file(REMOVE_RECURSE
  "libintox_sim.a"
)
