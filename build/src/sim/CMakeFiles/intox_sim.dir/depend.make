# Empty dependencies file for intox_sim.
# This may be replaced when dependencies are built.
