# Empty dependencies file for intox_innet.
# This may be replaced when dependencies are built.
