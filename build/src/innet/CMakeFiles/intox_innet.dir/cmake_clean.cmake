file(REMOVE_RECURSE
  "CMakeFiles/intox_innet.dir/attack.cpp.o"
  "CMakeFiles/intox_innet.dir/attack.cpp.o.d"
  "CMakeFiles/intox_innet.dir/classifier.cpp.o"
  "CMakeFiles/intox_innet.dir/classifier.cpp.o.d"
  "CMakeFiles/intox_innet.dir/mlp.cpp.o"
  "CMakeFiles/intox_innet.dir/mlp.cpp.o.d"
  "libintox_innet.a"
  "libintox_innet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intox_innet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
