file(REMOVE_RECURSE
  "libintox_innet.a"
)
