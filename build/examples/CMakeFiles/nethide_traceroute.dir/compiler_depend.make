# Empty compiler generated dependencies file for nethide_traceroute.
# This may be replaced when dependencies are built.
