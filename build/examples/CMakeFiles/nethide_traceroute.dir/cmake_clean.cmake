file(REMOVE_RECURSE
  "CMakeFiles/nethide_traceroute.dir/nethide_traceroute.cpp.o"
  "CMakeFiles/nethide_traceroute.dir/nethide_traceroute.cpp.o.d"
  "nethide_traceroute"
  "nethide_traceroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nethide_traceroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
