file(REMOVE_RECURSE
  "CMakeFiles/attack_synthesis.dir/attack_synthesis.cpp.o"
  "CMakeFiles/attack_synthesis.dir/attack_synthesis.cpp.o.d"
  "attack_synthesis"
  "attack_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
