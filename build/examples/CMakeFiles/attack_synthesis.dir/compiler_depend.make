# Empty compiler generated dependencies file for attack_synthesis.
# This may be replaced when dependencies are built.
