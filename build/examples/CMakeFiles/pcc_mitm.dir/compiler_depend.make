# Empty compiler generated dependencies file for pcc_mitm.
# This may be replaced when dependencies are built.
