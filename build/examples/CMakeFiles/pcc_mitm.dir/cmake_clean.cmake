file(REMOVE_RECURSE
  "CMakeFiles/pcc_mitm.dir/pcc_mitm.cpp.o"
  "CMakeFiles/pcc_mitm.dir/pcc_mitm.cpp.o.d"
  "pcc_mitm"
  "pcc_mitm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_mitm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
