file(REMOVE_RECURSE
  "CMakeFiles/pytheas_streaming.dir/pytheas_streaming.cpp.o"
  "CMakeFiles/pytheas_streaming.dir/pytheas_streaming.cpp.o.d"
  "pytheas_streaming"
  "pytheas_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytheas_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
