# Empty compiler generated dependencies file for pytheas_streaming.
# This may be replaced when dependencies are built.
