file(REMOVE_RECURSE
  "CMakeFiles/blink_hijack.dir/blink_hijack.cpp.o"
  "CMakeFiles/blink_hijack.dir/blink_hijack.cpp.o.d"
  "blink_hijack"
  "blink_hijack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blink_hijack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
