# Empty dependencies file for blink_hijack.
# This may be replaced when dependencies are built.
