# Empty compiler generated dependencies file for egress_steering.
# This may be replaced when dependencies are built.
