file(REMOVE_RECURSE
  "CMakeFiles/egress_steering.dir/egress_steering.cpp.o"
  "CMakeFiles/egress_steering.dir/egress_steering.cpp.o.d"
  "egress_steering"
  "egress_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/egress_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
