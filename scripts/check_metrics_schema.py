#!/usr/bin/env python3
"""Validates the JSON documents emitted by the observability layer:
intox.bench_report.v1, intox.sweep_report.v1.1, intox.point_record.v1,
intox.flightrec.v1 crash dumps, intox.sweep_failure.v1 sidecars
(dispatched on the top-level "schema" field) and, with --trace, Chrome
trace-event files.

Usage:
    scripts/check_metrics_schema.py BENCH_FIG2.json [more.json ...]
    scripts/check_metrics_schema.py sweep_report.json
    scripts/check_metrics_schema.py --trace out.trace.json
    scripts/check_metrics_schema.py --names names.txt report.json [...]

With --names, every metric key appearing in a report's counters /
gauges / histograms must be listed in NAMES_FILE (one name per line —
the output of `intox_analyze --dump-metric-names`). This cross-checks
the reports against the registration sites the static analyzer found,
so a renamed metric cannot silently fork the time series.

Stdlib-only on purpose: CI runs it right after `python3 -m json.tool`,
so a schema drift fails the pipeline with a pointed message instead of
surfacing weeks later in a plotting notebook.
"""

import json
import sys

SCHEMA = "intox.bench_report.v1"
SWEEP_SCHEMA = "intox.sweep_report.v1.1"
POINT_SCHEMA = "intox.point_record.v1"
FLIGHTREC_SCHEMA = "intox.flightrec.v1"
FAILURE_SCHEMA = "intox.sweep_failure.v1"
FLIGHTREC_TYPE_COUNT = 11


class SchemaError(Exception):
    pass


# Set by --names: the registration-site inventory metric keys must
# belong to. None disables the cross-check.
KNOWN_METRIC_NAMES = None


def expect(cond, path, msg):
    if not cond:
        raise SchemaError(f"{path}: {msg}")


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def is_uint(x):
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


def check_sweep(sweep, path):
    expect(isinstance(sweep, dict), path, "sweep must be an object")
    for key, pred, what in (
        ("sweep", lambda v: isinstance(v, str) and v, "non-empty string"),
        ("trials", is_uint, "non-negative integer"),
        ("threads", is_uint, "non-negative integer"),
        ("wall_s", is_num, "number"),
        ("trials_per_s", is_num, "number"),
    ):
        expect(key in sweep, path, f"missing key '{key}'")
        expect(pred(sweep[key]), f"{path}.{key}", f"must be a {what}")
    if "shard_wall_s" in sweep:
        shard = sweep["shard_wall_s"]
        spath = f"{path}.shard_wall_s"
        expect(isinstance(shard, dict), spath, "must be an object")
        for key in ("min", "max", "imbalance"):
            expect(is_num(shard.get(key)), f"{spath}.{key}", "must be a number")
        expect(shard["min"] <= shard["max"], spath, "min must be <= max")
        expect(shard["imbalance"] >= 1.0 or shard["imbalance"] == 0.0, spath,
               "imbalance is max/mean, so >= 1 (or 0 for unknown)")


def check_histogram(hist, path):
    expect(isinstance(hist, dict), path, "histogram must be an object")
    for key in ("lo", "hi", "buckets", "underflow", "overflow", "total",
                "sum", "min", "max"):
        expect(key in hist, path, f"missing key '{key}'")
    expect(is_num(hist["lo"]) and is_num(hist["hi"]), path,
           "lo/hi must be numbers")
    expect(hist["lo"] < hist["hi"], path, "lo must be < hi")
    buckets = hist["buckets"]
    expect(isinstance(buckets, list) and buckets, f"{path}.buckets",
           "must be a non-empty array")
    expect(all(is_uint(b) for b in buckets), f"{path}.buckets",
           "entries must be non-negative integers")
    for key in ("underflow", "overflow", "total"):
        expect(is_uint(hist[key]), f"{path}.{key}",
               "must be a non-negative integer")
    expect(sum(buckets) + hist["underflow"] + hist["overflow"]
           == hist["total"],
           path, "bucket mass + under/overflow must equal total")
    # min/max are null exactly when the histogram is empty.
    if hist["total"] == 0:
        expect(hist["min"] is None and hist["max"] is None, path,
               "empty histogram must have null min/max")
    else:
        expect(is_num(hist["min"]) and is_num(hist["max"]), path,
               "non-empty histogram must have numeric min/max")


def check_known_name(name, path):
    if KNOWN_METRIC_NAMES is None:
        return
    expect(name in KNOWN_METRIC_NAMES, f"{path}.{name}",
           "metric name not found at any registration site "
           "(stale report, or re-run intox_analyze --dump-metric-names)")


def check_metrics(metrics, path):
    expect(isinstance(metrics, dict), path, "must be an object")
    for section, pred, what in (
        ("counters", is_uint, "non-negative integer"),
        ("gauges", is_num, "number"),
    ):
        block = metrics.get(section)
        expect(isinstance(block, dict), f"{path}.{section}",
               "must be an object")
        for name, value in block.items():
            expect(pred(value), f"{path}.{section}.{name}",
                   f"must be a {what}")
            check_known_name(name, f"{path}.{section}")
    hists = metrics.get("histograms")
    expect(isinstance(hists, dict), f"{path}.histograms",
           "must be an object")
    for name, hist in hists.items():
        check_histogram(hist, f"{path}.histograms.{name}")
        check_known_name(name, f"{path}.histograms")


def check_recent_messages(inv, path):
    recent = inv.get("recent_messages")
    expect(isinstance(recent, list), f"{path}.recent_messages",
           "must be an array")
    expect(all(isinstance(m, str) for m in recent),
           f"{path}.recent_messages", "entries must be strings")


def check_invariants(inv, path):
    expect(isinstance(inv, dict), path, "must be an object")
    expect(inv.get("mode") in ("fatal", "count", "throw"),
           f"{path}.mode", "must be fatal|count|throw")
    expect(is_uint(inv.get("violations")), f"{path}.violations",
           "must be a non-negative integer")
    expect(isinstance(inv.get("last_message"), str),
           f"{path}.last_message", "must be a string")
    check_recent_messages(inv, path)


def check_report(doc, path):
    expect(isinstance(doc, dict), path, "report must be an object")
    expect(doc.get("schema") == SCHEMA, f"{path}.schema",
           f"must be '{SCHEMA}' (got {doc.get('schema')!r})")
    expect(isinstance(doc.get("family"), str) and doc["family"],
           f"{path}.family", "must be a non-empty string")
    expect(is_uint(doc.get("threads_requested")), f"{path}.threads_requested",
           "must be a non-negative integer")

    expect(isinstance(doc.get("sweeps"), list), f"{path}.sweeps",
           "must be an array")
    for i, sweep in enumerate(doc["sweeps"]):
        check_sweep(sweep, f"{path}.sweeps[{i}]")

    check_metrics(doc.get("metrics"), f"{path}.metrics")
    check_invariants(doc.get("invariants"), f"{path}.invariants")


def check_point_record(doc, path):
    expect(isinstance(doc, dict), path, "point record must be an object")
    expect(doc.get("schema") == POINT_SCHEMA, f"{path}.schema",
           f"must be '{POINT_SCHEMA}' (got {doc.get('schema')!r})")
    for key in ("scenario", "family"):
        expect(isinstance(doc.get(key), str) and doc[key], f"{path}.{key}",
               "must be a non-empty string")
    knobs = doc.get("knobs")
    expect(isinstance(knobs, dict), f"{path}.knobs", "must be an object")
    for name, value in knobs.items():
        expect(isinstance(value, str), f"{path}.knobs.{name}",
               "must be a string (knobs are recorded as rendered text)")
    expect(isinstance(doc.get("banner"), str), f"{path}.banner",
           "must be a string (empty for a pointless run)")
    expect(is_uint(doc.get("exit")), f"{path}.exit",
           "must be a non-negative integer")
    expect(isinstance(doc.get("stdout"), str), f"{path}.stdout",
           "must be a string")
    check_metrics(doc.get("metrics"), f"{path}.metrics")
    check_invariants(doc.get("invariants"), f"{path}.invariants")


def check_sweep_report(doc, path):
    expect(isinstance(doc, dict), path, "sweep report must be an object")
    expect(doc.get("schema") == SWEEP_SCHEMA, f"{path}.schema",
           f"must be '{SWEEP_SCHEMA}' (got {doc.get('schema')!r})")
    for key in ("scenario", "family"):
        expect(isinstance(doc.get(key), str) and doc[key], f"{path}.{key}",
               "must be a non-empty string")
    axes = doc.get("axes")
    expect(isinstance(axes, list), f"{path}.axes", "must be an array")
    expected_points = 1
    for i, axis in enumerate(axes):
        apath = f"{path}.axes[{i}]"
        expect(isinstance(axis, dict), apath, "axis must be an object")
        expect(isinstance(axis.get("key"), str) and axis["key"],
               f"{apath}.key", "must be a non-empty string")
        values = axis.get("values")
        expect(isinstance(values, list) and values, f"{apath}.values",
               "must be a non-empty array")
        expect(all(isinstance(v, str) for v in values), f"{apath}.values",
               "entries must be strings (rendered knob values)")
        expected_points *= len(values)
    records = doc.get("records")
    expect(isinstance(records, list), f"{path}.records", "must be an array")
    expect(doc.get("points") == len(records), f"{path}.points",
           f"must equal len(records) == {len(records)}")
    expect(len(records) == expected_points, f"{path}.records",
           f"must hold the full cross product ({expected_points} points)")
    for i, record in enumerate(records):
        check_point_record(record, f"{path}.records[{i}]")
    aggregates = doc.get("aggregates")
    apath = f"{path}.aggregates"
    expect(isinstance(aggregates, dict), apath, "must be an object")
    for section in ("counters", "gauges"):
        block = aggregates.get(section)
        spath = f"{apath}.{section}"
        expect(isinstance(block, dict), spath, "must be an object")
        for name, agg in block.items():
            npath = f"{spath}.{name}"
            expect(isinstance(agg, dict), npath, "must be an object")
            for key in ("count", "min", "max", "mean"):
                expect(is_num(agg.get(key)), f"{npath}.{key}",
                       "must be a number")
            expect(is_uint(agg["count"]) and agg["count"] >= 1, npath,
                   "count must be a positive integer")
            expect(agg["min"] <= agg["max"], npath, "min must be <= max")
            # Tolerance absorbs float summation rounding in the mean.
            tol = 1e-9 * max(abs(agg["min"]), abs(agg["max"]), 1.0)
            expect(agg["min"] - tol <= agg["mean"] <= agg["max"] + tol,
                   npath, "mean must lie within [min, max]")
            expect(agg["count"] <= len(records), npath,
                   "count cannot exceed the number of points")


def check_flightrec(doc, path):
    expect(isinstance(doc, dict), path, "flightrec dump must be an object")
    expect(doc.get("schema") == FLIGHTREC_SCHEMA, f"{path}.schema",
           f"must be '{FLIGHTREC_SCHEMA}' (got {doc.get('schema')!r})")
    expect(is_uint(doc.get("pid")) and doc["pid"] > 0, f"{path}.pid",
           "must be a positive integer")
    expect(isinstance(doc.get("reason"), str) and doc["reason"],
           f"{path}.reason", "must be a non-empty string")
    expect(isinstance(doc.get("detail"), str), f"{path}.detail",
           "must be a string")
    expect(isinstance(doc.get("scenario"), str), f"{path}.scenario",
           "must be a string (may be empty outside the driver)")
    types = doc.get("types")
    expect(isinstance(types, list) and len(types) == FLIGHTREC_TYPE_COUNT,
           f"{path}.types",
           f"must be the {FLIGHTREC_TYPE_COUNT}-entry type-name table")
    expect(all(isinstance(t, str) and t for t in types), f"{path}.types",
           "entries must be non-empty strings")
    inv = doc.get("invariants")
    expect(isinstance(inv, dict), f"{path}.invariants", "must be an object")
    expect(is_uint(inv.get("violations")), f"{path}.invariants.violations",
           "must be a non-negative integer")
    check_recent_messages(inv, f"{path}.invariants")
    expect(is_uint(doc.get("dropped_threads")), f"{path}.dropped_threads",
           "must be a non-negative integer")
    threads = doc.get("threads")
    expect(isinstance(threads, list), f"{path}.threads", "must be an array")
    for i, thread in enumerate(threads):
        tpath = f"{path}.threads[{i}]"
        expect(isinstance(thread, dict), tpath, "must be an object")
        expect(is_uint(thread.get("tid")) and thread["tid"] > 0,
               f"{tpath}.tid", "must be a positive integer")
        lanes = thread.get("lanes")
        expect(isinstance(lanes, list), f"{tpath}.lanes", "must be an array")
        for lane in lanes:
            lname = lane.get("lane") if isinstance(lane, dict) else None
            lpath = f"{tpath}.lanes[{lname!r}]"
            expect(isinstance(lane, dict), lpath, "must be an object")
            expect(lname in ("hot", "decision"), f"{lpath}.lane",
                   "must be 'hot' or 'decision'")
            expect(is_uint(lane.get("capacity")) and lane["capacity"] > 0,
                   f"{lpath}.capacity", "must be a positive integer")
            for key in ("recorded", "dropped"):
                expect(is_uint(lane.get(key)), f"{lpath}.{key}",
                       "must be a non-negative integer")
            records = lane.get("records")
            expect(isinstance(records, list), f"{lpath}.records",
                   "must be an array")
            expect(len(records) <= lane["capacity"], f"{lpath}.records",
                   "cannot hold more than the lane capacity")
            expect(lane["dropped"] + len(records) == lane["recorded"],
                   lpath, "dropped + kept must equal recorded")
            for j, record in enumerate(records):
                expect(isinstance(record, list) and len(record) == 5
                       and all(is_num(w) for w in record),
                       f"{lpath}.records[{j}]",
                       "must be a [time, type, a, b, c] array of numbers")


def check_sweep_failure(doc, path):
    expect(isinstance(doc, dict), path, "failure sidecar must be an object")
    expect(doc.get("schema") == FAILURE_SCHEMA, f"{path}.schema",
           f"must be '{FAILURE_SCHEMA}' (got {doc.get('schema')!r})")
    expect(isinstance(doc.get("scenario"), str) and doc["scenario"],
           f"{path}.scenario", "must be a non-empty string")
    expect(is_uint(doc.get("point")), f"{path}.point",
           "must be a non-negative integer")
    expect(isinstance(doc.get("banner"), str), f"{path}.banner",
           "must be a string")
    expect(isinstance(doc.get("log"), str) and doc["log"], f"{path}.log",
           "must be a non-empty string")
    flightrec = doc.get("flightrec")
    expect(flightrec is None or (isinstance(flightrec, str) and flightrec),
           f"{path}.flightrec",
           "must be a non-empty dump path or null (no dump committed)")


def check_trace(doc, path):
    expect(isinstance(doc, dict), path, "trace must be an object")
    events = doc.get("traceEvents")
    expect(isinstance(events, list), f"{path}.traceEvents", "must be an array")
    expect(events, f"{path}.traceEvents", "must contain at least one event")
    for i, ev in enumerate(events):
        epath = f"{path}.traceEvents[{i}]"
        expect(isinstance(ev, dict), epath, "event must be an object")
        expect(isinstance(ev.get("name"), str) and ev["name"], f"{epath}.name",
               "must be a non-empty string")
        ph = ev.get("ph")
        expect(ph in ("X", "i", "C", "M"), f"{epath}.ph",
               "must be X (complete), i (instant), C (counter), or "
               "M (metadata)")
        expect(is_num(ev.get("ts")), f"{epath}.ts", "must be a number")
        expect(is_uint(ev.get("pid")), f"{epath}.pid", "must be an integer")
        expect(is_uint(ev.get("tid")), f"{epath}.tid", "must be an integer")
        if ph == "X":
            expect(is_num(ev.get("dur")) and ev["dur"] >= 0, f"{epath}.dur",
                   "complete events need a non-negative dur")


def main(argv):
    global KNOWN_METRIC_NAMES
    args = argv[1:]
    trace_mode = False
    if args and args[0] == "--trace":
        trace_mode = True
        args = args[1:]
    if args and args[0] == "--names":
        if len(args) < 2:
            print("--names requires a names file", file=sys.stderr)
            return 2
        try:
            with open(args[1], encoding="utf-8") as f:
                KNOWN_METRIC_NAMES = {
                    line.strip() for line in f if line.strip()
                }
        except OSError as err:
            print(f"FAIL {args[1]}: {err}", file=sys.stderr)
            return 2
        if not KNOWN_METRIC_NAMES:
            print(f"FAIL {args[1]}: names file is empty", file=sys.stderr)
            return 2
        args = args[2:]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    failures = 0
    for filename in args:
        try:
            # A zero-byte report means the producer crashed before its
            # first write; name that directly instead of surfacing
            # json's "Expecting value" riddle. ValueError also covers
            # UnicodeDecodeError (binary garbage), which previously
            # escaped as a traceback.
            with open(filename, "rb") as f:
                raw = f.read()
            if not raw.strip():
                raise SchemaError("empty input file (no JSON content)")
            doc = json.loads(raw.decode("utf-8"))
            if trace_mode:
                kind = "trace"
                check_trace(doc, filename)
            elif (isinstance(doc, dict)
                  and doc.get("schema") == SWEEP_SCHEMA):
                kind = "sweep report"
                check_sweep_report(doc, filename)
            elif (isinstance(doc, dict)
                  and doc.get("schema") == POINT_SCHEMA):
                kind = "point record"
                check_point_record(doc, filename)
            elif (isinstance(doc, dict)
                  and doc.get("schema") == FLIGHTREC_SCHEMA):
                kind = "flightrec dump"
                check_flightrec(doc, filename)
            elif (isinstance(doc, dict)
                  and doc.get("schema") == FAILURE_SCHEMA):
                kind = "sweep failure"
                check_sweep_failure(doc, filename)
            else:
                kind = "report"
                check_report(doc, filename)
        except (OSError, ValueError, SchemaError) as err:
            print(f"FAIL {filename}: {err}", file=sys.stderr)
            failures += 1
            continue
        print(f"ok {filename} ({kind})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
