#!/usr/bin/env python3
"""Throughput regression gate over intox.bench_report.v1 run reports.

Compares the `trials_per_s` of every sweep named in a committed baseline
(bench/baselines/*.json) against a freshly produced BENCH_<family>.json
and fails when throughput drops below `baseline * tolerance`. The gate
guards the hot-path engine (timing-wheel scheduler, slab-allocated
packets, SoA flow state): an accidental O(log n) or per-event allocation
sneaking back in shows up here, not weeks later in a slow experiment.

Usage:
    scripts/check_perf_gate.py --reports reports [--baselines bench/baselines]
    scripts/check_perf_gate.py --reports reports --update

The tolerance is stored *in each baseline file* (default 0.5: fail below
half the recorded throughput). The band is deliberately wide — CI
machines are slower and noisier than the box that recorded the baseline;
the gate exists to catch order-of-magnitude regressions, not 10% jitter.
Sweeps present in a report but absent from the baseline are ignored (new
benchmarks do not need a baseline to land, they get one on the next
re-baseline). The reverse direction is never silent: a baseline-named
sweep missing from the fresh reports fails both `check` and `--update`
— dropping a floor requires an explicit `--allow-drop NAME`.

Re-baselining (after a deliberate perf change or a runner upgrade):
    INTOX_METRICS=reports ./build/bench/bench_micro_core \
        --benchmark_filter='Scheduler|LinkDelivery'
    INTOX_METRICS=reports ./build/intox run blink.e2e > /dev/null
    scripts/check_perf_gate.py --reports reports --update
then commit the rewritten bench/baselines/*.json with a sentence in the
commit message saying why the floor moved.

Stdlib-only on purpose, same as check_metrics_schema.py.
"""

import argparse
import json
import os
import sys

BASELINE_SCHEMA = "intox.perf_baseline.v1"
REPORT_SCHEMA = "intox.bench_report.v1"
DEFAULT_TOLERANCE = 0.5


def fail(msg):
    print(f"check_perf_gate: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def report_sweeps(report, path):
    if report.get("schema") != REPORT_SCHEMA:
        fail(f"{path}: schema is {report.get('schema')!r}, "
             f"expected {REPORT_SCHEMA!r}")
    out = {}
    for sweep in report.get("sweeps", []):
        name = sweep.get("sweep")
        tps = sweep.get("trials_per_s")
        if not isinstance(name, str) or not isinstance(tps, (int, float)):
            fail(f"{path}: malformed sweep entry {sweep!r}")
        out[name] = float(tps)
    return out


def find_report(reports_dir, family):
    path = os.path.join(reports_dir, f"BENCH_{family}.json")
    if not os.path.isfile(path):
        fail(f"missing run report {path} (baseline family {family!r}; "
             f"did the bench step run?)")
    return path


def check(baseline_path, reports_dir):
    baseline = load_json(baseline_path)
    if baseline.get("schema") != BASELINE_SCHEMA:
        fail(f"{baseline_path}: schema is {baseline.get('schema')!r}, "
             f"expected {BASELINE_SCHEMA!r}")
    family = baseline.get("family")
    tolerance = baseline.get("tolerance", DEFAULT_TOLERANCE)
    if not isinstance(family, str) or not family:
        fail(f"{baseline_path}: missing family")
    if not isinstance(tolerance, (int, float)) or not 0 < tolerance <= 1:
        fail(f"{baseline_path}: tolerance must be in (0, 1], "
             f"got {tolerance!r}")

    report_path = find_report(reports_dir, family)
    current = report_sweeps(load_json(report_path), report_path)

    if not baseline.get("sweeps"):
        fail(f"{baseline_path}: baseline guards no sweeps (an empty "
             f"'sweeps' object gates nothing; delete the file or "
             f"re-baseline)")

    failures = []
    for name, entry in sorted(baseline.get("sweeps", {}).items()):
        floor = entry.get("trials_per_s")
        if not isinstance(floor, (int, float)) or floor <= 0:
            fail(f"{baseline_path}: sweep {name!r} has bad trials_per_s "
                 f"{floor!r}")
        if name not in current:
            failures.append(f"  {name}: missing from {report_path} "
                            f"(benchmark deleted or filtered out?)")
            continue
        need = floor * tolerance
        got = current[name]
        verdict = "ok" if got >= need else "REGRESSION"
        print(f"  {family}/{name}: {got:,.0f} trials/s "
              f"(baseline {floor:,.0f}, floor {need:,.0f}) {verdict}")
        if got < need:
            failures.append(
                f"  {name}: {got:,.0f} trials/s < floor {need:,.0f} "
                f"({tolerance:.0%} of baseline {floor:,.0f})")
    return failures


def update(baseline_path, reports_dir, allow_drop):
    baseline = load_json(baseline_path)
    family = baseline.get("family")
    report_path = find_report(reports_dir, family)
    current = report_sweeps(load_json(report_path), report_path)
    names = set(baseline.get("sweeps", {})) | set(current)
    sweeps = {}
    for name in sorted(names):
        if name not in current:
            # A baseline-named sweep that vanished from the fresh report
            # is a hard error: silently dropping it here would un-guard
            # the floor forever (the gate only checks names the baseline
            # records). Deleting a benchmark on purpose requires saying
            # so with --allow-drop.
            if name in allow_drop:
                print(f"  {family}/{name}: dropped (--allow-drop)")
                continue
            fail(f"{baseline_path}: sweep {name!r} is in the baseline but "
                 f"not in {report_path}; a silent drop would un-guard its "
                 f"floor. Re-run the bench that produces it, or pass "
                 f"--allow-drop {name} if it was deleted on purpose.")
        sweeps[name] = {"trials_per_s": round(current[name], 1)}
        print(f"  {family}/{name}: baseline := {current[name]:,.0f} trials/s")
    baseline["schema"] = BASELINE_SCHEMA
    baseline["sweeps"] = sweeps
    baseline.setdefault("tolerance", DEFAULT_TOLERANCE)
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")


def main():
    parser = argparse.ArgumentParser(
        description="throughput gate over BENCH_*.json run reports")
    parser.add_argument("--reports", required=True,
                        help="directory holding fresh BENCH_<family>.json")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of committed baseline files")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from the fresh reports "
                             "instead of checking")
    parser.add_argument("--allow-drop", action="append", default=[],
                        metavar="SWEEP",
                        help="with --update: permit removing this "
                             "baseline sweep when it is absent from the "
                             "fresh reports (repeatable)")
    args = parser.parse_args()

    baseline_files = sorted(
        os.path.join(args.baselines, f)
        for f in os.listdir(args.baselines) if f.endswith(".json"))
    if not baseline_files:
        fail(f"no baseline files in {args.baselines}")

    all_failures = []
    for path in baseline_files:
        print(f"{path}:")
        if args.update:
            update(path, args.reports, set(args.allow_drop))
        else:
            all_failures += check(path, args.reports)
    if all_failures:
        print("throughput regressions detected:", file=sys.stderr)
        for line in all_failures:
            print(line, file=sys.stderr)
        print("(deliberate change? see the re-baseline recipe in this "
              "script's docstring)", file=sys.stderr)
        sys.exit(1)
    if not args.update:
        print("perf gate: all sweeps at or above their floors")


if __name__ == "__main__":
    main()
