#!/usr/bin/env bash
# Runs the full static-analysis stack:
#
#   1. intox_lint        project-specific checks (determinism, invariant
#                        hygiene, metric naming, header hygiene); built
#                        from tools/intox_lint via the `lint` preset
#   2. intox_analyze     whole-program semantic checks over the exported
#                        compile database (async-signal-safety,
#                        determinism taint, lock-order cycles, atomic
#                        memory-order policy)
#   3. clang-tidy        curated .clang-tidy profile over every entry in
#                        the lint preset's compile_commands.json
#   4. clang-format      --dry-run -Werror diff gate over tracked C++
#
# Tools 3 and 4 are skipped with a warning when the host lacks them
# (the container toolchain is gcc-only); CI passes --require-tidy
# --require-format so the gate cannot silently soften there.
#
# Usage: scripts/run_lint.sh [--require-tidy] [--require-format]
set -euo pipefail

cd "$(dirname "$0")/.."

require_tidy=0
require_format=0
for arg in "$@"; do
  case "$arg" in
    --require-tidy) require_tidy=1 ;;
    --require-format) require_format=1 ;;
    *) echo "usage: $0 [--require-tidy] [--require-format]" >&2; exit 2 ;;
  esac
done

status=0

# --- 1. intox_lint ---------------------------------------------------------
if [ ! -f build-lint/CMakeCache.txt ]; then
  cmake --preset lint > /dev/null
fi
cmake --build build-lint --target intox_lint -j "$(nproc)" > /dev/null

echo "== intox_lint =="
if ./build-lint/tools/intox_lint/intox_lint \
    --root . --baseline tools/intox_lint/baseline.txt; then
  :
else
  status=1
fi

# --- 2. intox_analyze ------------------------------------------------------
cmake --build build-lint --target intox_analyze -j "$(nproc)" > /dev/null

echo "== intox_analyze =="
if ./build-lint/tools/intox_analyze/intox_analyze \
    --root . --compdb build-lint/compile_commands.json \
    --baseline tools/intox_analyze/baseline.txt; then
  :
else
  status=1
fi

# --- 3. clang-tidy ---------------------------------------------------------
echo "== clang-tidy =="
if command -v clang-tidy > /dev/null; then
  # Files from the compile database only: every TU the build compiles
  # gets checked with exactly the flags it compiles with.
  mapfile -t tus < <(python3 - <<'EOF'
import json
for entry in json.load(open("build-lint/compile_commands.json")):
    f = entry["file"]
    if "/tests/lint/fixtures/" in f or "/tests/lint/analyze/fixtures/" in f:
        continue  # known-bad on purpose
    print(f)
EOF
)
  if command -v run-clang-tidy > /dev/null; then
    if ! run-clang-tidy -p build-lint -quiet "${tus[@]}" > /tmp/tidy.log 2>&1; then
      cat /tmp/tidy.log
      status=1
    else
      echo "clang-tidy: ${#tus[@]} translation units clean"
    fi
  else
    tidy_failed=0
    for f in "${tus[@]}"; do
      clang-tidy -p build-lint --quiet "$f" || tidy_failed=1
    done
    if [ "$tidy_failed" -ne 0 ]; then
      status=1
    else
      echo "clang-tidy: ${#tus[@]} translation units clean"
    fi
  fi
elif [ "$require_tidy" -eq 1 ]; then
  echo "error: clang-tidy required but not installed" >&2
  status=1
else
  echo "clang-tidy not installed; skipping (CI runs it with --require-tidy)"
fi

# --- 4. clang-format -------------------------------------------------------
echo "== clang-format =="
if command -v clang-format > /dev/null; then
  mapfile -t cxx_files < <(git ls-files '*.cpp' '*.hpp' \
    | grep -v '^tests/lint/fixtures/' \
    | grep -v '^tests/lint/analyze/fixtures/')
  if ! clang-format --dry-run -Werror "${cxx_files[@]}"; then
    echo "clang-format: run 'clang-format -i' on the files above" >&2
    status=1
  else
    echo "clang-format: ${#cxx_files[@]} files clean"
  fi
elif [ "$require_format" -eq 1 ]; then
  echo "error: clang-format required but not installed" >&2
  status=1
else
  echo "clang-format not installed; skipping (CI runs it with --require-format)"
fi

exit "$status"
