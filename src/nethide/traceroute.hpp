// Traceroute over a (physical or presented) path table.
//
// "Since there is no authentication of these ICMP replies, any attacker
// who can manipulate them can control the path that traceroute displays
// and thus the topology which the user learns." (§4.3)
//
// A PathTable holds, for every (src, dst) pair, the node path whose hops
// will answer TTL-expiry probes. For the honest network that is the
// forwarding path; under NetHide it is the virtual path; under a
// malicious operator it can be anything at all.
#pragma once

#include <optional>
#include <vector>

#include "nethide/topology.hpp"

namespace intox::nethide {

class PathTable {
 public:
  explicit PathTable(std::size_t nodes)
      : nodes_(nodes), paths_(nodes * nodes) {}

  void set(NodeId src, NodeId dst, Path path) {
    paths_[index(src, dst)] = std::move(path);
  }
  [[nodiscard]] const Path& get(NodeId src, NodeId dst) const {
    return paths_[index(src, dst)];
  }
  [[nodiscard]] std::size_t nodes() const { return nodes_; }

  /// Builds the all-pairs shortest-path table of a topology (the honest
  /// forwarding ground truth).
  static PathTable all_shortest_paths(const Topology& topo);

 private:
  [[nodiscard]] std::size_t index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * nodes_ + dst;
  }
  std::size_t nodes_;
  std::vector<Path> paths_;
};

/// One traceroute hop as the prober sees it.
struct Hop {
  int ttl = 0;
  net::Ipv4Addr from;  // source address of the ICMP time-exceeded reply
};

/// Simulates `traceroute src -> dst` against the presented paths:
/// the probe with TTL = k elicits a reply from the k-th node of the
/// presented path. `topo` supplies the address of each node.
std::vector<Hop> traceroute(const Topology& topo, const PathTable& presented,
                            NodeId src, NodeId dst);

/// Reconstructs the topology a prober infers from tracerouting every
/// (src, dst) pair — consecutive hops become links. This is what tools
/// like Rocketfuel do, and what the attacker/defender shapes.
Topology infer_topology(const Topology& addr_space, const PathTable& presented);

}  // namespace intox::nethide
