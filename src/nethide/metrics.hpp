// NetHide's security / accuracy / utility metrics (Meier et al., USENIX
// Security'18), over (physical paths, presented paths) pairs.
#pragma once

#include <map>

#include "nethide/traceroute.hpp"

namespace intox::nethide {

/// Flow density: number of (src, dst) pairs whose *physical* path
/// crosses each link — the signal a link-flooding (Crossfire-style)
/// attacker uses to pick targets. NetHide's security goal is to cap the
/// *apparent* flow density of the presented topology.
std::map<Edge, std::size_t> flow_density(const PathTable& paths);

/// Maximum flow density over all links (0 for an empty table).
std::size_t max_flow_density(const PathTable& paths);

/// Accuracy: mean path similarity between physical and presented paths
/// over all pairs. Similarity of two paths is 1 - Levenshtein distance /
/// max length (1.0 = identical paths everywhere).
double accuracy(const PathTable& physical, const PathTable& presented);

/// Utility: mean Jaccard similarity of the *link sets* of physical and
/// presented paths — how much of real debugging signal survives (a
/// failed physical link is discoverable iff presented paths still cross
/// it).
double utility(const PathTable& physical, const PathTable& presented);

/// Levenshtein distance between node sequences (helper, exposed for
/// tests).
std::size_t levenshtein(const Path& a, const Path& b);

}  // namespace intox::nethide
