// NetHide-style obfuscation and its malicious twin.
//
// Defensive use (NetHide): present virtual paths that cap the apparent
// flow density of every link (so a link-flooding attacker cannot find
// the juicy bottlenecks) while keeping accuracy/utility high — "limits
// the amount of lying to the minimum that is required".
//
// Malicious use (§4.3): "the exact same technique could be used by
// malicious operators to present wrong information about the topology" —
// here, presenting an arbitrary decoy topology unrelated to the network.
#pragma once

#include "nethide/metrics.hpp"

namespace intox::nethide {

struct ObfuscationConfig {
  /// Cap on apparent flow density per link.
  std::size_t max_density = 0;  // 0 = auto: 60% of the physical max
  /// Stop deviating once accuracy would fall below this floor.
  double accuracy_floor = 0.5;
  std::size_t max_iterations = 10000;
};

struct ObfuscationResult {
  PathTable presented;
  std::size_t physical_max_density = 0;
  std::size_t presented_max_density = 0;
  double accuracy = 0.0;
  double utility = 0.0;
  std::size_t rerouted_pairs = 0;
};

/// Greedy NetHide: repeatedly take the hottest link and divert the
/// longest presented paths that cross it onto detours that avoid it.
/// Detours are real paths of the physical topology minus that link, so
/// the presented topology stays plausible.
ObfuscationResult obfuscate(const Topology& topo,
                            const ObfuscationConfig& config);

/// The malicious variant: answer every traceroute according to `decoy`'s
/// shortest paths (node ids shared between the real and decoy worlds).
/// Returns the presented table plus the metrics against reality.
ObfuscationResult present_fake_topology(const Topology& real_topo,
                                        const Topology& decoy);

}  // namespace intox::nethide
