#include "nethide/traceroute.hpp"

namespace intox::nethide {

PathTable PathTable::all_shortest_paths(const Topology& topo) {
  PathTable table{topo.node_count()};
  for (NodeId s = 0; s < topo.node_count(); ++s) {
    for (NodeId d = 0; d < topo.node_count(); ++d) {
      if (s == d) continue;
      if (auto p = topo.shortest_path(s, d)) table.set(s, d, std::move(*p));
    }
  }
  return table;
}

std::vector<Hop> traceroute(const Topology& topo, const PathTable& presented,
                            NodeId src, NodeId dst) {
  std::vector<Hop> hops;
  const Path& path = presented.get(src, dst);
  // TTL k expires at path[k] (path[0] is the probing source itself).
  for (std::size_t k = 1; k < path.size(); ++k) {
    hops.push_back(Hop{static_cast<int>(k), topo.addr(path[k])});
  }
  return hops;
}

Topology infer_topology(const Topology& addr_space,
                        const PathTable& presented) {
  Topology inferred{addr_space.node_count()};
  for (NodeId s = 0; s < presented.nodes(); ++s) {
    for (NodeId d = 0; d < presented.nodes(); ++d) {
      const Path& p = presented.get(s, d);
      for (std::size_t i = 1; i < p.size(); ++i) {
        inferred.add_link(p[i - 1], p[i]);
      }
    }
  }
  return inferred;
}

}  // namespace intox::nethide
