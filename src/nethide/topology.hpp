// Router-level topology graph and path computation.
//
// The substrate for the §4.3 case study: traceroute reconstructs paths
// from ICMP replies, and whoever controls those replies controls the
// topology the user believes in. NetHide (defensively) presents a
// *virtual* topology; a malicious operator can present an arbitrary one.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"

namespace intox::nethide {

using NodeId = std::uint32_t;
using Path = std::vector<NodeId>;  // node sequence, src first, dst last

/// Canonical undirected edge (min id first).
struct Edge {
  NodeId a = 0;
  NodeId b = 0;
  Edge() = default;
  Edge(NodeId x, NodeId y) : a(x < y ? x : y), b(x < y ? y : x) {}
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Topology {
 public:
  explicit Topology(std::size_t nodes);

  void add_link(NodeId u, NodeId v);
  bool remove_link(NodeId u, NodeId v);
  [[nodiscard]] bool has_link(NodeId u, NodeId v) const;

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }
  [[nodiscard]] std::size_t link_count() const;
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId u) const {
    return adj_[u];
  }
  [[nodiscard]] std::vector<Edge> links() const;

  /// Router address of a node (deterministic from id): 10.255.<id>/32-ish.
  [[nodiscard]] net::Ipv4Addr addr(NodeId u) const;

  /// BFS shortest path (hop count); nullopt if unreachable.
  [[nodiscard]] std::optional<Path> shortest_path(NodeId src, NodeId dst) const;

  /// Shortest path that avoids one specific link (for detours).
  [[nodiscard]] std::optional<Path> shortest_path_avoiding(
      NodeId src, NodeId dst, const Edge& avoid) const;

  /// True if `path` uses only existing links.
  [[nodiscard]] bool is_valid_path(const Path& path) const;

  [[nodiscard]] bool connected() const;

  /// Common test topologies.
  static Topology line(std::size_t n);
  static Topology ring(std::size_t n);
  static Topology grid(std::size_t rows, std::size_t cols);
  /// Fat-tree-ish two-level leaf-spine: `leaves` leaf nodes each linked
  /// to all `spines` spine nodes. Node ids: spines first, then leaves.
  static Topology leaf_spine(std::size_t spines, std::size_t leaves);
  /// The NetHide bench topology: two 4-cliques (0-3, 5-8) joined by the
  /// 3-4-5 waist plus a 9-hub shortcut ring — dense edges with one
  /// obvious bottleneck for the obfuscator to hide.
  static Topology dumbbell();

 private:
  [[nodiscard]] std::optional<Path> bfs(NodeId src, NodeId dst,
                                        const Edge* avoid) const;
  std::vector<std::vector<NodeId>> adj_;
};

}  // namespace intox::nethide
