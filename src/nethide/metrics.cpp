#include "nethide/metrics.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "validate/invariant.hpp"

namespace intox::nethide {

std::map<Edge, std::size_t> flow_density(const PathTable& paths) {
  std::map<Edge, std::size_t> density;
  for (NodeId s = 0; s < paths.nodes(); ++s) {
    for (NodeId d = 0; d < paths.nodes(); ++d) {
      const Path& p = paths.get(s, d);
      for (std::size_t i = 1; i < p.size(); ++i) {
        ++density[Edge{p[i - 1], p[i]}];
      }
    }
  }
  return density;
}

std::size_t max_flow_density(const PathTable& paths) {
  std::size_t best = 0;
  for (const auto& [edge, count] : flow_density(paths)) {
    best = std::max(best, count);
  }
  return best;
}

std::size_t levenshtein(const Path& a, const Path& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] != b[j - 1]);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

namespace {

double path_similarity(const Path& phys, const Path& pres) {
  const std::size_t longest = std::max(phys.size(), pres.size());
  if (longest == 0) return 1.0;
  const std::size_t dist = levenshtein(phys, pres);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

double link_jaccard(const Path& phys, const Path& pres) {
  std::set<Edge> a, b;
  for (std::size_t i = 1; i < phys.size(); ++i) {
    a.insert(Edge{phys[i - 1], phys[i]});
  }
  for (std::size_t i = 1; i < pres.size(); ++i) {
    b.insert(Edge{pres[i - 1], pres[i]});
  }
  if (a.empty() && b.empty()) return 1.0;
  std::size_t common = 0;
  for (const Edge& e : a) common += b.count(e);
  return static_cast<double>(common) /
         static_cast<double>(a.size() + b.size() - common);
}

template <typename F>
double mean_over_pairs(const PathTable& physical, const PathTable& presented,
                       F&& f) {
  INTOX_INVARIANT(physical.nodes() == presented.nodes(),
                  "comparing path tables of %zu vs %zu nodes",
                  physical.nodes(), presented.nodes());
  double sum = 0.0;
  std::size_t n = 0;
  for (NodeId s = 0; s < physical.nodes(); ++s) {
    for (NodeId d = 0; d < physical.nodes(); ++d) {
      if (s == d) continue;
      sum += f(physical.get(s, d), presented.get(s, d));
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 1.0;
}

}  // namespace

double accuracy(const PathTable& physical, const PathTable& presented) {
  return mean_over_pairs(physical, presented, path_similarity);
}

double utility(const PathTable& physical, const PathTable& presented) {
  return mean_over_pairs(physical, presented, link_jaccard);
}

}  // namespace intox::nethide
