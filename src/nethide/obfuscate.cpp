#include "nethide/obfuscate.hpp"

#include <algorithm>

#include "validate/invariant.hpp"

namespace intox::nethide {

ObfuscationResult obfuscate(const Topology& topo,
                            const ObfuscationConfig& config) {
  const PathTable physical = PathTable::all_shortest_paths(topo);
  PathTable presented = physical;

  ObfuscationResult result{std::move(presented)};
  result.physical_max_density = max_flow_density(physical);
  const std::size_t target =
      config.max_density > 0
          ? config.max_density
          : std::max<std::size_t>(1, result.physical_max_density * 6 / 10);

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    auto density = flow_density(result.presented);
    // Hottest link above target.
    const Edge* hottest = nullptr;
    std::size_t hottest_count = target;
    for (const auto& [edge, count] : density) {
      if (count > hottest_count) {
        hottest_count = count;
        hottest = &edge;
      }
    }
    if (!hottest) break;  // density capped everywhere

    // Find the pair crossing this link whose detour costs the least
    // additional path length, and present the detour instead.
    bool moved = false;
    NodeId best_s = 0, best_d = 0;
    Path best_detour;
    std::size_t best_extra = SIZE_MAX;
    for (NodeId s = 0; s < result.presented.nodes() && best_extra > 0; ++s) {
      for (NodeId d = 0; d < result.presented.nodes(); ++d) {
        const Path& p = result.presented.get(s, d);
        bool crosses = false;
        for (std::size_t i = 1; i < p.size() && !crosses; ++i) {
          crosses = Edge{p[i - 1], p[i]} == *hottest;
        }
        if (!crosses) continue;
        auto detour = topo.shortest_path_avoiding(s, d, *hottest);
        if (!detour) continue;
        const std::size_t extra = detour->size() - p.size();
        if (extra < best_extra) {
          best_extra = extra;
          best_s = s;
          best_d = d;
          best_detour = std::move(*detour);
          if (best_extra == 0) break;
        }
      }
    }
    if (!best_detour.empty()) {
      result.presented.set(best_s, best_d, best_detour);
      ++result.rerouted_pairs;
      moved = true;
    }
    if (!moved) break;

    if (accuracy(physical, result.presented) < config.accuracy_floor) break;
  }

  result.presented_max_density = max_flow_density(result.presented);
  result.accuracy = accuracy(physical, result.presented);
  result.utility = utility(physical, result.presented);
  return result;
}

ObfuscationResult present_fake_topology(const Topology& real_topo,
                                        const Topology& decoy) {
  // Node ids are shared between the real and decoy worlds; a decoy of a
  // different size would index out of bounds in the pairwise metrics.
  INTOX_INVARIANT(decoy.node_count() == real_topo.node_count(),
                  "decoy topology has %zu nodes but the real topology "
                  "has %zu; present_fake_topology needs them equal",
                  decoy.node_count(), real_topo.node_count());
  const PathTable physical = PathTable::all_shortest_paths(real_topo);
  PathTable presented = PathTable::all_shortest_paths(decoy);

  ObfuscationResult result{std::move(presented)};
  result.physical_max_density = max_flow_density(physical);
  result.presented_max_density = max_flow_density(result.presented);
  result.accuracy = accuracy(physical, result.presented);
  result.utility = utility(physical, result.presented);
  return result;
}

}  // namespace intox::nethide
