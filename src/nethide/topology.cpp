#include "nethide/topology.hpp"

#include <algorithm>
#include <deque>

namespace intox::nethide {

Topology::Topology(std::size_t nodes) : adj_(nodes) {}

void Topology::add_link(NodeId u, NodeId v) {
  if (u == v || has_link(u, v)) return;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
}

bool Topology::remove_link(NodeId u, NodeId v) {
  if (!has_link(u, v)) return false;
  std::erase(adj_[u], v);
  std::erase(adj_[v], u);
  return true;
}

bool Topology::has_link(NodeId u, NodeId v) const {
  if (u >= adj_.size() || v >= adj_.size()) return false;
  return std::find(adj_[u].begin(), adj_[u].end(), v) != adj_[u].end();
}

std::size_t Topology::link_count() const {
  std::size_t deg = 0;
  for (const auto& n : adj_) deg += n.size();
  return deg / 2;
}

std::vector<Edge> Topology::links() const {
  std::vector<Edge> out;
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (NodeId v : adj_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

net::Ipv4Addr Topology::addr(NodeId u) const {
  return net::Ipv4Addr{10, 255, static_cast<std::uint8_t>(u >> 8),
                       static_cast<std::uint8_t>(u & 0xff)};
}

std::optional<Path> Topology::bfs(NodeId src, NodeId dst,
                                  const Edge* avoid) const {
  if (src >= adj_.size() || dst >= adj_.size()) return std::nullopt;
  if (src == dst) return Path{src};
  std::vector<NodeId> parent(adj_.size(), UINT32_MAX);
  std::deque<NodeId> frontier{src};
  parent[src] = src;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : adj_[u]) {
      if (avoid && Edge{u, v} == *avoid) continue;
      if (parent[v] != UINT32_MAX) continue;
      parent[v] = u;
      if (v == dst) {
        Path path{dst};
        for (NodeId cur = dst; cur != src;) {
          cur = parent[cur];
          path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(v);
    }
  }
  return std::nullopt;
}

std::optional<Path> Topology::shortest_path(NodeId src, NodeId dst) const {
  return bfs(src, dst, nullptr);
}

std::optional<Path> Topology::shortest_path_avoiding(NodeId src, NodeId dst,
                                                     const Edge& avoid) const {
  return bfs(src, dst, &avoid);
}

bool Topology::is_valid_path(const Path& path) const {
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (!has_link(path[i - 1], path[i])) return false;
  }
  return !path.empty();
}

bool Topology::connected() const {
  if (adj_.empty()) return true;
  std::vector<bool> seen(adj_.size(), false);
  std::deque<NodeId> frontier{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : adj_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        frontier.push_back(v);
      }
    }
  }
  return count == adj_.size();
}

Topology Topology::line(std::size_t n) {
  Topology t{n};
  for (NodeId i = 1; i < n; ++i) t.add_link(i - 1, i);
  return t;
}

Topology Topology::ring(std::size_t n) {
  Topology t = line(n);
  if (n > 2) t.add_link(static_cast<NodeId>(n - 1), 0);
  return t;
}

Topology Topology::grid(std::size_t rows, std::size_t cols) {
  Topology t{rows * cols};
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_link(id(r, c), id(r, c + 1));
      if (r + 1 < rows) t.add_link(id(r, c), id(r + 1, c));
    }
  }
  return t;
}

Topology Topology::leaf_spine(std::size_t spines, std::size_t leaves) {
  Topology t{spines + leaves};
  for (NodeId s = 0; s < spines; ++s) {
    for (NodeId l = 0; l < leaves; ++l) {
      t.add_link(s, static_cast<NodeId>(spines + l));
    }
  }
  return t;
}

Topology Topology::dumbbell() {
  Topology t{10};
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) t.add_link(i, j);
  }
  for (NodeId i = 5; i < 9; ++i) {
    for (NodeId j = i + 1; j < 9; ++j) t.add_link(i, j);
  }
  t.add_link(3, 4);
  t.add_link(4, 5);
  t.add_link(9, 0);
  t.add_link(2, 9);
  t.add_link(1, 9);
  t.add_link(9, 6);
  return t;
}

}  // namespace intox::nethide
