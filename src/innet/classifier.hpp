// In-network traffic classifier: feature extraction + synthetic labelled
// workload + train/quantize/deploy pipeline.
//
// The deployed model classifies packets as benign (0) or attack (1) from
// eight header-derived integer features — everything an attacker can set
// arbitrarily from any Internet host, which is the whole point of §3.2's
// warning.
#pragma once

#include <vector>

#include "innet/mlp.hpp"
#include "net/packet.hpp"

namespace intox::innet {

/// Header-derived feature vector (all attacker-controllable).
Features extract_features(const net::Packet& pkt);

struct Sample {
  Features x{};
  std::size_t label = 0;
};

/// Synthetic labelled workload: benign web-like traffic vs a scanning /
/// flooding attack-class mixture. Distributions overlap (realistic), so
/// perfect accuracy is impossible but >90% is reachable.
std::vector<Sample> make_dataset(std::size_t per_class, std::uint64_t seed);

struct TrainedClassifier {
  Mlp model;
  QuantizedMlp deployed;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double quantized_test_accuracy = 0.0;
};

/// Trains on one dataset, evaluates on a held-out one, quantizes.
TrainedClassifier train_classifier(std::uint64_t seed,
                                   std::size_t per_class = 2000,
                                   int epochs = 12, double lr = 1e-4);

}  // namespace intox::innet
