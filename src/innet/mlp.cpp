#include "innet/mlp.hpp"

#include <algorithm>
#include <cmath>

namespace intox::innet {

Mlp::Mlp(std::uint64_t seed)
    : w1_(kHidden * kFeatures), b1_(kHidden), w2_(kClasses * kHidden),
      b2_(kClasses) {
  sim::Rng rng{seed};
  const double s1 = 1.0 / std::sqrt(static_cast<double>(kFeatures));
  const double s2 = 1.0 / std::sqrt(static_cast<double>(kHidden));
  for (auto& w : w1_) w = rng.normal(0.0, s1);
  for (auto& w : w2_) w = rng.normal(0.0, s2);
}

std::array<double, kClasses> Mlp::forward(const Features& x) const {
  std::array<double, kHidden> h{};
  for (std::size_t j = 0; j < kHidden; ++j) {
    double a = b1_[j];
    for (std::size_t i = 0; i < kFeatures; ++i) {
      a += w1_[j * kFeatures + i] * static_cast<double>(x[i]);
    }
    h[j] = std::max(0.0, a);  // ReLU
  }
  std::array<double, kClasses> out{};
  for (std::size_t c = 0; c < kClasses; ++c) {
    double a = b2_[c];
    for (std::size_t j = 0; j < kHidden; ++j) a += w2_[c * kHidden + j] * h[j];
    out[c] = a;
  }
  return out;
}

std::size_t Mlp::predict(const Features& x) const {
  const auto logits = forward(x);
  return logits[1] > logits[0] ? 1 : 0;
}

double Mlp::train_step(const Features& x, std::size_t label, double lr) {
  // Forward with cached activations.
  std::array<double, kHidden> h{}, pre{};
  for (std::size_t j = 0; j < kHidden; ++j) {
    double a = b1_[j];
    for (std::size_t i = 0; i < kFeatures; ++i) {
      a += w1_[j * kFeatures + i] * static_cast<double>(x[i]);
    }
    pre[j] = a;
    h[j] = std::max(0.0, a);
  }
  std::array<double, kClasses> logits{};
  for (std::size_t c = 0; c < kClasses; ++c) {
    double a = b2_[c];
    for (std::size_t j = 0; j < kHidden; ++j) a += w2_[c * kHidden + j] * h[j];
    logits[c] = a;
  }

  // Softmax cross-entropy.
  const double m = std::max(logits[0], logits[1]);
  const double z = std::exp(logits[0] - m) + std::exp(logits[1] - m);
  std::array<double, kClasses> p{std::exp(logits[0] - m) / z,
                                 std::exp(logits[1] - m) / z};
  const double loss = -std::log(std::max(p[label], 1e-12));

  // Backward.
  std::array<double, kClasses> dlogit = p;
  dlogit[label] -= 1.0;
  std::array<double, kHidden> dh{};
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (std::size_t j = 0; j < kHidden; ++j) {
      dh[j] += dlogit[c] * w2_[c * kHidden + j];
      w2_[c * kHidden + j] -= lr * dlogit[c] * h[j];
    }
    b2_[c] -= lr * dlogit[c];
  }
  for (std::size_t j = 0; j < kHidden; ++j) {
    if (pre[j] <= 0.0) continue;  // ReLU gate
    for (std::size_t i = 0; i < kFeatures; ++i) {
      w1_[j * kFeatures + i] -= lr * dh[j] * static_cast<double>(x[i]);
    }
    b1_[j] -= lr * dh[j];
  }
  return loss;
}

QuantizedMlp QuantizedMlp::quantize(const Mlp& model) {
  QuantizedMlp q;
  const double scale = static_cast<double>(1 << kShift);
  auto quantize_vec = [&](const std::vector<double>& in) {
    std::vector<std::int32_t> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = static_cast<std::int32_t>(std::lround(in[i] * scale));
    }
    return out;
  };
  q.w1_ = quantize_vec(model.w1());
  q.b1_ = quantize_vec(model.b1());
  q.w2_ = quantize_vec(model.w2());
  q.b2_ = quantize_vec(model.b2());
  return q;
}

std::array<std::int64_t, kClasses> QuantizedMlp::forward(
    const Features& x) const {
  std::array<std::int64_t, kHidden> h{};
  for (std::size_t j = 0; j < kHidden; ++j) {
    std::int64_t a = b1_[j];
    for (std::size_t i = 0; i < kFeatures; ++i) {
      a += static_cast<std::int64_t>(w1_[j * kFeatures + i]) * x[i];
    }
    h[j] = std::max<std::int64_t>(0, a);
  }
  std::array<std::int64_t, kClasses> out{};
  for (std::size_t c = 0; c < kClasses; ++c) {
    std::int64_t a = static_cast<std::int64_t>(b2_[c]) << kShift;
    for (std::size_t j = 0; j < kHidden; ++j) {
      a += static_cast<std::int64_t>(w2_[c * kHidden + j]) * h[j];
    }
    out[c] = a >> kShift;  // rescale back to one weight-scale factor
  }
  return out;
}

std::size_t QuantizedMlp::predict(const Features& x) const {
  const auto logits = forward(x);
  return logits[1] > logits[0] ? 1 : 0;
}

std::int64_t QuantizedMlp::margin(const Features& x) const {
  const auto logits = forward(x);
  return logits[1] - logits[0];
}

}  // namespace intox::innet
