#include "innet/attack.hpp"

#include <cmath>

namespace intox::innet {

Features craft_adversarial(const QuantizedMlp& model, const Features& x,
                           std::size_t target_class,
                           const EvasionConfig& config) {
  Features adv = x;
  // Margin m = logit1 - logit0. Target benign (0): minimize m; target
  // attack (1): maximize m.
  const double sign = target_class == 0 ? -1.0 : 1.0;
  auto objective = [&](const Features& f) {
    return sign * static_cast<double>(model.margin(f));
  };

  for (int pass = 0; pass < config.passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i < kFeatures; ++i) {
      double best = objective(adv);
      std::int32_t best_value = adv[i];
      for (std::int32_t step : config.steps) {
        for (int dir : {-1, +1}) {
          const std::int32_t candidate = adv[i] + dir * step;
          if (std::abs(candidate - x[i]) > config.budget || candidate < 0) {
            continue;
          }
          Features trial = adv;
          trial[i] = candidate;
          const double o = objective(trial);
          if (o > best) {
            best = o;
            best_value = candidate;
          }
        }
      }
      if (best_value != adv[i]) {
        adv[i] = best_value;
        improved = true;
      }
    }
    if (model.predict(adv) == target_class) return adv;
    if (!improved) break;
  }
  return model.predict(adv) == target_class ? adv : x;
}

EvasionOutcome run_evasion_experiment(std::uint64_t seed,
                                      const EvasionConfig& config) {
  const TrainedClassifier clf = train_classifier(seed);
  const auto eval = make_dataset(800, seed + 10);

  EvasionOutcome out;
  sim::Rng rng{seed + 20};
  std::size_t attacks = 0, detected = 0, evaded = 0, random_flipped = 0;
  double l1 = 0.0;

  for (const auto& s : eval) {
    if (s.label != 1) continue;
    ++attacks;
    if (clf.deployed.predict(s.x) != 1) continue;  // already missed
    ++detected;

    // Adversarial perturbation.
    const Features adv = craft_adversarial(clf.deployed, s.x, 0, config);
    if (clf.deployed.predict(adv) == 0) {
      ++evaded;
      for (std::size_t i = 0; i < kFeatures; ++i) {
        l1 += std::abs(adv[i] - s.x[i]);
      }
    }

    // Random control with the same per-feature budget.
    Features rnd = s.x;
    for (std::size_t i = 0; i < kFeatures; ++i) {
      const auto delta = static_cast<std::int32_t>(
          rng.uniform_int(0, 2 * static_cast<std::uint64_t>(config.budget)));
      rnd[i] = std::max(0, s.x[i] + delta - config.budget);
    }
    random_flipped += clf.deployed.predict(rnd) == 0;
  }

  out.clean_detection_rate =
      attacks ? static_cast<double>(detected) / static_cast<double>(attacks)
              : 0.0;
  out.evasion_rate =
      detected ? static_cast<double>(evaded) / static_cast<double>(detected)
               : 0.0;
  out.random_flip_rate =
      detected
          ? static_cast<double>(random_flipped) / static_cast<double>(detected)
          : 0.0;
  out.mean_l1_change = evaded ? l1 / static_cast<double>(evaded) : 0.0;
  return out;
}

}  // namespace intox::innet
