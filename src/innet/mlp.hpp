// A small fixed-point MLP deployable "in the data plane".
//
// §3.2 of the paper: "Siracusano et al. have shown how to run the
// forward pass of a binary neural network in the data plane. While
// promising, neural networks are vulnerable to adversarial examples,
// and thus are particularly exposed in a setting where anyone can inject
// inputs over the Internet."
//
// This module provides that substrate: a one-hidden-layer MLP trained in
// floating point (plain SGD) and then quantized to integer weights, so
// the deployed forward pass uses only the add/multiply/shift/ReLU
// vocabulary a programmable switch offers. Inputs are integer header
// features; outputs are class logits.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace intox::innet {

inline constexpr std::size_t kFeatures = 8;
inline constexpr std::size_t kHidden = 16;
inline constexpr std::size_t kClasses = 2;

using Features = std::array<std::int32_t, kFeatures>;

/// Float training model (host side).
class Mlp {
 public:
  explicit Mlp(std::uint64_t seed);

  /// One SGD step on a single example; returns the pre-step loss.
  double train_step(const Features& x, std::size_t label, double lr);

  /// Forward pass; returns class logits.
  std::array<double, kClasses> forward(const Features& x) const;
  [[nodiscard]] std::size_t predict(const Features& x) const;

  // Weight access for quantization.
  [[nodiscard]] const std::vector<double>& w1() const { return w1_; }
  [[nodiscard]] const std::vector<double>& b1() const { return b1_; }
  [[nodiscard]] const std::vector<double>& w2() const { return w2_; }
  [[nodiscard]] const std::vector<double>& b2() const { return b2_; }

 private:
  // w1: kHidden x kFeatures, w2: kClasses x kHidden.
  std::vector<double> w1_, b1_, w2_, b2_;
};

/// The quantized, switch-deployable forward pass: int32 weights scaled by
/// 1 << kShift, ReLU hidden activations, integer logits.
class QuantizedMlp {
 public:
  static constexpr int kShift = 8;  // weight scale 256

  /// Quantizes a trained float model.
  static QuantizedMlp quantize(const Mlp& model);

  [[nodiscard]] std::array<std::int64_t, kClasses> forward(
      const Features& x) const;
  [[nodiscard]] std::size_t predict(const Features& x) const;
  /// Logit margin of class 1 over class 0 (the attack's loss surface).
  [[nodiscard]] std::int64_t margin(const Features& x) const;

 private:
  std::vector<std::int32_t> w1_, b1_, w2_, b2_;
};

}  // namespace intox::innet
