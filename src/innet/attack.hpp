// Adversarial examples against the in-network classifier (§3.2):
//
//   "neural networks are vulnerable to adversarial examples, and thus
//    are particularly exposed in a setting where anyone can inject
//    inputs over the Internet."
//
// All eight features come straight from header fields the sender
// controls, so "perturbation" here is not a float epsilon — it is simply
// choosing slightly different header values. The attack is a greedy
// coordinate descent on the deployed model's integer logit margin
// (white-box per Kerckhoff; a black-box variant queries predictions
// only), bounded per-feature so the attack traffic stays functionally an
// attack (e.g. a scanner cannot grow its probes into full-size packets
// without losing its scan rate).
#pragma once

#include "innet/classifier.hpp"

namespace intox::innet {

struct EvasionConfig {
  /// Max absolute change per feature. Header fields are fully
  /// attacker-controllable, so this budget is a *conservative* model of
  /// functional constraints (a scanner that grows its probes too much
  /// stops being an effective scanner). The bench sweeps it.
  std::int32_t budget = 64;
  /// Greedy passes over the feature vector.
  int passes = 6;
  /// Step sizes tried per coordinate.
  std::array<std::int32_t, 5> steps{1, 4, 8, 16, 32};
};

struct EvasionOutcome {
  /// Fraction of attack samples reclassified as benign after perturbation.
  double evasion_rate = 0.0;
  /// Same budget spent on *random* perturbation (control).
  double random_flip_rate = 0.0;
  /// Mean L1 feature change among successful evasions.
  double mean_l1_change = 0.0;
  double clean_detection_rate = 0.0;
};

/// Perturbs one sample to flip the deployed model's verdict towards
/// `target_class`; returns the adversarial features (unchanged copy if
/// the search failed).
Features craft_adversarial(const QuantizedMlp& model, const Features& x,
                           std::size_t target_class,
                           const EvasionConfig& config);

/// Full experiment: train, measure clean detection, run the evasion on
/// every detected attack sample, compare with a random-perturbation
/// control of the same budget.
EvasionOutcome run_evasion_experiment(
    std::uint64_t seed, const EvasionConfig& config = EvasionConfig{});

}  // namespace intox::innet
