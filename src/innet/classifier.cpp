#include "innet/classifier.hpp"

#include <algorithm>

namespace intox::innet {

Features extract_features(const net::Packet& pkt) {
  Features f{};
  f[0] = static_cast<std::int32_t>(pkt.payload_bytes / 16);  // 0..91
  f[1] = pkt.ttl;                                            // 0..255
  const auto tuple = pkt.five_tuple();
  f[2] = tuple.src_port >> 8;
  f[3] = tuple.dst_port >> 8;
  f[4] = static_cast<std::int32_t>(tuple.proto);
  if (const auto* t = pkt.tcp()) {
    f[5] = (t->syn ? 1 : 0) + (t->ack_flag ? 2 : 0) + (t->fin ? 4 : 0) +
           (t->rst ? 8 : 0);
    f[6] = t->window >> 8;
  }
  f[7] = static_cast<std::int32_t>(pkt.dst.value() & 0xff);  // last octet
  return f;
}

std::vector<Sample> make_dataset(std::size_t per_class, std::uint64_t seed) {
  sim::Rng rng{seed};
  std::vector<Sample> data;
  data.reserve(2 * per_class);

  // The two classes overlap per-feature (as real traffic does); the
  // signal lives in the *combination* of packet size, destination-port
  // spread, flags, and advertised window. That keeps accuracy realistic
  // (>90%, not 100%) and places the decision boundary within reach of
  // small header tweaks — the adversarial-example surface.
  for (std::size_t i = 0; i < per_class; ++i) {
    // Benign: mostly full segments towards low ports, ACK-dominated,
    // healthy windows.
    Sample s;
    s.label = 0;
    s.x[0] = static_cast<std::int32_t>(rng.uniform_int(4, 91));
    s.x[1] = static_cast<std::int32_t>(rng.uniform_int(32, 255));
    s.x[2] = static_cast<std::int32_t>(rng.uniform_int(4, 255));
    s.x[3] = static_cast<std::int32_t>(rng.uniform_int(0, 40));
    s.x[4] = 6;
    s.x[5] = rng.bernoulli(0.85) ? 2 : 1;  // mostly ACK, some SYN
    s.x[6] = static_cast<std::int32_t>(rng.uniform_int(40, 255));
    s.x[7] = static_cast<std::int32_t>(rng.uniform_int(0, 255));
    data.push_back(s);
  }
  for (std::size_t i = 0; i < per_class; ++i) {
    // Attack: smaller probes, destination ports sprayed across the whole
    // range, SYN/RST-heavy, smaller windows — each feature overlapping
    // the benign range.
    Sample s;
    s.label = 1;
    s.x[0] = static_cast<std::int32_t>(rng.uniform_int(0, 24));
    s.x[1] = static_cast<std::int32_t>(rng.uniform_int(32, 255));
    s.x[2] = static_cast<std::int32_t>(rng.uniform_int(0, 255));
    s.x[3] = static_cast<std::int32_t>(rng.uniform_int(0, 255));
    s.x[4] = 6;
    s.x[5] = rng.bernoulli(0.7) ? 1 : 9;  // SYN / RST
    s.x[6] = static_cast<std::int32_t>(rng.uniform_int(0, 80));
    s.x[7] = static_cast<std::int32_t>(rng.uniform_int(0, 255));
    data.push_back(s);
  }
  rng.shuffle(data);
  return data;
}

namespace {

double accuracy(const Mlp& model, const std::vector<Sample>& data) {
  std::size_t ok = 0;
  for (const auto& s : data) ok += model.predict(s.x) == s.label;
  return static_cast<double>(ok) / static_cast<double>(data.size());
}

double accuracy(const QuantizedMlp& model, const std::vector<Sample>& data) {
  std::size_t ok = 0;
  for (const auto& s : data) ok += model.predict(s.x) == s.label;
  return static_cast<double>(ok) / static_cast<double>(data.size());
}

}  // namespace

TrainedClassifier train_classifier(std::uint64_t seed, std::size_t per_class,
                                   int epochs, double lr) {
  auto train = make_dataset(per_class, seed);
  const auto test = make_dataset(per_class / 2, seed + 1);

  TrainedClassifier out{Mlp{seed + 2}, QuantizedMlp::quantize(Mlp{seed + 2})};
  sim::Rng rng{seed + 3};
  for (int e = 0; e < epochs; ++e) {
    rng.shuffle(train);
    for (const auto& s : train) out.model.train_step(s.x, s.label, lr);
  }
  out.train_accuracy = accuracy(out.model, train);
  out.test_accuracy = accuracy(out.model, test);
  out.deployed = QuantizedMlp::quantize(out.model);
  out.quantized_test_accuracy = accuracy(out.deployed, test);
  return out;
}

}  // namespace intox::innet
