// PCC Allegro sender: the online-learning rate-control loop.
//
// The sender paces UDP-like data packets at its current rate and slices
// time into monitor intervals (MIs). It learns by A/B experiment:
//
//  * Starting: double the rate every MI while utility keeps rising.
//  * Decision: four MIs — two at rate*(1+ε), two at rate*(1−ε), in
//    random order. If both +ε trials beat both −ε trials, move up; if
//    both lose, move down; otherwise the experiment is inconclusive and
//    ε grows by ε_min, capped at ε_max = 5%.
//  * Adjusting: keep moving in the decided direction with growing steps
//    while utility improves; on regression, return to Decision.
//
// Loss per MI is measured from ACKs after a grace period. This is the
// loop the §4.2 MitM neutralizes by equalizing what the two experiment
// arms observe.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "pcc/monitor.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace intox::pcc {

class PccSender {
 public:
  using PacketSink = std::function<void(net::Packet)>;

  PccSender(sim::Scheduler& sched, const PccConfig& config,
            net::FiveTuple flow, PacketSink sink);
  /// Publishes lifetime totals into the obs metrics registry: decision
  /// and inconclusive-experiment counts, per-MI normalized utility and
  /// loss histograms, and the rate-oscillation amplitude (the §4.2
  /// attack signal) as a high-water gauge.
  ~PccSender();

  /// Starts pacing packets and running monitor intervals.
  void start();
  void stop();

  /// Feed an ACK for sequence number `seq` (from the receiver path).
  void on_ack(std::uint32_t seq, sim::Time now);

  [[nodiscard]] double rate_bps() const { return rate_bps_; }
  [[nodiscard]] double epsilon() const { return epsilon_; }
  [[nodiscard]] double smoothed_rtt_seconds() const { return srtt_s_; }
  /// Rate at the start of every MI — the §4.2 oscillation signal.
  [[nodiscard]] const sim::TimeSeries& rate_series() const {
    return rate_series_;
  }
  [[nodiscard]] const sim::TimeSeries& utility_series() const {
    return utility_series_;
  }
  [[nodiscard]] const std::vector<MonitorInterval>& history() const {
    return history_;
  }
  [[nodiscard]] std::uint64_t inconclusive_experiments() const {
    return inconclusive_;
  }
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }

  /// Side-channel for the *omniscient* attacker model: exposes the
  /// current MI phase. A real MitM estimates this from timing; see
  /// PccMitm's estimator mode.
  [[nodiscard]] MiPhase current_phase() const { return current_.phase; }
  [[nodiscard]] double current_mi_rate() const { return current_.rate_bps; }

  /// Per-experiment summary, delivered to the §5 PCC supervisor as each
  /// 2+2 experiment resolves.
  struct ExperimentOutcome {
    double up_loss_mean = 0.0;
    double down_loss_mean = 0.0;
    /// Loss of the most recent hold (kWaiting) interval, i.e. the path's
    /// baseline loss outside experiments (-1 if none observed yet).
    double hold_loss = -1.0;
    bool conclusive = false;
    double epsilon = 0.0;
    sim::Time when = 0;
  };
  using ExperimentObserver = std::function<void(const ExperimentOutcome&)>;
  void set_experiment_observer(ExperimentObserver obs) {
    observer_ = std::move(obs);
  }
  /// Clamps the epsilon escalation ceiling at runtime (supervisor
  /// action: "limit the amplitude of the oscillations by decreasing the
  /// range of epsilon").
  void set_epsilon_cap(double cap) {
    epsilon_cap_ = cap;
    epsilon_ = std::min(epsilon_, cap);
  }
  [[nodiscard]] double epsilon_cap() const { return epsilon_cap_; }

 private:
  enum class State { kStarting, kDecision, kAdjusting };

  void begin_mi(sim::Time now);
  void finish_mi(MonitorInterval mi);   // called after the grace period
  void evaluate(const MonitorInterval& mi, double utility_value);
  void send_packet();
  void schedule_next_send();
  double mi_duration_seconds();
  void enter_decision(sim::Time now);
  std::vector<MiPhase> make_experiment_order();

  sim::Scheduler& sched_;
  PccConfig config_;
  net::FiveTuple flow_;
  PacketSink sink_;
  sim::Rng rng_;

  State state_ = State::kStarting;
  double rate_bps_;
  double base_rate_bps_;  // rate around which the experiment runs
  double epsilon_;
  int adjust_step_ = 1;
  int direction_ = 0;  // +1 / -1 during kAdjusting
  double prev_utility_ = 0.0;
  bool have_prev_utility_ = false;

  // Decision experiment bookkeeping.
  std::vector<MiPhase> experiment_order_;
  std::size_t experiment_index_ = 0;
  bool need_new_experiment_ = true;
  std::vector<double> up_utilities_;
  std::vector<double> down_utilities_;
  std::vector<double> up_losses_;
  std::vector<double> down_losses_;
  double last_hold_loss_ = -1.0;
  ExperimentObserver observer_;
  double epsilon_cap_;

  MonitorInterval current_;
  std::uint64_t next_mi_id_ = 1;
  std::uint32_t next_seq_ = 1;
  /// Per-packet send records in a flat power-of-two ring indexed by
  /// seq & (kSendRingSize - 1). Sequence numbers are consecutive, so
  /// the ring always holds the most recent kSendRingSize sends; a
  /// record is cleared when its ACK arrives. Records of lost packets
  /// are overwritten one ring revolution (~32k packets) later — beyond
  /// any simulated ACK latency, so lookups behave exactly like the old
  /// per-seq hash maps (which additionally leaked lost-packet entries
  /// forever).
  struct SendRecord {
    std::uint32_t seq = 0;  // 0 = empty (sequence numbers start at 1)
    std::uint64_t mi_id = 0;
    sim::Time sent_at = 0;
  };
  static constexpr std::uint32_t kSendRingSize = 1u << 15;
  std::vector<SendRecord> send_ring_ = std::vector<SendRecord>(kSendRingSize);
  /// MIs closed but awaiting their ACK grace period — a handful at a
  /// time, so a flat vector with linear scans beats hashing.
  std::vector<MonitorInterval> pending_mis_;

  double srtt_s_;
  bool running_ = false;
  sim::Scheduler::EventId send_event_;
  sim::Scheduler::EventId mi_event_;

  sim::TimeSeries rate_series_;
  sim::TimeSeries utility_series_;
  std::vector<MonitorInterval> history_;
  std::uint64_t inconclusive_ = 0;
  std::uint64_t decisions_ = 0;
};

}  // namespace intox::pcc
