#include "pcc/utility.hpp"

#include <algorithm>
#include <cmath>

namespace intox::pcc {

double utility(double rate_bps, double loss, const UtilityParams& params) {
  loss = std::clamp(loss, 0.0, 1.0);
  const double throughput = rate_bps * (1.0 - loss);
  const double sigmoid =
      1.0 / (1.0 + std::exp(params.alpha * (loss - params.loss_knee)));
  return throughput * sigmoid - rate_bps * loss;
}

double loss_for_target_utility(double rate_bps, double target_utility,
                               const UtilityParams& params) {
  if (utility(rate_bps, 0.0, params) <= target_utility) return 0.0;
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (utility(rate_bps, mid, params) > target_utility) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace intox::pcc
