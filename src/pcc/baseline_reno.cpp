#include "pcc/baseline_reno.hpp"

#include <algorithm>

namespace intox::pcc {

RenoSender::RenoSender(sim::Scheduler& sched, const RenoConfig& config,
                       net::FiveTuple flow, PacketSink sink)
    : sched_(sched), config_(config), flow_(flow), sink_(std::move(sink)),
      rate_bps_(config.initial_rate_bps),
      srtt_s_(sim::to_seconds(config.initial_rtt)) {}

void RenoSender::start() {
  running_ = true;
  rate_series_.record(sched_.now(), rate_bps_);
  send_packet();
  epoch_event_ = sched_.schedule_after(
      sim::seconds(srtt_s_ * config_.epoch_rtt_multiplier),
      [this] { close_epoch(); });
}

void RenoSender::stop() {
  running_ = false;
  if (send_event_.valid()) sched_.cancel(send_event_);
  if (epoch_event_.valid()) sched_.cancel(epoch_event_);
}

void RenoSender::send_packet() {
  if (!running_) return;
  net::Packet p;
  p.src = flow_.src;
  p.dst = flow_.dst;
  net::UdpHeader u;
  u.src_port = flow_.src_port;
  u.dst_port = flow_.dst_port;
  p.l4 = u;
  p.payload_bytes = config_.packet_payload_bytes;
  const std::uint32_t seq = next_seq_++;
  p.flow_tag = seq;
  in_flight_[seq] = sched_.now();
  ++epoch_sent_;
  sink_(std::move(p));

  const double bits =
      static_cast<double>(config_.packet_payload_bytes + 28) * 8.0;
  send_event_ =
      sched_.schedule_after(sim::seconds(bits / rate_bps_),
                            [this] { send_packet(); });
}

void RenoSender::on_ack(std::uint32_t seq, sim::Time now) {
  auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;
  srtt_s_ = 0.9 * srtt_s_ + 0.1 * sim::to_seconds(now - it->second);
  in_flight_.erase(it);
  ++epoch_acked_;
}

void RenoSender::close_epoch() {
  if (!running_) return;
  // ACKs observed this epoch answer the *previous* epoch's sends (one
  // RTT in flight); compare against that cohort, with 2% slack for
  // boundary jitter. Fewer ACKs than expected => loss => multiplicative
  // decrease; otherwise additive increase of one segment per RTT.
  if (prev_epoch_sent_ > 0 &&
      epoch_acked_ + prev_epoch_sent_ / 50 < prev_epoch_sent_) {
    rate_bps_ = std::max(rate_bps_ / 2.0, config_.min_rate_bps);
    slow_start_ = false;
  } else if (slow_start_) {
    rate_bps_ = std::min(rate_bps_ * 2.0, config_.max_rate_bps);
  } else {
    const double mss_bits =
        static_cast<double>(config_.packet_payload_bytes + 28) * 8.0;
    rate_bps_ = std::min(rate_bps_ + mss_bits / srtt_s_, config_.max_rate_bps);
  }
  rate_series_.record(sched_.now(), rate_bps_);
  prev_epoch_sent_ = epoch_sent_;
  epoch_sent_ = 0;
  epoch_acked_ = 0;
  // Anything still unacked from older epochs is forgotten lazily.
  epoch_event_ = sched_.schedule_after(
      sim::seconds(srtt_s_ * config_.epoch_rtt_multiplier),
      [this] { close_epoch(); });
}

}  // namespace intox::pcc
