// Monitor-interval bookkeeping and PCC configuration.
#pragma once

#include <cstdint>

#include "pcc/utility.hpp"
#include "sim/time.hpp"

namespace intox::pcc {

struct PccConfig {
  double initial_rate_bps = 2e6;
  double min_rate_bps = 0.25e6;
  double max_rate_bps = 1e9;
  /// Experiment granularity: ε starts at epsilon_min and, on inconclusive
  /// experiments, grows by epsilon_min up to epsilon_max ("a threshold of
  /// 5%" — the bound the §4.2 attacker drives PCC to oscillate at).
  double epsilon_min = 0.01;
  double epsilon_max = 0.05;
  /// Monitor-interval length as a multiple of the smoothed RTT; PCC
  /// randomizes in [lo, hi) to resist (honest) periodic patterns.
  double mi_rtt_lo = 1.7;
  double mi_rtt_hi = 2.2;
  /// Grace period after an MI ends before it is evaluated (lets ACKs of
  /// in-flight packets arrive): multiple of smoothed RTT.
  double mi_grace_rtt = 1.2;
  std::uint32_t packet_payload_bytes = 1460;
  sim::Duration initial_rtt = sim::millis(50);
  UtilityParams utility_params{};
  std::uint64_t seed = 1;
};

enum class MiPhase {
  kStarting,    // doubling phase
  kUp,          // decision experiment, rate * (1 + eps)
  kDown,        // decision experiment, rate * (1 - eps)
  kAdjusting,   // moving in the decided direction
  kWaiting,     // experiment finished sending, results still in flight
};

struct MonitorInterval {
  std::uint64_t id = 0;
  MiPhase phase = MiPhase::kStarting;
  double rate_bps = 0.0;
  sim::Time start = 0;
  sim::Time end = 0;
  std::uint64_t sent = 0;
  std::uint64_t acked = 0;
  bool evaluated = false;

  [[nodiscard]] double loss() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(sent - acked) /
                           static_cast<double>(sent);
  }
};

}  // namespace intox::pcc
