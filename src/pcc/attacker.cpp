#include "pcc/attacker.hpp"

#include <algorithm>

#include "obs/flightrec.hpp"
#include "pcc/utility.hpp"

namespace intox::pcc {

PccMitm::PccMitm(sim::Scheduler& sched, const PccMitmConfig& config,
                 SenderResolver resolver)
    : sched_(sched), config_(config), resolver_(std::move(resolver)),
      rng_(config.seed) {}

void PccMitm::attach(sim::Link& link) {
  link.set_tap([this](net::Packet& pkt) { return on_packet(pkt); });
}

sim::TapAction PccMitm::on_packet(net::Packet& pkt) {
  ++observed_;
  const sim::TapAction action = config_.mode == PccMitmConfig::Mode::kOmniscient
                                    ? omniscient(pkt)
                                    : shaper(pkt);
  if (action == sim::TapAction::kDrop) {
    ++dropped_;
    obs::flightrec_record(
        obs::FrType::kAttackerAction,
        static_cast<std::uint64_t>(sched_.now()),
        static_cast<std::uint64_t>(obs::FrAttackerKind::kPccMitmDrop),
        config_.mode == PccMitmConfig::Mode::kOmniscient ? 0 : 1, dropped_);
  }
  return action;
}

sim::TapAction PccMitm::omniscient(const net::Packet& pkt) {
  const PccSender* sender = resolver_(pkt);
  if (!sender) return sim::TapAction::kForward;
  const MiPhase phase = sender->current_phase();
  const double rate = sender->current_mi_rate();
  const double eps = sender->epsilon();

  double drop_prob = 0.0;
  switch (phase) {
    case MiPhase::kUp:
    case MiPhase::kDown: {
      // Rig *both* experiment arms to one common target utility, chosen
      // safely below what either arm would observe cleanly, by inverting
      // the (public) utility function per arm. The realized utilities
      // then differ only by sampling noise, so the experiment's winner
      // is random: mostly inconclusive, and epsilon escalates to its 5%
      // cap — the paper's oscillation.
      const double base = phase == MiPhase::kUp ? rate / (1.0 + eps)
                                                : rate / (1.0 - eps);
      const double target = utility(base * (1.0 - 2.0 * eps), 0.0);
      drop_prob = loss_for_target_utility(rate, target);
      break;
    }
    case MiPhase::kWaiting:
      break;  // hold intervals are not part of any experiment
    case MiPhase::kAdjusting:
      // Any move away from the base gets punished so utility regresses
      // and the sender falls back into (rigged) experiments.
      drop_prob = loss_for_target_utility(rate, utility(rate * 0.97, 0.0));
      break;
    case MiPhase::kStarting:
      if (config_.pin_rate_bps > 0.0 && rate > config_.pin_rate_bps) {
        drop_prob =
            loss_for_target_utility(rate, utility(config_.pin_rate_bps, 0.0));
      }
      break;
  }
  return (drop_prob > 0.0 && rng_.bernoulli(drop_prob))
             ? sim::TapAction::kDrop
             : sim::TapAction::kForward;
}

sim::TapAction PccMitm::shaper(const net::Packet& pkt) {
  const sim::Time now = sched_.now();
  if (now - window_start_ >= config_.window) {
    const double elapsed_s = sim::to_seconds(now - window_start_);
    if (elapsed_s > 0.0 && window_bytes_ > 0.0) {
      // Baseline tracks the *offered* rate (everything the attacker
      // observes, dropped or not): the estimate follows the flow's base
      // rate instead of chasing its own censoring downwards.
      const double rate = window_bytes_ * 8.0 / elapsed_s;
      baseline_bps_ = baseline_bps_ <= 0.0
                          ? rate
                          : (1.0 - config_.baseline_gain) * baseline_bps_ +
                                config_.baseline_gain * rate;
    }
    window_bytes_ = 0.0;
    window_start_ = now;
  }
  // Shave only the excess above the learned baseline: each window has a
  // byte budget of baseline*window; the packet that crosses the boundary
  // still passes (packet-granularity slack), everything beyond drops.
  // The +eps probe's extra packets are exactly what exceeds the budget.
  const double budget_bytes =
      baseline_bps_ * sim::to_seconds(config_.window) / 8.0;
  const bool over_budget =
      baseline_bps_ > 0.0 && window_bytes_ > budget_bytes;
  window_bytes_ += pkt.size_bytes();
  return over_budget ? sim::TapAction::kDrop : sim::TapAction::kForward;
}

}  // namespace intox::pcc
