// PCC receiver: ACKs every data packet back towards the sender.
#pragma once

#include <functional>

#include "net/packet.hpp"

namespace intox::pcc {

class PccReceiver {
 public:
  using AckSink = std::function<void(net::Packet)>;

  explicit PccReceiver(AckSink sink) : sink_(std::move(sink)) {}

  /// Handles one data packet: emits an ACK carrying the data sequence
  /// number (in flow_tag, mirroring the sender's framing).
  void on_data(const net::Packet& data);

  [[nodiscard]] std::uint64_t received() const { return received_; }

 private:
  AckSink sink_;
  std::uint64_t received_ = 0;
};

}  // namespace intox::pcc
