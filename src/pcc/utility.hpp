// PCC Allegro's default ("safe") utility function (Dong et al., NSDI'15):
//
//   u(x, L) = T * Sigmoid_alpha(L - 0.05) - x * L,    T = x * (1 - L)
//   Sigmoid_alpha(y) = 1 / (1 + e^(alpha * y)),       alpha = 100
//
// x is the sending rate, L the observed loss rate in a monitor interval.
// The sigmoid makes utility crash once loss exceeds 5%, bounding
// equilibrium loss.
//
// The §4.2 attacker knows this function (Kerckhoff) and uses
// `loss_for_target_utility` to compute exactly how much to drop in the
// higher-rate experiment phase so both phases look equally good.
#pragma once

namespace intox::pcc {

struct UtilityParams {
  double alpha = 100.0;
  double loss_knee = 0.05;  // the 5% threshold inside the sigmoid
};

/// Utility of sending at rate x (bps) with loss fraction L in [0, 1].
double utility(double rate_bps, double loss,
               const UtilityParams& params = UtilityParams{});

/// Smallest loss L in [0, 1] such that utility(rate, L) <= target, or
/// 1.0 if even total loss cannot reach the target (it always can, since
/// u(x, 1) <= 0 <= u(x, 0) for x > 0 — kept for safety). Monotonicity of
/// u in L makes this a bisection.
double loss_for_target_utility(double rate_bps, double target_utility,
                               const UtilityParams& params = UtilityParams{});

}  // namespace intox::pcc
