#include "pcc/experiment.hpp"

#include <cmath>
#include <memory>

#include "pcc/receiver.hpp"
#include "sim/link.hpp"

namespace intox::pcc {

PccExperimentConfig default_oscillation_config() {
  PccExperimentConfig cfg;
  cfg.duration = sim::seconds(90);
  cfg.seed = 4;
  return cfg;
}

PccExperimentConfig default_fleet_config(std::size_t flows, bool attack) {
  PccExperimentConfig cfg;
  cfg.flows = flows;
  cfg.bottleneck_bps = 10e6 * static_cast<double>(flows);
  cfg.queue_limit_bytes = 64 * 1024 * static_cast<std::uint32_t>(flows);
  cfg.red_max_bytes = cfg.queue_limit_bytes;
  cfg.duration = sim::seconds(50);
  cfg.seed = 9;
  cfg.attack = attack;
  return cfg;
}

PccExperimentResult run_pcc_experiment(const PccExperimentConfig& config) {
  sim::Scheduler sched;

  // Destination-side accounting: delivered bytes per 100 ms bin.
  PccExperimentResult result;
  std::uint64_t bin_bytes = 0;
  const sim::Duration bin = sim::millis(100);
  std::function<void()> flush_bin = [&] {
    result.delivered_bps.record(sched.now(),
                                static_cast<double>(bin_bytes) * 8.0 /
                                    sim::to_seconds(bin));
    bin_bytes = 0;
    if (sched.now() < config.duration) sched.schedule_after(bin, flush_bin);
  };
  sched.schedule_after(bin, flush_bin);

  // Reverse path: one clean high-capacity link carrying all ACKs back; a
  // dispatcher hands each ACK to its sender by destination port.
  std::vector<std::unique_ptr<PccSender>> pcc_senders;
  std::vector<std::unique_ptr<RenoSender>> reno_senders;
  sim::LinkConfig reverse_cfg;
  reverse_cfg.rate_bps = 10e9;
  reverse_cfg.prop_delay = config.one_way_delay;
  sim::Link reverse{sched, reverse_cfg, [&](net::Packet ack) {
                      const auto* u = ack.udp();
                      if (!u || u->dst_port < 10000) return;
                      const std::size_t idx =
                          static_cast<std::size_t>(u->dst_port - 10000);
                      const auto seq = static_cast<std::uint32_t>(ack.flow_tag);
                      if (config.kind == SenderKind::kPcc) {
                        if (idx < pcc_senders.size()) {
                          pcc_senders[idx]->on_ack(seq, sched.now());
                        }
                      } else if (idx < reno_senders.size()) {
                        reno_senders[idx]->on_ack(seq, sched.now());
                      }
                    }};

  PccReceiver receiver{
      [&](net::Packet ack) { reverse.transmit(std::move(ack)); }};

  // Forward path: shared bottleneck into the receiver.
  sim::LinkConfig fwd_cfg;
  fwd_cfg.rate_bps = config.bottleneck_bps;
  fwd_cfg.prop_delay = config.one_way_delay;
  fwd_cfg.queue_limit_bytes = config.queue_limit_bytes;
  fwd_cfg.red_min_bytes = config.red_min_bytes;
  fwd_cfg.red_max_bytes = config.red_max_bytes;
  fwd_cfg.red_max_prob = config.red_max_prob;
  fwd_cfg.red_seed = config.seed ^ 0x9e3779b9ULL;
  sim::Link bottleneck{sched, fwd_cfg, [&](net::Packet data) {
                         bin_bytes += data.size_bytes();
                         receiver.on_data(data);
                       }};

  auto flow_tuple = [&](std::size_t i) {
    net::FiveTuple t;
    t.src = net::Ipv4Addr{172, 16, static_cast<std::uint8_t>(i >> 8),
                          static_cast<std::uint8_t>(i & 0xff)};
    t.dst = net::Ipv4Addr{10, 0, 0, 1};
    t.src_port = static_cast<std::uint16_t>(10000 + i);
    t.dst_port = 443;
    t.proto = net::IpProto::kUdp;
    return t;
  };

  auto into_bottleneck = [&](net::Packet p) {
    bottleneck.transmit(std::move(p));
  };

  for (std::size_t i = 0; i < config.flows; ++i) {
    if (config.kind == SenderKind::kPcc) {
      PccConfig pc = config.pcc;
      pc.seed = config.seed * 7919 + i;
      pcc_senders.push_back(std::make_unique<PccSender>(
          sched, pc, flow_tuple(i), into_bottleneck));
    } else {
      reno_senders.push_back(std::make_unique<RenoSender>(
          sched, config.reno, flow_tuple(i), into_bottleneck));
    }
  }

  // Attacker on the bottleneck. In omniscient mode it keeps one tracker
  // per flow, resolved by source port.
  std::unique_ptr<PccMitm> mitm;
  if (config.attack) {
    auto resolver = [&](const net::Packet& p) -> const PccSender* {
      const auto* u = p.udp();
      if (!u || u->src_port < 10000) return nullptr;
      const std::size_t idx = static_cast<std::size_t>(u->src_port - 10000);
      return idx < pcc_senders.size() ? pcc_senders[idx].get() : nullptr;
    };
    mitm = std::make_unique<PccMitm>(sched, config.mitm,
                                     PccMitm::SenderResolver{resolver});
    mitm->attach(bottleneck);
  }

  for (auto& s : pcc_senders) s->start();
  for (auto& s : reno_senders) s->start();
  sched.run_until(config.duration);
  for (auto& s : pcc_senders) s->stop();
  for (auto& s : reno_senders) s->stop();

  // Flow-0 rate series and late-window statistics.
  const sim::TimeSeries& rate_series =
      config.kind == SenderKind::kPcc ? pcc_senders[0]->rate_series()
                                      : reno_senders[0]->rate_series();
  result.rate = rate_series;
  const sim::Time from = config.duration * 2 / 3;
  sim::RunningStats rate_stats;
  for (const auto& [t, v] : rate_series.points()) {
    if (t >= from) rate_stats.add(v);
  }
  result.mean_rate_bps = rate_stats.mean();
  result.rate_cv =
      rate_stats.mean() > 0 ? rate_stats.stddev() / rate_stats.mean() : 0.0;
  result.osc_amplitude =
      rate_stats.mean() > 0
          ? (rate_stats.max() - rate_stats.min()) / (2.0 * rate_stats.mean())
          : 0.0;

  sim::RunningStats delivered_stats;
  for (const auto& [t, v] : result.delivered_bps.points()) {
    if (t >= from) delivered_stats.add(v);
  }
  result.delivered_cv = delivered_stats.mean() > 0
                            ? delivered_stats.stddev() / delivered_stats.mean()
                            : 0.0;

  if (config.kind == SenderKind::kPcc) {
    result.inconclusive = pcc_senders[0]->inconclusive_experiments();
    result.decisions = pcc_senders[0]->decisions();
    sim::RunningStats u;
    for (const auto& [t, v] : pcc_senders[0]->utility_series().points()) {
      if (t >= from) u.add(v);
    }
    result.mean_utility = u.mean();
  }
  if (mitm) {
    result.attacker_dropped = mitm->dropped();
    result.attacker_observed = mitm->observed();
  }
  return result;
}

}  // namespace intox::pcc
