// The §4.2 MitM attacker against PCC.
//
// "Knowing the utility function, the attacker can drop packets in the +ε
// and −ε phases, such that PCC is unable to see a large-enough utility
// difference. PCC then repeats its experiment with increasing ε until a
// threshold of 5%. Thus, the attacker can cause PCC flows to fluctuate
// by ±5%, without allowing them to converge to the right rate."
//
// Two attacker models are provided:
//
//  * kOmniscient — reads the sender's current experiment phase directly
//    (an upper bound on attacker knowledge; per Kerckhoff the attacker
//    already knows the algorithm and utility function, this just skips
//    the timing-estimation step). In +ε intervals it drops exactly
//    enough, computed by inverting the utility function, to pull the +ε
//    arm's utility down to the −ε arm's.
//
//  * kShaper — a realistic in-path attacker that estimates the flow's
//    baseline rate from packet timing (the monitor interval is
//    observable from the RTT, which "is easy to track in the data
//    plane") and drops whatever exceeds it. The experiment arms then
//    both observe ~the baseline throughput, neutralizing the A/B signal.
//
// Both install as a sim::Link tap, i.e. they have exactly the §2.1 MitM
// privileges: observe, drop.
#pragma once

#include <cstdint>

#include "pcc/sender.hpp"
#include "sim/link.hpp"

namespace intox::pcc {

struct PccMitmConfig {
  enum class Mode { kOmniscient, kShaper };
  Mode mode = Mode::kOmniscient;
  /// Omniscient mode: also suppress the Starting phase's exponential
  /// growth above this rate (0 disables). Models the attacker keeping the
  /// flow from ever probing past a chosen operating point.
  double pin_rate_bps = 0.0;
  /// Shaper mode: EWMA gain for the baseline-rate estimate.
  double baseline_gain = 0.05;
  /// Shaper mode: rate-estimation window.
  sim::Duration window = sim::millis(30);
  std::uint64_t seed = 99;
};

class PccMitm {
 public:
  /// Maps a packet to the PCC sender state the attacker tracks for it
  /// (omniscient mode). The attacker maintains one logical tracker per
  /// flow, which a data-plane implementation would key by 5-tuple.
  using SenderResolver = std::function<const PccSender*(const net::Packet&)>;

  PccMitm(sim::Scheduler& sched, const PccMitmConfig& config,
          SenderResolver resolver);

  /// Convenience: track a single flow (nullptr allowed in kShaper mode).
  PccMitm(sim::Scheduler& sched, const PccMitmConfig& config,
          const PccSender* sender)
      : PccMitm(sched, config,
                [sender](const net::Packet&) { return sender; }) {}

  /// Installs the attacker on a link (the compromised hop).
  void attach(sim::Link& link);

  [[nodiscard]] std::uint64_t observed() const { return observed_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  sim::TapAction on_packet(net::Packet& pkt);
  sim::TapAction omniscient(const net::Packet& pkt);
  sim::TapAction shaper(const net::Packet& pkt);

  sim::Scheduler& sched_;
  PccMitmConfig config_;
  SenderResolver resolver_;
  sim::Rng rng_;
  std::uint64_t observed_ = 0;
  std::uint64_t dropped_ = 0;

  // Shaper state.
  double baseline_bps_ = 0.0;
  double window_bytes_ = 0.0;
  sim::Time window_start_ = 0;
};

}  // namespace intox::pcc
