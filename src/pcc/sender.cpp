#include "pcc/sender.hpp"

#include <algorithm>
#include <cmath>

#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "pcc/utility.hpp"

namespace intox::pcc {

namespace {

/// Peak-to-trough swing of the recorded per-MI rate signal relative to
/// its midpoint — the amplitude the §4.2 MitM drives up and the §5
/// supervisor is meant to bound. 0 for a flat or empty series.
double oscillation_amplitude(const sim::TimeSeries& rates) {
  if (rates.size() < 2) return 0.0;
  double lo = rates.points().front().second, hi = lo;
  for (const auto& [t, v] : rates.points()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double mid = (hi + lo) / 2.0;
  return mid > 0.0 ? (hi - lo) / mid : 0.0;
}

}  // namespace

PccSender::PccSender(sim::Scheduler& sched, const PccConfig& config,
                     net::FiveTuple flow, PacketSink sink)
    : sched_(sched), config_(config), flow_(flow), sink_(std::move(sink)),
      rng_(config.seed), rate_bps_(config.initial_rate_bps),
      base_rate_bps_(config.initial_rate_bps), epsilon_(config.epsilon_min),
      epsilon_cap_(config.epsilon_max),
      srtt_s_(sim::to_seconds(config.initial_rtt)) {}

PccSender::~PccSender() {
  static obs::Counter& decisions =
      obs::Registry::global().counter("pcc.decisions");
  static obs::Counter& inconclusive =
      obs::Registry::global().counter("pcc.inconclusive_experiments");
  static obs::Counter& intervals =
      obs::Registry::global().counter("pcc.monitor_intervals");
  static obs::Gauge& amplitude =
      obs::Registry::global().gauge("pcc.rate_oscillation_amplitude_hwm");
  if (decisions_) decisions.add(decisions_);
  if (inconclusive_) inconclusive.add(inconclusive_);
  if (!history_.empty()) intervals.add(history_.size());
  amplitude.update_max(oscillation_amplitude(rate_series_));
}

void PccSender::start() {
  running_ = true;
  begin_mi(sched_.now());
  schedule_next_send();
}

void PccSender::stop() {
  running_ = false;
  if (send_event_.valid()) sched_.cancel(send_event_);
  if (mi_event_.valid()) sched_.cancel(mi_event_);
}

double PccSender::mi_duration_seconds() {
  return srtt_s_ * rng_.uniform(config_.mi_rtt_lo, config_.mi_rtt_hi);
}

std::vector<MiPhase> PccSender::make_experiment_order() {
  std::vector<MiPhase> order{MiPhase::kUp, MiPhase::kUp, MiPhase::kDown,
                             MiPhase::kDown};
  rng_.shuffle(order);
  return order;
}

void PccSender::begin_mi(sim::Time now) {
  if (!running_) return;

  MiPhase phase = MiPhase::kStarting;
  double rate = rate_bps_;
  switch (state_) {
    case State::kStarting:
      phase = MiPhase::kStarting;
      rate = rate_bps_;
      break;
    case State::kDecision: {
      if (need_new_experiment_) {
        experiment_order_ = make_experiment_order();
        experiment_index_ = 0;
        up_utilities_.clear();
        down_utilities_.clear();
        up_losses_.clear();
        down_losses_.clear();
        need_new_experiment_ = false;
      }
      if (experiment_index_ < experiment_order_.size()) {
        phase = experiment_order_[experiment_index_++];
        const double sign = (phase == MiPhase::kUp) ? 1.0 : -1.0;
        rate = base_rate_bps_ * (1.0 + sign * epsilon_);
      } else {
        // All four probes sent; hold the base rate until their results
        // come back (results lag by the ACK grace period).
        phase = MiPhase::kWaiting;
        rate = base_rate_bps_;
      }
      break;
    }
    case State::kAdjusting:
      phase = MiPhase::kAdjusting;
      rate = rate_bps_;
      break;
  }
  rate = std::clamp(rate, config_.min_rate_bps, config_.max_rate_bps);

  current_ = MonitorInterval{};
  current_.id = next_mi_id_++;
  current_.phase = phase;
  current_.rate_bps = rate;
  current_.start = now;
  const auto dur = sim::seconds(mi_duration_seconds());
  current_.end = now + dur;
  rate_series_.record(now, rate);

  mi_event_ = sched_.schedule_at(current_.end, [this] {
    // Close this MI, park it until the ACK grace period elapses, then
    // evaluate; meanwhile the next MI starts immediately.
    pending_mis_.push_back(current_);
    const auto grace = sim::seconds(srtt_s_ * config_.mi_grace_rtt);
    const std::uint64_t id = current_.id;
    sched_.schedule_after(grace, [this, id] {
      const auto it = std::find_if(
          pending_mis_.begin(), pending_mis_.end(),
          [id](const MonitorInterval& m) { return m.id == id; });
      if (it == pending_mis_.end()) return;
      const MonitorInterval mi = *it;
      pending_mis_.erase(it);
      finish_mi(mi);
    });
    begin_mi(sched_.now());
  });
}

void PccSender::send_packet() {
  if (!running_) return;
  net::Packet p;
  p.src = flow_.src;
  p.dst = flow_.dst;
  net::UdpHeader u;
  u.src_port = flow_.src_port;
  u.dst_port = flow_.dst_port;
  p.l4 = u;
  p.payload_bytes = config_.packet_payload_bytes;
  // Sequence number travels in flow_tag's low bits for simplicity of the
  // UDP framing (PCC runs its own sequencing above UDP).
  const std::uint32_t seq = next_seq_++;
  p.flow_tag = seq;
  send_ring_[seq & (kSendRingSize - 1)] =
      SendRecord{seq, current_.id, sched_.now()};
  ++current_.sent;
  sink_(std::move(p));
  schedule_next_send();
}

void PccSender::schedule_next_send() {
  if (!running_) return;
  const double rate = std::max(current_.rate_bps, config_.min_rate_bps);
  const double bits =
      static_cast<double>(config_.packet_payload_bytes + 28) * 8.0;
  const auto gap = sim::seconds(bits / rate);
  send_event_ = sched_.schedule_after(gap, [this] { send_packet(); });
}

void PccSender::on_ack(std::uint32_t seq, sim::Time now) {
  SendRecord& rec = send_ring_[seq & (kSendRingSize - 1)];
  if (rec.seq != seq) return;  // never sent, overwritten, or already acked
  const double sample = sim::to_seconds(now - rec.sent_at);
  srtt_s_ = 0.9 * srtt_s_ + 0.1 * sample;
  const std::uint64_t mi_id = rec.mi_id;
  rec = SendRecord{};  // duplicate ACKs miss from here on
  if (mi_id == current_.id) {
    ++current_.acked;
    return;
  }
  const auto p = std::find_if(
      pending_mis_.begin(), pending_mis_.end(),
      [mi_id](const MonitorInterval& m) { return m.id == mi_id; });
  if (p != pending_mis_.end()) ++p->acked;
}

void PccSender::finish_mi(MonitorInterval mi) {
  mi.evaluated = true;
  const double u = utility(mi.rate_bps, mi.loss(), config_.utility_params);
  utility_series_.record(mi.end, u);
  history_.push_back(mi);
  // Per-MI observability: utility normalized by rate (u/x lies in
  // [-1, 1] for the Allegro utility, so one histogram fits every rate
  // regime) and the raw loss fraction.
  static obs::HistogramMetric& utility_hist =
      obs::Registry::global().histogram("pcc.mi_utility_norm", -1.0, 1.0, 40);
  static obs::HistogramMetric& loss_hist =
      obs::Registry::global().histogram("pcc.mi_loss", 0.0, 1.0, 20);
  if (mi.rate_bps > 0) utility_hist.observe(u / mi.rate_bps);
  loss_hist.observe(mi.loss());
  evaluate(mi, u);
}

void PccSender::enter_decision(sim::Time) {
  state_ = State::kDecision;
  need_new_experiment_ = true;
}

void PccSender::evaluate(const MonitorInterval& mi, double u) {
  switch (mi.phase) {
    case MiPhase::kStarting: {
      if (have_prev_utility_ && u < prev_utility_) {
        // Overshot: fall back to the last good rate and start learning.
        rate_bps_ = std::max(rate_bps_ / 2.0, config_.min_rate_bps);
        base_rate_bps_ = rate_bps_;
        epsilon_ = config_.epsilon_min;
        enter_decision(mi.end);
      } else if (state_ == State::kStarting) {
        prev_utility_ = u;
        have_prev_utility_ = true;
        rate_bps_ = std::min(rate_bps_ * 2.0, config_.max_rate_bps);
      }
      break;
    }
    case MiPhase::kWaiting:
      last_hold_loss_ = mi.loss();  // baseline path loss between probes
      break;
    case MiPhase::kUp:
      up_utilities_.push_back(u);
      up_losses_.push_back(mi.loss());
      break;
    case MiPhase::kDown:
      down_utilities_.push_back(u);
      down_losses_.push_back(mi.loss());
      break;
    case MiPhase::kAdjusting: {
      if (u < prev_utility_) {
        // Regression: stop moving, go back to experimenting.
        rate_bps_ = base_rate_bps_;
        epsilon_ = config_.epsilon_min;
        adjust_step_ = 1;
        enter_decision(mi.end);
      } else {
        prev_utility_ = u;
        base_rate_bps_ = rate_bps_;
        adjust_step_ = std::min(adjust_step_ + 1, 5);  // bounded acceleration
        // Rate-change amplitude honours the supervisor's epsilon cap too
        // ("limit the amplitude of the oscillations").
        const double step =
            std::min(static_cast<double>(adjust_step_) * config_.epsilon_min,
                     epsilon_cap_);
        rate_bps_ = std::clamp(
            rate_bps_ * (1.0 + static_cast<double>(direction_) * step),
            config_.min_rate_bps, config_.max_rate_bps);
      }
      break;
    }
  }

  // Completed a 2+2 experiment?
  if (state_ == State::kDecision && up_utilities_.size() >= 2 &&
      down_utilities_.size() >= 2) {
    const bool up_wins = up_utilities_[0] > down_utilities_[0] &&
                         up_utilities_[0] > down_utilities_[1] &&
                         up_utilities_[1] > down_utilities_[0] &&
                         up_utilities_[1] > down_utilities_[1];
    const bool down_wins = up_utilities_[0] < down_utilities_[0] &&
                           up_utilities_[0] < down_utilities_[1] &&
                           up_utilities_[1] < down_utilities_[0] &&
                           up_utilities_[1] < down_utilities_[1];
    if (observer_) {
      ExperimentOutcome outcome;
      outcome.up_loss_mean = (up_losses_[0] + up_losses_[1]) / 2.0;
      outcome.down_loss_mean = (down_losses_[0] + down_losses_[1]) / 2.0;
      outcome.hold_loss = last_hold_loss_;
      outcome.conclusive = up_wins || down_wins;
      outcome.epsilon = epsilon_;
      outcome.when = mi.end;
      observer_(outcome);
    }
    up_utilities_.clear();
    down_utilities_.clear();
    up_losses_.clear();
    down_losses_.clear();
    if (up_wins || down_wins) {
      ++decisions_;
      direction_ = up_wins ? 1 : -1;
      state_ = State::kAdjusting;
      adjust_step_ = 1;
      const double old_base_bps = base_rate_bps_;
      rate_bps_ = std::clamp(
          base_rate_bps_ *
              (1.0 + static_cast<double>(direction_) * epsilon_),
          config_.min_rate_bps, config_.max_rate_bps);
      base_rate_bps_ = rate_bps_;
      obs::flightrec_record(obs::FrType::kPccDecision,
                            static_cast<std::uint64_t>(mi.end),
                            up_wins ? 1 : 2,
                            static_cast<std::uint64_t>(old_base_bps),
                            static_cast<std::uint64_t>(rate_bps_));
      prev_utility_ = u;  // seed the adjusting phase with the latest sample
      epsilon_ = config_.epsilon_min;
    } else {
      // Inconclusive: widen the experiment, stay at the base rate. The
      // escalation ceiling is the configured epsilon_max unless the
      // supervisor has clamped it tighter.
      ++inconclusive_;
      epsilon_ = std::min({epsilon_ + config_.epsilon_min,
                           config_.epsilon_max, epsilon_cap_});
      rate_bps_ = base_rate_bps_;
      need_new_experiment_ = true;
      obs::flightrec_record(obs::FrType::kPccDecision,
                            static_cast<std::uint64_t>(mi.end), 0, 0,
                            static_cast<std::uint64_t>(rate_bps_));
    }
  }
}

}  // namespace intox::pcc
