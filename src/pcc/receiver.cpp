#include "pcc/receiver.hpp"

namespace intox::pcc {

void PccReceiver::on_data(const net::Packet& data) {
  ++received_;
  net::Packet ack;
  ack.src = data.dst;
  ack.dst = data.src;
  net::UdpHeader u;
  if (const auto* d = data.udp()) {
    u.src_port = d->dst_port;
    u.dst_port = d->src_port;
  }
  ack.l4 = u;
  ack.payload_bytes = 8;  // ACK framing
  ack.flow_tag = data.flow_tag;
  sink_(std::move(ack));
}

}  // namespace intox::pcc
