// End-to-end PCC experiments (PCC-OSC and PCC-FLEET in DESIGN.md).
//
// Topology: N senders share a bottleneck link into one destination; ACKs
// return on a clean reverse path. The attacker (optional) sits on the
// bottleneck — the classic on-path MitM position.
#pragma once

#include <cstdint>
#include <vector>

#include "pcc/attacker.hpp"
#include "pcc/baseline_reno.hpp"
#include "pcc/monitor.hpp"
#include "sim/stats.hpp"

namespace intox::pcc {

enum class SenderKind { kPcc, kReno };

struct PccExperimentConfig {
  std::size_t flows = 1;
  SenderKind kind = SenderKind::kPcc;
  double bottleneck_bps = 20e6;
  sim::Duration one_way_delay = sim::millis(20);
  std::uint32_t queue_limit_bytes = 64 * 1024;
  /// RED AQM on the bottleneck (enabled by default: a smooth loss ramp is
  /// what lets clean PCC settle; pure drop-tail cliffs force limit cycles
  /// in *any* loss-driven controller and would mask the attack effect).
  std::uint32_t red_min_bytes = 8 * 1024;
  std::uint32_t red_max_bytes = 64 * 1024;
  double red_max_prob = 0.25;
  sim::Duration duration = sim::seconds(120);
  bool attack = false;
  PccMitmConfig mitm{};
  PccConfig pcc{};
  RenoConfig reno{};
  std::uint64_t seed = 1;
};

struct PccExperimentResult {
  /// Flow 0's per-MI sending rate.
  sim::TimeSeries rate;
  /// Aggregate delivered throughput at the destination, 100 ms bins (bps).
  sim::TimeSeries delivered_bps;
  /// Convergence metrics over the last third of the run.
  double mean_rate_bps = 0.0;
  double rate_cv = 0.0;             // coefficient of variation of flow-0 rate
  double osc_amplitude = 0.0;       // (max-min)/(2*mean) of flow-0 rate
  double delivered_cv = 0.0;        // CV of aggregate arrivals (fleet metric)
  double mean_utility = 0.0;        // flow 0 (PCC only)
  std::uint64_t inconclusive = 0;   // flow 0 (PCC only)
  std::uint64_t decisions = 0;      // flow 0 (PCC only)
  std::uint64_t attacker_dropped = 0;
  std::uint64_t attacker_observed = 0;
};

PccExperimentResult run_pcc_experiment(const PccExperimentConfig& config);

/// The oscillation bench/scenario default: a 90 s run seeded for the
/// PCC-OSC table (clean vs MitM variants all derive from this one
/// config, so the comparison is apples-to-apples).
PccExperimentConfig default_oscillation_config();

/// The fleet bench/scenario default for `flows` senders: the bottleneck,
/// queue and RED ceiling scale linearly with the fleet so per-flow fair
/// share stays 10 Mb/s at every fleet size.
PccExperimentConfig default_fleet_config(std::size_t flows, bool attack);

}  // namespace intox::pcc
