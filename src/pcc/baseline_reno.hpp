// TCP-Reno-flavoured AIMD baseline.
//
// PCC's paper (and ours) compares against "hardwired" congestion
// control: additive increase of one segment per RTT, multiplicative
// decrease on loss. Implemented rate-based over the same UDP framing as
// PccSender so both run on identical simulator plumbing, letting the
// benches contrast how the two react to the same adversarial drops.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace intox::pcc {

struct RenoConfig {
  double initial_rate_bps = 2e6;
  double min_rate_bps = 0.25e6;
  double max_rate_bps = 1e9;
  std::uint32_t packet_payload_bytes = 1460;
  sim::Duration initial_rtt = sim::millis(50);
  /// Loss is assessed over fixed epochs of ~1 RTT (a rate-based stand-in
  /// for per-window dupack detection).
  double epoch_rtt_multiplier = 1.0;
};

class RenoSender {
 public:
  using PacketSink = std::function<void(net::Packet)>;

  RenoSender(sim::Scheduler& sched, const RenoConfig& config,
             net::FiveTuple flow, PacketSink sink);

  void start();
  void stop();
  void on_ack(std::uint32_t seq, sim::Time now);

  [[nodiscard]] double rate_bps() const { return rate_bps_; }
  [[nodiscard]] const sim::TimeSeries& rate_series() const {
    return rate_series_;
  }

 private:
  void send_packet();
  void close_epoch();

  sim::Scheduler& sched_;
  RenoConfig config_;
  net::FiveTuple flow_;
  PacketSink sink_;
  double rate_bps_;
  double srtt_s_;
  bool slow_start_ = true;
  bool running_ = false;
  std::uint32_t next_seq_ = 1;
  std::uint64_t epoch_sent_ = 0;
  std::uint64_t epoch_acked_ = 0;
  std::uint64_t prev_epoch_sent_ = 0;
  std::unordered_map<std::uint32_t, sim::Time> in_flight_;
  sim::Scheduler::EventId send_event_;
  sim::Scheduler::EventId epoch_event_;
  sim::TimeSeries rate_series_;
};

}  // namespace intox::pcc
