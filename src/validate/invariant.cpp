#include "validate/invariant.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace intox::validate {

namespace {

InvariantMode default_mode() {
  if (const char* env = std::getenv("INTOX_INVARIANTS")) {
    if (std::strcmp(env, "fatal") == 0) return InvariantMode::kFatal;
    if (std::strcmp(env, "count") == 0) return InvariantMode::kCount;
    if (std::strcmp(env, "throw") == 0) return InvariantMode::kThrow;
  }
#if defined(NDEBUG)
  return InvariantMode::kCount;
#else
  return InvariantMode::kFatal;
#endif
}

std::atomic<InvariantMode> g_mode{default_mode()};
std::atomic<std::uint64_t> g_violations{0};
std::atomic<InvariantObserver> g_observer{nullptr};
std::atomic<InvariantFatalHook> g_fatal_hook{nullptr};
std::mutex g_message_mutex;
// Ring of the last kRecentInvariantMessages messages; g_message_seq
// counts all stored messages, so seq % size is the next slot and the
// newest message lives at (seq - 1) % size. Guarded by g_message_mutex.
std::string g_messages[kRecentInvariantMessages];
std::uint64_t g_message_seq = 0;

}  // namespace

InvariantMode invariant_mode() {
  return g_mode.load(std::memory_order_relaxed);
}

void set_invariant_mode(InvariantMode mode) {
  g_mode.store(mode, std::memory_order_relaxed);
}

std::uint64_t invariant_violations() {
  return g_violations.load(std::memory_order_relaxed);
}

void reset_invariant_violations() {
  g_violations.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_message_mutex);
  for (std::string& m : g_messages) m.clear();
  g_message_seq = 0;
}

std::string last_invariant_message() {
  std::lock_guard<std::mutex> lock(g_message_mutex);
  if (g_message_seq == 0) return "";
  return g_messages[(g_message_seq - 1) % kRecentInvariantMessages];
}

std::vector<std::string> recent_invariant_messages() {
  std::lock_guard<std::mutex> lock(g_message_mutex);
  const std::uint64_t count =
      g_message_seq < kRecentInvariantMessages ? g_message_seq
                                               : kRecentInvariantMessages;
  std::vector<std::string> out;
  out.reserve(count);
  for (std::uint64_t i = g_message_seq - count; i < g_message_seq; ++i) {
    out.push_back(g_messages[i % kRecentInvariantMessages]);
  }
  return out;
}

InvariantObserver set_invariant_observer(InvariantObserver observer) {
  return g_observer.exchange(observer, std::memory_order_acq_rel);
}

InvariantFatalHook set_invariant_fatal_hook(InvariantFatalHook hook) {
  return g_fatal_hook.exchange(hook, std::memory_order_acq_rel);
}

void invariant_failed(const char* file, int line, const char* fmt, ...) {
  char detail[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(detail, sizeof(detail), fmt, args);
  va_end(args);

  std::string message = std::string(file) + ":" + std::to_string(line) +
                        ": invariant violated: " + detail;

  g_violations.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_message_mutex);
    g_messages[g_message_seq % kRecentInvariantMessages] = message;
    ++g_message_seq;
  }
  if (InvariantObserver obs = g_observer.load(std::memory_order_acquire)) {
    obs(file, line, message.c_str());
  }

  switch (g_mode.load(std::memory_order_relaxed)) {
    case InvariantMode::kFatal:
      std::fprintf(stderr, "%s\n", message.c_str());
      if (InvariantFatalHook hook =
              g_fatal_hook.load(std::memory_order_acquire)) {
        hook(message.c_str());
      }
      std::abort();
    case InvariantMode::kThrow:
      throw InvariantError(message);
    case InvariantMode::kCount:
      return;
  }
}

}  // namespace intox::validate
