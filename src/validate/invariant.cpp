#include "validate/invariant.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace intox::validate {

namespace {

InvariantMode default_mode() {
  if (const char* env = std::getenv("INTOX_INVARIANTS")) {
    if (std::strcmp(env, "fatal") == 0) return InvariantMode::kFatal;
    if (std::strcmp(env, "count") == 0) return InvariantMode::kCount;
    if (std::strcmp(env, "throw") == 0) return InvariantMode::kThrow;
  }
#if defined(NDEBUG)
  return InvariantMode::kCount;
#else
  return InvariantMode::kFatal;
#endif
}

std::atomic<InvariantMode> g_mode{default_mode()};
std::atomic<std::uint64_t> g_violations{0};
std::mutex g_message_mutex;
std::string g_last_message;  // guarded by g_message_mutex

}  // namespace

InvariantMode invariant_mode() {
  return g_mode.load(std::memory_order_relaxed);
}

void set_invariant_mode(InvariantMode mode) {
  g_mode.store(mode, std::memory_order_relaxed);
}

std::uint64_t invariant_violations() {
  return g_violations.load(std::memory_order_relaxed);
}

void reset_invariant_violations() {
  g_violations.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_message_mutex);
  g_last_message.clear();
}

std::string last_invariant_message() {
  std::lock_guard<std::mutex> lock(g_message_mutex);
  return g_last_message;
}

void invariant_failed(const char* file, int line, const char* fmt, ...) {
  char detail[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(detail, sizeof(detail), fmt, args);
  va_end(args);

  std::string message = std::string(file) + ":" + std::to_string(line) +
                        ": invariant violated: " + detail;

  g_violations.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_message_mutex);
    g_last_message = message;
  }

  switch (g_mode.load(std::memory_order_relaxed)) {
    case InvariantMode::kFatal:
      std::fprintf(stderr, "%s\n", message.c_str());
      std::abort();
    case InvariantMode::kThrow:
      throw InvariantError(message);
    case InvariantMode::kCount:
      return;
  }
}

}  // namespace intox::validate
