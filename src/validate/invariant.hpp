// Simulation-integrity invariants.
//
// The paper's thesis is that data-driven systems mis-decide when their
// inputs are subtly wrong. Our reproduction has the same exposure
// *internally*: a silently-dropped shard merge or a wrapped checksum
// accumulator corrupts the very statistics the Fig. 2 validation rests
// on. INTOX_INVARIANT turns those silent-failure paths into loud,
// diagnosable errors.
//
// Behavior by mode (see InvariantMode):
//   kFatal — print the violation and abort. Default in Debug builds
//            (the sanitizer presets), so a violated invariant fails the
//            test run immediately.
//   kCount — bump a global counter, record the message, continue on the
//            code's defined degraded path. Default in Release builds
//            (NDEBUG), so bench throughput is unaffected beyond the
//            predicate itself; harnesses assert the counter is zero.
//   kThrow — throw InvariantError. Tests use this (via
//            ScopedInvariantMode) to assert that injected corruption is
//            caught; it also composes with ParallelRunner, which
//            rethrows the first trial exception.
//
// The default can be overridden with the INTOX_INVARIANTS environment
// variable ("fatal", "count", or "throw"), and the checks compile out
// entirely under -DINTOX_INVARIANTS_DISABLED.
//
// Call sites must treat invariant_failed() as possibly returning (kCount
// mode): after raising, continue on a defined degraded path — typically
// the pre-invariant behavior (e.g. skip a mismatched merge).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace intox::validate {

enum class InvariantMode {
  kFatal,  // print + abort
  kCount,  // count + continue
  kThrow,  // throw InvariantError
};

/// Thrown in kThrow mode; `what()` carries file:line and the message.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Current dispatch mode. Initial value: INTOX_INVARIANTS env var if set,
/// else kFatal in Debug builds and kCount under NDEBUG.
InvariantMode invariant_mode();
void set_invariant_mode(InvariantMode mode);

/// Number of violations raised since start / last reset (all modes bump
/// it, including kThrow/kFatal before dispatching).
std::uint64_t invariant_violations();
void reset_invariant_violations();

/// Human-readable "file:line: invariant violated: ..." for the most
/// recent violation; empty if none since the last reset.
std::string last_invariant_message();

/// Bounded history depth of recent_invariant_messages().
inline constexpr std::size_t kRecentInvariantMessages = 16;

/// The last kRecentInvariantMessages violation messages, oldest first.
/// kCount mode used to keep only the newest message, which made the
/// degraded-path history unreadable after the first follow-on failure;
/// run reports and flightrec dumps surface this ring instead.
std::vector<std::string> recent_invariant_messages();

/// Observer invoked on *every* violation, after the counter/ring update
/// and before mode dispatch (so it runs even when kFatal aborts or
/// kThrow unwinds). Used by obs/flightrec to mirror violations into the
/// flight recorder without validate depending back on obs. Must not
/// throw. Returns the previously installed observer (nullptr if none).
using InvariantObserver = void (*)(const char* file, int line,
                                   const char* message);
InvariantObserver set_invariant_observer(InvariantObserver observer);

/// Hook invoked in kFatal mode after the stderr diagnostic and before
/// abort(). obs/flightrec installs its dump-on-failure writer here.
/// Returns the previously installed hook (nullptr if none).
using InvariantFatalHook = void (*)(const char* message);
InvariantFatalHook set_invariant_fatal_hook(InvariantFatalHook hook);

/// Formats and dispatches a violation per the current mode. Returns (to
/// the caller's degraded path) only in kCount mode.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
void invariant_failed(const char* file, int line, const char* fmt, ...);

/// RAII mode override for tests.
class ScopedInvariantMode {
 public:
  explicit ScopedInvariantMode(InvariantMode mode) : prev_(invariant_mode()) {
    set_invariant_mode(mode);
  }
  ~ScopedInvariantMode() { set_invariant_mode(prev_); }
  ScopedInvariantMode(const ScopedInvariantMode&) = delete;
  ScopedInvariantMode& operator=(const ScopedInvariantMode&) = delete;

 private:
  InvariantMode prev_;
};

}  // namespace intox::validate

#if defined(INTOX_INVARIANTS_DISABLED)
#define INTOX_INVARIANT(cond, ...) ((void)0)
#else
/// INTOX_INVARIANT(cond, "fmt", args...) — raises a violation when `cond`
/// is false. The condition is always evaluated exactly once; the format
/// arguments only on failure.
#define INTOX_INVARIANT(cond, ...)                                       \
  do {                                                                   \
    if (!(cond)) [[unlikely]] {                                          \
      ::intox::validate::invariant_failed(__FILE__, __LINE__,            \
                                          __VA_ARGS__);                  \
    }                                                                    \
  } while (0)
#endif
