#include "validate/oracles.hpp"

#include <algorithm>
#include <cmath>

#include "validate/invariant.hpp"

namespace intox::validate {

namespace {

inline std::uint32_t fold16(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffffu) + (sum >> 16);
  return sum;
}

}  // namespace

std::uint32_t reference_checksum_partial(std::span<const std::byte> data,
                                         std::uint32_t initial) {
  std::uint32_t sum = fold16(initial);
  bool high = true;  // big-endian 16-bit words: even offsets are the high byte
  for (std::byte b : data) {
    const auto v = static_cast<std::uint32_t>(static_cast<std::uint8_t>(b));
    sum += high ? (v << 8) : v;
    sum = fold16(sum);
    high = !high;
  }
  return sum;
}

std::uint16_t reference_internet_checksum(std::span<const std::byte> data,
                                          std::uint32_t initial) {
  return static_cast<std::uint16_t>(
      ~reference_checksum_partial(data, initial) & 0xffffu);
}

ExactStats exact_stats(const std::vector<double>& xs) {
  ExactStats out;
  out.n = xs.size();
  if (xs.empty()) return out;
  double sum = 0.0;
  out.min = out.max = xs.front();
  for (double x : xs) {
    sum += x;
    out.min = std::min(out.min, x);
    out.max = std::max(out.max, x);
  }
  out.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double sq = 0.0;
    for (double x : xs) sq += (x - out.mean) * (x - out.mean);
    out.variance = sq / static_cast<double>(xs.size() - 1);
  }
  return out;
}

double exact_quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::uint64_t ReferenceQueue::schedule_at(sim::Time t) {
  if (t < now_) t = now_;
  const std::uint64_t id = next_id_++;
  entries_.push_back(Entry{t, next_seq_++, id});
  return id;
}

bool ReferenceQueue::cancel(std::uint64_t id) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [id](const Entry& e) { return e.id == id; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

std::optional<ReferenceQueue::Fired> ReferenceQueue::pop_next() {
  if (entries_.empty()) return std::nullopt;
  auto it = std::min_element(entries_.begin(), entries_.end(),
                             [](const Entry& a, const Entry& b) {
                               if (a.time != b.time) return a.time < b.time;
                               return a.seq < b.seq;
                             });
  Fired f{it->id, it->time};
  entries_.erase(it);
  return f;
}

std::vector<ReferenceQueue::Fired> ReferenceQueue::run_until(sim::Time t) {
  std::vector<Fired> fired;
  for (;;) {
    auto it = std::min_element(entries_.begin(), entries_.end(),
                               [](const Entry& a, const Entry& b) {
                                 if (a.time != b.time) return a.time < b.time;
                                 return a.seq < b.seq;
                               });
    if (it == entries_.end() || it->time > t) break;
    now_ = it->time;
    fired.push_back(Fired{it->id, it->time});
    entries_.erase(it);
  }
  if (now_ < t) now_ = t;
  return fired;
}

std::vector<ReferenceQueue::Fired> ReferenceQueue::run(std::size_t limit) {
  std::vector<Fired> fired;
  while (fired.size() < limit) {
    auto next = pop_next();
    if (!next) break;
    now_ = next->time;
    fired.push_back(*next);
  }
  return fired;
}

void ReferenceQueue::schedule_at(sim::Time t, std::uint64_t id) {
  if (t < now_) t = now_;
  entries_.push_back(Entry{t, next_seq_++, id});
}

void SchedulerOracle::check_pending(std::size_t pending, const char* op) {
  INTOX_INVARIANT(ref_.pending() == pending,
                  "scheduler/oracle diverged after %s: wheel pending=%zu "
                  "reference pending=%zu", op, pending, ref_.pending());
}

void SchedulerOracle::mirror_schedule(sim::Time t, std::uint64_t id,
                                      std::size_t pending) {
  ref_.schedule_at(t, id);
  ++checks_;
  check_pending(pending, "schedule");
}

void SchedulerOracle::mirror_cancel(std::uint64_t id, bool cancelled,
                                    std::size_t pending) {
  const bool ref_cancelled = ref_.cancel(id);
  ++checks_;
  INTOX_INVARIANT(ref_cancelled == cancelled,
                  "scheduler/oracle diverged on cancel(id=%llu): wheel=%d "
                  "reference=%d",
                  static_cast<unsigned long long>(id), cancelled,
                  ref_cancelled);
  check_pending(pending, "cancel");
}

void SchedulerOracle::mirror_fire(std::uint64_t id, sim::Time t,
                                  std::size_t pending) {
  const auto fired = ref_.run(1);
  ++checks_;
  INTOX_INVARIANT(!fired.empty(),
                  "scheduler fired id=%llu at t=%lld but the reference "
                  "queue is empty",
                  static_cast<unsigned long long>(id),
                  static_cast<long long>(t));
  if (fired.empty()) return;  // count mode: cannot compare further
  INTOX_INVARIANT(fired[0].id == id && fired[0].time == t,
                  "scheduler/oracle fire order diverged: wheel fired "
                  "id=%llu t=%lld, reference expected id=%llu t=%lld",
                  static_cast<unsigned long long>(id),
                  static_cast<long long>(t),
                  static_cast<unsigned long long>(fired[0].id),
                  static_cast<long long>(fired[0].time));
  check_pending(pending, "fire");
}

void SchedulerOracle::mirror_boundary(sim::Time t, std::size_t pending) {
  const auto leftover = ref_.run_until(t);
  ++checks_;
  INTOX_INVARIANT(leftover.empty(),
                  "run_until(%lld) drain diverged: reference still held "
                  "%zu due event(s), first id=%llu t=%lld",
                  static_cast<long long>(t), leftover.size(),
                  static_cast<unsigned long long>(
                      leftover.empty() ? 0 : leftover[0].id),
                  static_cast<long long>(
                      leftover.empty() ? 0 : leftover[0].time));
  check_pending(pending, "run_until boundary");
}

}  // namespace intox::validate
