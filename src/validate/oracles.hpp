// Differential oracles: slow, obviously-correct reference implementations
// of the hot-path components the Monte-Carlo benches aggregate through.
//
// Each oracle recomputes a result a second way — byte-at-a-time RFC 1071
// folding for the internet checksum, a sorted-vector queue for the event
// scheduler, single-/two-pass recomputation for the streaming statistics,
// exact sorted quantiles for the histogram — so tests (and the
// `validate_sweep` binary) can cross-check the fast paths instead of
// trusting them. None of these are meant for production speed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/time.hpp"

namespace intox::validate {

// --- RFC 1071 reference checksum --------------------------------------
//
// Byte-at-a-time one's-complement sum that folds the end-around carry
// after every addition, so the accumulator never exceeds 17 bits and the
// result is exact for spans of any length. This is the oracle the fast
// word-at-a-time `net::checksum_partial` is checked against (the fast
// path used to wrap its 32-bit accumulator on spans >= 128 KiB).

/// Fully-folded (<= 16-bit) partial sum; chainable via `initial` exactly
/// like `net::checksum_partial` (any unfolded partial sum is accepted).
std::uint32_t reference_checksum_partial(std::span<const std::byte> data,
                                         std::uint32_t initial = 0);

/// Complemented final checksum, as `net::internet_checksum`.
std::uint16_t reference_internet_checksum(std::span<const std::byte> data,
                                          std::uint32_t initial = 0);

// --- Exact statistics --------------------------------------------------

/// Two-pass recomputation of what RunningStats holds after seeing `xs`:
/// the oracle for Welford/Chan merge paths.
struct ExactStats {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;  // sample variance (n-1), 0 when n < 2
  double min = 0.0;
  double max = 0.0;
};
ExactStats exact_stats(const std::vector<double>& xs);

/// Exact q-quantile of the raw samples with the same linear-interpolation
/// convention as `sim::percentile` — the oracle for Histogram::quantile
/// (which must agree to within one bucket width on in-range data).
double exact_quantile(std::vector<double> xs, double q);

// --- Reference event queue --------------------------------------------
//
// A sorted-vector mirror of sim::Scheduler's ordering contract: events
// fire in (time, scheduling order); past times clamp to `now`; cancel
// removes eagerly (no tombstones to get wrong). Tests drive a Scheduler
// and a ReferenceQueue with the same operation sequence and compare the
// firing logs; SchedulerOracle (below) automates exactly that as an
// always-on mirror inside the Scheduler itself.
class ReferenceQueue {
 public:
  struct Fired {
    std::uint64_t id = 0;
    sim::Time time = 0;
    friend bool operator==(const Fired&, const Fired&) = default;
  };

  /// Mirrors Scheduler::schedule_at (including clamp-to-now); returns a
  /// self-assigned event id (ids start at 1 and increment per schedule).
  std::uint64_t schedule_at(sim::Time t);

  /// Same, under a caller-supplied id — the form the SchedulerOracle
  /// uses, since the timing wheel's slab handles are not sequential.
  void schedule_at(sim::Time t, std::uint64_t id);

  /// Mirrors Scheduler::cancel. Returns false for unknown/fired ids.
  bool cancel(std::uint64_t id);

  /// Fires everything with time <= t in order and advances the clock.
  std::vector<Fired> run_until(sim::Time t);

  /// Fires the next `limit` events regardless of time.
  std::vector<Fired> run(std::size_t limit = SIZE_MAX);

  [[nodiscard]] sim::Time now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return entries_.size(); }

 private:
  struct Entry {
    sim::Time time;
    std::uint64_t seq;
    std::uint64_t id;
  };
  std::optional<Fired> pop_next();

  sim::Time now_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> entries_;  // unsorted; pop scans for min (time, seq)
};

// --- Scheduler differential oracle ------------------------------------
//
// The always-on mirror for the timing-wheel scheduler: Scheduler (with
// the oracle enabled — programmatically or via INTOX_SCHED_ORACLE=1)
// forwards every schedule/cancel/fire/boundary to this class, which
// replays it on the ReferenceQueue and raises an INTOX_INVARIANT on any
// divergence in fire order, timestamps, cancel results, or pending
// counts. O(n) per fire — for validate runs and tests, not benches.
class SchedulerOracle {
 public:
  /// `t` is the post-clamp timestamp; `pending` the scheduler's live
  /// count after the operation (likewise for the other hooks).
  void mirror_schedule(sim::Time t, std::uint64_t id, std::size_t pending);
  void mirror_cancel(std::uint64_t id, bool cancelled, std::size_t pending);
  void mirror_fire(std::uint64_t id, sim::Time t, std::size_t pending);
  /// End of Scheduler::run_until(t): the mirror must agree that nothing
  /// was left due at or before `t`.
  void mirror_boundary(sim::Time t, std::size_t pending);

  [[nodiscard]] const ReferenceQueue& reference() const { return ref_; }
  /// Cross-checks performed so far (tests pin that the mirror really ran).
  [[nodiscard]] std::uint64_t checks() const { return checks_; }

 private:
  void check_pending(std::size_t pending, const char* op);

  ReferenceQueue ref_;
  std::uint64_t checks_ = 0;
};

}  // namespace intox::validate
