// Longest-prefix-match routing table (binary trie).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"

namespace intox::net {

/// A binary trie mapping IPv4 prefixes to values of type T (typically a
/// next-hop / egress-port id). Lookup returns the value of the most
/// specific matching prefix.
template <typename T>
class LpmTable {
 public:
  struct Match {
    Prefix prefix;
    T value;
  };

  /// Inserts or replaces the entry for `prefix`.
  void insert(const Prefix& prefix, T value) {
    Node* node = &root_;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.addr().value() >> (31 - depth)) & 1;
      if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
      node = node->child[bit].get();
    }
    if (!node->entry) ++size_;
    node->entry = Match{prefix, std::move(value)};
  }

  /// Removes the entry for `prefix` if present; returns whether it existed.
  bool erase(const Prefix& prefix) {
    Node* node = &root_;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.addr().value() >> (31 - depth)) & 1;
      if (!node->child[bit]) return false;
      node = node->child[bit].get();
    }
    if (!node->entry) return false;
    node->entry.reset();
    --size_;
    return true;
  }

  /// Longest-prefix match for `addr`.
  [[nodiscard]] std::optional<Match> lookup(Ipv4Addr addr) const {
    std::optional<Match> best;
    const Node* node = &root_;
    int depth = 0;
    while (node) {
      if (node->entry) best = *node->entry;
      if (depth == 32) break;
      const int bit = (addr.value() >> (31 - depth)) & 1;
      node = node->child[bit].get();
      ++depth;
    }
    return best;
  }

  /// Exact-match lookup of a specific prefix.
  [[nodiscard]] const T* find(const Prefix& prefix) const {
    const Node* node = &root_;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.addr().value() >> (31 - depth)) & 1;
      if (!node->child[bit]) return nullptr;
      node = node->child[bit].get();
    }
    return node->entry ? &node->entry->value : nullptr;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// All entries, in trie order (shorter prefixes first along each path).
  [[nodiscard]] std::vector<Match> entries() const {
    std::vector<Match> out;
    collect(&root_, out);
    return out;
  }

 private:
  struct Node {
    std::optional<Match> entry;
    std::unique_ptr<Node> child[2];
  };

  static void collect(const Node* node, std::vector<Match>& out) {
    if (node->entry) out.push_back(*node->entry);
    for (const auto& c : node->child) {
      if (c) collect(c.get(), out);
    }
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace intox::net
