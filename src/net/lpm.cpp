// LpmTable is header-only (class template); this TU anchors the library
// and provides an explicit instantiation for the common next-hop type so
// that most users pay the template cost once.
#include "net/lpm.hpp"

namespace intox::net {

template class LpmTable<std::uint32_t>;

}  // namespace intox::net
