#include "net/ipv4.hpp"

#include <charconv>

namespace intox::net {

namespace {

// Parses a decimal integer in [lo, hi] from the front of `text`, advancing
// it past the digits. Returns nullopt on malformed input or out-of-range.
std::optional<int> parse_int(std::string_view& text, int lo, int hi) {
  int v = 0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr == first || v < lo || v > hi) {
    return std::nullopt;
  }
  text.remove_prefix(static_cast<std::size_t>(ptr - first));
  return v;
}

}  // namespace

std::optional<Ipv4Addr> parse_ipv4(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    auto octet = parse_int(text, 0, 255);
    if (!octet) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(*octet);
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Addr{value};
}

std::string to_string(Ipv4Addr addr) {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(addr.octet(i));
  }
  return out;
}

std::optional<Prefix> parse_prefix(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = parse_ipv4(text.substr(0, slash));
  if (!addr) return std::nullopt;
  auto rest = text.substr(slash + 1);
  auto len = parse_int(rest, 0, 32);
  if (!len || !rest.empty()) return std::nullopt;
  return Prefix{*addr, *len};
}

std::string to_string(const Prefix& prefix) {
  return to_string(prefix.addr()) + "/" + std::to_string(prefix.length());
}

}  // namespace intox::net
