#include "net/checksum.hpp"

namespace intox::net {

std::uint32_t checksum_partial(std::span<const std::byte> data,
                               std::uint32_t initial) {
  // Accumulate into 64 bits and fold the carries down before returning.
  // A 32-bit accumulator wraps once the running sum exceeds 2^32 — with
  // 0xffff per word plus a chained `initial`, that silently corrupts
  // checksums on spans >= ~128 KiB. One's-complement addition commutes
  // with carry folding, so deferring the fold to the end is exact; the
  // 64-bit accumulator itself cannot wrap below 2^48 bytes of input.
  std::uint64_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum +=
        (static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[i])) << 8) |
        static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[i + 1]));
  }
  if (i < data.size()) {
    sum += static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[i])) << 8;
  }
  while (sum >> 32) sum = (sum & 0xffffffffu) + (sum >> 32);
  return static_cast<std::uint32_t>(sum);
}

std::uint16_t internet_checksum(std::span<const std::byte> data,
                                std::uint32_t initial) {
  std::uint32_t sum = checksum_partial(data, initial);
  while (sum >> 16) sum = (sum & 0xffffu) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffffu);
}

}  // namespace intox::net
