#include "net/checksum.hpp"

namespace intox::net {

std::uint32_t checksum_partial(std::span<const std::byte> data,
                               std::uint32_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[i])) << 8) |
           static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[i + 1]));
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[i])) << 8;
  }
  return sum;
}

std::uint16_t internet_checksum(std::span<const std::byte> data,
                                std::uint32_t initial) {
  std::uint32_t sum = checksum_partial(data, initial);
  while (sum >> 16) sum = (sum & 0xffffu) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffffu);
}

}  // namespace intox::net
