// RFC 1071 Internet checksum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace intox::net {

/// One's-complement sum of 16-bit words (odd trailing byte padded with
/// zero), folded and complemented per RFC 1071. `initial` lets callers
/// chain partial sums (e.g. a pseudo-header); pass the *unfolded* partial
/// sum returned by `checksum_partial`.
std::uint16_t internet_checksum(std::span<const std::byte> data,
                                std::uint32_t initial = 0);

/// Unfolded partial sum for chaining. Internally accumulates in 64 bits
/// and folds carries before returning, so the result is exact for spans
/// of any length (a 32-bit accumulator would wrap beyond ~128 KiB).
std::uint32_t checksum_partial(std::span<const std::byte> data,
                               std::uint32_t initial = 0);

}  // namespace intox::net
