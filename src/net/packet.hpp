// Structural packet model shared by the simulator and the data-plane code.
//
// Packets carry real protocol fields (the ones the attacks manipulate:
// TCP sequence numbers and flags, TTL, ICMP type/code) but model payloads
// by size only — the systems under study never inspect payload bytes.
// A wire codec (`serialize` / `parse`) is provided for interoperability
// tests and for exercising checksum handling; the simulator itself passes
// `Packet` values around directly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "net/ipv4.hpp"

namespace intox::net {

enum class IpProto : std::uint8_t { kIcmp = 1, kTcp = 6, kUdp = 17 };

/// The flow key used by every hash-indexed data-plane structure.
struct FiveTuple {
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kTcp;

  friend constexpr auto operator<=>(const FiveTuple&,
                                    const FiveTuple&) = default;

  /// Key for the reverse direction of the same conversation.
  [[nodiscard]] constexpr FiveTuple reversed() const {
    return {dst, src, dst_port, src_port, proto};
  }
};

/// Stable 32-bit hash of a 5-tuple (CRC32 over the packed fields), as a
/// programmable switch would compute it. Public and seedable — attackers
/// in this codebase use the very same function to engineer collisions.
std::uint32_t flow_hash(const FiveTuple& t, std::uint32_t seed = 0);

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  bool rst = false;
  std::uint16_t window = 65535;
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
};

enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestUnreachable = 3,
  kEchoRequest = 8,
  kTimeExceeded = 11,
};

struct IcmpHeader {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint8_t code = 0;
  std::uint16_t id = 0;
  std::uint16_t seq = 0;
};

struct Packet {
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint8_t ttl = 64;
  std::variant<TcpHeader, UdpHeader, IcmpHeader> l4 = TcpHeader{};
  /// Payload length in bytes (modeled, not materialized).
  std::uint32_t payload_bytes = 0;
  /// Simulator-side ground-truth tag identifying the originating flow.
  /// NOT part of the wire format; never read by systems under test.
  std::uint64_t flow_tag = 0;

  [[nodiscard]] IpProto proto() const {
    if (std::holds_alternative<TcpHeader>(l4)) return IpProto::kTcp;
    if (std::holds_alternative<UdpHeader>(l4)) return IpProto::kUdp;
    return IpProto::kIcmp;
  }
  [[nodiscard]] FiveTuple five_tuple() const;
  [[nodiscard]] const TcpHeader* tcp() const {
    return std::get_if<TcpHeader>(&l4);
  }
  [[nodiscard]] TcpHeader* tcp() { return std::get_if<TcpHeader>(&l4); }
  [[nodiscard]] const UdpHeader* udp() const {
    return std::get_if<UdpHeader>(&l4);
  }
  [[nodiscard]] const IcmpHeader* icmp() const {
    return std::get_if<IcmpHeader>(&l4);
  }

  /// Total on-wire size: IPv4 header + L4 header + payload.
  [[nodiscard]] std::uint32_t size_bytes() const;
};

/// Serializes to an RFC-791-shaped byte stream (IPv4 header without
/// options, then the L4 header, then `payload_bytes` zero bytes), with
/// valid IP and L4 checksums.
std::vector<std::byte> serialize(const Packet& p);

/// Parses a buffer produced by `serialize` (or any well-formed minimal
/// IPv4+TCP/UDP/ICMP packet). Returns nullopt on truncation, bad version,
/// bad checksum, or unsupported protocol.
std::optional<Packet> parse(std::span<const std::byte> wire);

/// Human-readable one-line description, for logs and debugging.
std::string to_string(const Packet& p);

}  // namespace intox::net
