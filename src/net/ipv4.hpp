// IPv4 addresses and prefixes.
//
// Strongly-typed wrappers around the host-order 32-bit representation so
// that addresses, prefix lengths, and plain integers cannot be mixed up at
// call sites. All operations are constexpr-friendly and allocation-free
// except the formatting helpers.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace intox::net {

/// An IPv4 address stored in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : value_(host_order) {}
  /// Builds an address from its four dotted-quad octets (a.b.c.d).
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

/// Parses "a.b.c.d"; returns nullopt on malformed input.
std::optional<Ipv4Addr> parse_ipv4(std::string_view text);

/// Formats as dotted quad.
std::string to_string(Ipv4Addr addr);

/// An IPv4 prefix (address + mask length). The address is canonicalized so
/// that host bits below the mask are zero; this is a class invariant.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4Addr addr, int len)
      : addr_(Ipv4Addr{mask_off(addr.value(), len)}), len_(len) {}

  [[nodiscard]] constexpr Ipv4Addr addr() const { return addr_; }
  [[nodiscard]] constexpr int length() const { return len_; }

  /// True iff `a` falls inside this prefix.
  [[nodiscard]] constexpr bool contains(Ipv4Addr a) const {
    return mask_off(a.value(), len_) == addr_.value();
  }
  /// True iff `other` is equal to or more specific than this prefix.
  [[nodiscard]] constexpr bool covers(const Prefix& other) const {
    return other.len_ >= len_ && contains(other.addr_);
  }

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  static constexpr std::uint32_t mask_off(std::uint32_t v, int len) {
    return len <= 0 ? 0u : v & (~std::uint32_t{0} << (32 - len));
  }
  Ipv4Addr addr_;
  int len_ = 0;
};

/// Parses "a.b.c.d/len"; returns nullopt on malformed input.
std::optional<Prefix> parse_prefix(std::string_view text);

/// Formats as "a.b.c.d/len".
std::string to_string(const Prefix& prefix);

}  // namespace intox::net
