// Stable, seedable hash functions.
//
// Data-plane systems (Blink's flow selector, Bloom filters, FlowRadar's
// flowset encoding) index state arrays with hashes of packet fields. The
// attacks in the paper exploit the fact that these hashes are *public*
// (Kerckhoff's principle), so the implementations here are deliberately
// deterministic and well-specified: CRC32 (the hash programmable switches
// actually expose) and 64-bit FNV-1a, both with an optional seed so that a
// single structure can derive k independent hash functions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace intox::net {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Matches the `hash` extern of
/// P4 targets. `seed` is folded into the initial remainder.
std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed = 0);

/// 64-bit FNV-1a with seed mixed into the offset basis.
std::uint64_t fnv1a64(std::span<const std::byte> data, std::uint64_t seed = 0);

/// Convenience overloads for trivially-copyable values.
template <typename T>
std::uint32_t crc32_of(const T& value, std::uint32_t seed = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  return crc32(std::as_bytes(std::span<const T, 1>{&value, 1}), seed);
}

template <typename T>
std::uint64_t fnv1a64_of(const T& value, std::uint64_t seed = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a64(std::as_bytes(std::span<const T, 1>{&value, 1}), seed);
}

/// SplitMix64 finalizer — a cheap, high-quality integer mixer used to
/// derive per-index hash functions and to scramble seeds.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace intox::net
