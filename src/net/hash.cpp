#include "net/hash.hpp"

#include <array>

namespace intox::net {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  std::uint32_t c = 0xffffffffu ^ seed;
  for (std::byte b : data) {
    c = kCrcTable[(c ^ static_cast<std::uint8_t>(b)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::uint64_t fnv1a64(std::span<const std::byte> data, std::uint64_t seed) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ mix64(seed);
  for (std::byte b : data) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace intox::net
