#include "net/packet.hpp"

#include <array>
#include <cstring>

#include "net/checksum.hpp"
#include "net/hash.hpp"
#include "validate/invariant.hpp"

namespace intox::net {

namespace {

constexpr std::size_t kIpv4HeaderLen = 20;
constexpr std::size_t kTcpHeaderLen = 20;
constexpr std::size_t kUdpHeaderLen = 8;
constexpr std::size_t kIcmpHeaderLen = 8;

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v >> 8));
  out.push_back(static_cast<std::byte>(v & 0xff));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
}

std::uint16_t get_u16(std::span<const std::byte> in, std::size_t off) {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(static_cast<std::uint8_t>(in[off])) << 8) |
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(in[off + 1])));
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t off) {
  return (static_cast<std::uint32_t>(get_u16(in, off)) << 16) |
         get_u16(in, off + 2);
}

void patch_u16(std::vector<std::byte>& buf, std::size_t off, std::uint16_t v) {
  buf[off] = static_cast<std::byte>(v >> 8);
  buf[off + 1] = static_cast<std::byte>(v & 0xff);
}

std::size_t l4_header_len(const Packet& p) {
  switch (p.proto()) {
    case IpProto::kTcp: return kTcpHeaderLen;
    case IpProto::kUdp: return kUdpHeaderLen;
    case IpProto::kIcmp: return kIcmpHeaderLen;
  }
  return 0;
}

// Pseudo-header partial sum for TCP/UDP checksums.
std::uint32_t pseudo_header_sum(const Packet& p, std::size_t l4_len) {
  std::uint32_t sum = 0;
  sum += p.src.value() >> 16;
  sum += p.src.value() & 0xffff;
  sum += p.dst.value() >> 16;
  sum += p.dst.value() & 0xffff;
  sum += static_cast<std::uint32_t>(p.proto());
  sum += static_cast<std::uint32_t>(l4_len);
  return sum;
}

}  // namespace

std::uint32_t flow_hash(const FiveTuple& t, std::uint32_t seed) {
  // Pack fields explicitly; hashing the struct directly would include
  // padding bytes with unspecified contents.
  std::array<std::byte, 13> key{};
  std::uint32_t src = t.src.value();
  std::uint32_t dst = t.dst.value();
  std::memcpy(key.data(), &src, 4);
  std::memcpy(key.data() + 4, &dst, 4);
  std::memcpy(key.data() + 8, &t.src_port, 2);
  std::memcpy(key.data() + 10, &t.dst_port, 2);
  key[12] = static_cast<std::byte>(t.proto);
  return crc32(key, seed);
}

FiveTuple Packet::five_tuple() const {
  FiveTuple t;
  t.src = src;
  t.dst = dst;
  t.proto = proto();
  if (const auto* h = tcp()) {
    t.src_port = h->src_port;
    t.dst_port = h->dst_port;
  } else if (const auto* u = udp()) {
    t.src_port = u->src_port;
    t.dst_port = u->dst_port;
  }
  return t;
}

std::uint32_t Packet::size_bytes() const {
  return static_cast<std::uint32_t>(kIpv4HeaderLen + l4_header_len(*this)) +
         payload_bytes;
}

std::vector<std::byte> serialize(const Packet& p) {
  const std::size_t l4_len = l4_header_len(p) + p.payload_bytes;
  const std::size_t total = kIpv4HeaderLen + l4_len;
  // The IPv4 total-length field is 16 bits; a larger modeled payload
  // would silently truncate on the wire and fail to round-trip.
  INTOX_INVARIANT(total <= 0xffff,
                  "packet of %zu bytes does not fit the 16-bit IPv4 total "
                  "length field", total);
  std::vector<std::byte> out;
  out.reserve(total);

  // IPv4 header (no options).
  out.push_back(static_cast<std::byte>(0x45));  // version 4, IHL 5
  out.push_back(std::byte{0});                  // DSCP/ECN
  put_u16(out, static_cast<std::uint16_t>(total));
  put_u16(out, 0);  // identification
  put_u16(out, 0);  // flags/fragment offset
  out.push_back(static_cast<std::byte>(p.ttl));
  out.push_back(static_cast<std::byte>(p.proto()));
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, p.src.value());
  put_u32(out, p.dst.value());
  const std::uint16_t ip_csum =
      internet_checksum(std::span{out}.subspan(0, kIpv4HeaderLen));
  patch_u16(out, 10, ip_csum);

  const std::size_t l4_off = out.size();
  if (const auto* t = p.tcp()) {
    put_u16(out, t->src_port);
    put_u16(out, t->dst_port);
    put_u32(out, t->seq);
    put_u32(out, t->ack);
    std::uint16_t off_flags = static_cast<std::uint16_t>(5u << 12);
    if (t->fin) off_flags |= 0x001;
    if (t->syn) off_flags |= 0x002;
    if (t->rst) off_flags |= 0x004;
    if (t->ack_flag) off_flags |= 0x010;
    put_u16(out, off_flags);
    put_u16(out, t->window);
    put_u16(out, 0);  // checksum placeholder
    put_u16(out, 0);  // urgent pointer
  } else if (const auto* u = p.udp()) {
    put_u16(out, u->src_port);
    put_u16(out, u->dst_port);
    put_u16(out, static_cast<std::uint16_t>(l4_len));
    put_u16(out, 0);  // checksum placeholder
  } else if (const auto* ic = p.icmp()) {
    out.push_back(static_cast<std::byte>(ic->type));
    out.push_back(static_cast<std::byte>(ic->code));
    put_u16(out, 0);  // checksum placeholder
    put_u16(out, ic->id);
    put_u16(out, ic->seq);
  }
  out.resize(total, std::byte{0});  // zero payload

  const auto l4_span = std::span{out}.subspan(l4_off);
  switch (p.proto()) {
    case IpProto::kTcp:
      patch_u16(out, l4_off + 16,
                internet_checksum(l4_span, pseudo_header_sum(p, l4_len)));
      break;
    case IpProto::kUdp:
      patch_u16(out, l4_off + 6,
                internet_checksum(l4_span, pseudo_header_sum(p, l4_len)));
      break;
    case IpProto::kIcmp:
      patch_u16(out, l4_off + 2, internet_checksum(l4_span));
      break;
  }
  INTOX_INVARIANT(out.size() == total,
                  "serialize emitted %zu bytes for a %zu-byte packet",
                  out.size(), total);
  // A receiver verifies by summing the header including the patched
  // checksum field and expecting zero; check we produce exactly that.
  INTOX_INVARIANT(
      internet_checksum(std::span{out}.subspan(0, kIpv4HeaderLen)) == 0,
      "serialized IPv4 header fails its own checksum");
  return out;
}

std::optional<Packet> parse(std::span<const std::byte> wire) {
  if (wire.size() < kIpv4HeaderLen) return std::nullopt;
  const auto version_ihl = static_cast<std::uint8_t>(wire[0]);
  if (version_ihl != 0x45) return std::nullopt;
  const std::size_t total = get_u16(wire, 2);
  if (total < kIpv4HeaderLen || total > wire.size()) return std::nullopt;
  if (internet_checksum(wire.subspan(0, kIpv4HeaderLen)) != 0) {
    return std::nullopt;
  }

  Packet p;
  p.ttl = static_cast<std::uint8_t>(wire[8]);
  const auto proto = static_cast<std::uint8_t>(wire[9]);
  p.src = Ipv4Addr{get_u32(wire, 12)};
  p.dst = Ipv4Addr{get_u32(wire, 16)};

  const auto l4 = wire.subspan(kIpv4HeaderLen, total - kIpv4HeaderLen);
  switch (proto) {
    case 6: {
      if (l4.size() < kTcpHeaderLen) return std::nullopt;
      TcpHeader t;
      t.src_port = get_u16(l4, 0);
      t.dst_port = get_u16(l4, 2);
      t.seq = get_u32(l4, 4);
      t.ack = get_u32(l4, 8);
      const std::uint16_t off_flags = get_u16(l4, 12);
      t.fin = off_flags & 0x001;
      t.syn = off_flags & 0x002;
      t.rst = off_flags & 0x004;
      t.ack_flag = off_flags & 0x010;
      t.window = get_u16(l4, 14);
      p.l4 = t;
      p.payload_bytes = static_cast<std::uint32_t>(l4.size() - kTcpHeaderLen);
      if (internet_checksum(l4, pseudo_header_sum(p, l4.size())) != 0)
        return std::nullopt;
      break;
    }
    case 17: {
      if (l4.size() < kUdpHeaderLen) return std::nullopt;
      UdpHeader u;
      u.src_port = get_u16(l4, 0);
      u.dst_port = get_u16(l4, 2);
      p.l4 = u;
      p.payload_bytes = static_cast<std::uint32_t>(l4.size() - kUdpHeaderLen);
      if (internet_checksum(l4, pseudo_header_sum(p, l4.size())) != 0)
        return std::nullopt;
      break;
    }
    case 1: {
      if (l4.size() < kIcmpHeaderLen) return std::nullopt;
      IcmpHeader ic;
      ic.type = static_cast<IcmpType>(l4[0]);
      ic.code = static_cast<std::uint8_t>(l4[1]);
      ic.id = get_u16(l4, 4);
      ic.seq = get_u16(l4, 6);
      p.l4 = ic;
      p.payload_bytes = static_cast<std::uint32_t>(l4.size() - kIcmpHeaderLen);
      if (internet_checksum(l4) != 0) return std::nullopt;
      break;
    }
    default:
      return std::nullopt;
  }
  return p;
}

std::string to_string(const Packet& p) {
  std::string out = to_string(p.src) + " > " + to_string(p.dst);
  if (const auto* t = p.tcp()) {
    out += " tcp " + std::to_string(t->src_port) + ">" +
           std::to_string(t->dst_port) + " seq=" + std::to_string(t->seq);
    if (t->syn) out += " SYN";
    if (t->ack_flag) out += " ACK";
    if (t->fin) out += " FIN";
    if (t->rst) out += " RST";
  } else if (const auto* u = p.udp()) {
    out += " udp " + std::to_string(u->src_port) + ">" +
           std::to_string(u->dst_port);
  } else if (const auto* ic = p.icmp()) {
    out += " icmp type=" + std::to_string(static_cast<int>(ic->type)) +
           " code=" + std::to_string(ic->code);
  }
  out += " len=" + std::to_string(p.size_bytes()) +
         " ttl=" + std::to_string(p.ttl);
  return out;
}

}  // namespace intox::net
