#include "ron/overlay.hpp"

namespace intox::ron {

namespace {

constexpr std::uint16_t kProbePort = 7001;
constexpr std::uint16_t kProbeReplyPort = 7002;
constexpr std::uint16_t kDataPort = 7003;

net::Ipv4Addr node_addr(NodeId id) {
  return net::Ipv4Addr{10, 200, static_cast<std::uint8_t>(id >> 8),
                       static_cast<std::uint8_t>(id & 0xff)};
}

NodeId addr_node(net::Ipv4Addr a) {
  return static_cast<NodeId>(a.value() & 0xffff);
}

}  // namespace

Overlay::Overlay(sim::Scheduler& sched, const RonConfig& config,
                 std::size_t nodes, const sim::LinkConfig& default_link)
    : sched_(sched), config_(config), nodes_(nodes),
      links_(nodes * nodes), estimates_(nodes * nodes),
      routes_(nodes * nodes) {
  for (NodeId from = 0; from < nodes_; ++from) {
    for (NodeId to = 0; to < nodes_; ++to) {
      if (from == to) continue;
      links_[pair_index(from, to)] =
          std::make_unique<sim::Link>(sched_, default_link, make_sink(to));
    }
  }
}

sim::Link::Sink Overlay::make_sink(NodeId to) {
  return [this, to](net::Packet p) { arrival(to, std::move(p)); };
}

void Overlay::set_link_config(NodeId from, NodeId to,
                              const sim::LinkConfig& cfg) {
  links_[pair_index(from, to)] =
      std::make_unique<sim::Link>(sched_, cfg, make_sink(to));
}

void Overlay::arrival(NodeId at, net::Packet p) {
  const auto* u = p.udp();
  if (!u) return;
  switch (u->dst_port) {
    case kProbePort: {
      // Answer immediately on the reverse link.
      const NodeId prober = addr_node(p.src);
      net::Packet reply;
      reply.src = node_addr(at);
      reply.dst = p.src;
      reply.l4 = net::UdpHeader{kProbePort, kProbeReplyPort};
      reply.payload_bytes = 16;
      reply.flow_tag = p.flow_tag;
      links_[pair_index(at, prober)]->transmit(std::move(reply));
      break;
    }
    case kProbeReplyPort:
      on_probe_reply(p.flow_tag, sched_.now());
      break;
    case kDataPort: {
      const NodeId final_dst = addr_node(p.dst);
      if (final_dst == at) {
        auto it = data_in_flight_.find(p.flow_tag);
        if (it != data_in_flight_.end()) {
          it->second.on_delivered(sched_.now() - it->second.sent);
          data_in_flight_.erase(it);
        }
      } else {
        // Relay hop: forward on the second overlay leg.
        links_[pair_index(at, final_dst)]->transmit(std::move(p));
      }
      break;
    }
    default:
      break;
  }
}

void Overlay::start() {
  running_ = true;
  // Stagger per-pair probing so probes do not burst in lockstep.
  std::uint64_t stagger = 0;
  for (NodeId from = 0; from < nodes_; ++from) {
    for (NodeId to = 0; to < nodes_; ++to) {
      if (from == to) continue;
      const auto offset = static_cast<sim::Duration>(
          static_cast<sim::Duration>(stagger++ * sim::millis(7)) %
          config_.probe_interval);
      timers_.push_back(sched_.schedule_after(
          offset, [this, from, to] { send_probe(from, to); }));
    }
  }
  timers_.push_back(sched_.schedule_after(config_.decision_interval,
                                          [this] { evaluate_routes(); }));
}

void Overlay::stop() {
  running_ = false;
  for (auto id : timers_) sched_.cancel(id);
  timers_.clear();
}

void Overlay::send_probe(NodeId from, NodeId to) {
  if (!running_) return;
  const std::uint64_t id = next_probe_id_++;
  pending_.push_back(PendingProbe{from, to, sched_.now(), false});

  net::Packet probe;
  probe.src = node_addr(from);
  probe.dst = node_addr(to);
  probe.l4 = net::UdpHeader{kProbeReplyPort, kProbePort};
  probe.payload_bytes = 16;
  probe.flow_tag = id;
  ++estimates_[pair_index(from, to)].probes_sent;
  links_[pair_index(from, to)]->transmit(std::move(probe));

  // Timeout: an unanswered probe is a loss sample.
  sched_.schedule_after(config_.probe_timeout, [this, id] {
    PendingProbe& p = pending_[id - 1];
    if (p.answered) return;
    p.answered = true;  // consume
    LinkEstimate& e = estimates_[pair_index(p.from, p.to)];
    e.loss = (1.0 - config_.ewma_gain) * e.loss + config_.ewma_gain;
    e.valid = true;
  });

  sched_.schedule_after(config_.probe_interval,
                        [this, from, to] { send_probe(from, to); });
}

void Overlay::on_probe_reply(std::uint64_t probe_id, sim::Time now) {
  if (probe_id == 0 || probe_id > pending_.size()) return;
  PendingProbe& p = pending_[probe_id - 1];
  if (p.answered) return;
  p.answered = true;
  LinkEstimate& e = estimates_[pair_index(p.from, p.to)];
  ++e.probes_answered;
  const double one_way = sim::to_seconds(now - p.sent) / 2.0;
  e.latency_s = e.valid ? (1.0 - config_.ewma_gain) * e.latency_s +
                              config_.ewma_gain * one_way
                        : one_way;
  e.loss = (1.0 - config_.ewma_gain) * e.loss;  // success sample
  e.valid = true;
}

double Overlay::path_score(NodeId src, NodeId dst) const {
  return estimates_[pair_index(src, dst)].score(config_);
}

void Overlay::evaluate_routes() {
  if (!running_) return;
  for (NodeId src = 0; src < nodes_; ++src) {
    for (NodeId dst = 0; dst < nodes_; ++dst) {
      if (src == dst) continue;
      const double direct = path_score(src, dst);
      double best_detour = 1e18;
      NodeId best_via = src;
      for (NodeId via = 0; via < nodes_; ++via) {
        if (via == src || via == dst) continue;
        const double s = path_score(src, via) + path_score(via, dst);
        if (s < best_detour) {
          best_detour = s;
          best_via = via;
        }
      }
      OverlayRoute& route = routes_[pair_index(src, dst)];
      const OverlayRoute before = route;
      if (route.direct) {
        // Leave the direct path only with hysteresis.
        if (best_detour < direct * config_.switch_threshold) {
          route.direct = false;
          route.via = best_via;
        }
      } else if (direct * config_.switch_threshold <= best_detour) {
        route.direct = true;
      } else {
        route.via = best_via;
      }
      if (before.direct != route.direct ||
          (!route.direct && before.via != route.via)) {
        ++route_changes_;
      }
    }
  }
  timers_.push_back(sched_.schedule_after(config_.decision_interval,
                                          [this] { evaluate_routes(); }));
}

OverlayRoute Overlay::route(NodeId src, NodeId dst) const {
  return routes_[pair_index(src, dst)];
}

const LinkEstimate& Overlay::estimate(NodeId from, NodeId to) const {
  return estimates_[pair_index(from, to)];
}

sim::Link& Overlay::link(NodeId from, NodeId to) {
  return *links_[pair_index(from, to)];
}

void Overlay::send_data(NodeId src, NodeId dst, std::uint32_t payload_bytes,
                        std::function<void(sim::Duration)> on_delivered) {
  const std::uint64_t id = next_data_id_++ | (std::uint64_t{1} << 48);
  data_in_flight_[id] = PendingData{sched_.now(), std::move(on_delivered)};

  net::Packet data;
  data.src = node_addr(src);
  data.dst = node_addr(dst);
  data.l4 = net::UdpHeader{kDataPort, kDataPort};
  data.payload_bytes = payload_bytes;
  data.flow_tag = id;

  const OverlayRoute r = route(src, dst);
  const NodeId first_hop = r.direct ? dst : r.via;
  links_[pair_index(src, first_hop)]->transmit(std::move(data));
}

}  // namespace intox::ron
