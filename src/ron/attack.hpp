// §3.2 RON attack:
//
//   "An attacker in the path between two nodes could drop or delay RON's
//    probes, so as to divert traffic to another next-hop."
//
// The attacker is a MitM on one or more overlay legs. She drops *probes
// only* — data packets pass untouched, so the real path quality never
// changed; only the overlay's perception did. By also degrading the
// probes of competing detours, she steers the overlay onto a relay node
// she controls (traffic interception with a handful of dropped probes).
#pragma once

#include <cstdint>
#include <set>

#include "ron/overlay.hpp"
#include "sim/rng.hpp"

namespace intox::ron {

struct RonAttackConfig {
  /// Probability of dropping a probe (request or reply) on a targeted leg.
  double probe_drop_prob = 1.0;
  /// If false, the attacker drops data on targeted legs too (crude
  /// blackholing — detectable; the paper's point is that probes alone
  /// suffice).
  bool spare_data = true;
  std::uint64_t seed = 1337;
};

class RonProbeAttacker {
 public:
  explicit RonProbeAttacker(const RonAttackConfig& config)
      : config_(config), rng_(config.seed) {}

  /// Installs the attacker on the overlay leg from->to.
  void attach(Overlay& overlay, NodeId from, NodeId to);

  [[nodiscard]] std::uint64_t probes_dropped() const { return probes_dropped_; }
  [[nodiscard]] std::uint64_t packets_observed() const { return observed_; }
  [[nodiscard]] std::uint64_t data_observed() const { return data_observed_; }

 private:
  RonAttackConfig config_;
  sim::Rng rng_;
  std::uint64_t probes_dropped_ = 0;
  std::uint64_t observed_ = 0;
  std::uint64_t data_observed_ = 0;
};

/// The canonical 4-node diversion experiment:
///   node 0 -> node 1 direct (best), detour via 2 (second best), detour
///   via 3 (worst; node 3 is ATTACKER-CONTROLLED).
/// The attacker drops probes on 0->1 and 0->2. Measures where the route
/// ends up, the data-latency cost, and how little the attacker touched.
struct RonExperimentConfig {
  sim::Duration direct_delay = sim::millis(10);
  sim::Duration via2_leg_delay = sim::millis(12);
  sim::Duration via3_leg_delay = sim::millis(15);
  sim::Duration warmup = sim::seconds(5);
  sim::Duration attack_duration = sim::seconds(20);
  bool attack = true;
  RonAttackConfig attacker{};
  std::uint64_t seed = 1;
};

struct RonExperimentResult {
  bool routed_direct_before = false;
  bool routed_via_attacker_after = false;
  NodeId via_after = 0;
  double mean_latency_before_ms = 0.0;
  double mean_latency_after_ms = 0.0;
  std::uint64_t probes_dropped = 0;
  std::uint64_t data_packets_sent = 0;
  std::uint64_t route_changes = 0;
};

RonExperimentResult run_ron_attack_experiment(
    const RonExperimentConfig& config);

}  // namespace intox::ron
