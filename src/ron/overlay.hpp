// RON-style resilient overlay network (Andersen et al., SOSP'01), as
// referenced by §3.2 of the paper:
//
//   "RON is an overlay network which reroutes traffic from one node to
//    another when it detects a performance degradation. An attacker in
//    the path between two nodes could drop or delay RON's probes, so as
//    to divert traffic to another next-hop."
//
// Overlay nodes exchange periodic probes over every inter-node link and
// maintain smoothed latency/loss estimates. Data between a pair takes
// the direct link unless a one-hop detour scores better — the classic
// RON policy. The decision input is *probe traffic*, which is exactly
// what the attack manipulates.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/link.hpp"
#include "sim/stats.hpp"

namespace intox::ron {

using NodeId = std::uint32_t;

struct RonConfig {
  sim::Duration probe_interval = sim::millis(250);
  /// Probe considered lost if unanswered for this long.
  sim::Duration probe_timeout = sim::millis(500);
  /// EWMA gain for latency/loss estimates.
  double ewma_gain = 0.2;
  /// Route re-evaluation period.
  sim::Duration decision_interval = sim::seconds(1);
  /// A detour must beat the direct path's score by this factor before
  /// traffic moves (hysteresis).
  double switch_threshold = 0.8;
  /// Latency penalty per unit loss when scoring a path (score = latency
  /// * (1 + penalty * loss)); lower score is better.
  double loss_penalty = 10.0;
};

/// Smoothed estimate of one overlay link direction.
struct LinkEstimate {
  double latency_s = 0.0;
  double loss = 0.0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_answered = 0;
  bool valid = false;

  [[nodiscard]] double score(const RonConfig& cfg) const {
    if (!valid) return 1e9;
    return latency_s * (1.0 + cfg.loss_penalty * loss);
  }
};

/// Route chosen for a (src, dst) overlay pair.
struct OverlayRoute {
  bool direct = true;
  NodeId via = 0;  // meaningful when !direct
};

/// The full-mesh overlay: owns the inter-node links (built over the
/// simulator), runs probing and route selection, and forwards data
/// packets. Mesh links are exposed so tests/attackers can install taps
/// or fail them.
class Overlay {
 public:
  Overlay(sim::Scheduler& sched, const RonConfig& config, std::size_t nodes,
          const sim::LinkConfig& default_link);

  /// Replaces the link config of one direction (call before start()).
  void set_link_config(NodeId from, NodeId to, const sim::LinkConfig& cfg);

  void start();
  void stop();

  /// Sends one data packet from src to dst via the current route;
  /// `on_delivered` fires with the one-way latency when it arrives.
  void send_data(NodeId src, NodeId dst, std::uint32_t payload_bytes,
                 std::function<void(sim::Duration)> on_delivered);

  [[nodiscard]] OverlayRoute route(NodeId src, NodeId dst) const;
  [[nodiscard]] const LinkEstimate& estimate(NodeId from, NodeId to) const;
  /// Underlay link carrying from->to traffic (probes and data).
  [[nodiscard]] sim::Link& link(NodeId from, NodeId to);

  [[nodiscard]] std::size_t node_count() const { return nodes_; }
  [[nodiscard]] std::uint64_t route_changes() const { return route_changes_; }

 private:
  struct PendingProbe {
    NodeId from = 0;
    NodeId to = 0;
    sim::Time sent = 0;
    bool answered = false;
  };
  struct PendingData {
    sim::Time sent = 0;
    std::function<void(sim::Duration)> on_delivered;
  };

  std::size_t pair_index(NodeId from, NodeId to) const {
    return static_cast<std::size_t>(from) * nodes_ + to;
  }
  sim::Link::Sink make_sink(NodeId to);
  void arrival(NodeId at, net::Packet p);
  void send_probe(NodeId from, NodeId to);
  void on_probe_reply(std::uint64_t probe_id, sim::Time now);
  void evaluate_routes();
  double path_score(NodeId src, NodeId dst) const;

  sim::Scheduler& sched_;
  RonConfig config_;
  std::size_t nodes_;
  std::vector<std::unique_ptr<sim::Link>> links_;      // per ordered pair
  std::vector<LinkEstimate> estimates_;                // per ordered pair
  std::vector<OverlayRoute> routes_;                   // per ordered pair
  std::vector<PendingProbe> pending_;
  std::unordered_map<std::uint64_t, PendingData> data_in_flight_;
  std::uint64_t next_probe_id_ = 1;
  std::uint64_t next_data_id_ = 1;
  std::uint64_t route_changes_ = 0;
  bool running_ = false;
  std::vector<sim::Scheduler::EventId> timers_;
};

}  // namespace intox::ron
