#include "ron/attack.hpp"

#include "sim/stats.hpp"

namespace intox::ron {

void RonProbeAttacker::attach(Overlay& overlay, NodeId from, NodeId to) {
  overlay.link(from, to).set_tap([this](net::Packet& p) {
    ++observed_;
    const auto* u = p.udp();
    const bool is_probe = u && (u->dst_port == 7001 || u->dst_port == 7002);
    if (is_probe) {
      if (rng_.bernoulli(config_.probe_drop_prob)) {
        ++probes_dropped_;
        return sim::TapAction::kDrop;
      }
      return sim::TapAction::kForward;
    }
    ++data_observed_;
    return config_.spare_data ? sim::TapAction::kForward
                              : sim::TapAction::kDrop;
  });
}

RonExperimentResult run_ron_attack_experiment(
    const RonExperimentConfig& config) {
  sim::Scheduler sched;
  RonConfig rcfg;

  sim::LinkConfig base;
  base.rate_bps = 1e9;

  Overlay overlay{sched, rcfg, /*nodes=*/4, base};
  auto set_delay = [&](NodeId a, NodeId b, sim::Duration d) {
    sim::LinkConfig cfg = base;
    cfg.prop_delay = d;
    overlay.set_link_config(a, b, cfg);
    overlay.set_link_config(b, a, cfg);
  };
  // Direct path 0-1 is the best; 2 is an honest alternative relay; 3 is
  // the attacker's relay (worst latency — nobody would pick it honestly).
  set_delay(0, 1, config.direct_delay);
  set_delay(0, 2, config.via2_leg_delay);
  set_delay(2, 1, config.via2_leg_delay);
  set_delay(0, 3, config.via3_leg_delay);
  set_delay(3, 1, config.via3_leg_delay);
  set_delay(2, 3, sim::millis(20));

  RonProbeAttacker attacker{config.attacker};
  overlay.start();

  // Steady data stream 0 -> 1; record per-packet latency.
  sim::TimeSeries latency_ms;
  std::uint64_t data_sent = 0;
  std::function<void()> send_data = [&] {
    ++data_sent;
    overlay.send_data(0, 1, 512, [&](sim::Duration lat) {
      latency_ms.record(sched.now(), sim::to_seconds(lat) * 1000.0);
    });
    sched.schedule_after(sim::millis(100), send_data);
  };
  sched.schedule_after(sim::millis(50), send_data);

  sched.run_until(config.warmup);
  RonExperimentResult result;
  result.routed_direct_before = overlay.route(0, 1).direct;
  result.mean_latency_before_ms = latency_ms.mean_over(0, config.warmup);

  if (config.attack) {
    // MitM on the direct leg and on the honest detour's first leg: the
    // only "good-looking" path left goes through the attacker's relay.
    attacker.attach(overlay, 0, 1);
    attacker.attach(overlay, 0, 2);
  }

  const sim::Time end = config.warmup + config.attack_duration;
  sched.run_until(end);
  overlay.stop();

  const OverlayRoute after = overlay.route(0, 1);
  result.routed_via_attacker_after = !after.direct && after.via == 3;
  result.via_after = after.direct ? 0 : after.via;
  result.mean_latency_after_ms =
      latency_ms.mean_over(end - config.attack_duration / 2, end);
  result.probes_dropped = attacker.probes_dropped();
  result.data_packets_sent = data_sent;
  result.route_changes = overlay.route_changes();
  return result;
}

}  // namespace intox::ron
