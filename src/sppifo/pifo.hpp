// Ideal PIFO (push-in first-out) reference queue.
//
// Dequeues strictly in rank order (FIFO among equal ranks) — the
// scheduling behaviour SP-PIFO approximates. Programmable switches
// cannot implement this directly at line rate, hence SP-PIFO; we keep
// the ideal model as ground truth for the inversion metrics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

namespace intox::sppifo {

struct RankedPacket {
  std::uint32_t rank = 0;   // lower = higher priority
  std::uint64_t id = 0;     // arrival order / identity
};

class IdealPifo {
 public:
  explicit IdealPifo(std::size_t capacity) : capacity_(capacity) {}

  /// Returns false (and drops) when full. A full ideal PIFO drops the
  /// *lowest-priority* element (standard PIFO drop policy).
  bool enqueue(RankedPacket p);

  [[nodiscard]] std::optional<RankedPacket> dequeue();
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 private:
  struct Order {
    bool operator()(const RankedPacket& a, const RankedPacket& b) const {
      if (a.rank != b.rank) return a.rank > b.rank;  // min-rank first
      return a.id > b.id;                            // FIFO tie-break
    }
  };

  std::size_t capacity_;
  std::uint64_t drops_ = 0;
  // Min-heap via comparator above, plus a max view for drop-worst: we
  // keep it simple with a sorted multiset-like vector heap; capacity is
  // small in all experiments.
  std::vector<RankedPacket> heap_;
};

inline bool IdealPifo::enqueue(RankedPacket p) {
  if (heap_.size() >= capacity_) {
    // Drop-worst: if the newcomer outranks the worst resident, evict it.
    auto worst = heap_.begin();
    for (auto it = heap_.begin(); it != heap_.end(); ++it) {
      if (it->rank > worst->rank ||
          (it->rank == worst->rank && it->id > worst->id)) {
        worst = it;
      }
    }
    if (worst->rank > p.rank) {
      heap_.erase(worst);
      ++drops_;
    } else {
      ++drops_;
      return false;
    }
  }
  heap_.push_back(p);
  std::push_heap(heap_.begin(), heap_.end(), Order{});
  return true;
}

inline std::optional<RankedPacket> IdealPifo::dequeue() {
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), Order{});
  RankedPacket p = heap_.back();
  heap_.pop_back();
  return p;
}

}  // namespace intox::sppifo
