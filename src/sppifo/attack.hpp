// Rank-sequence generators and the SP-PIFO scheduling experiment.
//
// SP-PIFO's queue-bound adaptation assumes ranks arrive in random order.
// The generators here provide that baseline plus two adversarial orders
// an attacker with nothing more than packet-injection (host privilege)
// can produce:
//
//  * kDragAndBurst — long runs of high ranks drag every queue bound up
//    (push-up), then a burst of rank-0 packets all collapse into the top
//    queue: high-priority packets now share one FIFO (inversions) and
//    overflow it (drops of the *highest*-priority traffic).
//  * kSawtooth — strictly descending rank ramps; every packet undercuts
//    all bounds, triggering a push-down per packet and keeping the
//    mapping permanently mis-calibrated.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sppifo/sppifo.hpp"

namespace intox::sppifo {

enum class ArrivalOrder { kUniformRandom, kDragAndBurst, kSawtooth };

struct RankWorkload {
  ArrivalOrder order = ArrivalOrder::kUniformRandom;
  std::uint32_t rank_levels = 100;  // ranks drawn from [0, rank_levels)
  std::size_t packets = 20000;
  /// kDragAndBurst: length of the high-rank drag phase and the low-rank
  /// burst that follows (sized past the top queue's capacity so the
  /// burst overflows it).
  std::size_t drag_len = 48;
  std::size_t burst_len = 24;
  /// kSawtooth: ramp length (ranks step down by rank_levels/ramp_len).
  std::size_t ramp_len = 32;
};

/// Generates the rank sequence for a workload. The multiset of ranks for
/// the adversarial orders matches the uniform baseline as closely as
/// possible — the attack is purely about *ordering*, as §3.2 observes.
std::vector<std::uint32_t> generate_ranks(const RankWorkload& workload,
                                          sim::Rng& rng);

struct SchedulingResult {
  std::uint64_t packets = 0;
  std::uint64_t sp_drops = 0;
  std::uint64_t sp_dequeue_inversions = 0;
  std::uint64_t sp_push_downs = 0;
  std::uint64_t pifo_drops = 0;
  /// Drops of the top-quartile (highest-priority) ranks, per scheduler.
  std::uint64_t sp_high_priority_drops = 0;
  std::uint64_t pifo_high_priority_drops = 0;
  /// Mean |position error| of SP-PIFO's dequeue order vs the ideal PIFO
  /// order ("unpifoness" proxy).
  double mean_rank_error = 0.0;
};

struct ScheduleConfig {
  SpPifoConfig sp{};
  /// Packets arrive in line-rate batches of this size, each followed by
  /// an equal number of service slots: average load is exactly 1, so the
  /// *baseline* never congests persistently and any drops/inversions are
  /// attributable to arrival ordering — the §3.2 attack vector — rather
  /// than to plain overload. Both orders see identical batch timing.
  std::size_t batch_size = 24;
};

/// Runs the same rank sequence through SP-PIFO and an ideal PIFO of equal
/// total capacity under identical arrival/service timing.
SchedulingResult run_scheduling_experiment(
    const ScheduleConfig& config, const std::vector<std::uint32_t>& ranks);

/// The bench/scenario default workload for one arrival order: 40000
/// packets, enough that the order-dependent effects dominate warm-up
/// noise while the whole three-order table still runs in well under a
/// second.
RankWorkload default_bench_workload(ArrivalOrder order);

}  // namespace intox::sppifo
