#include "sppifo/sppifo.hpp"

namespace intox::sppifo {

SpPifo::SpPifo(const SpPifoConfig& config)
    : config_(config), bounds_(config.queues, 0),
      queues_(config.queues) {}

std::optional<std::size_t> SpPifo::enqueue(RankedPacket p) {
  // Bottom-up scan: lowest-priority queue whose bound admits the rank.
  std::size_t target = 0;
  bool found = false;
  for (std::size_t i = config_.queues; i-- > 0;) {
    if (bounds_[i] <= p.rank) {
      target = i;
      found = true;
      break;
    }
  }

  if (!found) {
    // Inversion: the packet outranks every bound. Push-down all bounds
    // by the magnitude and force the packet into the top queue.
    const std::uint32_t cost = bounds_[0] - p.rank;
    ++counters_.push_downs;
    counters_.inversion_magnitude += cost;
    for (auto& b : bounds_) b -= std::min(b, cost);
    target = 0;
  }

  if (queues_[target].size() >= config_.per_queue_capacity) {
    ++counters_.dropped;
    return std::nullopt;
  }
  if (found) bounds_[target] = p.rank;  // push-up
  queues_[target].push_back(p);
  ++counters_.enqueued;
  return target;
}

std::optional<RankedPacket> SpPifo::dequeue() {
  for (auto& q : queues_) {
    if (q.empty()) continue;
    RankedPacket p = q.front();
    q.pop_front();
    if (auto min_rank = min_queued_rank(); min_rank && *min_rank < p.rank) {
      ++counters_.dequeue_inversions;
    }
    return p;
  }
  return std::nullopt;
}

std::size_t SpPifo::size() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

std::optional<std::uint32_t> SpPifo::min_queued_rank() const {
  std::optional<std::uint32_t> best;
  for (const auto& q : queues_) {
    for (const auto& p : q) {
      if (!best || p.rank < *best) best = p.rank;
    }
  }
  return best;
}

}  // namespace intox::sppifo
