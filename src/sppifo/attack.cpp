#include "sppifo/attack.hpp"

#include <algorithm>
#include <cmath>

namespace intox::sppifo {

std::vector<std::uint32_t> generate_ranks(const RankWorkload& workload,
                                          sim::Rng& rng) {
  std::vector<std::uint32_t> ranks;
  ranks.reserve(workload.packets);
  const std::uint32_t levels = std::max<std::uint32_t>(workload.rank_levels, 2);

  switch (workload.order) {
    case ArrivalOrder::kUniformRandom: {
      for (std::size_t i = 0; i < workload.packets; ++i) {
        ranks.push_back(static_cast<std::uint32_t>(
            rng.uniform_int(0, levels - 1)));
      }
      break;
    }
    case ArrivalOrder::kDragAndBurst: {
      while (ranks.size() < workload.packets) {
        for (std::size_t i = 0;
             i < workload.drag_len && ranks.size() < workload.packets; ++i) {
          // High half of the rank space, random within it.
          ranks.push_back(static_cast<std::uint32_t>(
              rng.uniform_int(levels / 2, levels - 1)));
        }
        for (std::size_t i = 0;
             i < workload.burst_len && ranks.size() < workload.packets; ++i) {
          // Burst of top-priority packets.
          ranks.push_back(static_cast<std::uint32_t>(
              rng.uniform_int(0, levels / 10)));
        }
      }
      break;
    }
    case ArrivalOrder::kSawtooth: {
      const std::size_t ramp = std::max<std::size_t>(workload.ramp_len, 2);
      while (ranks.size() < workload.packets) {
        for (std::size_t i = 0; i < ramp && ranks.size() < workload.packets;
             ++i) {
          // Strictly descending within each ramp.
          const double frac =
              1.0 - static_cast<double>(i) / static_cast<double>(ramp - 1);
          ranks.push_back(static_cast<std::uint32_t>(
              frac * static_cast<double>(levels - 1)));
        }
      }
      break;
    }
  }
  return ranks;
}

RankWorkload default_bench_workload(ArrivalOrder order) {
  RankWorkload workload;
  workload.order = order;
  workload.packets = 40000;
  return workload;
}

SchedulingResult run_scheduling_experiment(
    const ScheduleConfig& config, const std::vector<std::uint32_t>& ranks) {
  SpPifo sp{config.sp};
  IdealPifo pifo{config.sp.queues * config.sp.per_queue_capacity};

  SchedulingResult result;
  result.packets = ranks.size();
  const std::uint32_t high_priority_cutoff = [&] {
    std::uint32_t max_rank = 0;
    for (auto r : ranks) max_rank = std::max(max_rank, r);
    return max_rank / 4;
  }();

  std::vector<std::uint32_t> sp_order, pifo_order;
  sp_order.reserve(ranks.size());
  pifo_order.reserve(ranks.size());

  std::uint64_t id = 0;
  std::size_t i = 0;
  auto service = [&] {
    if (auto p = sp.dequeue()) sp_order.push_back(p->rank);
    if (auto p = pifo.dequeue()) pifo_order.push_back(p->rank);
  };

  std::uint64_t sp_hp_drops = 0, pifo_hp_drops = 0;
  while (i < ranks.size()) {
    // One batch arrives back-to-back at line rate ...
    std::size_t batched = 0;
    for (; batched < config.batch_size && i < ranks.size(); ++batched, ++i) {
      RankedPacket p{ranks[i], id++};
      const auto sp_before = sp.counters().dropped;
      sp.enqueue(p);
      if (sp.counters().dropped > sp_before && p.rank <= high_priority_cutoff) {
        ++sp_hp_drops;
      }
      const auto pifo_before = pifo.drops();
      pifo.enqueue(p);
      if (pifo.drops() > pifo_before && p.rank <= high_priority_cutoff) {
        ++pifo_hp_drops;
      }
    }
    // ... then the same number of service slots drain it.
    for (std::size_t s = 0; s < batched; ++s) service();
  }
  while (!sp.empty() || !pifo.empty()) service();

  result.sp_drops = sp.counters().dropped;
  result.sp_dequeue_inversions = sp.counters().dequeue_inversions;
  result.sp_push_downs = sp.counters().push_downs;
  result.pifo_drops = pifo.drops();
  result.sp_high_priority_drops = sp_hp_drops;
  result.pifo_high_priority_drops = pifo_hp_drops;

  // Rank error: compare the two dequeue sequences position-wise over the
  // common prefix (drop patterns may differ slightly).
  const std::size_t n = std::min(sp_order.size(), pifo_order.size());
  double err = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    err += std::abs(static_cast<double>(sp_order[k]) -
                    static_cast<double>(pifo_order[k]));
  }
  result.mean_rank_error = n ? err / static_cast<double>(n) : 0.0;
  return result;
}

}  // namespace intox::sppifo
