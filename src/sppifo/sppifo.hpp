// SP-PIFO (Alcoz et al., NSDI'20): approximating PIFO scheduling with a
// bank of strict-priority FIFO queues and adaptive queue bounds.
//
// Queues 0..k-1 (0 = highest priority) carry bounds q_0 <= ... <= q_{k-1}.
// A packet of rank r is mapped bottom-up to the first queue whose bound
// is <= r; on enqueue the bound is raised to r ("push-up"). If even the
// top queue's bound exceeds r, an inversion just happened: the packet is
// forced into queue 0 and all bounds are decreased by the inversion
// magnitude ("push-down").
//
// The mapping provably adapts well when ranks arrive in *random* order —
// the assumption §3.2 of the HotNets paper attacks: an adversary who
// controls arrival order can keep the bounds permanently mis-calibrated,
// inflating inversions and forcing drops of high-priority traffic.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sppifo/pifo.hpp"

namespace intox::sppifo {

struct SpPifoConfig {
  std::size_t queues = 8;
  std::size_t per_queue_capacity = 16;
};

class SpPifo {
 public:
  explicit SpPifo(const SpPifoConfig& config);

  /// Maps and enqueues; returns the queue index or nullopt on drop.
  std::optional<std::size_t> enqueue(RankedPacket p);

  /// Strict-priority dequeue (queue 0 first; FIFO within a queue).
  std::optional<RankedPacket> dequeue();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const std::vector<std::uint32_t>& bounds() const {
    return bounds_;
  }

  struct Counters {
    std::uint64_t enqueued = 0;
    std::uint64_t dropped = 0;
    std::uint64_t push_downs = 0;          // inversion adaptations
    std::uint64_t inversion_magnitude = 0; // sum of q_0 - r at push-down
    /// Dequeue-time inversions: a packet left while a smaller rank waits.
    std::uint64_t dequeue_inversions = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Smallest rank currently queued (for inversion accounting).
  [[nodiscard]] std::optional<std::uint32_t> min_queued_rank() const;

 private:
  SpPifoConfig config_;
  std::vector<std::uint32_t> bounds_;
  std::vector<std::deque<RankedPacket>> queues_;
  Counters counters_;
};

}  // namespace intox::sppifo
