// Span/trace layer emitting Chrome trace-event JSON.
//
// Setting INTOX_TRACE=out.json (or calling set_trace_path) makes every
// instrumented scope — runner dispatches and shards, scheduler drain
// batches, per-bench phases — record a "complete" (ph:"X") event into a
// per-thread buffer. trace_flush() (installed via atexit, and called by
// BenchSession teardown) merges the buffers and writes a file loadable
// in about://tracing or https://ui.perfetto.dev.
//
// Cost model: when tracing is disabled (the default) every entry point
// is one relaxed atomic load and a branch — cheap enough to leave in
// the scheduler drain loop. When enabled, recording appends to a
// thread-local vector under an uncontended spin lock (taken only so a
// concurrent flush can drain safely).
//
// Event names and categories must be string literals (or otherwise
// outlive the process): buffers store the pointers, not copies.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace intox::obs {

/// True when a trace sink is configured. Inline fast path for hot code.
bool trace_enabled();

/// Overrides the INTOX_TRACE environment variable (tests, --trace-out).
/// An empty path disables tracing. Safe to call before any recording.
void set_trace_path(std::string path);
[[nodiscard]] std::string trace_path();

/// Monotonic microseconds since process trace-clock start — the `ts`
/// domain of emitted events. Meaningful only while tracing is enabled.
double trace_now_us();

/// Records a complete event (`ph:"X"`) that started at `start_us` (a
/// prior trace_now_us() value) and ends now. Up to two optional integer
/// args are attached as {arg0_name: arg0, arg1_name: arg1}; pass
/// nullptr names to omit. No-op when tracing is disabled.
void trace_complete(const char* name, const char* category, double start_us,
                    const char* arg0_name = nullptr, std::uint64_t arg0 = 0,
                    const char* arg1_name = nullptr, std::uint64_t arg1 = 0);

/// Records an instant event (`ph:"i"`). No-op when disabled.
void trace_instant(const char* name, const char* category);

/// Records a counter event (`ph:"C"`) sampling `value` under `series`.
void trace_counter(const char* name, const char* series, double value);

/// Writes all buffered events to the configured path. Idempotent per
/// buffer content (events are drained); returns false on I/O failure or
/// when tracing is disabled. Registered with atexit on first enable, so
/// plain benches need not call it explicitly.
bool trace_flush();

/// RAII complete-event span. Construction snapshots the clock;
/// destruction emits. The two arg slots can be filled before scope exit
/// (e.g. events processed in the batch).
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category)
      : name_(name), category_(category),
        enabled_(trace_enabled()), start_us_(enabled_ ? trace_now_us() : 0) {}
  ~TraceSpan() {
    if (enabled_) {
      trace_complete(name_, category_, start_us_, arg0_name_, arg0_,
                     arg1_name_, arg1_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void arg0(const char* key, std::uint64_t v) { arg0_name_ = key; arg0_ = v; }
  void arg1(const char* key, std::uint64_t v) { arg1_name_ = key; arg1_ = v; }
  [[nodiscard]] bool enabled() const { return enabled_; }

 private:
  const char* name_;
  const char* category_;
  bool enabled_;
  double start_us_;
  const char* arg0_name_ = nullptr;
  std::uint64_t arg0_ = 0;
  const char* arg1_name_ = nullptr;
  std::uint64_t arg1_ = 0;
};

}  // namespace intox::obs
