#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"
#include "validate/invariant.hpp"

namespace intox::obs {

std::size_t metric_shard_index() {
  // intox-analyze: hot-lane
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return slot;
}

namespace {

void atomic_add_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets ? buckets : 1)),
      buckets_(buckets) {
  INTOX_INVARIANT(hi > lo && buckets > 0,
                  "histogram metric needs hi > lo and buckets > 0 "
                  "(got lo=%g hi=%g buckets=%zu)", lo, hi, buckets);
  if (buckets_ == 0) buckets_ = 1;  // degraded path: one catch-all bucket
  shards_.reserve(kMetricShards);
  for (std::size_t i = 0; i < kMetricShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(buckets_));
  }
}

void HistogramMetric::observe(double x) {
  // intox-analyze: hot-lane
  Shard& s = *shards_[metric_shard_index()];
  if (std::isnan(x)) {
    // NaN carries no bucket; count it as overflow so total stays
    // conserved and the report shows the sample was not lost.
    s.overflow.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x < lo_) {
    s.underflow.fetch_add(1, std::memory_order_relaxed);
  } else if (x >= hi_) {
    s.overflow.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= buckets_) idx = buckets_ - 1;  // hi-edge rounding guard
    s.counts[idx].fetch_add(1, std::memory_order_relaxed);
  }
  atomic_add_double(s.sum, x);
  atomic_min_double(s.min, x);
  atomic_max_double(s.max, x);
}

HistogramMetric::Snapshot HistogramMetric::snapshot() const {
  Snapshot snap;
  snap.lo = lo_;
  snap.hi = hi_;
  snap.buckets.assign(buckets_, 0);
  // Fold in shard-index order — the deterministic reduction the header
  // promises.
  for (const auto& shard : shards_) {
    const Shard& s = *shard;
    for (std::size_t b = 0; b < buckets_; ++b) {
      snap.buckets[b] += s.counts[b].load(std::memory_order_relaxed);
    }
    snap.underflow += s.underflow.load(std::memory_order_relaxed);
    snap.overflow += s.overflow.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.min = std::min(snap.min, s.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, s.max.load(std::memory_order_relaxed));
  }
  snap.total = snap.underflow + snap.overflow;
  for (std::uint64_t c : snap.buckets) snap.total += c;
  return snap;
}

void HistogramMetric::reset() {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
    s.underflow.store(0, std::memory_order_relaxed);
    s.overflow.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
  }
}

void HistogramMetric::Snapshot::merge(const Snapshot& other) {
  INTOX_INVARIANT(mergeable(other),
                  "merging mismatched histogram snapshots: [%g,%g)x%zu vs "
                  "[%g,%g)x%zu", lo, hi, buckets.size(), other.lo, other.hi,
                  other.buckets.size());
  if (!mergeable(other)) return;  // degraded path: skip, never mix layouts
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
  underflow += other.underflow;
  overflow += other.overflow;
  total += other.total;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlives all dtors
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

HistogramMetric& Registry::histogram(std::string_view name, double lo,
                                     double hi, std::size_t buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<HistogramMetric>(lo, hi, buckets))
             .first;
  } else {
    INTOX_INVARIANT(it->second->lo() == lo && it->second->hi() == hi &&
                        it->second->bucket_count() == buckets,
                    "histogram '%.*s' re-registered with different bounds: "
                    "[%g,%g)x%zu vs existing [%g,%g)x%zu",
                    static_cast<int>(name.size()), name.data(), lo, hi,
                    buckets, it->second->lo(), it->second->hi(),
                    it->second->bucket_count());
  }
  return *it->second;
}

void Registry::register_external_counter(std::string name,
                                         std::function<std::uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  external_counters_[std::move(name)] = std::move(fn);
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, fn] : external_counters_) {
    snap.counters[name] = fn();
  }
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  return snap;
}

void Registry::mark_placement_dependent(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& n : placement_dependent_) {
    if (n == name) return;
  }
  placement_dependent_.emplace_back(name);
}

Registry::Snapshot Registry::deterministic_snapshot() const {
  Snapshot snap = snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& name : placement_dependent_) {
    snap.counters.erase(name);
    snap.gauges.erase(name);
    snap.histograms.erase(name);
  }
  return snap;
}

std::string Registry::to_json(const Snapshot& snap) {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.key("lo").value(h.lo);
    w.key("hi").value(h.hi);
    w.key("buckets").begin_array();
    for (std::uint64_t c : h.buckets) w.value(c);
    w.end_array();
    w.key("underflow").value(h.underflow);
    w.key("overflow").value(h.overflow);
    w.key("total").value(h.total);
    w.key("sum").value(h.sum);
    // Unobserved histograms have infinite extremes — render as null.
    w.key("min").value(h.total ? h.min
                               : std::numeric_limits<double>::quiet_NaN());
    w.key("max").value(h.total ? h.max
                               : std::numeric_limits<double>::quiet_NaN());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

void Registry::reset_values_for_test() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace intox::obs
