#include "obs/flightrec.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "validate/invariant.hpp"

namespace intox::obs {

namespace {

constexpr std::size_t kWordsPerRecord = 5;
constexpr std::size_t kMaxThreads = 512;
constexpr std::uint64_t kDecisionCapacity = 1024;
constexpr std::uint64_t kDefaultHotCapacity = 4096;
constexpr std::uint64_t kMinCapacity = 64;
constexpr std::uint64_t kMaxCapacity = 1u << 20;

const char* const kTypeNames[kFrTypeCount] = {
    "none",           "sched.fire",  "link.drop",  "invariant.raise",
    "blink.retx",     "blink.reroute", "blink.veto", "pcc.decision",
    "pytheas.move",   "attacker.action", "note",
};

// Hot lane: per-packet/per-event volume. Everything else is a
// control-plane decision and goes to the separate lane so data-plane
// floods cannot evict it.
bool is_hot_lane(FrType type) {
  switch (type) {
    case FrType::kSchedFire:
    case FrType::kLinkDrop:
    case FrType::kBlinkRetx:
    case FrType::kAttackerAction:
      return true;
    default:
      return false;
  }
}

std::uint64_t round_up_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Fixed-capacity text slot readable from a signal handler: bytes are
// packed into relaxed atomic words, length published last. A reader
// racing a store may see torn *content*, never a data race or an
// out-of-bounds length.
struct AtomicText {
  static constexpr std::size_t kWords = 48;
  static constexpr std::size_t kBytes = kWords * 8;  // 384

  std::atomic<std::uint64_t> words[kWords];
  std::atomic<std::uint32_t> length{0};

  void store_text(const char* text) {
    std::size_t len = text == nullptr ? 0 : std::strlen(text);
    if (len > kBytes) len = kBytes;
    length.store(0, std::memory_order_release);
    for (std::size_t w = 0; w * 8 < len; ++w) {
      std::uint64_t word = 0;
      for (std::size_t b = 0; b < 8 && w * 8 + b < len; ++b) {
        word |= static_cast<std::uint64_t>(
                    static_cast<unsigned char>(text[w * 8 + b]))
                << (8 * b);
      }
      words[w].store(word, std::memory_order_relaxed);
    }
    length.store(static_cast<std::uint32_t>(len), std::memory_order_release);
  }

  // `out` must hold kBytes + 1; returns the NUL-terminated length.
  std::size_t load_text(char* out) const {
    std::size_t len = length.load(std::memory_order_acquire);
    if (len > kBytes) len = kBytes;
    for (std::size_t w = 0; w * 8 < len; ++w) {
      const std::uint64_t word = words[w].load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < 8 && w * 8 + b < len; ++b) {
        out[w * 8 + b] = static_cast<char>((word >> (8 * b)) & 0xff);
      }
    }
    out[len] = '\0';
    return len;
  }
};

// One lane: single-writer ring of records as bare atomic words. head
// counts all records ever written; slot = seq & mask.
struct Ring {
  std::atomic<std::uint64_t>* words;
  std::uint64_t capacity;
  std::uint64_t mask;
  std::atomic<std::uint64_t> head{0};

  explicit Ring(std::uint64_t cap)
      : words(new std::atomic<std::uint64_t>[cap * kWordsPerRecord]()),
        capacity(cap),
        mask(cap - 1) {}
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  void write(std::uint64_t time, std::uint64_t type, std::uint64_t a,
             std::uint64_t b, std::uint64_t c) {
    // intox-analyze: hot-lane
    const std::uint64_t seq = head.load(std::memory_order_relaxed);
    const std::size_t base =
        static_cast<std::size_t>(seq & mask) * kWordsPerRecord;
    words[base + 0].store(time, std::memory_order_relaxed);
    words[base + 1].store(type, std::memory_order_relaxed);
    words[base + 2].store(a, std::memory_order_relaxed);
    words[base + 3].store(b, std::memory_order_relaxed);
    words[base + 4].store(c, std::memory_order_relaxed);
    head.store(seq + 1, std::memory_order_release);
  }
};

struct ThreadSlot {
  std::uint32_t tid;
  Ring hot;
  Ring decision;

  ThreadSlot(std::uint32_t tid_in, std::uint64_t hot_cap)
      : tid(tid_in), hot(hot_cap), decision(kDecisionCapacity) {}
};

// Leaked by design: a signal handler must be able to walk every ring
// that ever existed, including ones owned by already-exited threads.
std::atomic<ThreadSlot*> g_slots[kMaxThreads];
std::atomic<std::uint32_t> g_thread_count{0};

thread_local ThreadSlot* t_slot = nullptr;
thread_local bool t_rejected = false;

// -1 = unresolved (read INTOX_FLIGHTREC on first use).
std::atomic<int> g_enabled_state{-1};
std::atomic<std::uint64_t> g_hot_capacity{0};

AtomicText g_scenario;
AtomicText g_dump_path;

// Signal-handler-readable mirror of the last invariant messages (the
// validate-side ring is mutex-guarded and off limits mid-crash).
constexpr std::size_t kMessageSlots = 8;
AtomicText g_messages[kMessageSlots];
std::atomic<std::uint32_t> g_message_count{0};

std::atomic<bool> g_dumped{false};

std::uint64_t hot_capacity() {
  std::uint64_t cap = g_hot_capacity.load(std::memory_order_relaxed);
  if (cap == 0) {
    cap = kDefaultHotCapacity;
    if (const char* env = std::getenv("INTOX_FLIGHTREC_CAPACITY")) {
      const std::uint64_t parsed = std::strtoull(env, nullptr, 10);
      if (parsed > 0) cap = parsed;
    }
    if (cap < kMinCapacity) cap = kMinCapacity;
    if (cap > kMaxCapacity) cap = kMaxCapacity;
    cap = round_up_pow2(cap);
    g_hot_capacity.store(cap, std::memory_order_relaxed);
  }
  return cap;
}

ThreadSlot* register_thread() {
  const std::uint32_t idx =
      g_thread_count.fetch_add(1, std::memory_order_acq_rel);
  if (idx >= kMaxThreads) return nullptr;
  auto* slot = new ThreadSlot(idx + 1, hot_capacity());
  g_slots[idx].store(slot, std::memory_order_release);
  return slot;
}

// ---------------------------------------------------------------------
// Async-signal-safe JSON writer: open/write(2) through a stack buffer;
// no allocation, no stdio, no locale.
class SigWriter {
 public:
  explicit SigWriter(int fd) : fd_(fd) {}

  void put(char ch) {
    if (len_ == sizeof(buf_)) flush();
    buf_[len_++] = ch;
  }

  void text(const char* s) {
    for (; *s != '\0'; ++s) put(*s);
  }

  // JSON string literal, quotes included.
  void string(const char* s) {
    put('"');
    for (; *s != '\0'; ++s) {
      const unsigned char ch = static_cast<unsigned char>(*s);
      if (ch == '"' || ch == '\\') {
        put('\\');
        put(static_cast<char>(ch));
      } else if (ch < 0x20) {
        put('\\');
        put('u');
        put('0');
        put('0');
        static const char kHex[] = "0123456789abcdef";
        put(kHex[ch >> 4]);
        put(kHex[ch & 0xf]);
      } else {
        put(static_cast<char>(ch));
      }
    }
    put('"');
  }

  void u64(std::uint64_t v) {
    char digits[20];
    std::size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put(digits[--n]);
  }

  void flush() {
    std::size_t off = 0;
    while (off < len_) {
      const ssize_t wrote = ::write(fd_, buf_ + off, len_ - off);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        break;  // nothing recoverable mid-crash; keep what we have
      }
      off += static_cast<std::size_t>(wrote);
    }
    len_ = 0;
  }

 private:
  int fd_;
  std::size_t len_ = 0;
  char buf_[4096];
};

void emit_lane(SigWriter& w, const char* lane_name, const Ring& ring) {
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::uint64_t kept = head < ring.capacity ? head : ring.capacity;
  w.text("{\"lane\":");
  w.string(lane_name);
  w.text(",\"capacity\":");
  w.u64(ring.capacity);
  w.text(",\"recorded\":");
  w.u64(head);
  w.text(",\"dropped\":");
  w.u64(head - kept);
  w.text(",\"records\":[");
  for (std::uint64_t seq = head - kept; seq < head; ++seq) {
    if (seq != head - kept) w.put(',');
    const std::size_t base =
        static_cast<std::size_t>(seq & ring.mask) * kWordsPerRecord;
    w.put('[');
    for (std::size_t word = 0; word < kWordsPerRecord; ++word) {
      if (word != 0) w.put(',');
      w.u64(ring.words[base + word].load(std::memory_order_relaxed));
    }
    w.put(']');
  }
  w.text("]}");
}

// ---------------------------------------------------------------------
// Failure plumbing.

void invariant_observer(const char* file, int line, const char* message) {
  (void)file;
  flightrec_record(FrType::kInvariantRaise, 0,
                   validate::invariant_violations(),
                   static_cast<std::uint64_t>(line));
  const std::uint32_t n =
      g_message_count.fetch_add(1, std::memory_order_acq_rel);
  g_messages[n % kMessageSlots].store_text(message);
}

void invariant_fatal_hook(const char* message) {
  flightrec_dump_on_crash("invariant", message);
}

const char* signal_reason(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "signal:SIGSEGV";
    case SIGABRT:
      return "signal:SIGABRT";
    case SIGBUS:
      return "signal:SIGBUS";
    case SIGFPE:
      return "signal:SIGFPE";
    case SIGILL:
      return "signal:SIGILL";
    default:
      return "signal:unknown";
  }
}

void crash_handler(int sig) {
  // Restore default disposition first so a fault inside the dump path
  // terminates instead of recursing, then re-raise to preserve the
  // kill-by-signal exit status.
  struct sigaction dfl;
  std::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  ::sigaction(sig, &dfl, nullptr);
  flightrec_dump_on_crash(signal_reason(sig), "");
  ::raise(sig);
}

void install_signal_handlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &crash_handler;
  ::sigemptyset(&action.sa_mask);
  const int kSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
  for (const int sig : kSignals) ::sigaction(sig, &action, nullptr);
}

}  // namespace

const char* flightrec_type_name(FrType type) {
  const auto idx = static_cast<std::size_t>(type);
  return idx < kFrTypeCount ? kTypeNames[idx] : kTypeNames[0];
}

bool flightrec_enabled() {
  int state = g_enabled_state.load(std::memory_order_relaxed);
  if (state < 0) [[unlikely]] {
    state = 1;
    if (const char* env = std::getenv("INTOX_FLIGHTREC")) {
      if (env[0] == '0' && env[1] == '\0') state = 0;
    }
    g_enabled_state.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_flightrec_enabled(bool enabled) {
  g_enabled_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void flightrec_record(FrType type, std::uint64_t time, std::uint64_t a,
                      std::uint64_t b, std::uint64_t c) {
  // intox-analyze: hot-lane
  if (!flightrec_enabled()) return;
  ThreadSlot* slot = t_slot;
  if (slot == nullptr) [[unlikely]] {
    if (t_rejected) return;
    slot = register_thread();
    if (slot == nullptr) {
      t_rejected = true;
      return;
    }
    t_slot = slot;
  }
  Ring& ring = is_hot_lane(type) ? slot->hot : slot->decision;
  ring.write(time, static_cast<std::uint64_t>(type), a, b, c);
}

void flightrec_set_scenario(const char* name) {
  g_scenario.store_text(name);
}

void set_flightrec_dump_path(const std::string& path) {
  g_dump_path.store_text(path.c_str());
}

std::string flightrec_dump_path() {
  char buf[AtomicText::kBytes + 1];
  const std::size_t len = g_dump_path.load_text(buf);
  return std::string(buf, len);
}

void flightrec_init() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* env = std::getenv("INTOX_FLIGHTREC_DUMP")) {
      if (env[0] != '\0') g_dump_path.store_text(env);
    }
    validate::set_invariant_observer(&invariant_observer);
    validate::set_invariant_fatal_hook(&invariant_fatal_hook);
    install_signal_handlers();
  });
}

bool flightrec_dump(const char* path, const char* reason,
                    const char* detail) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  SigWriter w(fd);

  w.text("{\"schema\":");
  w.string(kFlightrecSchema);
  w.text(",\"pid\":");
  w.u64(static_cast<std::uint64_t>(::getpid()));
  w.text(",\"reason\":");
  w.string(reason != nullptr ? reason : "");
  w.text(",\"detail\":");
  w.string(detail != nullptr ? detail : "");

  char textbuf[AtomicText::kBytes + 1];
  g_scenario.load_text(textbuf);
  w.text(",\"scenario\":");
  w.string(textbuf);

  w.text(",\"types\":[");
  for (std::size_t i = 0; i < kFrTypeCount; ++i) {
    if (i != 0) w.put(',');
    w.string(kTypeNames[i]);
  }
  w.text("]");

  w.text(",\"invariants\":{\"violations\":");
  w.u64(validate::invariant_violations());
  w.text(",\"recent_messages\":[");
  const std::uint32_t message_count =
      g_message_count.load(std::memory_order_acquire);
  const std::uint32_t messages =
      message_count < kMessageSlots
          ? message_count
          : static_cast<std::uint32_t>(kMessageSlots);
  for (std::uint32_t i = message_count - messages; i < message_count; ++i) {
    if (i != message_count - messages) w.put(',');
    g_messages[i % kMessageSlots].load_text(textbuf);
    w.string(textbuf);
  }
  w.text("]}");

  const std::uint32_t threads =
      g_thread_count.load(std::memory_order_acquire);
  const std::uint64_t dropped_threads =
      threads > kMaxThreads ? threads - kMaxThreads : 0;
  w.text(",\"dropped_threads\":");
  w.u64(dropped_threads);

  w.text(",\"threads\":[");
  bool first = true;
  const std::uint32_t published =
      threads < kMaxThreads ? threads : static_cast<std::uint32_t>(kMaxThreads);
  for (std::uint32_t idx = 0; idx < published; ++idx) {
    const ThreadSlot* slot = g_slots[idx].load(std::memory_order_acquire);
    if (slot == nullptr) continue;  // registration in flight mid-crash
    if (!first) w.put(',');
    first = false;
    w.text("{\"tid\":");
    w.u64(slot->tid);
    w.text(",\"lanes\":[");
    emit_lane(w, "hot", slot->hot);
    w.put(',');
    emit_lane(w, "decision", slot->decision);
    w.text("]}");
  }
  w.text("]}\n");
  w.flush();
  ::close(fd);
  return true;
}

bool flightrec_dump_on_crash(const char* reason, const char* detail) {
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) return false;
  char path[AtomicText::kBytes + 1];
  if (g_dump_path.load_text(path) == 0) return false;
  return flightrec_dump(path, reason, detail);
}

std::uint64_t flightrec_records_recorded() {
  std::uint64_t total = 0;
  const std::uint32_t threads =
      g_thread_count.load(std::memory_order_acquire);
  const std::uint32_t published =
      threads < kMaxThreads ? threads : static_cast<std::uint32_t>(kMaxThreads);
  for (std::uint32_t idx = 0; idx < published; ++idx) {
    const ThreadSlot* slot = g_slots[idx].load(std::memory_order_acquire);
    if (slot == nullptr) continue;
    total += slot->hot.head.load(std::memory_order_acquire);
    total += slot->decision.head.load(std::memory_order_acquire);
  }
  return total;
}

std::size_t flightrec_registered_threads() {
  std::size_t count = 0;
  const std::uint32_t threads =
      g_thread_count.load(std::memory_order_acquire);
  const std::uint32_t published =
      threads < kMaxThreads ? threads : static_cast<std::uint32_t>(kMaxThreads);
  for (std::uint32_t idx = 0; idx < published; ++idx) {
    if (g_slots[idx].load(std::memory_order_acquire) != nullptr) ++count;
  }
  return count;
}

std::uint32_t flightrec_this_thread_tid() {
  if (t_slot == nullptr && !t_rejected) {
    ThreadSlot* slot = register_thread();
    if (slot == nullptr) {
      t_rejected = true;
    } else {
      t_slot = slot;
    }
  }
  return t_slot != nullptr ? t_slot->tid : 0;
}

}  // namespace intox::obs
