// Minimal JSON serializer for the observability layer.
//
// Every machine-readable artifact this repo emits — the per-sweep perf
// lines, the BENCH_<family>.json run reports, the Chrome trace files —
// goes through this writer so string escaping and number formatting are
// correct in one place. (The previous hand-rolled fprintf in
// bench_util.hpp emitted sweep names unescaped; a quote in a sweep name
// produced invalid JSON.)
//
// Numbers: doubles are rendered with std::to_chars (shortest round-trip
// form); NaN and infinities have no JSON representation and are emitted
// as null.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace intox::obs {

/// Returns `s` with JSON string escapes applied ("\"", "\\", control
/// characters as \u00XX, and the common \n \r \t \b \f short forms).
/// Bytes >= 0x20 other than quote/backslash pass through untouched, so
/// UTF-8 payloads survive.
std::string json_escape(std::string_view s);

/// Renders a double as a JSON number token (shortest round-trip), or
/// "null" for NaN / infinity.
std::string json_number(double v);

/// A streaming JSON writer with comma/nesting bookkeeping. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("schema").value("intox.bench_report.v1");
///   w.key("sweeps").begin_array();
///   ...
///   w.end_array().end_object();
///   file << w.str();
///
/// The writer trusts its caller to produce a well-formed sequence (keys
/// only inside objects, matched begin/end); it is an internal tool, not
/// a validator.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view{s}); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);
  /// Splices a pre-rendered JSON token (e.g. a nested document).
  JsonWriter& raw(std::string_view token);

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void element_prefix();

  std::string out_;
  // One flag per open scope: has the scope already emitted an element?
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

}  // namespace intox::obs
