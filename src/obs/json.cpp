#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace intox::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void JsonWriter::element_prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  element_prefix();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element_prefix();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  element_prefix();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  element_prefix();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  element_prefix();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element_prefix();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element_prefix();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element_prefix();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view token) {
  element_prefix();
  out_ += token;
  return *this;
}

}  // namespace intox::obs
