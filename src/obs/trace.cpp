#include "obs/trace.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace intox::obs {

namespace {

struct Event {
  const char* name;
  const char* category;
  char phase;        // 'X', 'i', 'C'
  double ts_us;
  double dur_us;     // X only
  std::uint32_t tid;
  const char* arg0_name = nullptr;
  std::uint64_t arg0 = 0;
  const char* arg1_name = nullptr;
  std::uint64_t arg1 = 0;
  double counter_value = 0.0;  // C only (arg0_name holds the series)
};

/// Tiny test-and-set lock: the recording thread owns its buffer, so the
/// only contention is a concurrent trace_flush — rare and short.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

struct ThreadBuffer {
  SpinLock lock;
  std::uint32_t tid = 0;
  std::vector<Event> events;
};

struct Tracer {
  std::atomic<bool> enabled{false};
  std::mutex mu;  // guards path + buffer registry
  std::string path;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
  // Trace timestamps measure the host, not the simulation; they never
  // feed back into trial results or stdout.
  // intox-lint: allow(determinism)  -- host-side trace timestamps only
  std::chrono::steady_clock::time_point epoch =
      // intox-lint: allow(determinism)  -- host-side trace timestamps only
      std::chrono::steady_clock::now();
  bool atexit_installed = false;
};

Tracer& tracer() {
  static Tracer* t = [] {
    auto* tr = new Tracer();  // leaked: must outlive thread-local dtors
    if (const char* env = std::getenv("INTOX_TRACE")) {
      if (env[0] != '\0') {
        tr->path = env;
        tr->enabled.store(true, std::memory_order_relaxed);
      }
    }
    return tr;
  }();
  return *t;
}

void install_atexit_locked(Tracer& t) {
  if (!t.atexit_installed) {
    t.atexit_installed = true;
    std::atexit([] { trace_flush(); });
  }
}

ThreadBuffer& this_thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Tracer& t = tracer();
    std::lock_guard<std::mutex> lock(t.mu);
    b->tid = t.next_tid++;
    t.buffers.push_back(b);  // shared: survives this thread's exit
    return b;
  }();
  return *buf;
}

void record(Event e) {
  ThreadBuffer& buf = this_thread_buffer();
  e.tid = buf.tid;
  buf.lock.lock();
  buf.events.push_back(e);
  buf.lock.unlock();
}

}  // namespace

bool trace_enabled() {
  return tracer().enabled.load(std::memory_order_relaxed);
}

void set_trace_path(std::string path) {
  Tracer& t = tracer();
  std::lock_guard<std::mutex> lock(t.mu);
  t.path = std::move(path);
  t.enabled.store(!t.path.empty(), std::memory_order_relaxed);
  // The analyzer attributes lambda bodies to their enclosing function;
  // the atexit lambda registered inside runs at process exit, unlocked.
  // intox-analyze: allow(lockorder, atexit lambda runs at exit unlocked)
  if (!t.path.empty()) install_atexit_locked(t);
}

std::string trace_path() {
  Tracer& t = tracer();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.path;
}

double trace_now_us() {
  // Host-time span timestamps; see Tracer::epoch.
  // intox-lint: allow(determinism)  -- host-side trace timestamps only
  const auto dt = std::chrono::steady_clock::now() - tracer().epoch;
  return std::chrono::duration<double, std::micro>(dt).count();
}

void trace_complete(const char* name, const char* category, double start_us,
                    const char* arg0_name, std::uint64_t arg0,
                    const char* arg1_name, std::uint64_t arg1) {
  if (!trace_enabled()) return;
  Event e{};
  e.name = name;
  e.category = category;
  e.phase = 'X';
  e.ts_us = start_us;
  e.dur_us = trace_now_us() - start_us;
  if (e.dur_us < 0) e.dur_us = 0;
  e.arg0_name = arg0_name;
  e.arg0 = arg0;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  record(e);
}

void trace_instant(const char* name, const char* category) {
  if (!trace_enabled()) return;
  Event e{};
  e.name = name;
  e.category = category;
  e.phase = 'i';
  e.ts_us = trace_now_us();
  record(e);
}

void trace_counter(const char* name, const char* series, double value) {
  if (!trace_enabled()) return;
  Event e{};
  e.name = name;
  e.category = "counter";
  e.phase = 'C';
  e.ts_us = trace_now_us();
  e.arg0_name = series;
  e.counter_value = value;
  record(e);
}

bool trace_flush() {
  Tracer& t = tracer();
  std::string path;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(t.mu);
    if (t.path.empty()) return false;
    path = t.path;
    buffers = t.buffers;  // snapshot; new threads append to new buffers
  }

  std::vector<Event> events;
  for (const auto& buf : buffers) {
    buf->lock.lock();
    events.insert(events.end(), buf->events.begin(), buf->events.end());
    buf->events.clear();
    buf->lock.unlock();
  }

  // Append when the file already has a flush's worth of events? No —
  // the Chrome format is one document. Flush rewrites the whole file
  // from the events drained so far plus everything drained before.
  static std::mutex written_mu;
  static std::vector<Event>* written = new std::vector<Event>();
  std::lock_guard<std::mutex> wlock(written_mu);
  written->insert(written->end(), events.begin(), events.end());

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const Event& e : *written) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value(e.category);
    w.key("ph").value(std::string_view{&e.phase, 1});
    w.key("ts").value(e.ts_us);
    if (e.phase == 'X') w.key("dur").value(e.dur_us);
    // Real pid so merged multi-process sweep traces get per-pid lanes.
    w.key("pid").value(static_cast<std::uint64_t>(::getpid()));
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    if (e.phase == 'C') {
      w.key("args").begin_object();
      w.key(e.arg0_name ? e.arg0_name : "value").value(e.counter_value);
      w.end_object();
    } else if (e.arg0_name || e.arg1_name) {
      w.key("args").begin_object();
      if (e.arg0_name) w.key(e.arg0_name).value(e.arg0);
      if (e.arg1_name) w.key(e.arg1_name).value(e.arg1);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string& doc = w.str();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

}  // namespace intox::obs
