#include "obs/json_parse.hpp"

#include <cstdio>
#include <cstdlib>

namespace intox::obs {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  bool parse(JsonValue* out, std::string* error) {
    skip_ws();
    if (!parse_value(out, 0)) {
      fill_error(error);
      return false;
    }
    skip_ws();
    if (pos_ != input_.size()) {
      message_ = "trailing content after top-level value";
      fill_error(error);
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* message) {
    if (message_ == nullptr) message_ = message;
    return false;
  }

  void fill_error(std::string* error) const {
    if (error == nullptr) return;
    *error = std::string(message_ != nullptr ? message_ : "parse error") +
             " at byte " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < input_.size()) {
      const char ch = input_[pos_];
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (input_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= input_.size()) return fail("unexpected end of input");
    switch (input_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->text);
      case 't':
        if (!literal("true")) return fail("invalid literal");
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("invalid literal");
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("invalid literal");
        out->kind = JsonValue::Kind::kNull;
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    skip_ws();
    if (pos_ < input_.size() && input_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= input_.size() || input_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= input_.size() || input_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= input_.size()) return fail("unterminated object");
      if (input_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (input_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    skip_ws();
    if (pos_ < input_.size() && input_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->items.push_back(std::move(value));
      skip_ws();
      if (pos_ >= input_.size()) return fail("unterminated array");
      if (input_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (input_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  static void append_utf8(std::string* out, unsigned code_point) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xe0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < input_.size()) {
      const char ch = input_[pos_];
      if (ch == '"') {
        ++pos_;
        return true;
      }
      if (ch == '\\') {
        ++pos_;
        if (pos_ >= input_.size()) return fail("unterminated escape");
        const char esc = input_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > input_.size()) return fail("truncated \\u escape");
            unsigned code_point = 0;
            for (int i = 0; i < 4; ++i) {
              const char hex = input_[pos_++];
              code_point <<= 4;
              if (hex >= '0' && hex <= '9') {
                code_point |= static_cast<unsigned>(hex - '0');
              } else if (hex >= 'a' && hex <= 'f') {
                code_point |= static_cast<unsigned>(hex - 'a' + 10);
              } else if (hex >= 'A' && hex <= 'F') {
                code_point |= static_cast<unsigned>(hex - 'A' + 10);
              } else {
                return fail("invalid \\u escape");
              }
            }
            append_utf8(out, code_point);
            break;
          }
          default:
            return fail("invalid escape character");
        }
        continue;
      }
      out->push_back(ch);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const char* begin = input_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) return fail("invalid value");
    // strtod accepts more than JSON (hex, inf, nan) — reject those.
    for (const char* p = begin; p != end; ++p) {
      const char ch = *p;
      const bool json_number_char =
          (ch >= '0' && ch <= '9') || ch == '-' || ch == '+' || ch == '.' ||
          ch == 'e' || ch == 'E';
      if (!json_number_char) return fail("invalid number");
    }
    pos_ += static_cast<std::size_t>(end - begin);
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return true;
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  const char* message_ = nullptr;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind != Kind::kNumber) return 0;
  if (number <= 0.0) return 0;
  return static_cast<std::uint64_t>(number);
}

double JsonValue::as_number() const {
  return kind == Kind::kNumber ? number : 0.0;
}

bool json_parse(std::string_view input, JsonValue* out, std::string* error) {
  Parser parser(input);
  return parser.parse(out, error);
}

bool json_parse_file(const std::string& path, JsonValue* out,
                     std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string content;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    content.append(buf, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    if (error != nullptr) *error = "error reading " + path;
    return false;
  }
  return json_parse(content, out, error);
}

}  // namespace intox::obs
