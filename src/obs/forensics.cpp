#include "obs/forensics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "obs/json.hpp"
#include "obs/json_parse.hpp"

namespace intox::obs {

namespace {

std::string ipv4_text(std::uint64_t addr) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u",
                static_cast<unsigned>((addr >> 24) & 0xff),
                static_cast<unsigned>((addr >> 16) & 0xff),
                static_cast<unsigned>((addr >> 8) & 0xff),
                static_cast<unsigned>(addr & 0xff));
  return buf;
}

std::string prefix_text(std::uint64_t addr, std::uint64_t len) {
  return ipv4_text(addr) + "/" + std::to_string(len);
}

const char* drop_cause_name(std::uint64_t cause) {
  switch (static_cast<FrDropCause>(cause)) {
    case FrDropCause::kDown:
      return "down";
    case FrDropCause::kTap:
      return "tap";
    case FrDropCause::kQueue:
      return "queue";
    case FrDropCause::kRed:
      return "red";
  }
  return "unknown";
}

std::string mbps_text(std::uint64_t bps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(bps) / 1e6);
  return std::string(buf) + " Mbps";
}

/// Type-specific one-line decode of a record's payload words.
std::string describe(const FlightrecRecord& r) {
  switch (r.type) {
    case FrType::kSchedFire:
      return "";
    case FrType::kLinkDrop:
      return "cause=" + std::string(drop_cause_name(r.a)) +
             " dst=" + ipv4_text(r.b) + " bytes=" + std::to_string(r.c);
    case FrType::kInvariantRaise:
      return "violation #" + std::to_string(r.a) + " (source line " +
             std::to_string(r.b) + ")";
    case FrType::kBlinkRetx:
      return "prefix=" + prefix_text(r.a, r.b) +
             " retransmitting_flows=" + std::to_string(r.c);
    case FrType::kBlinkReroute:
      return "REROUTE prefix=" + prefix_text(r.a, r.b) +
             " retransmitting_flows=" + std::to_string(r.c);
    case FrType::kBlinkVeto:
      return "veto prefix=" + prefix_text(r.a, r.b) +
             " retransmitting_flows=" + std::to_string(r.c);
    case FrType::kPccDecision:
      if (r.a == 0) return "inconclusive (rate held at " + mbps_text(r.c) + ")";
      return std::string(r.a == 1 ? "rate UP " : "rate DOWN ") +
             mbps_text(r.b) + " -> " + mbps_text(r.c);
    case FrType::kPytheasMove:
      return "group " + std::to_string(r.a) + " arm " + std::to_string(r.b) +
             " -> " + std::to_string(r.c);
    case FrType::kAttackerAction:
      switch (static_cast<FrAttackerKind>(r.a)) {
        case FrAttackerKind::kPccMitmDrop:
          return std::string("pcc-mitm drop (mode=") +
                 (r.b == 0 ? "omniscient" : "shaper") +
                 ", total_dropped=" + std::to_string(r.c) + ")";
        case FrAttackerKind::kBlinkFig2Start:
          return "blink fig2 attack start (malicious_flows=" +
                 std::to_string(r.b) + ", legit_flows=" + std::to_string(r.c) +
                 ")";
      }
      return "kind=" + std::to_string(r.a) + " b=" + std::to_string(r.b) +
             " c=" + std::to_string(r.c);
    case FrType::kNote:
      return "a=" + std::to_string(r.a) + " b=" + std::to_string(r.b) +
             " c=" + std::to_string(r.c);
    case FrType::kNone:
      break;
  }
  return "";
}

/// Sim-time words are nanoseconds for every producer except Pytheas
/// (epoch index); render both readings where ambiguity is harmless.
std::string time_text(const FlightrecRecord& r) {
  if (r.type == FrType::kPytheasMove) {
    return "epoch " + std::to_string(r.time);
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%13.6f s",
                static_cast<double>(r.time) / 1e9);
  return buf;
}

/// Serializes a parsed JsonValue back to a compact token (used when
/// splicing foreign trace events into a merged document).
void serialize_json(const JsonValue& v, std::string* out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      out->append("null");
      return;
    case JsonValue::Kind::kBool:
      out->append(v.boolean ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber:
      out->append(json_number(v.number));
      return;
    case JsonValue::Kind::kString:
      out->push_back('"');
      out->append(json_escape(v.text));
      out->push_back('"');
      return;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items) {
        if (!first) out->push_back(',');
        first = false;
        serialize_json(item, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        out->append(json_escape(key));
        out->append("\":");
        serialize_json(value, out);
      }
      out->push_back('}');
      return;
    }
  }
}

bool write_file(const std::string& path, const std::string& content,
                std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot write " + path;
    return false;
  }
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace

bool load_flightrec_dump(const std::string& path, FlightrecDump* out,
                         std::string* error) {
  JsonValue doc;
  if (!json_parse_file(path, &doc, error)) return false;
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->text != kFlightrecSchema) {
    if (error != nullptr) {
      *error = path + ": not an " + std::string(kFlightrecSchema) +
               " document";
    }
    return false;
  }

  *out = FlightrecDump{};
  if (const JsonValue* v = doc.find("pid")) out->pid = v->as_u64();
  if (const JsonValue* v = doc.find("reason")) out->reason = v->text;
  if (const JsonValue* v = doc.find("detail")) out->detail = v->text;
  if (const JsonValue* v = doc.find("scenario")) out->scenario = v->text;
  if (const JsonValue* v = doc.find("dropped_threads")) {
    out->dropped_threads = v->as_u64();
  }
  if (const JsonValue* inv = doc.find("invariants")) {
    if (const JsonValue* v = inv->find("violations")) {
      out->invariant_violations = v->as_u64();
    }
    if (const JsonValue* v = inv->find("recent_messages")) {
      for (const JsonValue& m : v->items) {
        if (m.is_string()) out->recent_messages.push_back(m.text);
      }
    }
  }

  const JsonValue* threads = doc.find("threads");
  if (threads == nullptr || !threads->is_array()) {
    if (error != nullptr) *error = path + ": missing threads array";
    return false;
  }
  for (const JsonValue& thread : threads->items) {
    const JsonValue* tid_value = thread.find("tid");
    const JsonValue* lanes = thread.find("lanes");
    if (tid_value == nullptr || lanes == nullptr || !lanes->is_array()) {
      continue;
    }
    const auto tid = static_cast<std::uint32_t>(tid_value->as_u64());
    for (const JsonValue& lane : lanes->items) {
      const JsonValue* lane_name = lane.find("lane");
      const JsonValue* records = lane.find("records");
      if (records == nullptr || !records->is_array()) continue;
      const bool hot =
          lane_name != nullptr && lane_name->is_string() &&
          lane_name->text == "hot";
      if (const JsonValue* dropped = lane.find("dropped")) {
        out->dropped_records += dropped->as_u64();
      }
      std::uint64_t seq = 0;
      for (const JsonValue& rec : records->items) {
        if (!rec.is_array() || rec.items.size() != 5) continue;
        FlightrecRecord r;
        r.time = rec.items[0].as_u64();
        const std::uint64_t type_word = rec.items[1].as_u64();
        r.type = type_word < kFrTypeCount ? static_cast<FrType>(type_word)
                                          : FrType::kNone;
        r.a = rec.items[2].as_u64();
        r.b = rec.items[3].as_u64();
        r.c = rec.items[4].as_u64();
        r.tid = tid;
        r.hot_lane = hot;
        r.seq = seq++;
        out->records.push_back(r);
      }
    }
  }

  std::stable_sort(out->records.begin(), out->records.end(),
                   [](const FlightrecRecord& x, const FlightrecRecord& y) {
                     if (x.time != y.time) return x.time < y.time;
                     if (x.tid != y.tid) return x.tid < y.tid;
                     return x.seq < y.seq;
                   });
  return true;
}

std::string render_flightrec_timeline(const FlightrecDump& dump) {
  std::string out;
  out += "flight recorder dump (" + std::string(kFlightrecSchema) + ")\n";
  out += "  scenario: " +
         (dump.scenario.empty() ? std::string("(unset)") : dump.scenario) +
         "\n";
  out += "  reason:   " + dump.reason + "\n";
  if (!dump.detail.empty()) out += "  detail:   " + dump.detail + "\n";
  out += "  pid:      " + std::to_string(dump.pid) + "\n";
  out += "  invariant violations: " +
         std::to_string(dump.invariant_violations) + "\n";
  out += "  records:  " + std::to_string(dump.records.size()) + " kept, " +
         std::to_string(dump.dropped_records) + " overwritten";
  if (dump.dropped_threads > 0) {
    out += ", " + std::to_string(dump.dropped_threads) +
           " threads unrecorded";
  }
  out += "\n";
  if (!dump.recent_messages.empty()) {
    out += "  recent invariant messages (oldest first):\n";
    for (const std::string& message : dump.recent_messages) {
      out += "    - " + message + "\n";
    }
  }
  out += "\ntimeline (merged across threads, oldest first):\n";
  if (dump.records.empty()) {
    out += "  (no records)\n";
    return out;
  }
  for (const FlightrecRecord& r : dump.records) {
    out += "  [" + time_text(r) + "] t" + std::to_string(r.tid) + " " +
           flightrec_type_name(r.type);
    const std::string detail = describe(r);
    if (!detail.empty()) out += "  " + detail;
    out += "\n";
  }
  return out;
}

std::string render_flightrec_chrome_trace(const FlightrecDump& dump) {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  // Process metadata names the lane in chrome://tracing / Perfetto.
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("ts").value(0.0);
  w.key("pid").value(dump.pid);
  w.key("tid").value(std::uint64_t{0});
  w.key("args").begin_object();
  w.key("name").value("intox " +
                      (dump.scenario.empty() ? std::string("(unknown)")
                                             : dump.scenario) +
                      " [" + dump.reason + "]");
  w.end_object();
  w.end_object();
  for (const FlightrecRecord& r : dump.records) {
    w.begin_object();
    w.key("name").value(flightrec_type_name(r.type));
    w.key("cat").value(r.hot_lane ? "flightrec.hot" : "flightrec.decision");
    w.key("ph").value("i");
    // Sim nanoseconds rendered on the trace's microsecond axis.
    w.key("ts").value(static_cast<double>(r.time) / 1e3);
    w.key("pid").value(dump.pid);
    w.key("tid").value(static_cast<std::uint64_t>(r.tid));
    w.key("args").begin_object();
    w.key("a").value(r.a);
    w.key("b").value(r.b);
    w.key("c").value(r.c);
    const std::string detail = describe(r);
    if (!detail.empty()) w.key("detail").value(detail);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool merge_chrome_traces(const std::vector<std::string>& paths,
                         const std::vector<std::string>& labels,
                         const std::string& out_path, std::string* error) {
  std::string body;
  bool first_event = true;
  std::size_t readable = 0;
  // pid -> label of the first input that produced events under it.
  std::map<std::uint64_t, std::string> pid_labels;

  for (std::size_t i = 0; i < paths.size(); ++i) {
    JsonValue doc;
    std::string parse_error;
    if (!json_parse_file(paths[i], &doc, &parse_error)) continue;
    const JsonValue* events = doc.find("traceEvents");
    if (events == nullptr || !events->is_array()) continue;
    ++readable;
    for (const JsonValue& event : events->items) {
      if (!event.is_object()) continue;
      if (!first_event) body.push_back(',');
      first_event = false;
      serialize_json(event, &body);
      if (const JsonValue* pid = event.find("pid")) {
        const std::uint64_t pid_value = pid->as_u64();
        if (pid_labels.find(pid_value) == pid_labels.end()) {
          pid_labels.emplace(pid_value,
                             i < labels.size() ? labels[i] : paths[i]);
        }
      }
    }
  }
  if (readable == 0) {
    if (error != nullptr) *error = "no readable trace inputs";
    return false;
  }

  JsonWriter meta;
  meta.begin_array();  // throwaway scope so sibling objects comma-join
  for (const auto& [pid, label] : pid_labels) {
    meta.begin_object();
    meta.key("name").value("process_name");
    meta.key("ph").value("M");
    meta.key("ts").value(0.0);
    meta.key("pid").value(pid);
    meta.key("tid").value(std::uint64_t{0});
    meta.key("args").begin_object();
    meta.key("name").value(label);
    meta.end_object();
    meta.end_object();
  }
  meta.end_array();
  std::string meta_body = meta.str();
  meta_body = meta_body.substr(1, meta_body.size() - 2);  // strip [ ]
  if (!meta_body.empty() && !first_event) meta_body.insert(0, ",");

  std::string doc = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  doc += body;
  doc += meta_body;
  doc += "]}";
  return write_file(out_path, doc, error);
}

}  // namespace intox::obs
