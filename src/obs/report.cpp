#include "obs/report.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/flightrec.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "validate/invariant.hpp"

namespace intox::obs {

namespace {

std::atomic<BenchSession*> g_current{nullptr};

const char* invariant_mode_name() {
  switch (validate::invariant_mode()) {
    case validate::InvariantMode::kFatal: return "fatal";
    case validate::InvariantMode::kThrow: return "throw";
    case validate::InvariantMode::kCount: return "count";
  }
  return "unknown";
}

bool is_directory(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Shared invariants section for run reports and point records:
// last_message stays for backward compatibility; recent_messages is the
// bounded ring (kCount mode used to keep only the newest message).
void write_invariants_block(JsonWriter& w) {
  w.key("invariants").begin_object();
  w.key("mode").value(invariant_mode_name());
  w.key("violations").value(validate::invariant_violations());
  w.key("last_message").value(validate::last_invariant_message());
  w.key("recent_messages").begin_array();
  for (const std::string& message : validate::recent_invariant_messages()) {
    w.value(message);
  }
  w.end_array();
  w.end_object();
}

}  // namespace

double SweepPerf::shard_imbalance() const {
  if (shard_seconds.empty()) return 0.0;
  double sum = 0.0, max = 0.0;
  for (double s : shard_seconds) {
    sum += s;
    if (s > max) max = s;
  }
  const double mean = sum / static_cast<double>(shard_seconds.size());
  return mean > 0.0 ? max / mean : 0.0;
}

std::size_t parse_threads_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") != 0) continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: --threads requires a value\n");
      std::exit(2);
    }
    const char* s = argv[i + 1];
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (s[0] == '\0' || end == s || *end != '\0' || errno == ERANGE ||
        v < 0) {
      std::fprintf(stderr,
                   "error: --threads expects a non-negative integer "
                   "(0 = auto), got '%s'\n", s);
      std::exit(2);
    }
    return static_cast<std::size_t>(v);
  }
  return 0;
}

void export_invariant_counters() {
  static std::once_flag once;
  std::call_once(once, [] {
    Registry::global().register_external_counter(
        "validate.invariant_violations",
        [] { return validate::invariant_violations(); });
  });
}

BenchSession::BenchSession(int argc, char** argv, std::string family)
    : family_(std::move(family)) {
  export_invariant_counters();
  threads_ = parse_threads_arg(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --metrics-out requires a path\n");
        std::exit(2);
      }
      path_ = argv[i + 1];
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --trace-out requires a path\n");
        std::exit(2);
      }
      set_trace_path(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--flightrec-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --flightrec-out requires a path\n");
        std::exit(2);
      }
      set_flightrec_dump_path(argv[i + 1]);
    }
  }
  // Every bench/scenario process gets the crash plumbing: a fatal
  // invariant or signal flushes the flight recorder (when a dump path
  // is configured) before the process dies.
  flightrec_init();
  if (path_.empty()) {
    if (const char* env = std::getenv("INTOX_METRICS")) {
      if (env[0] != '\0') {
        std::string p = env;
        if (ends_with(p, ".json") && !is_directory(p)) {
          path_ = std::move(p);
        } else {
          if (!p.empty() && p.back() != '/') p += '/';
          path_ = p + "BENCH_" + family_ + ".json";
        }
      }
    }
  }
  BenchSession* expected = nullptr;
  g_current.compare_exchange_strong(expected, this,
                                    std::memory_order_acq_rel);
}

BenchSession::~BenchSession() {
  // Write whenever a sink is configured, even with zero recorded sweeps:
  // the registry + invariant sections are the point for the benches that
  // never touch a ParallelRunner.
  if (!path_.empty()) write();
  if (trace_enabled()) trace_flush();
  BenchSession* self = this;
  g_current.compare_exchange_strong(self, nullptr,
                                    std::memory_order_acq_rel);
}

BenchSession* BenchSession::current() {
  return g_current.load(std::memory_order_acquire);
}

void BenchSession::apply_point_suffix(std::size_t point_index) {
  if (path_.empty()) return;
  std::string suffix = ".point" + std::to_string(point_index) + ".json";
  if (ends_with(path_, ".json")) {
    path_.replace(path_.size() - 5, 5, suffix);
  } else {
    path_ += suffix;
  }
}

void BenchSession::record_sweep(SweepPerf sweep) {
  std::lock_guard<std::mutex> lock(mu_);
  sweeps_.push_back(std::move(sweep));
  dirty_ = true;
}

std::string BenchSession::to_json() const {
  export_invariant_counters();
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kReportSchema);
  w.key("family").value(family_);
  w.key("threads_requested").value(static_cast<std::uint64_t>(threads_));
  w.key("sweeps").begin_array();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const SweepPerf& s : sweeps_) {
      w.begin_object();
      w.key("sweep").value(s.name);
      w.key("trials").value(static_cast<std::uint64_t>(s.trials));
      w.key("threads").value(static_cast<std::uint64_t>(s.threads));
      w.key("wall_s").value(s.wall_seconds);
      w.key("trials_per_s").value(s.trials_per_second());
      if (!s.shard_seconds.empty()) {
        double min = s.shard_seconds.front(), max = min;
        for (double x : s.shard_seconds) {
          if (x < min) min = x;
          if (x > max) max = x;
        }
        w.key("shard_wall_s").begin_object();
        w.key("min").value(min);
        w.key("max").value(max);
        w.key("imbalance").value(s.shard_imbalance());
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.key("metrics").raw(Registry::global().json());
  write_invariants_block(w);
  w.end_object();
  return w.str();
}

bool BenchSession::write() {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write metrics report to %s\n",
                 path_.c_str());
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  {
    std::lock_guard<std::mutex> lock(mu_);
    dirty_ = false;
  }
  return ok;
}

bool write_point_record(const std::string& path, const PointRecord& record) {
  export_invariant_counters();
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kPointRecordSchema);
  w.key("scenario").value(record.scenario);
  w.key("family").value(record.family);
  w.key("knobs").begin_object();
  for (const auto& [key, value] : record.knobs) {
    w.key(key).value(value);
  }
  w.end_object();
  w.key("banner").value(record.banner);
  w.key("exit").value(static_cast<std::int64_t>(record.exit_code));
  w.key("stdout").value(record.stdout_text);
  w.key("metrics").raw(Registry::global().deterministic_json());
  write_invariants_block(w);
  w.end_object();

  // Write-temp-then-rename within the destination directory, so the
  // final path only ever holds a complete record (POSIX rename is atomic
  // on one filesystem). The pid in the temp name keeps two workers
  // racing on the same point from trampling each other's half-written
  // bytes; whichever rename lands last wins with identical content.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write point record to %s\n",
                 tmp.c_str());
    return false;
  }
  const std::string& doc = w.str();
  bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
            std::fputc('\n', f) != EOF;
  ok = (std::fclose(f) == 0) && ok;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    std::fprintf(stderr, "warning: cannot commit point record to %s\n",
                 path.c_str());
  }
  return ok;
}

void emit_sweep_perf(const SweepPerf& sweep) {
  // The legacy stderr line, kept for transition compatibility — same
  // fields as before, but the sweep name now goes through the escaper.
  std::fprintf(stderr,
               "{\"sweep\":\"%s\",\"trials\":%zu,\"threads\":%zu,"
               "\"wall_s\":%.3f,\"trials_per_s\":%.1f}\n",
               json_escape(sweep.name).c_str(), sweep.trials, sweep.threads,
               sweep.wall_seconds, sweep.trials_per_second());
  if (BenchSession* session = BenchSession::current()) {
    session->record_sweep(sweep);
  }
}

}  // namespace intox::obs
