// Minimal recursive-descent JSON reader for our own schema-versioned
// artifacts (point records, flightrec dumps). Counterpart to the
// JsonWriter in obs/json.hpp; not a general-purpose parser — it accepts
// exactly the JSON we emit (UTF-8, \uXXXX limited to the BMP) and
// reports the first error with a byte offset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace intox::obs {

/// Parsed JSON node. Object members keep source order so deterministic
/// inputs produce deterministic traversals.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;                               // kArray
  std::vector<std::pair<std::string, JsonValue>> members;     // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// First member named `key`, or nullptr (also for non-objects).
  const JsonValue* find(std::string_view key) const;

  /// Value as u64 (truncating); 0 for non-numbers.
  std::uint64_t as_u64() const;
  /// Value as double; 0.0 for non-numbers.
  double as_number() const;
};

/// Parses `input` into `*out`. On failure returns false and describes
/// the first error (with byte offset) in `*error` when non-null.
bool json_parse(std::string_view input, JsonValue* out, std::string* error);

/// Reads and parses a whole file; distinguishes I/O from syntax errors
/// in `*error`.
bool json_parse_file(const std::string& path, JsonValue* out,
                     std::string* error);

}  // namespace intox::obs
