// Machine-readable run reports: the BENCH_<family>.json sink.
//
// Every bench (and example) opens a BenchSession naming its experiment
// family. The session collects per-sweep perf records, and at teardown
// serializes them together with the full metrics registry and the
// validate/ invariant counters into one schema-versioned JSON document:
//
//   {
//     "schema": "intox.bench_report.v1",
//     "family": "FIG2",
//     "threads_requested": 0,
//     "sweeps": [ {"sweep": "FIG2", "trials": 12, "threads": 8,
//                  "wall_s": 0.41, "trials_per_s": 29.3,
//                  "shard_wall_s": {"min":..,"max":..,"imbalance":..}} ],
//     "metrics": { "counters": {...}, "gauges": {...},
//                  "histograms": {...} },
//     "invariants": { "mode": "count", "violations": 0,
//                     "last_message": "" }
//   }
//
// Output destination (first match wins): the --metrics-out FILE flag,
// else the INTOX_METRICS environment variable (a *.json path, or a
// directory that receives BENCH_<family>.json). Unset means no file is
// written — stdout is never touched, so bench output stays
// byte-identical across thread counts.
//
// The schema is validated in CI by scripts/check_metrics_schema.py;
// bump kReportSchema when the document shape changes.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace intox::obs {

inline constexpr const char* kReportSchema = "intox.bench_report.v1";
inline constexpr const char* kPointRecordSchema = "intox.point_record.v1";

/// One sweep's perf record — the structured form of the legacy stderr
/// perf line, plus the per-shard timing the runner now measures.
struct SweepPerf {
  std::string name;
  std::size_t trials = 0;
  std::size_t threads = 0;
  double wall_seconds = 0.0;
  /// Per-worker busy time for the sweep's dispatch; empty when the
  /// producer did not measure shards (e.g. hand-accumulated reports).
  std::vector<double> shard_seconds;

  [[nodiscard]] double trials_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds
                              : 0.0;
  }
  /// max/mean of shard busy time; 1.0 = perfectly balanced, 0 = unknown.
  [[nodiscard]] double shard_imbalance() const;
};

/// Strictly parses `--threads N` from a bench command line. Returns N
/// (or 0 when the flag is absent — the runner's "defer to INTOX_THREADS
/// / hardware" sentinel, which an explicit `--threads 0` also selects).
/// A malformed, negative, or missing value prints a diagnostic to
/// stderr and exits with status 2: a typo'd thread count must never
/// silently fall through to the default and taint a perf comparison.
std::size_t parse_threads_arg(int argc, char** argv);

class BenchSession {
 public:
  /// Parses --threads / --metrics-out / --trace-out from argv (pass
  /// argc = 0 for env-only configuration, e.g. examples with their own
  /// positional arguments), resolves the report path, and registers
  /// itself as the process's current session so free-standing perf
  /// emitters can reach it.
  BenchSession(int argc, char** argv, std::string family);
  /// Writes the report (if a destination is configured), flushes the
  /// trace sink, and unregisters.
  ~BenchSession();

  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;

  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] const std::string& family() const { return family_; }
  [[nodiscard]] const std::string& report_path() const { return path_; }

  void record_sweep(SweepPerf sweep);

  /// Renames the report destination for a single sweep point: `--point N`
  /// runs executing concurrently under one INTOX_METRICS directory must
  /// not clobber each other's BENCH_<family>.json, so point N writes
  /// BENCH_<family>.point<N>.json instead. No-op without a destination.
  void apply_point_suffix(std::size_t point_index);

  /// The full report document (also what the destructor writes).
  [[nodiscard]] std::string to_json() const;
  /// Serializes and writes now; returns false on I/O failure. The
  /// destructor will not write again unless more sweeps arrive.
  bool write();

  /// The process's current session, or nullptr outside any bench.
  static BenchSession* current();

 private:
  std::string family_;
  std::string path_;
  std::size_t threads_ = 0;
  mutable std::mutex mu_;
  std::vector<SweepPerf> sweeps_;
  bool dirty_ = false;
};

/// One sweep point's deterministic run record (intox.point_record.v1):
/// what the `intox run ... --point N --point-record FILE` protocol
/// leaves behind for the sweep orchestrator's cache, and what the merge
/// path folds into the combined sweep report. Deliberately excludes
/// every wall-clock quantity (no SweepPerf), so a record's bytes are a
/// pure function of (binary, scenario, knob vector) and a resumed sweep
/// merges byte-identically to an uninterrupted one.
struct PointRecord {
  std::string scenario;
  std::string family;
  /// The *full* resolved knob vector (declaration order), swept and
  /// fixed knobs alike, in canonical render_value form.
  std::vector<std::pair<std::string, std::string>> knobs;
  /// The swept subset, "k=v k2=v2" — the serial path's banner body.
  std::string banner;
  int exit_code = 0;
  std::string stdout_text;
};

/// Serializes `record` (plus the metrics registry and the invariant
/// counters, exactly as BenchSession::to_json embeds them) and writes it
/// to `path` via write-temp-then-rename: a worker killed mid-write
/// leaves at most a *.tmp.<pid> turd, never a torn record. Returns false
/// on I/O failure with a one-line stderr warning.
bool write_point_record(const std::string& path, const PointRecord& record);

/// Emits the legacy one-line perf JSON on stderr (now correctly
/// escaped) and records the sweep into the current BenchSession, if
/// any. This is the routing target of bench::perf().
void emit_sweep_perf(const SweepPerf& sweep);

/// Registers the validate/ invariant counters as external registry
/// counters ("validate.invariant_violations"), so NDEBUG degraded-path
/// hits are readable from every snapshot. Idempotent; BenchSession and
/// snapshot consumers call it automatically.
void export_invariant_counters();

}  // namespace intox::obs
