// Process-wide metrics registry: counters, gauges, histograms.
//
// The §5 supervisor architecture is premised on *watching* the data
// plane; this registry is the reproduction's own data plane watching
// itself. Design constraints, in order:
//
//  1. Contention-free recording. Every metric is sharded into
//     cache-line-aligned per-thread slots (a thread hashes to a slot on
//     first use and keeps it), so the parallel runner's trial shards
//     never bounce a cache line between workers. Recording is a relaxed
//     atomic add to the thread's own slot.
//  2. Deterministic folding. Reads fold the slots in fixed shard-index
//     order. Counter and histogram-bucket folds are integer sums —
//     identical for any thread count, because the *work* is identical
//     (trials are seeded by index) and only its placement moves.
//     Gauges expose set / update_max, and instrumentation uses the max
//     form, which is also placement-invariant. The one exception is a
//     histogram's running `sum` of double samples: which samples share
//     a shard depends on scheduling, so the fold can differ in the last
//     ulp across runs. Bucket counts, totals, and extremes never do.
//  3. Nothing on stdout. Metrics surface only through the run-report
//     sink (obs/report.hpp) and the trace layer, so bench stdout stays
//     byte-identical across `--threads`.
//
// Metric handles are stable for the process lifetime once registered;
// hot paths look them up once (static local or member) and then record
// lock-free. Registration / snapshot take a mutex — they are cold.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace intox::obs {

/// Number of per-metric slots. A power of two; threads beyond this many
/// share slots (still correct — slots are atomic — just less private).
inline constexpr std::size_t kMetricShards = 32;

/// This thread's slot index in [0, kMetricShards). Assigned round-robin
/// on first use and cached thread-locally.
std::size_t metric_shard_index();

namespace detail {
struct alignas(64) ShardedU64 {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

/// Monotonic counter. `add` is a relaxed fetch_add on the calling
/// thread's shard; `value` folds the shards in index order.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    // intox-analyze: hot-lane
    shards_[metric_shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::ShardedU64, kMetricShards> shards_;
};

/// Point-in-time value. `set` is last-writer-wins (use it only from one
/// thread, e.g. a bench main); `update_max` is a CAS-max and therefore
/// deterministic under any thread placement — instrumentation on shared
/// paths uses this form (high-water marks).
class Gauge {
 public:
  void set(double v) {
    // intox-analyze: hot-lane
    value_.store(v, std::memory_order_relaxed);
  }
  void update_max(double v) {
    // intox-analyze: hot-lane
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Concurrent fixed-width histogram over [lo, hi). Mirrors the
/// semantics of sim::Histogram (out-of-range samples go to dedicated
/// under/overflow counters, never clamped into edge buckets) but is
/// safe to record into from many threads at once.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t buckets);

  void observe(double x);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_; }

  /// A folded, immutable view — also the merge/serialization unit.
  struct Snapshot {
    double lo = 0.0, hi = 0.0;
    std::vector<std::uint64_t> buckets;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();

    /// Adds another snapshot's counts; layouts must match (callers that
    /// merge across processes validate with `mergeable`).
    void merge(const Snapshot& other);
    [[nodiscard]] bool mergeable(const Snapshot& other) const {
      return lo == other.lo && hi == other.hi &&
             buckets.size() == other.buckets.size();
    }
    [[nodiscard]] double mean() const {
      return total ? sum / static_cast<double>(total) : 0.0;
    }
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

 private:
  struct Shard {
    explicit Shard(std::size_t buckets)
        : counts(buckets), underflow{0}, overflow{0}, sum{0.0},
          min{std::numeric_limits<double>::infinity()},
          max{-std::numeric_limits<double>::infinity()} {}
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> underflow;
    std::atomic<std::uint64_t> overflow;
    std::atomic<double> sum;
    std::atomic<double> min;
    std::atomic<double> max;
  };

  double lo_, hi_, width_;
  std::size_t buckets_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// The process-wide registry. Metrics are identified by dotted names
/// ("sim.link.tx_packets"); iteration and serialization are name-sorted
/// so output order never depends on registration order.
class Registry {
 public:
  static Registry& global();

  /// Returns the named metric, creating it on first use. References stay
  /// valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// On re-registration the existing histogram is returned; asking for
  /// different bounds than it was created with raises an invariant
  /// violation (and returns the existing one on the degraded path).
  HistogramMetric& histogram(std::string_view name, double lo, double hi,
                             std::size_t buckets);

  /// Registers a counter whose value is read from `fn` at snapshot time
  /// — the bridge for subsystems that keep their own counters (the
  /// validate/ invariant layer). Re-registering a name replaces the
  /// provider.
  void register_external_counter(std::string name,
                                 std::function<std::uint64_t()> fn);

  /// Declares a metric as placement-dependent: its value describes this
  /// process's scheduling (e.g. the runner's shard-imbalance high-water
  /// mark), not the simulated system, so it is excluded from
  /// deterministic snapshots. Call once, next to the registration site.
  void mark_placement_dependent(std::string_view name);

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramMetric::Snapshot> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Like snapshot(), minus every placement-dependent metric: the view
  /// whose serialization is a pure function of the work performed (at
  /// --threads 1 byte-exact; at higher thread counts histogram double
  /// `sum` fields may still differ in the last ulp — see the header
  /// comment). Point records (obs/report.hpp) embed this view.
  [[nodiscard]] Snapshot deterministic_snapshot() const;

  /// Serializes a snapshot as the report schema's "metrics" object.
  static std::string to_json(const Snapshot& snap);
  [[nodiscard]] std::string json() const { return to_json(snapshot()); }
  [[nodiscard]] std::string deterministic_json() const {
    return to_json(deterministic_snapshot());
  }

  /// Zeroes every registered metric (registrations and external
  /// providers survive). Test isolation only.
  void reset_values_for_test();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_;
  std::map<std::string, std::function<std::uint64_t()>, std::less<>>
      external_counters_;
  std::vector<std::string> placement_dependent_;
};

}  // namespace intox::obs
