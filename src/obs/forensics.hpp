// Postmortem rendering of intox.flightrec.v1 crash dumps.
//
// `intox forensics <dump>` loads a dump (written async-signal-safely by
// obs/flightrec at crash time), merges every thread's lanes into one
// (time, tid, seq)-ordered decision timeline, and renders it two ways:
// a human-readable text timeline naming the scenario's last decisions,
// and a Chrome-trace file of instant events for chrome://tracing /
// Perfetto. The sweep orchestrator also uses merge_chrome_traces() to
// fold per-worker trace files into one session trace with per-pid
// lanes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flightrec.hpp"

namespace intox::obs {

/// One decoded flight-recorder record.
struct FlightrecRecord {
  std::uint64_t time = 0;
  FrType type = FrType::kNone;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t tid = 0;
  bool hot_lane = false;
  std::uint64_t seq = 0;  // per-lane order, for stable tie-breaks
};

/// Parsed intox.flightrec.v1 document.
struct FlightrecDump {
  std::uint64_t pid = 0;
  std::string reason;
  std::string detail;
  std::string scenario;
  std::uint64_t invariant_violations = 0;
  std::vector<std::string> recent_messages;
  std::uint64_t dropped_threads = 0;
  std::uint64_t dropped_records = 0;  // summed over all lanes
  std::vector<FlightrecRecord> records;  // sorted by (time, tid, seq)
};

/// Loads and validates a dump file. Returns false with a diagnostic in
/// `*error` on I/O, parse, or schema mismatch.
bool load_flightrec_dump(const std::string& path, FlightrecDump* out,
                         std::string* error);

/// Human-readable decision timeline (multi-line, trailing newline).
std::string render_flightrec_timeline(const FlightrecDump& dump);

/// Chrome-trace JSON document (instant events per record, one lane per
/// recorder thread, process metadata naming scenario and crash reason).
std::string render_flightrec_chrome_trace(const FlightrecDump& dump);

/// Merges the traceEvents of every *readable* Chrome-trace file in
/// `paths` into one document at `out_path`; `labels` (same length as
/// `paths`) names each input's process lane via "M" metadata events.
/// Unreadable/unparseable inputs are skipped. Returns false only when
/// the output cannot be written or no input could be read.
bool merge_chrome_traces(const std::vector<std::string>& paths,
                         const std::vector<std::string>& labels,
                         const std::string& out_path, std::string* error);

}  // namespace intox::obs
