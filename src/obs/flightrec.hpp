// Always-on flight recorder: lock-free per-thread rings of compact
// typed records, flushed on failure as a schema-versioned dump.
//
// The paper's argument rests on causal timelines — a handful of
// intoxicating inputs arrive, and some time later Blink reroutes, PCC
// walks its rate down, Pytheas re-ranks a group. The metrics plane
// (obs/metrics) shows the aggregates; the flight recorder keeps the
// *chain of events* that produced the last bad decision, cheap enough
// to stay enabled in NDEBUG production runs.
//
// Design:
//  * Each thread owns two rings ("lanes") of fixed-size records:
//    a hot lane for per-packet/per-event noise (scheduler fires, link
//    drops, attacker packet actions, Blink retransmission hits) and a
//    decision lane for the rare control-plane records (reroutes,
//    vetoes, PCC MI decisions, Pytheas group moves, invariant raises,
//    notes) so data-plane volume cannot evict the decisions a
//    postmortem actually needs.
//  * A record is five 64-bit words (time, type, a, b, c) stored as
//    relaxed atomics: writers are single-threaded per ring, and readers
//    (a concurrent dump) may observe a torn *record* across words but
//    never torn words or a data race — acceptable for forensics, clean
//    under TSan.
//  * Recording never touches stdout, locks, or the allocator after the
//    per-thread slow-path setup, so trial output stays byte-identical
//    at any --threads and the hot path stays within the perf gate.
//  * Dumping is async-signal-safe: flightrec_dump walks the ring
//    registry with open/write(2) and a hand-rolled formatter — no
//    malloc, no stdio — so SIGSEGV/SIGABRT handlers and the fatal
//    invariant hook can flush the last-N records per thread.
//
// The "time" word is producer-defined: sim::Time nanoseconds for
// scheduler/link/blink/pcc records, the epoch index for Pytheas, 0 when
// no clock is in scope. `intox forensics <dump>` renders the merged,
// (time, tid, seq)-sorted timeline and a Chrome-trace view.
//
// Environment: INTOX_FLIGHTREC=0 disables recording entirely;
// INTOX_FLIGHTREC_CAPACITY sets the hot-lane ring size (records,
// rounded up to a power of two); INTOX_FLIGHTREC_DUMP presets the
// crash-dump destination (--flightrec-out overrides).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace intox::obs {

inline constexpr const char* kFlightrecSchema = "intox.flightrec.v1";

enum class FrType : std::uint16_t {
  kNone = 0,
  kSchedFire = 1,       // time=sim ns, a=unused
  kLinkDrop = 2,        // time=sim ns, a=FrDropCause, b=dst addr, c=bytes
  kInvariantRaise = 3,  // time=0, a=violation count, b=source line
  kBlinkRetx = 4,       // time=sim ns, a=prefix addr, b=len, c=retx cells
  kBlinkReroute = 5,    // time=sim ns, a=prefix addr, b=len, c=retx cells
  kBlinkVeto = 6,       // time=sim ns, a=prefix addr, b=len, c=retx cells
  kPccDecision = 7,     // time=sim ns, a=0 incon/1 up/2 down, b=old bps,
                        // c=new bps (inconclusive: c=epsilon ppm)
  kPytheasMove = 8,     // time=epoch, a=group id, b=old arm, c=new arm
  kAttackerAction = 9,  // time=sim ns, a=FrAttackerKind, b/c=kind-specific
  kNote = 10,           // free-form breadcrumb
};
inline constexpr std::size_t kFrTypeCount = 11;

/// Stable display name ("sched.fire", "blink.reroute", ...); "none" for
/// out-of-range values.
const char* flightrec_type_name(FrType type);

/// Link-drop causes carried in kLinkDrop's `a` word.
enum class FrDropCause : std::uint64_t {
  kDown = 1,
  kTap = 2,
  kQueue = 3,
  kRed = 4,
};

/// Attacker-action kinds carried in kAttackerAction's `a` word.
enum class FrAttackerKind : std::uint64_t {
  kPccMitmDrop = 1,    // b=mode (0 omniscient, 1 shaper), c=total dropped
  kBlinkFig2Start = 2  // b=malicious flows, c=legitimate flows
};

/// True when recording is active (default; INTOX_FLIGHTREC=0 disables).
bool flightrec_enabled();
void set_flightrec_enabled(bool enabled);

/// Appends one record to this thread's lane for `type`. Lock-free,
/// allocation-free after the first call per thread, safe from any
/// thread. No-op when disabled.
void flightrec_record(FrType type, std::uint64_t time, std::uint64_t a = 0,
                      std::uint64_t b = 0, std::uint64_t c = 0);

/// Names the running scenario in subsequent dumps (truncated copy; the
/// driver calls this before dispatching a scenario body).
void flightrec_set_scenario(const char* name);

/// Crash-dump destination. Empty (the default outside the intox driver)
/// means crashes do not write a dump. INTOX_FLIGHTREC_DUMP presets it
/// at flightrec_init; --flightrec-out and the driver default override.
void set_flightrec_dump_path(const std::string& path);
std::string flightrec_dump_path();

/// Installs the failure plumbing once per process: the invariant
/// observer (mirrors every violation into the decision lane), the fatal
/// invariant hook, and SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers
/// that dump to the configured path and re-raise. Idempotent;
/// BenchSession and the intox driver call it automatically.
void flightrec_init();

/// Writes every registered thread's lanes to `path` as an
/// intox.flightrec.v1 document. Async-signal-safe (open/write only).
/// `reason` names the trigger ("signal:SIGSEGV", "invariant",
/// "manual"); `detail` is free text (may be nullptr).
bool flightrec_dump(const char* path, const char* reason,
                    const char* detail);

/// Dumps to the configured path exactly once per process (first caller
/// wins; later crash handlers see the dump already committed). Returns
/// false when already dumped or no path is configured.
bool flightrec_dump_on_crash(const char* reason, const char* detail);

/// Test introspection: total records ever recorded / threads that have
/// registered rings (monotonic; rings are leaked by design so a dump
/// from a signal handler can always read them).
std::uint64_t flightrec_records_recorded();
std::size_t flightrec_registered_threads();
/// The calling thread's ring id as it appears in dumps (registers the
/// thread if needed).
std::uint32_t flightrec_this_thread_tid();

}  // namespace intox::obs
