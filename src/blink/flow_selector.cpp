#include "blink/flow_selector.hpp"

namespace intox::blink {

FlowSelector::FlowSelector(const BlinkConfig& config)
    : config_(config), cells_(config.cells) {}

void FlowSelector::release(Cell& cell, sim::Time now) {
  residency_.add(sim::to_seconds(now - cell.sampled_at));
  cell = Cell{};
}

PacketVerdict FlowSelector::observe(const net::FiveTuple& flow,
                                    std::uint64_t tag, std::uint32_t seq,
                                    bool fin_or_rst, sim::Time now) {
  PacketVerdict v;
  const std::size_t idx =
      net::flow_hash(flow, config_.hash_seed) % cells_.size();
  Cell& cell = cells_[idx];

  if (cell.occupied && cell.flow == flow) {
    v.monitored = true;
    if (fin_or_rst) {
      // Flow completed: free the cell for the next flow.
      release(cell, now);
      v.evicted_occupant = true;
      return v;
    }
    v.retransmission = cell.has_seq && seq == cell.last_seq;
    if (v.retransmission) {
      if (now - cell.last_retransmit > kEpisodeGap) {
        cell.episode_start = now;
        cell.episode_retransmits = 0;
      }
      ++cell.episode_retransmits;
      cell.last_retransmit = now;
    }
    cell.last_seq = seq;
    cell.has_seq = true;
    cell.last_seen = now;
    return v;
  }

  if (cell.occupied) {
    // Collision with a different flow: only take over if the occupant has
    // gone quiet for the eviction timeout.
    if (now - cell.last_seen < config_.eviction_timeout) return v;
    release(cell, now);
    v.evicted_occupant = true;
  }

  if (fin_or_rst) return v;  // don't sample a flow on its final segment

  cell.occupied = true;
  cell.flow = flow;
  cell.tag = tag;
  cell.sampled_at = now;
  cell.last_seen = now;
  cell.last_seq = seq;
  cell.has_seq = true;
  cell.last_retransmit = kNever;
  v.monitored = true;
  v.newly_sampled = true;
  return v;
}

void FlowSelector::reset(sim::Time now) {
  for (Cell& cell : cells_) {
    if (cell.occupied) release(cell, now);
  }
}

std::size_t FlowSelector::occupied_count() const {
  std::size_t n = 0;
  for (const Cell& c : cells_) n += c.occupied;
  return n;
}

std::size_t FlowSelector::retransmitting_count(sim::Time now) const {
  std::size_t n = 0;
  for (const Cell& c : cells_) {
    if (c.occupied && now - c.last_retransmit <= config_.retransmit_window) ++n;
  }
  return n;
}

std::size_t FlowSelector::count_tagged(
    const std::function<bool(std::uint64_t)>& pred) const {
  std::size_t n = 0;
  for (const Cell& c : cells_) {
    if (c.occupied && pred(c.tag)) ++n;
  }
  return n;
}

}  // namespace intox::blink
