#include "blink/flow_selector.hpp"

namespace intox::blink {

FlowSelector::FlowSelector(const BlinkConfig& config)
    : config_(config),
      occupied_(config.cells, 0),
      flow_(config.cells),
      tag_(config.cells, 0),
      sampled_at_(config.cells, 0),
      last_seen_(config.cells, 0),
      last_seq_(config.cells, 0),
      has_seq_(config.cells, 0),
      last_retransmit_(config.cells, kNever),
      episode_start_(config.cells, kNever),
      episode_retransmits_(config.cells, 0) {}

void FlowSelector::release(std::size_t i, sim::Time now) {
  residency_.add(sim::to_seconds(now - sampled_at_[i]));
  occupied_[i] = 0;
  flow_[i] = net::FiveTuple{};
  tag_[i] = 0;
  sampled_at_[i] = 0;
  last_seen_[i] = 0;
  last_seq_[i] = 0;
  has_seq_[i] = 0;
  last_retransmit_[i] = kNever;
  episode_start_[i] = kNever;
  episode_retransmits_[i] = 0;
}

Cell FlowSelector::cell(std::size_t i) const {
  Cell c;
  c.occupied = occupied_[i] != 0;
  c.flow = flow_[i];
  c.tag = tag_[i];
  c.sampled_at = sampled_at_[i];
  c.last_seen = last_seen_[i];
  c.last_seq = last_seq_[i];
  c.has_seq = has_seq_[i] != 0;
  c.last_retransmit = last_retransmit_[i];
  c.episode_start = episode_start_[i];
  c.episode_retransmits = episode_retransmits_[i];
  return c;
}

PacketVerdict FlowSelector::observe(const net::FiveTuple& flow,
                                    std::uint64_t tag, std::uint32_t seq,
                                    bool fin_or_rst, sim::Time now) {
  PacketVerdict v;
  const std::size_t idx =
      net::flow_hash(flow, config_.hash_seed) % occupied_.size();

  if (occupied_[idx] && flow_[idx] == flow) {
    v.monitored = true;
    if (fin_or_rst) {
      // Flow completed: free the cell for the next flow.
      release(idx, now);
      v.evicted_occupant = true;
      return v;
    }
    v.retransmission = has_seq_[idx] && seq == last_seq_[idx];
    if (v.retransmission) {
      if (now - last_retransmit_[idx] > kEpisodeGap) {
        episode_start_[idx] = now;
        episode_retransmits_[idx] = 0;
      }
      ++episode_retransmits_[idx];
      last_retransmit_[idx] = now;
    }
    last_seq_[idx] = seq;
    has_seq_[idx] = 1;
    last_seen_[idx] = now;
    return v;
  }

  if (occupied_[idx]) {
    // Collision with a different flow: only take over if the occupant has
    // gone quiet for the eviction timeout.
    if (now - last_seen_[idx] < config_.eviction_timeout) return v;
    release(idx, now);
    v.evicted_occupant = true;
  }

  if (fin_or_rst) return v;  // don't sample a flow on its final segment

  occupied_[idx] = 1;
  flow_[idx] = flow;
  tag_[idx] = tag;
  sampled_at_[idx] = now;
  last_seen_[idx] = now;
  last_seq_[idx] = seq;
  has_seq_[idx] = 1;
  last_retransmit_[idx] = kNever;
  v.monitored = true;
  v.newly_sampled = true;
  return v;
}

void FlowSelector::reset(sim::Time now) {
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    if (occupied_[i]) release(i, now);
  }
}

std::size_t FlowSelector::occupied_count() const {
  std::size_t n = 0;
  for (const std::uint8_t o : occupied_) n += o;
  return n;
}

std::size_t FlowSelector::retransmitting_count(sim::Time now) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    if (occupied_[i] &&
        now - last_retransmit_[i] <= config_.retransmit_window) {
      ++n;
    }
  }
  return n;
}

std::size_t FlowSelector::count_tagged(
    const std::function<bool(std::uint64_t)>& pred) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    if (occupied_[i] && pred(tag_[i])) ++n;
  }
  return n;
}

}  // namespace intox::blink
