// Blink's per-prefix flow selector and retransmission detector.
//
// A fixed array of cells, indexed by a hash of the packet's 5-tuple.
// Each cell monitors at most one flow at a time:
//   * an empty cell is taken by the first flow hashing into it;
//   * a monitored flow keeps its cell while it stays active;
//   * FIN/RST frees the cell immediately;
//   * a colliding flow takes over the cell if the occupant has been
//     inactive for the eviction timeout;
//   * the whole array is reset periodically (control-plane timer).
//
// Retransmissions are detected exactly as in Blink's P4 pipeline: the
// cell remembers the occupant's last sequence number, and a data packet
// carrying the same sequence number again is counted as a retransmission.
//
// This is the structure the §3.1 attack poisons: an always-active
// malicious flow, once sampled, is never evicted until the global reset.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "blink/config.hpp"
#include "net/packet.hpp"
#include "sim/stats.hpp"

namespace intox::blink {

inline constexpr sim::Time kNever = INT64_MIN / 4;

/// Logical record of one selector cell. Storage is structure-of-arrays
/// (one column per field, below) so the periodic whole-array scans —
/// retransmitting_count, the supervisor's episode audit, reset — walk
/// packed columns instead of striding over 80-byte records; `Cell` is
/// the snapshot type `FlowSelector::cell(i)` materializes for cold
/// paths and tests.
struct Cell {
  bool occupied = false;
  net::FiveTuple flow{};
  std::uint64_t tag = 0;         // ground-truth flow tag (evaluation only)
  sim::Time sampled_at = 0;
  sim::Time last_seen = 0;
  std::uint32_t last_seq = 0;
  bool has_seq = false;
  sim::Time last_retransmit = kNever;
  /// Start of the current retransmission *episode* (a run of
  /// retransmissions with gaps below kEpisodeGap). A genuine failure
  /// starts a fresh episode on every affected flow at roughly the same
  /// moment; the §3.1 attacker's flows have been retransmitting for
  /// minutes — the discriminator the §5 supervisor uses.
  sim::Time episode_start = kNever;
  /// Retransmissions seen within the current episode.
  std::uint32_t episode_retransmits = 0;
};

/// Gap above which a new retransmission starts a new episode.
inline constexpr sim::Duration kEpisodeGap = sim::seconds(4);

struct PacketVerdict {
  bool monitored = false;      // packet belongs to the cell's occupant
  bool newly_sampled = false;  // this packet's flow just took the cell
  bool retransmission = false; // duplicate sequence number observed
  bool evicted_occupant = false;
};

class FlowSelector {
 public:
  explicit FlowSelector(const BlinkConfig& config);

  /// Feeds one TCP packet of this prefix through the selector.
  PacketVerdict observe(const net::FiveTuple& flow, std::uint64_t tag,
                        std::uint32_t seq, bool fin_or_rst, sim::Time now);

  /// Control-plane sample reset: frees every cell.
  void reset(sim::Time now);

  [[nodiscard]] std::size_t cell_count() const { return occupied_.size(); }
  [[nodiscard]] std::size_t occupied_count() const;

  /// Number of cells whose occupant retransmitted within the sliding
  /// window ending at `now` — the failure-inference signal.
  [[nodiscard]] std::size_t retransmitting_count(sim::Time now) const;

  /// Evaluation hook: counts occupied cells whose ground-truth tag
  /// satisfies `pred` (e.g. "is a malicious flow").
  [[nodiscard]] std::size_t count_tagged(
      const std::function<bool(std::uint64_t)>& pred) const;

  // SoA columns, one entry per cell. Scans pick exactly the columns
  // they need (the supervisor's audit reads 4 of the 10 fields; the
  // retransmit count reads 2).
  [[nodiscard]] std::span<const std::uint8_t> occupied() const {
    return occupied_;
  }
  [[nodiscard]] std::span<const net::FiveTuple> flows() const {
    return flow_;
  }
  [[nodiscard]] std::span<const std::uint64_t> tags() const { return tag_; }
  [[nodiscard]] std::span<const sim::Time> last_retransmit() const {
    return last_retransmit_;
  }
  [[nodiscard]] std::span<const sim::Time> episode_start() const {
    return episode_start_;
  }
  [[nodiscard]] std::span<const std::uint32_t> episode_retransmits() const {
    return episode_retransmits_;
  }

  /// AoS snapshot of cell `i` for cold paths and tests.
  [[nodiscard]] Cell cell(std::size_t i) const;

  /// Residency times of flows that left the sample (eviction, FIN, or
  /// reset) — the empirical t_R of §3.1.
  [[nodiscard]] const sim::RunningStats& residency_stats() const {
    return residency_;
  }

 private:
  void release(std::size_t i, sim::Time now);

  BlinkConfig config_;
  // Parallel columns (all sized config.cells).
  std::vector<std::uint8_t> occupied_;
  std::vector<net::FiveTuple> flow_;
  std::vector<std::uint64_t> tag_;
  std::vector<sim::Time> sampled_at_;
  std::vector<sim::Time> last_seen_;
  std::vector<std::uint32_t> last_seq_;
  std::vector<std::uint8_t> has_seq_;
  std::vector<sim::Time> last_retransmit_;
  std::vector<sim::Time> episode_start_;
  std::vector<std::uint32_t> episode_retransmits_;
  sim::RunningStats residency_;
};

}  // namespace intox::blink
