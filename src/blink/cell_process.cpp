#include "blink/cell_process.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace intox::blink {

namespace {

// Per-cell turnover times until one goes malicious (or horizon).
// Returns the time at which the cell becomes malicious, or +inf.
double cell_capture_time(const CellProcessConfig& config, sim::Rng& rng) {
  double t = 0.0;
  while (t < config.horizon_seconds) {
    // Current occupant is legitimate; it leaves after ~Exp(t_R).
    t += rng.exponential(config.tr_seconds);
    if (t >= config.horizon_seconds) break;
    if (rng.bernoulli(config.qm)) return t;  // malicious takeover: permanent
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace

sim::TimeSeries simulate_cell_process(const CellProcessConfig& config,
                                      sim::Rng& rng) {
  std::vector<double> capture_times;
  capture_times.reserve(config.cells);
  for (std::size_t i = 0; i < config.cells; ++i) {
    capture_times.push_back(cell_capture_time(config, rng));
  }
  std::sort(capture_times.begin(), capture_times.end());

  sim::TimeSeries out;
  std::size_t captured = 0;
  for (double t = 0.0; t <= config.horizon_seconds;
       t += config.sample_step_seconds) {
    while (captured < capture_times.size() && capture_times[captured] <= t) {
      ++captured;
    }
    out.record(sim::seconds(t), static_cast<double>(captured));
  }
  return out;
}

double time_to_majority(const CellProcessConfig& config, std::size_t target,
                        sim::Rng& rng) {
  std::vector<double> capture_times;
  capture_times.reserve(config.cells);
  for (std::size_t i = 0; i < config.cells; ++i) {
    capture_times.push_back(cell_capture_time(config, rng));
  }
  if (target == 0) return 0.0;
  if (target > capture_times.size()) return -1.0;
  std::nth_element(
      capture_times.begin(),
      capture_times.begin() + static_cast<std::ptrdiff_t>(target - 1),
      capture_times.end());
  const double t = capture_times[target - 1];
  return t <= config.horizon_seconds ? t : -1.0;
}

double empirical_success_rate(const CellProcessConfig& config,
                              std::size_t target, std::size_t runs,
                              sim::Rng& rng) {
  std::size_t ok = 0;
  for (std::size_t r = 0; r < runs; ++r) {
    sim::Rng sub = rng.fork(r);
    ok += time_to_majority(config, target, sub) >= 0.0;
  }
  return static_cast<double>(ok) / static_cast<double>(runs);
}

double empirical_success_rate(const CellProcessConfig& config,
                              std::size_t target, std::size_t runs,
                              const sim::Rng& rng,
                              sim::ParallelRunner& runner) {
  const auto wins =
      runner.run(rng, runs, [&](std::size_t, sim::Rng& sub) -> std::size_t {
        return time_to_majority(config, target, sub) >= 0.0;
      });
  std::size_t ok = 0;
  for (std::size_t w : wins) ok += w;
  return static_cast<double>(ok) / static_cast<double>(runs);
}

}  // namespace intox::blink
