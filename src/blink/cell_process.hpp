// Flow-level Monte-Carlo of the cell-occupancy process.
//
// Sits between the closed form (analysis.hpp) and the full packet-level
// simulation (blink_node over the trafficgen drivers): each cell is
// simulated directly as an alternating renewal process — legitimate
// occupants hold the cell for ~Exp(t_R); on each turnover the new
// occupant is malicious with probability q_m and, if so, holds the cell
// until the sample reset. Thousands of runs per second, so the parameter
// sweeps (BLINK-TR) use this level.
#pragma once

#include <cstddef>

#include "sim/rng.hpp"
#include "sim/runner.hpp"
#include "sim/stats.hpp"

namespace intox::blink {

struct CellProcessConfig {
  std::size_t cells = 64;
  double qm = 0.0525;        // malicious fraction
  double tr_seconds = 8.37;  // mean legitimate residency
  double horizon_seconds = 510.0;
  double sample_step_seconds = 1.0;  // output grid
};

/// One run: returns the (time, #malicious cells) series on the grid.
sim::TimeSeries simulate_cell_process(const CellProcessConfig& config,
                                      sim::Rng& rng);

/// First time the malicious count reaches `target`, or a negative value
/// if it never does within the horizon.
double time_to_majority(const CellProcessConfig& config, std::size_t target,
                        sim::Rng& rng);

/// Fraction of `runs` in which the count reaches `target` within the
/// horizon (empirical attack success rate).
double empirical_success_rate(const CellProcessConfig& config,
                              std::size_t target, std::size_t runs,
                              sim::Rng& rng);

/// Parallel variant: shards the runs across `runner`'s workers. Returns
/// exactly the serial overload's value for any thread count (both fork
/// run r's stream as `rng.fork(r)`).
double empirical_success_rate(const CellProcessConfig& config,
                              std::size_t target, std::size_t runs,
                              const sim::Rng& rng,
                              sim::ParallelRunner& runner);

}  // namespace intox::blink
