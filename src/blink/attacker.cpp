#include "blink/attacker.hpp"

#include <cmath>
#include <functional>

#include "obs/flightrec.hpp"

namespace intox::blink {

AttackPlan plan_attack(const BlinkConfig& config, std::size_t legit_flows,
                       double tr_seconds, double confidence) {
  const auto needed = static_cast<std::size_t>(
      config.failure_threshold * static_cast<double>(config.cells));
  const double t_budget = sim::to_seconds(config.sample_reset_period);

  const double qm_needed = min_qm_for_success(config.cells, t_budget,
                                              tr_seconds, needed, confidence);
  AttackPlan plan;
  // q_m = m / (legit + m)  =>  m = legit * q_m / (1 - q_m).
  plan.malicious_flows = static_cast<std::size_t>(
      std::ceil(static_cast<double>(legit_flows) * qm_needed /
                (1.0 - qm_needed)));
  plan.qm = static_cast<double>(plan.malicious_flows) /
            static_cast<double>(legit_flows + plan.malicious_flows);
  plan.expected_majority_time_s = time_to_expected_count(
      config.cells, plan.qm, tr_seconds, static_cast<double>(needed));
  plan.success_probability = attack_success_probability(
      config.cells, plan.qm, t_budget, tr_seconds, needed);
  return plan;
}

Fig2Config default_fig2_config(std::uint64_t trial) {
  Fig2Config config;
  config.seed = 1000 + trial;
  return config;
}

Fig2Result run_fig2_experiment(const Fig2Config& config) {
  sim::Scheduler sched;
  sim::Rng rng{config.seed};

  BlinkNode node{config.blink};
  // Ports are symbolic here — the experiment feeds the pipeline stage
  // directly instead of going through a switch, which is ~3x faster and
  // exercises identical Blink logic (the e2e bench covers the full path).
  node.monitor_prefix(config.trace.victim_prefix, /*primary=*/0, /*backup=*/1);

  auto sink = [&](net::Packet p) {
    dataplane::PipelineMetadata meta;
    node.process(p, meta, sched.now());
  };

  trafficgen::FlowPopulation pop{sched, rng.fork("drivers"), sink};
  {
    sim::Rng trace_rng = rng.fork("trace");
    for (const auto& f :
       trafficgen::synthesize_trace(config.trace, trace_rng)) {
      pop.add_legit(f);
    }
  }
  {
    sim::Rng bad_rng = rng.fork("malicious");
    trafficgen::MaliciousFlowDriver::Options opts;
    // Match the legitimate per-flow packet rate so a freed cell is won by
    // a malicious flow with probability ~= the flow fraction q_m.
    opts.send_period = config.trace.pkt_interval;
    opts.repeats_per_seq = 2;
    for (const auto& f : trafficgen::synthesize_malicious_flows(
             config.trace, config.malicious_flows, /*start=*/0, bad_rng,
             kMaliciousTagBase)) {
      pop.add_malicious(f, opts);
    }
  }

  Fig2Result result;
  const FlowSelector* selector = node.selector(config.trace.victim_prefix);
  const auto majority = static_cast<std::size_t>(
      config.blink.failure_threshold * static_cast<double>(config.blink.cells));

  // Periodic sampling of the ground-truth malicious cell count.
  std::function<void()> sample = [&] {
    const std::size_t bad = selector->count_tagged(is_malicious_tag);
    result.malicious_sampled.record(sched.now(), static_cast<double>(bad));
    if (result.time_to_majority_seconds < 0 && bad >= majority) {
      result.time_to_majority_seconds = sim::to_seconds(sched.now());
    }
    if (sched.now() < config.trace.horizon) {
      sched.schedule_after(config.sample_interval, sample);
    }
  };
  sched.schedule_at(0, sample);

  obs::flightrec_record(
      obs::FrType::kAttackerAction, static_cast<std::uint64_t>(sched.now()),
      static_cast<std::uint64_t>(obs::FrAttackerKind::kBlinkFig2Start),
      config.malicious_flows, config.trace.active_flows);
  pop.start_all();
  sched.run_until(config.trace.horizon);
  pop.stop_all();

  result.measured_tr_seconds = selector->residency_stats().mean();
  result.reroutes = node.reroutes();
  return result;
}

}  // namespace intox::blink
