// Blink configuration (defaults follow Holterbach et al., NSDI'19, and
// the values quoted in §3.1 of the HotNets paper).
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace intox::blink {

struct BlinkConfig {
  /// Monitored flows per destination prefix ("64 cells").
  std::size_t cells = 64;
  /// A monitored flow inactive for this long is evicted on the next
  /// colliding packet ("2 s or more").
  sim::Duration eviction_timeout = sim::seconds(2);
  /// The whole sample is reset at this period ("every 8.5 min"), so every
  /// monitored flow is eventually evicted even if continuously active.
  sim::Duration sample_reset_period = sim::seconds(510);
  /// Sliding window over which per-flow retransmissions count towards
  /// failure inference (Blink uses ~800 ms).
  sim::Duration retransmit_window = sim::millis(800);
  /// Failure inferred when this fraction of cells saw a retransmission
  /// within the window ("if half of these monitored flows retransmit").
  double failure_threshold = 0.5;
  /// After inferring a failure, suppress further inferences for this long
  /// (the prefix has already been rerouted).
  sim::Duration failure_holddown = sim::seconds(10);
  /// Seed for the flow-selector hash (a real switch would use its CRC
  /// polynomial; attackers are assumed to know it — Kerckhoff).
  std::uint32_t hash_seed = 0;
};

}  // namespace intox::blink
