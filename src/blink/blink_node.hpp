// BlinkNode: the full Blink data-plane pipeline as a switch stage.
//
// Monitors a configured set of destination prefixes. For each, it runs a
// FlowSelector, infers failures ("half the monitored flows retransmitted
// within the sliding window"), and fast-reroutes the prefix from its
// primary to its backup next hop. Everything is driven by packet
// arrivals — including sample resets and hold-downs — mirroring how the
// P4 implementation works without control-plane timers.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "blink/flow_selector.hpp"
#include "dataplane/pipeline.hpp"
#include "net/lpm.hpp"

namespace intox::blink {

struct RerouteEvent {
  net::Prefix prefix;
  sim::Time when = 0;
  std::size_t retransmitting_cells = 0;
};

/// An optional veto hook consulted before committing a reroute — the
/// attachment point for the §5 supervisor countermeasures. Return false
/// to suppress the reroute.
using RerouteGuard =
    std::function<bool(const net::Prefix&, const FlowSelector&, sim::Time)>;

class BlinkNode : public dataplane::PacketProcessor {
 public:
  explicit BlinkNode(const BlinkConfig& config) : config_(config) {}
  /// Publishes lifetime totals (retransmission detections, reroutes,
  /// vetoes) into the obs metrics registry at retirement.
  ~BlinkNode() override;

  /// Registers a prefix to protect. While healthy the pipeline leaves the
  /// routing decision alone; after an inferred failure it steers the
  /// prefix to `backup_port`.
  void monitor_prefix(const net::Prefix& prefix, int primary_port,
                      int backup_port);

  void process(const net::Packet& pkt, dataplane::PipelineMetadata& meta,
               sim::Time now) override;

  void set_reroute_guard(RerouteGuard guard) { guard_ = std::move(guard); }
  void set_on_reroute(std::function<void(const RerouteEvent&)> cb) {
    on_reroute_ = std::move(cb);
  }

  /// Restores a prefix to its primary path (control-plane action, e.g.
  /// after BGP converges).
  void restore(const net::Prefix& prefix);

  [[nodiscard]] const std::vector<RerouteEvent>& reroutes() const {
    return reroutes_;
  }
  [[nodiscard]] bool is_rerouted(const net::Prefix& prefix) const;
  [[nodiscard]] const FlowSelector* selector(const net::Prefix& prefix) const;
  [[nodiscard]] FlowSelector* selector(const net::Prefix& prefix);
  /// Count of vetoed reroutes (supervisor interventions).
  [[nodiscard]] std::uint64_t vetoed() const { return vetoed_; }
  /// Retransmissions flagged by the flow selectors across all prefixes.
  [[nodiscard]] std::uint64_t retx_detections() const {
    return retx_detections_;
  }
  /// High-water mark of simultaneously-retransmitting cells observed on
  /// any monitored prefix (diagnostic; also the fuzzer's progress signal).
  [[nodiscard]] std::size_t max_retransmitting() const {
    return max_retransmitting_;
  }

 private:
  struct Entry {
    net::Prefix prefix;
    std::unique_ptr<FlowSelector> selector;
    int primary_port;
    int backup_port;
    bool rerouted = false;
    sim::Time next_reset = 0;
    sim::Time holddown_until = kNever;
  };

  Entry* find(const net::Prefix& prefix);
  const Entry* find(const net::Prefix& prefix) const;

  BlinkConfig config_;
  net::LpmTable<std::size_t> index_;
  std::vector<std::unique_ptr<Entry>> entries_;
  RerouteGuard guard_;
  std::function<void(const RerouteEvent&)> on_reroute_;
  std::vector<RerouteEvent> reroutes_;
  std::uint64_t vetoed_ = 0;
  std::uint64_t retx_detections_ = 0;
  std::size_t max_retransmitting_ = 0;
};

}  // namespace intox::blink
