#include "blink/blink_node.hpp"

#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"

namespace intox::blink {

namespace {

void record_decision(obs::FrType type, const net::Prefix& prefix,
                     sim::Time now, std::size_t retx) {
  obs::flightrec_record(type, static_cast<std::uint64_t>(now),
                        prefix.addr().value(), prefix.length(), retx);
}

}  // namespace

BlinkNode::~BlinkNode() {
  static obs::Counter& retx =
      obs::Registry::global().counter("blink.retx_detections");
  static obs::Counter& reroutes =
      obs::Registry::global().counter("blink.reroutes");
  static obs::Counter& vetoed =
      obs::Registry::global().counter("blink.vetoed_reroutes");
  static obs::Gauge& max_retx =
      obs::Registry::global().gauge("blink.max_retransmitting_cells");
  if (retx_detections_) retx.add(retx_detections_);
  if (!reroutes_.empty()) reroutes.add(reroutes_.size());
  if (vetoed_) vetoed.add(vetoed_);
  if (max_retransmitting_) {
    max_retx.update_max(static_cast<double>(max_retransmitting_));
  }
}

void BlinkNode::monitor_prefix(const net::Prefix& prefix, int primary_port,
                               int backup_port) {
  auto entry = std::make_unique<Entry>();
  entry->prefix = prefix;
  entry->selector = std::make_unique<FlowSelector>(config_);
  entry->primary_port = primary_port;
  entry->backup_port = backup_port;
  entry->next_reset = config_.sample_reset_period;
  index_.insert(prefix, entries_.size());
  entries_.push_back(std::move(entry));
}

BlinkNode::Entry* BlinkNode::find(const net::Prefix& prefix) {
  const std::size_t* idx = index_.find(prefix);
  return idx ? entries_[*idx].get() : nullptr;
}

const BlinkNode::Entry* BlinkNode::find(const net::Prefix& prefix) const {
  const std::size_t* idx = index_.find(prefix);
  return idx ? entries_[*idx].get() : nullptr;
}

void BlinkNode::process(const net::Packet& pkt,
                        dataplane::PipelineMetadata& meta, sim::Time now) {
  auto match = index_.lookup(pkt.dst);
  if (!match) return;
  Entry& e = *entries_[match->value];

  // Packet-driven sample reset (Blink has no control-plane timer: state
  // ages are checked as packets flow through the pipeline).
  if (now >= e.next_reset) {
    e.selector->reset(now);
    e.next_reset = now + config_.sample_reset_period;
  }

  // Steering decision applies to *all* packets of the prefix.
  const int steer = e.rerouted ? e.backup_port : e.primary_port;
  meta.egress_port = steer;

  const auto* tcp = pkt.tcp();
  if (!tcp) return;  // Blink monitors TCP only

  const bool fin_or_rst = tcp->fin || tcp->rst;
  const PacketVerdict v =
      e.selector->observe(pkt.five_tuple(), pkt.flow_tag, tcp->seq,
                          fin_or_rst, now);

  if (!v.retransmission) return;
  ++retx_detections_;
  const std::size_t retx = e.selector->retransmitting_count(now);
  record_decision(obs::FrType::kBlinkRetx, e.prefix, now, retx);
  if (retx > max_retransmitting_) max_retransmitting_ = retx;
  if (e.rerouted || now < e.holddown_until) return;
  const auto needed = static_cast<std::size_t>(
      config_.failure_threshold * static_cast<double>(config_.cells));
  if (retx < needed) return;

  // Failure inferred. Consult the supervisor (if any) before committing.
  if (guard_ && !guard_(e.prefix, *e.selector, now)) {
    ++vetoed_;
    record_decision(obs::FrType::kBlinkVeto, e.prefix, now, retx);
    e.holddown_until = now + config_.failure_holddown;
    return;
  }

  e.rerouted = true;
  e.holddown_until = now + config_.failure_holddown;
  record_decision(obs::FrType::kBlinkReroute, e.prefix, now, retx);
  RerouteEvent event{e.prefix, now, retx};
  reroutes_.push_back(event);
  if (on_reroute_) on_reroute_(event);
}

void BlinkNode::restore(const net::Prefix& prefix) {
  if (Entry* e = find(prefix)) e->rerouted = false;
}

bool BlinkNode::is_rerouted(const net::Prefix& prefix) const {
  const Entry* e = find(prefix);
  return e && e->rerouted;
}

const FlowSelector* BlinkNode::selector(const net::Prefix& prefix) const {
  const Entry* e = find(prefix);
  return e ? e->selector.get() : nullptr;
}

FlowSelector* BlinkNode::selector(const net::Prefix& prefix) {
  Entry* e = find(prefix);
  return e ? e->selector.get() : nullptr;
}

}  // namespace intox::blink
