// The §3.1 attacker and the packet-level Fig. 2 experiment harness.
//
// The attacker compromises a set of hosts and has each open one fake
// "flow" towards the victim prefix (no TCP handshake — Blink never checks
// for one). Each flow stays permanently active and emits duplicate-
// sequence segments, so once it is sampled it is (a) never evicted and
// (b) always counted as retransmitting. `plan_attack` applies the
// closed-form model to size the botnet; `run_fig2_experiment` replays the
// full packet-level attack against a real BlinkNode.
#pragma once

#include <cstdint>
#include <vector>

#include "blink/analysis.hpp"
#include "blink/blink_node.hpp"
#include "sim/stats.hpp"
#include "trafficgen/driver.hpp"
#include "trafficgen/synth.hpp"

namespace intox::blink {

/// Ground-truth tag space for malicious flows in these experiments.
inline constexpr std::uint64_t kMaliciousTagBase = std::uint64_t{1} << 40;

inline bool is_malicious_tag(std::uint64_t tag) {
  return tag >= kMaliciousTagBase;
}

struct AttackPlan {
  std::size_t malicious_flows = 0;   // botnet size
  double qm = 0.0;                   // resulting traffic fraction
  double expected_majority_time_s = 0.0;
  double success_probability = 0.0;  // within the reset budget t_B
};

/// Sizes the attack: find the smallest botnet whose q_m captures
/// >= half the cells within one reset period with the given confidence.
AttackPlan plan_attack(const BlinkConfig& config, std::size_t legit_flows,
                       double tr_seconds, double confidence);

struct Fig2Config {
  BlinkConfig blink{};
  trafficgen::TraceConfig trace{};   // defaults: 2000 flows, t_R = 8.37 s
  std::size_t malicious_flows = 105; // q_m = 105/2000 = 0.0525
  sim::Duration sample_interval = sim::seconds(1);
  std::uint64_t seed = 1;
};

struct Fig2Result {
  /// #malicious flows in Blink's sample, sampled once per second.
  sim::TimeSeries malicious_sampled;
  /// Empirical mean residency of flows that left the sample (t_R check).
  double measured_tr_seconds = 0.0;
  /// First time the sample became majority-malicious; negative if never.
  double time_to_majority_seconds = -1.0;
  /// Reroutes Blink committed during the run (attack successes).
  std::vector<RerouteEvent> reroutes;
};

/// Runs one packet-level experiment: synthetic legitimate trace plus the
/// malicious population, fed through a real BlinkNode pipeline.
Fig2Result run_fig2_experiment(const Fig2Config& config);

/// The Fig. 2 bench default for trial `trial`: seeds are derived from
/// the trial index alone (1000 + trial), so sweeps are reproducible and
/// shard-order-independent regardless of worker count.
Fig2Config default_fig2_config(std::uint64_t trial);

}  // namespace intox::blink
