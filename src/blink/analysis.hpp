// Closed-form analysis of the Blink sampling attack (§3.1 of the paper).
//
// Model: each of the n cells turns over independently; a legitimate
// occupant stays for t_R on average, and at each turnover the new
// occupant is malicious with probability q_m. A malicious occupant never
// leaves until the global sample reset. Hence the probability a given
// cell is malicious at time t after a reset is
//
//     p(t) = 1 - (1 - q_m)^(t / t_R)
//
// and the number of malicious cells X(t) ~ Binomial(n, p(t)). These are
// exactly the formulas in the paper; Fig. 2 plots the mean and the
// 5th/95th percentiles of this distribution over time.
#pragma once

#include <cstddef>

namespace intox::blink {

/// p(t): probability one cell holds a malicious flow at time t (seconds)
/// after a sample reset.
double cell_malicious_probability(double qm, double t_seconds,
                                  double tr_seconds);

/// Expected number of malicious cells at time t.
double expected_malicious_cells(std::size_t n, double qm, double t_seconds,
                                double tr_seconds);

/// Binomial CDF P[X <= k] for X ~ Bin(n, p), numerically stable for the
/// n <= few-hundred range used here.
double binomial_cdf(std::size_t n, double p, std::size_t k);

/// Smallest k with P[X <= k] >= q (the q-quantile of Bin(n, p)).
std::size_t binomial_quantile(std::size_t n, double p, double q);

/// P[X(t) >= needed]: probability the attack controls at least `needed`
/// cells at time t.
double attack_success_probability(std::size_t n, double qm, double t_seconds,
                                  double tr_seconds, std::size_t needed);

/// Time at which the *expected* malicious count reaches `target`
/// (infinity if target >= n, returned as a large sentinel).
double time_to_expected_count(std::size_t n, double qm, double tr_seconds,
                              double target);

/// Smallest q_m such that P[X(t_budget) >= needed] >= confidence.
/// Bisection over q_m in (0, 1).
double min_qm_for_success(std::size_t n, double t_budget_seconds,
                          double tr_seconds, std::size_t needed,
                          double confidence);

}  // namespace intox::blink
