#include "blink/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace intox::blink {

double cell_malicious_probability(double qm, double t_seconds,
                                  double tr_seconds) {
  if (qm <= 0.0 || t_seconds <= 0.0) return 0.0;
  if (qm >= 1.0) return 1.0;
  return 1.0 - std::pow(1.0 - qm, t_seconds / tr_seconds);
}

double expected_malicious_cells(std::size_t n, double qm, double t_seconds,
                                double tr_seconds) {
  return static_cast<double>(n) *
         cell_malicious_probability(qm, t_seconds, tr_seconds);
}

namespace {

// log C(n, k) via lgamma.
double log_binom(std::size_t n, std::size_t k) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::size_t n, double p, std::size_t k) {
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double lp = log_binom(n, k) + static_cast<double>(k) * std::log(p) +
                    static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(lp);
}

}  // namespace

double binomial_cdf(std::size_t n, double p, std::size_t k) {
  if (k >= n) return 1.0;
  double sum = 0.0;
  for (std::size_t i = 0; i <= k; ++i) sum += binomial_pmf(n, p, i);
  return std::min(sum, 1.0);
}

std::size_t binomial_quantile(std::size_t n, double p, double q) {
  double cum = 0.0;
  for (std::size_t k = 0; k <= n; ++k) {
    cum += binomial_pmf(n, p, k);
    if (cum >= q) return k;
  }
  return n;
}

double attack_success_probability(std::size_t n, double qm, double t_seconds,
                                  double tr_seconds, std::size_t needed) {
  if (needed == 0) return 1.0;
  const double p = cell_malicious_probability(qm, t_seconds, tr_seconds);
  return 1.0 - binomial_cdf(n, p, needed - 1);
}

double time_to_expected_count(std::size_t n, double qm, double tr_seconds,
                              double target) {
  const double frac = target / static_cast<double>(n);
  if (frac >= 1.0 || qm <= 0.0 || qm >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  if (frac <= 0.0) return 0.0;
  // Solve 1 - (1-qm)^(t/tR) = frac.
  return tr_seconds * std::log1p(-frac) / std::log1p(-qm);
}

double min_qm_for_success(std::size_t n, double t_budget_seconds,
                          double tr_seconds, std::size_t needed,
                          double confidence) {
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double s = attack_success_probability(n, mid, t_budget_seconds,
                                                tr_seconds, needed);
    if (s >= confidence) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace intox::blink
