#include "supervisor/input_quality.hpp"

#include <memory>

namespace intox::supervisor {

void ActiveProber::verify(Decision decide) {
  ++rounds_;
  // Per-round state kept alive by the chained events.
  struct Round {
    int sent = 0;
    int failures = 0;
  };
  auto round = std::make_shared<Round>();
  const sim::Time started = sched_.now();

  auto step = std::make_shared<std::function<void()>>();
  *step = [this, round, started, decide = std::move(decide), step]() mutable {
    if (!probe_()) ++round->failures;
    ++round->sent;
    if (round->sent >= config_.probes) {
      decide(round->failures >= config_.required_failures,
             sched_.now() - started);
      *step = nullptr;  // break the self-reference cycle
      return;
    }
    sched_.schedule_after(config_.probe_interval, *step);
  };
  sched_.schedule_after(config_.probe_interval, *step);
}

}  // namespace intox::supervisor
