// PCC defense (§5): drop-pattern monitoring and ε clamping.
//
// "PCC could monitor when packets are dropped in every +ε or −ε phase as
// well as limit the amplitude of the oscillations by decreasing the
// range of ε."
//
// The guard subscribes to the sender's per-experiment outcomes. The
// attack signature is: experiments keep ending inconclusive while the
// probe intervals see loss that the hold intervals do not — on a benign
// congested path, loss hits probes and holds alike. After a streak of
// such experiments the guard declares the flow under influence and
// clamps the sender's ε escalation ceiling to ε_min, capping the
// oscillation amplitude the attacker can induce.
#pragma once

#include "pcc/sender.hpp"
#include "supervisor/supervisor.hpp"

namespace intox::supervisor {

struct PccGuardConfig {
  /// Consecutive suspicious experiments before intervening.
  int streak_to_trigger = 4;
  /// "Probe-targeted loss": the -eps arm's loss must exceed the
  /// hold-interval loss by this much to count as suspicious (a slower
  /// probe seeing *more* loss than the base rate cannot be congestion).
  double loss_gap = 0.005;
  /// Clamp value applied on detection.
  double clamped_epsilon = 0.01;
};

class PccGuard {
 public:
  PccGuard(pcc::PccSender& sender,
           const PccGuardConfig& config = PccGuardConfig{});

  /// Judges one experiment outcome (invoked automatically via the
  /// sender's observer hook; public so tests and offline analyzers can
  /// replay recorded outcomes).
  void observe(const pcc::PccSender::ExperimentOutcome& outcome);

  [[nodiscard]] bool detected() const { return detected_; }
  [[nodiscard]] int suspicious_streak() const { return streak_; }
  [[nodiscard]] const GuardStats& stats() const { return stats_; }

 private:
  pcc::PccSender& sender_;
  PccGuardConfig config_;
  int streak_ = 0;
  bool detected_ = false;
  GuardStats stats_;
};

}  // namespace intox::supervisor
