// Generic input-quality building blocks (§5, countermeasure point I).
//
//  * SignalVote — "improving input quality by using many independent
//    inputs": combine k independent boolean signals by quorum.
//  * ActiveProber — "verifying inputs, for example through active
//    probing": before acting on a passive signal, issue probes and wait
//    for evidence; models the paper's noted trade-off by accounting the
//    added decision latency.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "supervisor/supervisor.hpp"

namespace intox::supervisor {

/// Quorum vote over independent signals.
class SignalVote {
 public:
  using Signal = std::function<bool()>;

  SignalVote(std::vector<Signal> signals, std::size_t quorum)
      : signals_(std::move(signals)), quorum_(quorum) {}

  /// True iff at least `quorum` signals agree the event is real.
  [[nodiscard]] bool confirm() const {
    std::size_t yes = 0;
    for (const auto& s : signals_) yes += s();
    return yes >= quorum_;
  }

 private:
  std::vector<Signal> signals_;
  std::size_t quorum_;
};

/// Active verification of a failure signal: sends `probes` probes spaced
/// `probe_interval` apart and declares the event confirmed only if at
/// least `required_failures` probes go unanswered. The probe transport
/// is abstracted as a callback that reports whether a probe got through
/// (in the benches this is wired to the simulated primary path).
class ActiveProber {
 public:
  struct Config {
    int probes = 3;
    sim::Duration probe_interval = sim::millis(100);
    int required_failures = 2;
  };

  using ProbeFn = std::function<bool()>;  // true = probe answered
  using Decision = std::function<void(bool confirmed, sim::Duration latency)>;

  ActiveProber(sim::Scheduler& sched, Config config, ProbeFn probe)
      : sched_(sched), config_(config), probe_(std::move(probe)) {}

  /// Starts a verification round; `decide` fires once with the outcome
  /// and the decision latency the verification added.
  void verify(Decision decide);

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

 private:
  sim::Scheduler& sched_;
  Config config_;
  ProbeFn probe_;
  std::uint64_t rounds_ = 0;
};

}  // namespace intox::supervisor
