#include "supervisor/blink_guard.hpp"

namespace intox::supervisor {

Assessment BlinkRtoGuard::assess(const blink::FlowSelector& selector,
                                 sim::Time now) {
  ++stats_.assessed;
  std::size_t retransmitting = 0;
  std::size_t implausible = 0;
  for (const blink::Cell& cell : selector.cells()) {
    if (!cell.occupied || cell.last_retransmit == blink::kNever) continue;
    // Only cells contributing to the failure signal matter.
    if (now - cell.last_retransmit > sim::millis(800)) continue;
    ++retransmitting;
    const bool old_episode =
        cell.episode_start != blink::kNever &&
        now - cell.episode_start > config_.max_episode_age;
    const bool too_chatty =
        cell.episode_retransmits > config_.max_episode_retransmits;
    if (old_episode || too_chatty) ++implausible;
  }

  Assessment a;
  a.risk = retransmitting == 0
               ? 0.0
               : static_cast<double>(implausible) /
                     static_cast<double>(retransmitting);
  if (a.risk >= config_.veto_fraction) {
    a.verdict = Verdict::kDeny;
    a.reason = "retransmission episodes inconsistent with fresh failure";
    ++stats_.denied;
  }
  return a;
}

blink::RerouteGuard BlinkRtoGuard::as_reroute_guard() {
  return [this](const net::Prefix&, const blink::FlowSelector& selector,
                sim::Time now) { return assess(selector, now).allowed(); };
}

}  // namespace intox::supervisor
