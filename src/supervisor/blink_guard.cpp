#include "supervisor/blink_guard.hpp"

namespace intox::supervisor {

Assessment BlinkRtoGuard::assess(const blink::FlowSelector& selector,
                                 sim::Time now) {
  ++stats_.assessed;
  std::size_t retransmitting = 0;
  std::size_t implausible = 0;
  // Column scan over the selector's SoA state: the audit touches only 4
  // of the 10 per-cell fields.
  const auto occupied = selector.occupied();
  const auto last_retransmit = selector.last_retransmit();
  const auto episode_start = selector.episode_start();
  const auto episode_retransmits = selector.episode_retransmits();
  for (std::size_t i = 0; i < occupied.size(); ++i) {
    if (!occupied[i] || last_retransmit[i] == blink::kNever) continue;
    // Only cells contributing to the failure signal matter.
    if (now - last_retransmit[i] > sim::millis(800)) continue;
    ++retransmitting;
    const bool old_episode =
        episode_start[i] != blink::kNever &&
        now - episode_start[i] > config_.max_episode_age;
    const bool too_chatty =
        episode_retransmits[i] > config_.max_episode_retransmits;
    if (old_episode || too_chatty) ++implausible;
  }

  Assessment a;
  a.risk = retransmitting == 0
               ? 0.0
               : static_cast<double>(implausible) /
                     static_cast<double>(retransmitting);
  if (a.risk >= config_.veto_fraction) {
    a.verdict = Verdict::kDeny;
    a.reason = "retransmission episodes inconsistent with fresh failure";
    ++stats_.denied;
  }
  return a;
}

blink::RerouteGuard BlinkRtoGuard::as_reroute_guard() {
  return [this](const net::Prefix&, const blink::FlowSelector& selector,
                sim::Time now) { return assess(selector, now).allowed(); };
}

}  // namespace intox::supervisor
