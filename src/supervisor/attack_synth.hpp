// §5-II: automated attack discovery for data-plane programs.
//
//   "For testing, one can use fuzzing techniques that enable
//    auto-generation of (realistic) adversarial inputs ... Given a
//    specified part within a data-plane program (e.g., a register
//    access), such a tool could compute inputs (i.e., sequences of
//    packets) that reach this part of the program."
//
// A black-box synthesizer in that spirit: candidate inputs are packet
// sequences encoded as genes (which flow sends, whether it repeats its
// sequence number, how long it waits); a guided random search (hill
// climbing with restarts) maximizes a caller-supplied progress score
// until a caller-supplied goal predicate on the pipeline state holds.
// No knowledge of the program semantics is baked into the search — only
// the generic TCP packet vocabulary.
//
// The tests point it at a fresh BlinkNode and ask for "a reroute
// happened": the synthesizer rediscovers the §3.1 attack (always-active
// duplicate-seq flows) from scratch.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dataplane/pipeline.hpp"
#include "net/ipv4.hpp"
#include "sim/rng.hpp"

namespace intox::supervisor {

/// One packet decision in a candidate input sequence.
struct PacketGene {
  std::uint16_t flow = 0;     // index into the synthesized flow pool
  bool repeat_seq = false;    // resend the flow's previous seq?
  bool fin = false;           // close the flow
  std::uint16_t gap_ms = 50;  // wait before this packet
};

struct SynthConfig {
  /// Distinct flows the fuzzer may use.
  std::size_t flow_pool = 128;
  /// Packets per candidate sequence.
  std::size_t sequence_length = 1500;
  /// Candidate evaluations (each runs the sequence on a fresh pipeline).
  std::size_t max_iterations = 300;
  /// Genes mutated per step.
  std::size_t mutations_per_step = 40;
  /// Restart from a fresh random candidate after this many non-improving
  /// steps.
  std::size_t restart_after = 30;
  net::Prefix target_prefix{net::Ipv4Addr{10, 0, 0, 0}, 8};
  std::uint64_t seed = 1;
};

struct SynthResult {
  bool found = false;
  std::size_t iterations = 0;
  double best_score = 0.0;
  /// The winning gene sequence (replayable witness).
  std::vector<PacketGene> witness;
};

class AttackSynthesizer {
 public:
  /// Builds a fresh instance of the pipeline under test.
  using Factory = std::function<std::unique_ptr<dataplane::PacketProcessor>()>;
  /// Progress score (higher = closer to the target state), evaluated
  /// after the sequence ran.
  using Score = std::function<double(dataplane::PacketProcessor&)>;
  /// Goal predicate ("the register/branch of interest was reached").
  using Goal = std::function<bool(dataplane::PacketProcessor&)>;

  explicit AttackSynthesizer(const SynthConfig& config) : config_(config) {}

  SynthResult search(const Factory& factory, const Score& score,
                     const Goal& goal);

  /// Replays a gene sequence against a pipeline instance (also used by
  /// the search internally). Returns the end-of-run virtual time.
  sim::Time replay(const std::vector<PacketGene>& genes,
                   dataplane::PacketProcessor& pipeline) const;

 private:
  std::vector<PacketGene> random_candidate(sim::Rng& rng) const;
  void mutate(std::vector<PacketGene>& genes, sim::Rng& rng) const;
  net::FiveTuple flow_tuple(std::uint16_t index) const;

  SynthConfig config_;
};

}  // namespace intox::supervisor
