// §5 countermeasure framework: the driver/supervisor architecture.
//
// "A driver drives the network while a supervisor supervises the driver
// and determines the directions in which it can move. The key idea is
// to not rely solely on data-plane signals but to have an additional
// feedback loop that checks the plausibility of the signals."  (Fig. 3)
//
// The generic interface below is deliberately small: a supervisor sees
// (state, proposed action) and returns an assessment; drivers consult it
// before committing state changes. The concrete guards in this module
// implement it for the paper's three case studies:
//   * BlinkRtoGuard    — intervention point I/III: input plausibility.
//   * PytheasGuard     — intervention point I: input quality filtering.
//   * PccGuard         — intervention point III/IV: constrained range.
// input_quality.hpp adds the generic point-I building blocks (voting
// over independent signals, active-probe verification).
#pragma once

#include <string>

namespace intox::supervisor {

enum class Verdict { kAllow, kDeny };

struct Assessment {
  Verdict verdict = Verdict::kAllow;
  /// Estimated probability the driver is "under the influence".
  double risk = 0.0;
  std::string reason;

  [[nodiscard]] bool allowed() const { return verdict == Verdict::kAllow; }
};

/// A supervisor judging proposed driver actions. State and Action are
/// domain types (e.g. FlowSelector snapshot / "reroute prefix").
template <typename State, typename Action>
class Supervisor {
 public:
  virtual ~Supervisor() = default;
  virtual Assessment assess(const State& state, const Action& action) = 0;
};

struct GuardStats {
  std::uint64_t assessed = 0;
  std::uint64_t denied = 0;
};

}  // namespace intox::supervisor
