// Blink defense (§5 "Applicability to Blink"): RTO-plausibility check.
//
// Upon a real failure, every affected flow *starts* retransmitting at
// that moment and spaces its retransmissions by exponentially backed-off
// RTOs — so at inference time each retransmission episode is young and
// shallow. The §3.1 attacker's flows, by contrast, have been emitting
// duplicates continuously since they were sampled: their episodes are
// old and deep. The guard vetoes a reroute when too many of the
// retransmitting cells look like long-running emitters rather than
// freshly failing flows.
#pragma once

#include <cstdint>

#include "blink/blink_node.hpp"
#include "supervisor/supervisor.hpp"

namespace intox::supervisor {

struct BlinkGuardConfig {
  /// An episode older than this at inference time is implausible for a
  /// genuine failure (a real flow would have sent only ~2-3 RTOs by the
  /// time Blink's majority trips, i.e. within a few seconds).
  sim::Duration max_episode_age = sim::seconds(3);
  /// More retransmissions than this within one episode is implausible
  /// (RTO backoff 1+2 s yields ~3 by inference time).
  std::uint32_t max_episode_retransmits = 6;
  /// Veto when this fraction of retransmitting cells is implausible.
  double veto_fraction = 0.25;
};

class BlinkRtoGuard {
 public:
  explicit BlinkRtoGuard(const BlinkGuardConfig& config = BlinkGuardConfig{})
      : config_(config) {}

  /// Assesses a proposed reroute given the selector's cell state.
  Assessment assess(const blink::FlowSelector& selector, sim::Time now);

  /// Adapter usable directly as blink::RerouteGuard.
  [[nodiscard]] blink::RerouteGuard as_reroute_guard();

  [[nodiscard]] const GuardStats& stats() const { return stats_; }

 private:
  BlinkGuardConfig config_;
  GuardStats stats_;
};

}  // namespace intox::supervisor
