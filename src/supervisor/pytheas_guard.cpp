#include "supervisor/pytheas_guard.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace intox::supervisor {

namespace {

double median_of(std::vector<double> v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

}  // namespace

bool PytheasGuard::admit(const pytheas::SessionFeatures& group,
                         const pytheas::QoeReport& report) {
  ++stats_.assessed;

  // Check 1: per-session rate limit within the sliding window.
  auto& [window_start, count] = session_window_[report.session];
  if (report.when - window_start >= config_.window) {
    window_start = report.when;
    count = 0;
  }
  if (++count > config_.max_reports_per_window) {
    ++rate_limited_;
    ++stats_.denied;
    return false;
  }

  // Check 2: robust outlier quarantine against (group, arm) history.
  const auto key = std::make_pair(pytheas::GroupKeyHash{}(group), report.arm);
  ArmHistory& hist = history_[key];
  if (hist.values.size() >= config_.warmup_reports) {
    std::vector<double> values{hist.values.begin(), hist.values.end()};
    const double med = median_of(values);
    std::vector<double> deviations;
    deviations.reserve(values.size());
    for (double v : values) deviations.push_back(std::abs(v - med));
    const double mad = median_of(std::move(deviations));
    if (std::abs(report.qoe - med) >
        config_.outlier_k * mad + config_.outlier_slack) {
      ++quarantined_;
      ++stats_.denied;
      return false;
    }
  }

  hist.values.push_back(report.qoe);
  if (hist.values.size() > config_.history) hist.values.pop_front();
  return true;
}

}  // namespace intox::supervisor
