#include "supervisor/attack_synth.hpp"

#include <unordered_map>

#include "net/packet.hpp"

namespace intox::supervisor {

net::FiveTuple AttackSynthesizer::flow_tuple(std::uint16_t index) const {
  net::FiveTuple t;
  t.src = net::Ipv4Addr{172, 16, static_cast<std::uint8_t>(index >> 8),
                        static_cast<std::uint8_t>(index & 0xff)};
  t.dst = net::Ipv4Addr{config_.target_prefix.addr().value() | 1};
  t.src_port = static_cast<std::uint16_t>(20000 + index);
  t.dst_port = 80;
  t.proto = net::IpProto::kTcp;
  return t;
}

sim::Time AttackSynthesizer::replay(
    const std::vector<PacketGene>& genes,
    dataplane::PacketProcessor& pipeline) const {
  sim::Time now = 0;
  std::unordered_map<std::uint16_t, std::uint32_t> flow_seq;
  for (const PacketGene& g : genes) {
    now += sim::millis(g.gap_ms);
    auto [it, fresh] = flow_seq.try_emplace(g.flow, 1000u);
    if (!g.repeat_seq && !fresh) it->second += 1448;

    net::Packet p;
    const net::FiveTuple tuple = flow_tuple(g.flow);
    p.src = tuple.src;
    p.dst = tuple.dst;
    net::TcpHeader tcp;
    tcp.src_port = tuple.src_port;
    tcp.dst_port = tuple.dst_port;
    tcp.seq = it->second;
    tcp.ack_flag = true;
    tcp.fin = g.fin;
    p.l4 = tcp;
    p.payload_bytes = 512;

    dataplane::PipelineMetadata meta;
    pipeline.process(p, meta, now);
  }
  return now;
}

std::vector<PacketGene> AttackSynthesizer::random_candidate(
    sim::Rng& rng) const {
  std::vector<PacketGene> genes(config_.sequence_length);
  for (auto& g : genes) {
    g.flow = static_cast<std::uint16_t>(
        rng.uniform_int(0, config_.flow_pool - 1));
    g.repeat_seq = rng.bernoulli(0.5);
    g.fin = rng.bernoulli(0.02);
    g.gap_ms = static_cast<std::uint16_t>(rng.uniform_int(1, 400));
  }
  return genes;
}

void AttackSynthesizer::mutate(std::vector<PacketGene>& genes,
                               sim::Rng& rng) const {
  // Macro-move: with some probability, write a tight burst of repeats —
  // bursts are the generic building block of timing-sensitive packet
  // attacks, and assembling one by single-gene tweaks is astronomically
  // unlikely.
  if (rng.bernoulli(0.3)) {
    const std::size_t len = rng.uniform_int(4, 16);
    const std::size_t start = rng.uniform_int(0, genes.size() - len);
    for (std::size_t i = 0; i < len; ++i) {
      PacketGene& g = genes[start + i];
      g.flow = static_cast<std::uint16_t>(
          rng.uniform_int(0, config_.flow_pool - 1));
      g.repeat_seq = true;
      g.fin = false;
      g.gap_ms = static_cast<std::uint16_t>(rng.uniform_int(1, 10));
    }
    return;
  }
  for (std::size_t m = 0; m < config_.mutations_per_step; ++m) {
    PacketGene& g = genes[rng.uniform_int(0, genes.size() - 1)];
    switch (rng.uniform_int(0, 4)) {
      case 0:
        g.flow = static_cast<std::uint16_t>(
            rng.uniform_int(0, config_.flow_pool - 1));
        break;
      case 1:
        g.repeat_seq = !g.repeat_seq;
        break;
      case 2:
        g.fin = !g.fin && rng.bernoulli(0.2);
        break;
      case 3:
        g.gap_ms = static_cast<std::uint16_t>(rng.uniform_int(1, 400));
        break;
      default:
        // Local timing refinement: tighter bursts are how stateful
        // windowed conditions (e.g. "k events within w ms") are reached.
        g.gap_ms = static_cast<std::uint16_t>(std::max(1, g.gap_ms / 2));
        break;
    }
  }
}

SynthResult AttackSynthesizer::search(const Factory& factory,
                                      const Score& score, const Goal& goal) {
  sim::Rng rng{config_.seed};
  SynthResult result;

  std::vector<PacketGene> best = random_candidate(rng);
  double best_score = -1e300;
  std::size_t stale = 0;

  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    std::vector<PacketGene> candidate = best;
    if (iter == 0 || stale >= config_.restart_after) {
      candidate = random_candidate(rng);
      stale = 0;
    } else {
      mutate(candidate, rng);
    }

    auto pipeline = factory();
    replay(candidate, *pipeline);
    const double s = score(*pipeline);
    ++result.iterations;

    if (goal(*pipeline)) {
      result.found = true;
      result.best_score = s;
      result.witness = std::move(candidate);
      return result;
    }

    if (s > best_score) {
      best_score = s;
      best = std::move(candidate);
      stale = 0;
    } else if (s == best_score) {
      best = std::move(candidate);  // neutral drift across plateaus
      ++stale;
    } else {
      ++stale;
    }
  }
  result.best_score = best_score;
  result.witness = best;
  return result;
}

}  // namespace intox::supervisor
