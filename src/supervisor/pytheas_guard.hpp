// Pytheas defense (§5): per-group report-distribution screening.
//
// "Pytheas could look at the distribution of throughput across all
// clients in a group. If only a few clients exhibit low throughput while
// others exhibit high throughput, this is indicative of either groups
// being ill-formed or malicious inputs from part of the group
// population. Accordingly, the low-throughput clients can be tackled
// separately, removing their impact on the larger population."
//
// Implemented as a PytheasEngine ReportFilter with two independent
// checks:
//   1. per-session rate limiting — a client reporting far more often
//      than its peers is amplifying (reports are per chunk; honest
//      clients produce ~1 per epoch);
//   2. robust outlier quarantine — reports far from the (median, MAD)
//      of recent admitted reports for the same (group, arm) are parked.
#pragma once

#include <deque>
#include <map>
#include <unordered_map>

#include "pytheas/engine.hpp"
#include "supervisor/supervisor.hpp"

namespace intox::supervisor {

struct PytheasGuardConfig {
  /// Reports admitted per session per window (honest: 1 per epoch).
  std::size_t max_reports_per_window = 2;
  sim::Duration window = sim::seconds(1);  // one epoch in the experiments
  /// Quarantine when |q - median| > outlier_k * MAD + slack.
  double outlier_k = 4.0;
  double outlier_slack = 0.3;
  /// Robust stats warm up on this many admitted reports before the
  /// outlier check activates.
  std::size_t warmup_reports = 30;
  std::size_t history = 200;  // admitted reports kept per (group, arm)
};

class PytheasGuard : public pytheas::ReportFilter {
 public:
  explicit PytheasGuard(const PytheasGuardConfig& config = PytheasGuardConfig{})
      : config_(config) {}

  bool admit(const pytheas::SessionFeatures& group,
             const pytheas::QoeReport& report) override;

  [[nodiscard]] const GuardStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t rate_limited() const { return rate_limited_; }
  [[nodiscard]] std::uint64_t quarantined() const { return quarantined_; }

 private:
  struct ArmHistory {
    std::deque<double> values;
  };

  PytheasGuardConfig config_;
  GuardStats stats_;
  std::uint64_t rate_limited_ = 0;
  std::uint64_t quarantined_ = 0;
  std::map<std::pair<std::size_t, pytheas::ArmId>, ArmHistory> history_;
  std::unordered_map<pytheas::SessionId, std::pair<sim::Time, std::size_t>>
      session_window_;
};

}  // namespace intox::supervisor
