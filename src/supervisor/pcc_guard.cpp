#include "supervisor/pcc_guard.hpp"

#include <algorithm>

namespace intox::supervisor {

PccGuard::PccGuard(pcc::PccSender& sender, const PccGuardConfig& config)
    : sender_(sender), config_(config) {
  sender_.set_experiment_observer(
      [this](const pcc::PccSender::ExperimentOutcome& o) { observe(o); });
}

void PccGuard::observe(const pcc::PccSender::ExperimentOutcome& o) {
  ++stats_.assessed;
  // Key physical argument: benign congestion can explain extra loss in
  // the +eps arm (it sends *more*), but the -eps arm sends *less* than
  // the hold intervals — if it still sees more loss than they do, the
  // drops are aimed at the experiment, not caused by it.
  const double hold_loss = o.hold_loss < 0.0 ? 0.0 : o.hold_loss;
  const bool probe_targeted = o.down_loss_mean > hold_loss + config_.loss_gap;
  const bool suspicious = !o.conclusive && probe_targeted;

  streak_ = suspicious ? streak_ + 1 : 0;
  if (!detected_ && streak_ >= config_.streak_to_trigger) {
    detected_ = true;
    ++stats_.denied;  // one intervention
    sender_.set_epsilon_cap(config_.clamped_epsilon);
  }
}

}  // namespace intox::supervisor
