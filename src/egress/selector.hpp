// Espresso / Edge Fabric-style egress selection (§3.2 of the paper):
//
//   "Google Espresso and Facebook EdgeConnect use passive measurements
//    to extract information and send traffic on the best-performing
//    path. An attacker could lower the performance (e.g., increase the
//    delay) of the flows destined to these networks so that they use
//    another path."
//
// An edge point-of-presence reaches a destination prefix over several
// peering paths. Production flows are hashed onto the currently-preferred
// path; a small exploration share stays on the alternatives so their
// quality keeps being measured *passively* — from the transiting
// traffic's delivery confirmations, never from active probes. Every
// decision epoch the controller shifts the prefix to the path with the
// best smoothed performance score.
//
// The passive design is the attack surface: whoever degrades the flows
// on a path controls that path's measured quality.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/link.hpp"
#include "sim/stats.hpp"

namespace intox::egress {

struct EgressConfig {
  std::size_t paths = 3;
  /// Fraction of flows kept on each non-preferred path for measurement.
  double exploration_share = 0.05;
  sim::Duration decision_interval = sim::seconds(1);
  /// EWMA gain for per-path loss / RTT estimates.
  double ewma_gain = 0.15;
  /// Latency penalty per unit loss when scoring (lower score = better).
  double loss_penalty = 20.0;
  /// Hysteresis: a challenger must beat the incumbent by this factor.
  double switch_threshold = 0.85;
  std::uint64_t seed = 1;
};

struct PathStats {
  double rtt_s = 0.0;
  double loss = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t acked = 0;
  bool valid = false;
  [[nodiscard]] double score(const EgressConfig& cfg) const {
    if (!valid) return 1e9;
    return rtt_s * (1.0 + cfg.loss_penalty * loss);
  }
};

/// One edge PoP steering traffic for one destination prefix across
/// several peering paths (each a sim::Link pair provided by the caller
/// via transmit/ack plumbing).
class EgressSelector {
 public:
  /// `send(path, packet)` forwards a packet over the given peering path.
  using PathSend = std::function<void(std::size_t, net::Packet)>;

  EgressSelector(sim::Scheduler& sched, const EgressConfig& config,
                 PathSend send);

  void start();
  void stop();

  /// Routes one production packet: picks the path by flow hash (sticky
  /// per flow) honouring the current preference + exploration split.
  void forward(net::Packet pkt);

  /// Delivery confirmation for a packet previously forwarded (the
  /// passive signal; e.g. TCP ACK observed at the edge). `rtt` is the
  /// measured round trip.
  void on_delivery(std::size_t path, sim::Duration rtt);
  /// Loss indication for a packet on `path` (e.g. retransmission seen).
  void on_loss(std::size_t path);

  [[nodiscard]] std::size_t preferred_path() const { return preferred_; }
  [[nodiscard]] const PathStats& stats(std::size_t path) const {
    return stats_[path];
  }
  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  [[nodiscard]] const sim::TimeSeries& preference_series() const {
    return preference_series_;
  }

 private:
  void decide();
  std::size_t pick_path(const net::Packet& pkt);

  sim::Scheduler& sched_;
  EgressConfig config_;
  PathSend send_;
  sim::Rng rng_;
  std::vector<PathStats> stats_;
  std::size_t preferred_ = 0;
  std::uint64_t switches_ = 0;
  bool running_ = false;
  sim::Scheduler::EventId timer_;
  sim::TimeSeries preference_series_;
};

}  // namespace intox::egress
