// §3.2 egress-selection attack:
//
//   "An attacker could lower the performance (e.g., increase the delay)
//    of the flows destined to these networks so that they use another
//    path."
//
// The attacker is a MitM on the currently-best peering path. She drops a
// small fraction of the *production* flows transiting it (there are no
// probes to target — the measurements are passive), which poisons that
// path's passive quality estimate and pushes the edge onto the path the
// attacker prefers (e.g. one she can eavesdrop).
//
// The experiment builds an edge with three peering paths of different
// genuine quality, runs a flow workload through the selector, and lets
// the attacker degrade whichever path the selector currently prefers —
// except the attacker-controlled one.
#pragma once

#include "egress/selector.hpp"
#include "sim/rng.hpp"

namespace intox::egress {

struct EgressAttackConfig {
  /// Drop probability the attacker applies to targeted-path packets.
  /// Must push the victim paths' loss-penalized score decisively past
  /// the hysteresis band around the attacker path's honest score; after
  /// the flip only exploration traffic transits the degraded paths, so
  /// the absolute tampering volume stays ~2% of all packets.
  double drop_prob = 0.3;
  /// The path the attacker wants traffic on (she taps it elsewhere).
  std::size_t attacker_path = 2;
  std::uint64_t seed = 99;
};

struct EgressExperimentConfig {
  /// Genuine one-way delays per path (path 0 is the honest best).
  std::vector<sim::Duration> path_delay{sim::millis(10), sim::millis(14),
                                        sim::millis(25)};
  sim::Duration warmup = sim::seconds(10);
  sim::Duration attack_duration = sim::seconds(30);
  /// Production workload: flows per second through the edge.
  double flows_per_second = 200.0;
  bool attack = true;
  EgressAttackConfig attacker{};
  std::uint64_t seed = 1;
};

struct EgressExperimentResult {
  std::size_t preferred_before = 0;
  std::size_t preferred_after = 0;
  double mean_rtt_before_ms = 0.0;
  double mean_rtt_after_ms = 0.0;
  std::uint64_t attacker_dropped = 0;
  std::uint64_t packets_total = 0;
  std::uint64_t switches = 0;
  /// Fraction of post-warmup decision epochs spent preferring the
  /// attacker's path.
  double attacker_path_fraction = 0.0;
};

EgressExperimentResult run_egress_attack_experiment(
    const EgressExperimentConfig& config);

}  // namespace intox::egress
