#include "egress/selector.hpp"

namespace intox::egress {

EgressSelector::EgressSelector(sim::Scheduler& sched,
                               const EgressConfig& config, PathSend send)
    : sched_(sched), config_(config), send_(std::move(send)),
      rng_(config.seed), stats_(config.paths) {}

void EgressSelector::start() {
  running_ = true;
  timer_ = sched_.schedule_after(config_.decision_interval,
                                 [this] { decide(); });
}

void EgressSelector::stop() {
  running_ = false;
  sched_.cancel(timer_);
}

std::size_t EgressSelector::pick_path(const net::Packet& pkt) {
  // Sticky per flow: hash decides whether this flow is exploration
  // traffic and, if so, which alternative it measures.
  const std::uint32_t h = net::flow_hash(pkt.five_tuple(), 0x0e9e55u);
  const double u = static_cast<double>(h) / 4294967296.0;
  const double explore_total =
      config_.exploration_share * static_cast<double>(config_.paths - 1);
  if (u >= explore_total || config_.paths <= 1) return preferred_;
  // Spread exploration flows uniformly over the non-preferred paths.
  auto slot = static_cast<std::size_t>(u / config_.exploration_share);
  if (slot >= config_.paths - 1) slot = config_.paths - 2;
  return slot >= preferred_ ? slot + 1 : slot;
}

void EgressSelector::forward(net::Packet pkt) {
  const std::size_t path = pick_path(pkt);
  ++stats_[path].packets;
  send_(path, std::move(pkt));
}

void EgressSelector::on_delivery(std::size_t path, sim::Duration rtt) {
  PathStats& s = stats_[path];
  ++s.acked;
  const double sample = sim::to_seconds(rtt);
  s.rtt_s = s.valid ? (1.0 - config_.ewma_gain) * s.rtt_s +
                          config_.ewma_gain * sample
                    : sample;
  s.loss = (1.0 - config_.ewma_gain) * s.loss;
  s.valid = true;
}

void EgressSelector::on_loss(std::size_t path) {
  PathStats& s = stats_[path];
  s.loss = (1.0 - config_.ewma_gain) * s.loss + config_.ewma_gain;
  s.valid = true;
}

void EgressSelector::decide() {
  if (!running_) return;
  std::size_t best = preferred_;
  double best_score = stats_[preferred_].score(config_);
  for (std::size_t p = 0; p < stats_.size(); ++p) {
    if (p == preferred_) continue;
    const double s = stats_[p].score(config_);
    if (s < best_score * config_.switch_threshold) {
      best = p;
      best_score = s;
    }
  }
  if (best != preferred_) {
    preferred_ = best;
    ++switches_;
  }
  preference_series_.record(sched_.now(), static_cast<double>(preferred_));
  timer_ = sched_.schedule_after(config_.decision_interval,
                                 [this] { decide(); });
}

}  // namespace intox::egress
