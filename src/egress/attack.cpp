#include "egress/attack.hpp"

#include <memory>

namespace intox::egress {

EgressExperimentResult run_egress_attack_experiment(
    const EgressExperimentConfig& config) {
  sim::Scheduler sched;
  sim::Rng rng{config.seed};
  const std::size_t n_paths = config.path_delay.size();

  EgressExperimentResult result;
  sim::TimeSeries rtt_ms;

  // Peering paths: each a link to the destination; the destination
  // "acks" every packet back to the edge instantly (the passive delivery
  // confirmation the selector consumes), so measured RTT = 2 * one-way.
  EgressSelector* selector_ptr = nullptr;
  std::vector<std::unique_ptr<sim::Link>> paths;
  for (std::size_t p = 0; p < n_paths; ++p) {
    sim::LinkConfig cfg;
    cfg.rate_bps = 1e9;
    cfg.prop_delay = config.path_delay[p];
    paths.push_back(std::make_unique<sim::Link>(
        sched, cfg, [&, p](net::Packet pkt) {
          // Arrival at destination: confirmation travels back with the
          // same path delay.
          sched.schedule_after(config.path_delay[p], [&, p, pkt] {
            const auto rtt = static_cast<sim::Duration>(
                2 * config.path_delay[p]);
            selector_ptr->on_delivery(p, rtt);
            rtt_ms.record(sched.now(), sim::to_seconds(rtt) * 1000.0);
            (void)pkt;
          });
        }));
  }

  EgressConfig ecfg;
  ecfg.paths = n_paths;
  EgressSelector selector{sched, ecfg, [&](std::size_t p, net::Packet pkt) {
                            paths[p]->transmit(std::move(pkt));
                          }};
  selector_ptr = &selector;
  selector.start();

  // Attacker: MitM on the peering fabric who degrades every path except
  // the one she controls. Once traffic has fled to her path, only the
  // ~5% exploration flows still transit the degraded paths, so the
  // sustained tampering volume is tiny. A dropped packet yields a loss
  // signal at the edge (a missing delivery confirmation /
  // retransmission).
  std::uint64_t dropped = 0;
  bool attacking = false;
  sim::Rng atk_rng{config.attacker.seed};
  for (std::size_t p = 0; p < n_paths; ++p) {
    paths[p]->set_tap([&, p](net::Packet&) {
      if (!attacking || p == config.attacker.attacker_path) {
        return sim::TapAction::kForward;
      }
      if (atk_rng.bernoulli(config.attacker.drop_prob)) {
        ++dropped;
        selector.on_loss(p);  // the edge registers the loss passively
        return sim::TapAction::kDrop;
      }
      return sim::TapAction::kForward;
    });
  }

  // Production workload: short flows arriving continuously.
  std::uint64_t packets = 0;
  std::function<void()> arrivals = [&] {
    net::Packet pkt;
    pkt.src = net::Ipv4Addr{
        static_cast<std::uint32_t>(rng.uniform_int(1, UINT32_MAX))};
    pkt.dst = net::Ipv4Addr{198, 51, 100, 1};
    net::TcpHeader t;
    t.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    t.dst_port = 443;
    pkt.l4 = t;
    pkt.payload_bytes = 800;
    ++packets;
    selector.forward(std::move(pkt));
    sched.schedule_after(
        static_cast<sim::Duration>(
            rng.exponential(static_cast<double>(sim::kSecond) /
                            config.flows_per_second)),
        arrivals);
  };
  sched.schedule_at(0, arrivals);

  sched.run_until(config.warmup);
  result.preferred_before = selector.preferred_path();
  result.mean_rtt_before_ms =
      rtt_ms.mean_over(config.warmup / 2, config.warmup);

  attacking = config.attack;
  const sim::Time end = config.warmup + config.attack_duration;
  sched.run_until(end);
  selector.stop();

  result.preferred_after = selector.preferred_path();
  result.mean_rtt_after_ms =
      rtt_ms.mean_over(end - config.attack_duration / 2, end);
  result.attacker_dropped = dropped;
  result.packets_total = packets;
  result.switches = selector.switches();
  const auto grid = selector.preference_series().resample(
      config.warmup, end, sim::seconds(1));
  std::size_t on_attacker = 0;
  for (double v : grid) {
    on_attacker += static_cast<std::size_t>(v) == config.attacker.attacker_path;
  }
  result.attacker_path_fraction =
      grid.empty() ? 0.0
                   : static_cast<double>(on_attacker) /
                         static_cast<double>(grid.size());
  return result;
}

}  // namespace intox::egress
