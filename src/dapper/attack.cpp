#include "dapper/attack.hpp"

namespace intox::dapper {

const char* to_string(Implicate i) {
  switch (i) {
    case Implicate::kNone: return "none";
    case Implicate::kSender: return "sender";
    case Implicate::kNetwork: return "network";
    case Implicate::kReceiver: return "receiver";
  }
  return "?";
}

DiagnosisOutcome run_diagnosis_experiment(const ConversationConfig& config,
                                          Implicate target,
                                          const DapperConfig& dapper_cfg) {
  TcpDiagnoser diagnoser{dapper_cfg};
  sim::Rng rng{config.seed};
  DiagnosisOutcome out;

  const auto flight = static_cast<std::uint32_t>(
      config.utilization * static_cast<double>(config.rwnd));
  std::uint32_t seq = 100000;

  for (sim::Time now = 0; now < config.duration; now += config.tick) {
    // --- data direction -------------------------------------------------
    net::TcpHeader data;
    data.src_port = 45000;
    data.dst_port = 443;
    seq += config.mss;
    data.seq = seq;
    data.ack_flag = true;

    bool genuine_retx = rng.bernoulli(config.genuine_retx_prob);
    diagnoser.on_data(data, config.mss, now);
    ++out.packets_total;
    if (genuine_retx) {
      diagnoser.on_data(data, config.mss, now + sim::millis(1));
      ++out.packets_total;
    }

    // MitM network-implication: replay ~8% of data segments (safely
    // above the 2% loss threshold in every 1 s window).
    if (target == Implicate::kNetwork && rng.bernoulli(0.08)) {
      diagnoser.on_data(data, config.mss, now + sim::millis(2));
      ++out.packets_total;
      ++out.packets_touched;
    }

    // --- ack direction ----------------------------------------------------
    net::TcpHeader ack;
    ack.src_port = 443;
    ack.dst_port = 45000;
    ack.ack_flag = true;
    ack.ack = seq - flight;  // honest cumulative ack: flight outstanding
    ack.window = static_cast<std::uint16_t>(config.rwnd);

    switch (target) {
      case Implicate::kReceiver:
        // Advertised window shrunk to barely above the flight.
        ack.window = static_cast<std::uint16_t>(flight + config.mss / 2);
        ++out.packets_touched;
        break;
      case Implicate::kSender:
        // Optimistic-ack forgery: everything looks acknowledged.
        ack.ack = seq;
        ++out.packets_touched;
        break;
      default:
        break;
    }
    diagnoser.on_ack(ack, now + config.tick / 2);
    ++out.packets_total;
  }

  out.healthy_fraction = diagnoser.verdict_fraction(Verdict::kHealthy);
  out.sender_fraction = diagnoser.verdict_fraction(Verdict::kSenderLimited);
  out.network_fraction = diagnoser.verdict_fraction(Verdict::kNetworkLimited);
  out.receiver_fraction =
      diagnoser.verdict_fraction(Verdict::kReceiverLimited);

  double best = out.healthy_fraction;
  out.dominant = Verdict::kHealthy;
  if (out.sender_fraction > best) {
    best = out.sender_fraction;
    out.dominant = Verdict::kSenderLimited;
  }
  if (out.network_fraction > best) {
    best = out.network_fraction;
    out.dominant = Verdict::kNetworkLimited;
  }
  if (out.receiver_fraction > best) {
    best = out.receiver_fraction;
    out.dominant = Verdict::kReceiverLimited;
  }
  return out;
}

}  // namespace intox::dapper
