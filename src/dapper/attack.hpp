// §3.2 DAPPER attack: implicating an innocent party.
//
// A healthy TCP conversation (moderate window utilization, no loss)
// passes a DAPPER vantage point. A MitM rewrites a small fraction of
// unauthenticated header fields to pin the blame wherever she wants:
//
//   * implicate the NETWORK  — replay data segments (duplicate seq):
//     the diagnoser counts retransmissions and reports congestion;
//   * implicate the RECEIVER — shrink the advertised window in ACKs to
//     just above the current flight: the connection now looks pinned
//     against the receiver window;
//   * implicate the SENDER   — optimistically bump the ACK number (ack
//     data never received): flight collapses and the sender looks idle.
//
// Each false verdict "falsely trigger[s] the recourses suggested by the
// authors" (upgrade the receiver, reroute the network, fix the app...).
#pragma once

#include "dapper/diagnoser.hpp"
#include "sim/rng.hpp"

namespace intox::dapper {

enum class Implicate { kNone, kSender, kNetwork, kReceiver };

const char* to_string(Implicate i);

struct ConversationConfig {
  sim::Duration duration = sim::seconds(30);
  sim::Duration tick = sim::millis(10);  // one data pkt + one ack per tick
  std::uint32_t mss = 1448;
  std::uint32_t rwnd = 65535;
  /// Healthy steady-state window utilization (between the sender-idle
  /// and receiver-pressure thresholds).
  double utilization = 0.7;
  /// Genuine sporadic retransmissions (kept below the loss threshold).
  double genuine_retx_prob = 0.002;
  std::uint64_t seed = 1;
};

struct DiagnosisOutcome {
  Verdict dominant = Verdict::kHealthy;
  double healthy_fraction = 0.0;
  double sender_fraction = 0.0;
  double network_fraction = 0.0;
  double receiver_fraction = 0.0;
  std::uint64_t packets_total = 0;
  std::uint64_t packets_touched = 0;  // mutated or injected by the MitM
};

/// Streams the synthetic conversation through a TcpDiagnoser, with the
/// MitM policy applied in-path. kNone gives the healthy baseline.
DiagnosisOutcome run_diagnosis_experiment(
    const ConversationConfig& config, Implicate target,
    const DapperConfig& dapper = DapperConfig{});

}  // namespace intox::dapper
