// DAPPER-style in-network TCP performance diagnosis (Ghasemi et al.,
// SOSR'17), as referenced by §3.2 of the paper:
//
//   "DAPPER relies on TCP information to determine if a connection is
//    limited by the sender, the network, or the receiver. An attacker
//    can implicate either of these three for performance problems by
//    manipulating TCP packets, and falsely trigger the recourses
//    suggested by the authors."
//
// The diagnoser passively watches both directions of a TCP connection
// from a vantage point in the network and classifies the current
// bottleneck per measurement window:
//   * kReceiverLimited — flight size pinned at the advertised window;
//   * kNetworkLimited  — retransmissions / high loss in the window;
//   * kSenderLimited   — sender not filling the window it was given;
//   * kHealthy         — none of the above dominates.
// The inputs are unauthenticated header fields (rwnd, seq, acks) and
// metadata — precisely what a MitM can rewrite.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace intox::dapper {

enum class Verdict {
  kHealthy,
  kSenderLimited,
  kNetworkLimited,
  kReceiverLimited,
};

const char* to_string(Verdict v);

struct DapperConfig {
  sim::Duration window = sim::seconds(1);
  /// Loss fraction above which the window is network-limited.
  double loss_threshold = 0.02;
  /// Flight/rwnd utilization above which the connection counts as
  /// receiver-limited (sender pushing against the advertised window).
  double rwnd_pressure_threshold = 0.9;
  /// Utilization below which the sender is simply not trying.
  double sender_idle_threshold = 0.5;
};

/// Per-window raw signals the verdict is derived from.
struct WindowStats {
  sim::Time start = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t retransmissions = 0;
  std::uint32_t min_rwnd = 0;
  double mean_flight_bytes = 0.0;
  double rwnd_utilization = 0.0;
  Verdict verdict = Verdict::kHealthy;
};

class TcpDiagnoser {
 public:
  explicit TcpDiagnoser(const DapperConfig& config) : config_(config) {}

  /// Feed a data-direction packet (sender -> receiver).
  void on_data(const net::TcpHeader& tcp, std::uint32_t payload_bytes,
               sim::Time now);
  /// Feed an ack-direction packet (receiver -> sender) — carries the
  /// advertised receive window and cumulative ack.
  void on_ack(const net::TcpHeader& tcp, sim::Time now);

  [[nodiscard]] const std::vector<WindowStats>& windows() const {
    return windows_;
  }
  [[nodiscard]] Verdict latest_verdict() const {
    return windows_.empty() ? Verdict::kHealthy : windows_.back().verdict;
  }
  /// Fraction of closed windows carrying each verdict.
  [[nodiscard]] double verdict_fraction(Verdict v) const;

 private:
  void roll_window(sim::Time now);
  void classify(WindowStats& w) const;

  DapperConfig config_;
  // Connection state.
  std::uint32_t highest_seq_sent_ = 0;
  std::uint32_t highest_ack_ = 0;
  std::uint32_t last_rwnd_ = 65535;
  bool seq_seen_ = false;
  // Current window accumulation.
  WindowStats current_{};
  sim::RunningStats flight_samples_;
  sim::RunningStats utilization_samples_;
  bool window_open_ = false;
  std::vector<WindowStats> windows_;
};

}  // namespace intox::dapper
