#include "dapper/diagnoser.hpp"

#include <algorithm>

namespace intox::dapper {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kHealthy: return "healthy";
    case Verdict::kSenderLimited: return "sender-limited";
    case Verdict::kNetworkLimited: return "network-limited";
    case Verdict::kReceiverLimited: return "receiver-limited";
  }
  return "?";
}

void TcpDiagnoser::roll_window(sim::Time now) {
  if (!window_open_) {
    current_ = WindowStats{};
    current_.start = now;
    current_.min_rwnd = last_rwnd_;
    flight_samples_ = sim::RunningStats{};
    utilization_samples_ = sim::RunningStats{};
    window_open_ = true;
    return;
  }
  if (now - current_.start < config_.window) return;

  current_.mean_flight_bytes = flight_samples_.mean();
  current_.rwnd_utilization = utilization_samples_.mean();
  classify(current_);
  windows_.push_back(current_);

  current_ = WindowStats{};
  current_.start = now;
  current_.min_rwnd = last_rwnd_;
  flight_samples_ = sim::RunningStats{};
  utilization_samples_ = sim::RunningStats{};
}

void TcpDiagnoser::classify(WindowStats& w) const {
  const double loss =
      w.data_packets == 0
          ? 0.0
          : static_cast<double>(w.retransmissions) /
                static_cast<double>(w.data_packets);
  // Priority order mirrors DAPPER: network problems trump window
  // pressure (retransmissions dominate everything), then receiver, then
  // sender.
  if (loss > config_.loss_threshold) {
    w.verdict = Verdict::kNetworkLimited;
  } else if (w.rwnd_utilization > config_.rwnd_pressure_threshold) {
    w.verdict = Verdict::kReceiverLimited;
  } else if (w.rwnd_utilization < config_.sender_idle_threshold &&
             w.data_packets > 0) {
    w.verdict = Verdict::kSenderLimited;
  } else {
    w.verdict = Verdict::kHealthy;
  }
}

void TcpDiagnoser::on_data(const net::TcpHeader& tcp,
                           std::uint32_t payload_bytes, sim::Time now) {
  roll_window(now);
  ++current_.data_packets;

  // highest_seq_sent_ tracks the *end* of the highest segment; a data
  // segment starting below it revisits already-sent bytes: retransmission.
  if (seq_seen_ && tcp.seq < highest_seq_sent_ && payload_bytes > 0) {
    ++current_.retransmissions;
  }
  const std::uint32_t seg_end = tcp.seq + payload_bytes;
  if (!seq_seen_ || seg_end > highest_seq_sent_) {
    highest_seq_sent_ = seg_end;
    seq_seen_ = true;
  }

  // Flight size = data sent beyond the last cumulative ack; utilization
  // is flight relative to the receiver's advertised window.
  const double flight =
      highest_seq_sent_ > highest_ack_
          ? static_cast<double>(highest_seq_sent_ - highest_ack_)
          : 0.0;
  flight_samples_.add(flight);
  if (last_rwnd_ > 0) {
    utilization_samples_.add(
        std::min(1.0, flight / static_cast<double>(last_rwnd_)));
  }
}

void TcpDiagnoser::on_ack(const net::TcpHeader& tcp, sim::Time now) {
  roll_window(now);
  highest_ack_ = std::max(highest_ack_, tcp.ack);
  last_rwnd_ = tcp.window;
  current_.min_rwnd =
      std::min(current_.min_rwnd, static_cast<std::uint32_t>(tcp.window));
}

double TcpDiagnoser::verdict_fraction(Verdict v) const {
  if (windows_.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& w : windows_) n += (w.verdict == v);
  return static_cast<double>(n) / static_cast<double>(windows_.size());
}

}  // namespace intox::dapper
