// Discounted UCB bandit — Pytheas's per-group E2 algorithm.
//
// Rewards are exponentially discounted so the group adapts to
// non-stationary network conditions; the exploration bonus keeps
// rarely-tried arms measured. This adaptivity is exactly what the §4.1
// attacker exploits: polluted reports move the discounted means quickly,
// and honest history decays away.
#pragma once

#include <cstddef>
#include <vector>

namespace intox::pytheas {

struct UcbConfig {
  double discount = 0.98;          // applied once per decision epoch
  double exploration_bonus = 0.5;  // c in  mean + c*sqrt(log N / n)
  double initial_optimism = 5.0;   // unexplored arms look perfect
};

class DiscountedUcb {
 public:
  DiscountedUcb(std::size_t arms, const UcbConfig& config);

  /// Adds one reward observation for `arm`.
  void observe(std::size_t arm, double reward);

  /// Applies one epoch of discounting to all arms.
  void decay();

  /// Arm with the highest upper confidence bound (exploration-aware).
  [[nodiscard]] std::size_t best_arm() const;

  /// Arm with the highest discounted *mean* — what exploitation traffic
  /// should use. Never-sampled arms fall back to the optimistic prior but
  /// get no exploration bonus here.
  [[nodiscard]] std::size_t best_mean_arm() const;

  [[nodiscard]] double mean(std::size_t arm) const;
  [[nodiscard]] double ucb_score(std::size_t arm) const;
  [[nodiscard]] double effective_count(std::size_t arm) const;
  [[nodiscard]] std::size_t arms() const { return sum_.size(); }

 private:
  UcbConfig config_;
  std::vector<double> sum_;    // discounted reward sum per arm
  std::vector<double> count_;  // discounted observation count per arm
};

}  // namespace intox::pytheas
