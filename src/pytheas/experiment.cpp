#include "pytheas/experiment.hpp"

#include <algorithm>

namespace intox::pytheas {

double QoeModel::true_qoe(ArmId arm, double arm_load, sim::Rng& rng) const {
  double q = arm_base.at(arm);
  if (arm < arm_capacity.size() && arm_capacity[arm] > 0.0 &&
      arm_load > arm_capacity[arm]) {
    q -= overload_penalty * (arm_load - arm_capacity[arm]) / arm_capacity[arm];
  }
  q += rng.normal(0.0, noise_sigma);
  return std::clamp(q, kQoeMin, kQoeMax);
}

namespace {

/// Best arm by ground truth (unloaded), used to score outcomes.
ArmId truly_best_arm(const QoeModel& model) {
  return static_cast<ArmId>(
      std::max_element(model.arm_base.begin(), model.arm_base.end()) -
      model.arm_base.begin());
}

ArmId truly_worst_arm(const QoeModel& model) {
  return static_cast<ArmId>(
      std::min_element(model.arm_base.begin(), model.arm_base.end()) -
      model.arm_base.begin());
}

}  // namespace

PoisonResult run_poisoning_experiment(const PoisonConfig& config,
                                      std::shared_ptr<ReportFilter> filter) {
  sim::Rng rng{config.seed};
  PytheasEngine engine{config.engine};
  if (filter) engine.set_filter(filter);

  const SessionFeatures group{
      .asn = 64500, .location = "zrh", .content = "vod"};
  const ArmId good = truly_best_arm(config.model);
  const ArmId bad = truly_worst_arm(config.model);

  SessionId next = 1;
  std::vector<SessionId> legit, bots;
  for (std::size_t i = 0; i < config.legit_sessions; ++i) {
    legit.push_back(next);
    engine.join(next++, group);
  }
  for (std::size_t i = 0; i < config.bot_sessions; ++i) {
    bots.push_back(next);
    engine.join(next++, group);
  }

  PoisonResult result;
  sim::RunningStats before, after;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const sim::Time now = sim::seconds(static_cast<double>(epoch));
    const bool attacking = epoch >= config.warmup_epochs;

    // Legitimate clients: play a chunk on their assigned arm, measure,
    // report honestly.
    sim::RunningStats epoch_qoe;
    for (SessionId s : legit) {
      const ArmId arm = engine.assignment(s);
      const double q = config.model.true_qoe(arm, 0.0, rng);
      epoch_qoe.add(q);
      engine.report({s, arm, q, now});
    }

    // Bots: poison in both directions, with amplification.
    if (attacking) {
      for (SessionId s : bots) {
        const ArmId arm = engine.assignment(s);
        const double lie = arm == good ? kQoeMin : kQoeMax;
        for (std::size_t r = 0; r < config.bot_amplification; ++r) {
          engine.report({s, arm, lie, now});
        }
      }
    }

    result.legit_qoe.record(now, epoch_qoe.mean());
    result.chosen_arm.record(now,
                             static_cast<double>(engine.group_best_arm(group)));

    if (epoch + 10 >= config.warmup_epochs && epoch < config.warmup_epochs) {
      before.add(epoch_qoe.mean());
    }
    if (epoch >= config.epochs - 30) {
      after.add(epoch_qoe.mean());
      if (engine.group_best_arm(group) == bad) {
        result.flipped_fraction += 1.0 / 30.0;
      }
    }
    engine.end_epoch();
  }

  result.mean_qoe_before = before.mean();
  result.mean_qoe_after = after.mean();
  result.filtered_reports = engine.filtered_reports();
  return result;
}

MitmQoeResult run_mitm_qoe_experiment(const MitmQoeConfig& config,
                                      std::shared_ptr<ReportFilter> filter) {
  sim::Rng rng{config.seed};
  PytheasEngine engine{config.engine};
  if (filter) engine.set_filter(std::move(filter));
  const SessionFeatures group{
      .asn = 64502, .location = "fra", .content = "vod"};
  const ArmId good = truly_best_arm(config.model);
  const ArmId bad = truly_worst_arm(config.model);

  std::vector<SessionId> members;
  SessionId next = 1;
  for (std::size_t i = 0; i < config.sessions; ++i) {
    members.push_back(next);
    engine.join(next++, group);
  }
  // The MitM picks its victims by what it can see on the compromised
  // link: a stable subset of the group.
  const auto victims = static_cast<std::size_t>(
      config.victim_fraction * static_cast<double>(config.sessions));

  MitmQoeResult result;
  sim::RunningStats before, after;
  std::uint64_t touched = 0, total = 0;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const sim::Time now = sim::seconds(static_cast<double>(epoch));
    const bool attacking = epoch >= config.attack_start_epoch;

    sim::RunningStats untouched_qoe;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const SessionId s = members[i];
      const ArmId arm = engine.assignment(s);
      double q = config.model.true_qoe(arm, 0.0, rng);
      ++total;
      const bool victim = i < victims;
      if (attacking && victim && arm == good) {
        // Real packet drops, really worse playback — the report below is
        // completely honest.
        q = std::max(kQoeMin, q - config.degradation);
        ++touched;
      }
      if (!victim) untouched_qoe.add(q);
      engine.report({s, arm, q, now});
    }

    result.untouched_qoe.record(now, untouched_qoe.mean());
    if (epoch + 10 >= config.attack_start_epoch &&
        epoch < config.attack_start_epoch) {
      before.add(untouched_qoe.mean());
    }
    if (epoch >= config.epochs - 30) {
      after.add(untouched_qoe.mean());
      if (engine.group_best_arm(group) == bad) {
        result.flipped_fraction += 1.0 / 30.0;
      }
    }
    engine.end_epoch();
  }

  result.untouched_before = before.mean();
  result.untouched_after = after.mean();
  result.touched_share =
      total ? static_cast<double>(touched) / static_cast<double>(total) : 0.0;
  return result;
}

CdnConfig default_cdn_attack_config() {
  CdnConfig cfg;
  cfg.model.arm_base = {4.5, 4.0};          // site 0 better and bigger
  cfg.model.arm_capacity = {400.0, 200.0};  // site 1 cannot hold everyone
  return cfg;
}

CdnResult run_cdn_experiment(const CdnConfig& config) {
  sim::Rng rng{config.seed};
  PytheasEngine engine{config.engine};

  const SessionFeatures group{
      .asn = 64501, .location = "nyc", .content = "live"};
  SessionId next = 1;
  std::vector<SessionId> sessions;
  for (std::size_t i = 0; i < config.sessions; ++i) {
    sessions.push_back(next);
    engine.join(next++, group);
  }

  CdnResult result;
  sim::RunningStats before, after;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const sim::Time now = sim::seconds(static_cast<double>(epoch));
    const bool attacking = epoch >= config.attack_start_epoch;

    // Count load per site for this epoch's assignments.
    std::vector<double> load(config.engine.arms, 0.0);
    for (SessionId s : sessions) load[engine.assignment(s)] += 1.0;

    sim::RunningStats epoch_qoe;
    for (SessionId s : sessions) {
      const ArmId arm = engine.assignment(s);
      double q = config.model.true_qoe(arm, load[arm], rng);
      // The MitM throttles site-0 traffic: users *really* measure worse
      // QoE there — the reports are honest, the network lies.
      if (attacking && arm == 0) {
        q = std::max(kQoeMin, q - config.throttle_penalty);
      }
      epoch_qoe.add(q);
      engine.report({s, arm, q, now});
    }

    result.site0_load.record(now, load[0]);
    result.site1_load.record(now, load[1]);
    result.mean_qoe.record(now, epoch_qoe.mean());
    if (config.engine.arms > 1 && config.model.arm_capacity.size() > 1 &&
        config.model.arm_capacity[1] > 0.0) {
      result.site1_peak_overload = std::max(
          result.site1_peak_overload, load[1] / config.model.arm_capacity[1]);
    }
    if (epoch + 10 >= config.attack_start_epoch &&
        epoch < config.attack_start_epoch) {
      before.add(epoch_qoe.mean());
    }
    if (epoch >= config.epochs - 30) after.add(epoch_qoe.mean());

    engine.end_epoch();
  }

  result.qoe_before = before.mean();
  result.qoe_after = after.mean();
  return result;
}

}  // namespace intox::pytheas
