#include "pytheas/ucb.hpp"

#include <cmath>

namespace intox::pytheas {

DiscountedUcb::DiscountedUcb(std::size_t arms, const UcbConfig& config)
    : config_(config), sum_(arms, 0.0), count_(arms, 0.0) {}

void DiscountedUcb::observe(std::size_t arm, double reward) {
  sum_[arm] += reward;
  count_[arm] += 1.0;
}

void DiscountedUcb::decay() {
  for (std::size_t a = 0; a < sum_.size(); ++a) {
    sum_[a] *= config_.discount;
    count_[a] *= config_.discount;
  }
}

double DiscountedUcb::mean(std::size_t arm) const {
  return count_[arm] > 1e-9 ? sum_[arm] / count_[arm]
                            : config_.initial_optimism;
}

double DiscountedUcb::effective_count(std::size_t arm) const {
  return count_[arm];
}

double DiscountedUcb::ucb_score(std::size_t arm) const {
  if (count_[arm] <= 1e-9) return config_.initial_optimism * 10.0;
  double total = 0.0;
  for (double c : count_) total += c;
  const double bonus = config_.exploration_bonus *
                       std::sqrt(std::log(std::max(total, 2.0)) / count_[arm]);
  return mean(arm) + bonus;
}

std::size_t DiscountedUcb::best_mean_arm() const {
  // Exploitation never jumps to an arm with no evidence — the optimistic
  // prior is for the *exploration* score only. If nothing has evidence,
  // fall back to arm 0.
  std::size_t best = 0;
  double best_mean = -1.0;
  bool any = false;
  for (std::size_t a = 0; a < sum_.size(); ++a) {
    if (count_[a] <= 1e-9) continue;
    const double m = mean(a);
    if (!any || m > best_mean) {
      best_mean = m;
      best = a;
      any = true;
    }
  }
  return any ? best : 0;
}

std::size_t DiscountedUcb::best_arm() const {
  std::size_t best = 0;
  double best_score = ucb_score(0);
  for (std::size_t a = 1; a < sum_.size(); ++a) {
    const double s = ucb_score(a);
    if (s > best_score) {
      best_score = s;
      best = a;
    }
  }
  return best;
}

}  // namespace intox::pytheas
