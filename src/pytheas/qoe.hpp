// Session, group, and QoE-report types for the Pytheas port.
//
// Pytheas (Jiang et al., NSDI'17) groups sessions by "critical features"
// (ASN, location, content type ...) and runs an exploration-exploitation
// process per group over discrete decision arms (e.g. which CDN or
// bitrate to use). The driving signal is QoE values reported by the
// clients themselves — unauthenticated, which is precisely the §4.1
// attack surface.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace intox::pytheas {

/// Critical features that define group membership. The paper notes that
/// group membership "will not be hard to ascertain even for external
/// parties, as it is typically based on features like autonomous system,
/// IP prefix and location" — bots can deliberately join a target group.
struct SessionFeatures {
  std::uint32_t asn = 0;
  std::string location;     // e.g. metro code
  std::string content;      // content / service class

  friend bool operator==(const SessionFeatures&,
                          const SessionFeatures&) = default;
};

struct GroupKeyHash {
  std::size_t operator()(const SessionFeatures& f) const {
    std::size_t h = std::hash<std::uint32_t>{}(f.asn);
    h = h * 1315423911u ^ std::hash<std::string>{}(f.location);
    h = h * 1315423911u ^ std::hash<std::string>{}(f.content);
    return h;
  }
};

using SessionId = std::uint64_t;
using ArmId = std::uint32_t;

/// One client-side measurement for one video chunk / request.
struct QoeReport {
  SessionId session = 0;
  ArmId arm = 0;
  double qoe = 0.0;  // 0 (unwatchable) .. 5 (perfect)
  sim::Time when = 0;
};

inline constexpr double kQoeMin = 0.0;
inline constexpr double kQoeMax = 5.0;

}  // namespace intox::pytheas
