#include "pytheas/engine.hpp"

#include <algorithm>
#include <vector>

#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"

namespace intox::pytheas {

PytheasEngine::PytheasEngine(const EngineConfig& config)
    : config_(config), rng_(config.seed) {}

void PytheasEngine::join(SessionId session, const SessionFeatures& features) {
  auto it = groups_.find(features);
  if (it == groups_.end()) {
    it = groups_.emplace(features, std::make_unique<Group>(config_)).first;
    it->second->id = next_group_id_++;
  }
  it->second->members.push_back(session);
  session_group_[session] = features;
  // New members exploit the current group decision until the next re-deal.
  session_arm_[session] = it->second->best;
}

void PytheasEngine::leave(SessionId session) {
  auto it = session_group_.find(session);
  if (it == session_group_.end()) return;
  if (auto g = groups_.find(it->second); g != groups_.end()) {
    auto& m = g->second->members;
    std::erase(m, session);
  }
  session_group_.erase(it);
  session_arm_.erase(session);
}

PytheasEngine::Group* PytheasEngine::group_of(SessionId session) {
  auto it = session_group_.find(session);
  if (it == session_group_.end()) return nullptr;
  auto g = groups_.find(it->second);
  return g != groups_.end() ? g->second.get() : nullptr;
}

const PytheasEngine::Group* PytheasEngine::group_of(SessionId session) const {
  auto it = session_group_.find(session);
  if (it == session_group_.end()) return nullptr;
  auto g = groups_.find(it->second);
  return g != groups_.end() ? g->second.get() : nullptr;
}

ArmId PytheasEngine::assignment(SessionId session) const {
  auto it = session_arm_.find(session);
  if (it != session_arm_.end()) return it->second;
  const Group* g = group_of(session);
  return g ? g->best : 0;
}

void PytheasEngine::report(const QoeReport& r) {
  static obs::Counter& reports =
      obs::Registry::global().counter("pytheas.reports");
  static obs::Counter& filtered =
      obs::Registry::global().counter("pytheas.filtered_reports");
  reports.add(1);
  auto it = session_group_.find(r.session);
  if (it == session_group_.end()) return;
  if (filter_ && !filter_->admit(it->second, r)) {
    ++filtered_;
    filtered.add(1);
    return;
  }
  Group& g = *groups_.at(it->second);
  g.bandit.observe(r.arm, r.qoe);
  g.epoch_reports.push_back(r);
}

void PytheasEngine::redeal(Group& group) {
  // Exploitation goes to the best *mean* arm; the exploration slots below
  // provide the bandit's exploration, so the UCB bonus is not applied to
  // the bulk of the traffic (one unlucky arm would otherwise attract the
  // whole group just for being under-sampled).
  const ArmId prev_best = group.best;
  group.best = static_cast<ArmId>(group.bandit.best_mean_arm());
  if (group.best != prev_best) {
    // Time word carries the epoch index: the engine has no scheduler
    // clock, and the epoch is the decision cadence anyway.
    obs::flightrec_record(obs::FrType::kPytheasMove, epochs_ended_,
                          group.id, prev_best, group.best);
  }
  // Exploration: spread a fraction of members across all arms uniformly;
  // the rest exploit.
  for (SessionId s : group.members) {
    if (rng_.bernoulli(config_.exploration_fraction)) {
      session_arm_[s] =
          static_cast<ArmId>(rng_.uniform_int(0, config_.arms - 1));
    } else {
      session_arm_[s] = group.best;
    }
  }
}

void PytheasEngine::end_epoch() {
  static obs::Counter& epochs =
      obs::Registry::global().counter("pytheas.epochs");
  epochs.add(1);
  ++epochs_ended_;
  // groups_ is an unordered_map, so iterating it directly would feed
  // groups to redeal() — and thus draw from the shared rng_ — in
  // hash order, which varies across libraries and runs. Creation order
  // (Group::id) keeps the draw sequence reproducible.
  std::vector<Group*> ordered;
  ordered.reserve(groups_.size());
  // intox-analyze: allow(taint, collection pass only; sorted by id below)
  for (auto& [key, group] : groups_) ordered.push_back(group.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Group* a, const Group* b) { return a->id < b->id; });
  for (Group* group : ordered) {
    redeal(*group);
    group->bandit.decay();
    group->epoch_reports.clear();
  }
}

ArmId PytheasEngine::group_best_arm(const SessionFeatures& features) const {
  auto it = groups_.find(features);
  return it != groups_.end() ? it->second->best : 0;
}

const DiscountedUcb* PytheasEngine::group_bandit(
    const SessionFeatures& features) const {
  auto it = groups_.find(features);
  return it != groups_.end() ? &it->second->bandit : nullptr;
}

const std::vector<QoeReport>* PytheasEngine::epoch_reports(
    const SessionFeatures& features) const {
  auto it = groups_.find(features);
  return it != groups_.end() ? &it->second->epoch_reports : nullptr;
}

}  // namespace intox::pytheas
