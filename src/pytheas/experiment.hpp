// Pytheas attack experiments (PYTH-QOE and PYTH-CDN in DESIGN.md).
//
// PYTH-QOE — report poisoning (§4.1): bots join the victim group and lie:
// they report terrible QoE whenever they are assigned the genuinely-best
// arm and perfect QoE on the bad arm, and they amplify their report
// volume (reports are unauthenticated, so nothing limits a client to one
// report per chunk). Past a modest poisoned-report share, the group
// decision flips and *every* legitimate client gets the worse arm.
//
// PYTH-CDN — MitM steering (§4.1): an on-path attacker throttles the
// traffic of one CDN site, degrading the *true* QoE its users measure.
// Pytheas dutifully migrates entire groups to the other site, whose
// load-dependent QoE then collapses — the attacker overloads a site it
// never touched.
#pragma once

#include <cstdint>
#include <vector>

#include "pytheas/engine.hpp"
#include "sim/stats.hpp"

namespace intox::pytheas {

/// Ground-truth QoE model: per-arm base quality, Gaussian measurement
/// noise, and a soft capacity knee per arm (for the CDN experiment).
struct QoeModel {
  std::vector<double> arm_base{4.5, 3.0};
  double noise_sigma = 0.3;
  /// Sessions an arm can serve at full quality; 0 = unlimited.
  std::vector<double> arm_capacity{0.0, 0.0};
  /// QoE lost per unit of relative overload.
  double overload_penalty = 3.0;

  [[nodiscard]] double true_qoe(ArmId arm, double arm_load,
                                sim::Rng& rng) const;
};

struct PoisonConfig {
  std::size_t legit_sessions = 200;
  std::size_t bot_sessions = 20;
  /// Reports each bot submits per epoch (legit clients submit 1).
  std::size_t bot_amplification = 3;
  std::size_t epochs = 120;
  /// Epochs before the bots switch on (lets the group converge first).
  std::size_t warmup_epochs = 30;
  EngineConfig engine{};
  QoeModel model{};
  std::uint64_t seed = 1;
};

struct PoisonResult {
  /// Mean true QoE of legitimate sessions, per epoch.
  sim::TimeSeries legit_qoe;
  /// Group's chosen arm per epoch.
  sim::TimeSeries chosen_arm;
  double mean_qoe_before = 0.0;  // over the warmup tail
  double mean_qoe_after = 0.0;   // over the attacked tail
  /// Fraction of post-warmup epochs in which the group exploited the
  /// genuinely-worse arm.
  double flipped_fraction = 0.0;
  std::uint64_t filtered_reports = 0;
};

/// Optional defense is installed via `engine.set_filter` by the caller —
/// see supervisor/pytheas_guard.hpp.
PoisonResult run_poisoning_experiment(
    const PoisonConfig& config, std::shared_ptr<ReportFilter> filter = {});

// PYTH-MITM — the §4.1 middle variant: "MitM attackers can achieve
// similar outcomes if they drop packets for a subset of the group
// members." All reports stay honest; the attacker genuinely degrades the
// QoE a subset of members *measures* on the good arm. The group decision
// then drags every untouched member down with it — the collateral-damage
// property of group-granularity control.
struct MitmQoeConfig {
  std::size_t sessions = 200;
  /// Fraction of members whose good-arm traffic the MitM degrades.
  double victim_fraction = 0.45;
  /// True-QoE penalty the drops inflict on victims using the good arm.
  double degradation = 4.0;
  std::size_t epochs = 120;
  std::size_t attack_start_epoch = 30;
  EngineConfig engine{};
  QoeModel model{};
  std::uint64_t seed = 1;
};

struct MitmQoeResult {
  /// Mean true QoE of the *untouched* members, per epoch.
  sim::TimeSeries untouched_qoe;
  double untouched_before = 0.0;
  double untouched_after = 0.0;
  double flipped_fraction = 0.0;
  /// Fraction of all traffic the MitM actually degraded.
  double touched_share = 0.0;
};

/// Optional defense (§5: "look at the distribution of throughput across
/// all clients in a group ... the low-throughput clients can be tackled
/// separately") installed via the same ReportFilter hook as the
/// poisoning experiment.
MitmQoeResult run_mitm_qoe_experiment(
    const MitmQoeConfig& config, std::shared_ptr<ReportFilter> filter = {});

struct CdnConfig {
  std::size_t sessions = 300;
  std::size_t epochs = 150;
  std::size_t attack_start_epoch = 50;
  /// Relative throttle the MitM applies to arm-0 traffic (QoE subtracted).
  double throttle_penalty = 2.5;
  EngineConfig engine{};
  QoeModel model{};
  std::uint64_t seed = 1;
};

struct CdnResult {
  sim::TimeSeries site0_load;  // sessions exploiting site 0, per epoch
  sim::TimeSeries site1_load;
  sim::TimeSeries mean_qoe;
  /// Peak load seen by site 1 after the attack vs its capacity.
  double site1_peak_overload = 0.0;
  double qoe_before = 0.0;
  double qoe_after = 0.0;
};

CdnResult run_cdn_experiment(const CdnConfig& config);

/// The CDN bench/scenario default: site 0 is better and bigger, site 1
/// cannot hold the whole group — the configuration under which the
/// stampede overload manifests. A clean control is this config with
/// attack_start_epoch pushed past the horizon.
CdnConfig default_cdn_attack_config();

}  // namespace intox::pytheas
