// The Pytheas engine: group-granularity exploration-exploitation over
// client QoE reports.
//
// Sessions register with their critical features and are bucketed into
// groups; each group runs a DiscountedUcb over the decision arms. Each
// epoch, a small exploration fraction of sessions is spread across all
// arms and everyone else exploits the group's current best arm. Reports
// are ingested with **no authentication or weighting** — faithful to the
// original design, and the vulnerability under study.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "pytheas/qoe.hpp"
#include "pytheas/ucb.hpp"
#include "sim/rng.hpp"

namespace intox::pytheas {

struct EngineConfig {
  std::size_t arms = 2;
  UcbConfig ucb{};
  double exploration_fraction = 0.1;
  std::uint64_t seed = 1;
};

/// Optional report filter — the §5 countermeasure hook. Returns false to
/// quarantine a report before it reaches the bandit.
class ReportFilter {
 public:
  virtual ~ReportFilter() = default;
  virtual bool admit(const SessionFeatures& group, const QoeReport& report) = 0;
};

class PytheasEngine {
 public:
  explicit PytheasEngine(const EngineConfig& config);

  /// Registers a session; creates its group on first sight.
  void join(SessionId session, const SessionFeatures& features);
  void leave(SessionId session);

  /// The arm this session should use right now (group decision +
  /// exploration). Stable within an epoch.
  [[nodiscard]] ArmId assignment(SessionId session) const;

  /// Ingests one QoE report (bots call this too — that is the point).
  void report(const QoeReport& report);

  /// Closes the epoch: applies discounting, recomputes each group's best
  /// arm and re-deals exploration slots.
  void end_epoch();

  void set_filter(std::shared_ptr<ReportFilter> filter) {
    filter_ = std::move(filter);
  }

  [[nodiscard]] ArmId group_best_arm(const SessionFeatures& features) const;
  [[nodiscard]] const DiscountedUcb* group_bandit(
      const SessionFeatures& features) const;
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }
  [[nodiscard]] std::uint64_t filtered_reports() const { return filtered_; }
  /// Reports seen by each group this epoch (for distribution defenses).
  [[nodiscard]] const std::vector<QoeReport>* epoch_reports(
      const SessionFeatures& features) const;

 private:
  struct Group {
    DiscountedUcb bandit;
    ArmId best = 0;
    std::uint64_t id = 0;  // creation-order label for forensics records
    std::vector<SessionId> members;
    std::vector<QoeReport> epoch_reports;
    explicit Group(const EngineConfig& cfg) : bandit(cfg.arms, cfg.ucb) {}
  };

  Group* group_of(SessionId session);
  const Group* group_of(SessionId session) const;
  void redeal(Group& group);

  EngineConfig config_;
  sim::Rng rng_;
  std::unordered_map<SessionFeatures, std::unique_ptr<Group>, GroupKeyHash>
      groups_;
  std::unordered_map<SessionId, SessionFeatures> session_group_;
  std::unordered_map<SessionId, ArmId> session_arm_;
  std::shared_ptr<ReportFilter> filter_;
  std::uint64_t filtered_ = 0;
  std::uint64_t next_group_id_ = 0;
  std::uint64_t epochs_ended_ = 0;
};

}  // namespace intox::pytheas
