// A compact but real TCP implementation over the simulator.
//
// Implements the behaviours the paper's systems key on:
//   * three-way handshake and FIN teardown;
//   * cumulative ACKs with duplicate-ACK generation at the receiver;
//   * Jacobson/Karels RTT estimation, exponential-backoff RTO
//     retransmission, and fast retransmit on three duplicate ACKs —
//     the genuine "failure signal" Blink listens for;
//   * Reno congestion control (slow start, AIMD, fast recovery simplified);
//   * receiver flow control via the advertised window — the signal
//     DAPPER reads (and attackers forge).
//
// One TcpSender transfers a byte stream to one TcpReceiver; both are
// plain packet-in/packet-out objects wired to sim::Links (or anything
// else) by the caller.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace intox::tcp {

using PacketSink = std::function<void(net::Packet)>;

struct TcpConfig {
  std::uint32_t mss = 1448;
  std::uint32_t initial_cwnd_segments = 2;
  std::uint32_t initial_ssthresh_segments = 64;
  sim::Duration rto_min = sim::millis(200);
  sim::Duration rto_max = sim::seconds(60);
  sim::Duration initial_rto = sim::seconds(1);
  int dupack_threshold = 3;
};

enum class TcpState {
  kClosed,
  kSynSent,
  kEstablished,
  kFinSent,
  kDone,
};

const char* to_string(TcpState s);

class TcpSender {
 public:
  TcpSender(sim::Scheduler& sched, const TcpConfig& config,
            net::FiveTuple flow, PacketSink sink);

  /// Opens the connection and transfers `bytes` (0 = unbounded stream).
  void start(std::uint64_t bytes);
  void stop();

  /// Feed every packet arriving at the sender side (SYN-ACKs / ACKs).
  void on_packet(const net::Packet& pkt);

  [[nodiscard]] TcpState state() const { return state_; }
  [[nodiscard]] double cwnd_segments() const { return cwnd_; }
  [[nodiscard]] std::uint64_t delivered_bytes() const { return acked_bytes_; }
  [[nodiscard]] double srtt_seconds() const { return srtt_s_; }
  [[nodiscard]] const sim::TimeSeries& cwnd_series() const {
    return cwnd_series_;
  }

  struct Counters {
    std::uint64_t segments_sent = 0;
    std::uint64_t rto_retransmits = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t timeouts = 0;  // RTO expirations (incl. backoff repeats)
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Ground-truth tag copied into every emitted packet.
  void set_flow_tag(std::uint64_t tag) { flow_tag_ = tag; }

 private:
  void send_syn();
  void try_send();
  void send_segment(std::uint32_t seq, bool retransmission);
  void arm_rto();
  void on_rto();
  void on_ack(std::uint32_t ack, std::uint16_t window);
  void enter_established();
  void maybe_finish();
  std::uint64_t bytes_in_flight() const {
    return next_seq_ - snd_una_;
  }

  sim::Scheduler& sched_;
  TcpConfig config_;
  net::FiveTuple flow_;
  PacketSink sink_;
  std::uint64_t flow_tag_ = 0;

  TcpState state_ = TcpState::kClosed;
  std::uint32_t iss_ = 1000;       // initial send sequence
  std::uint32_t snd_una_ = 0;      // lowest unacked seq
  std::uint32_t next_seq_ = 0;     // next new seq to send
  std::uint64_t goal_bytes_ = 0;   // 0 = unbounded
  std::uint32_t peer_window_ = 65535;
  std::uint64_t acked_bytes_ = 0;
  bool fin_sent_ = false;

  // Congestion control (units: segments, fractional for CA growth).
  double cwnd_ = 2.0;
  double ssthresh_ = 64.0;
  int dupacks_ = 0;
  // NewReno-style recovery: while snd_una < recover_seq, every partial
  // ACK retransmits the next hole immediately (multi-loss windows would
  // otherwise pay one RTO per hole).
  bool in_recovery_ = false;
  std::uint32_t recover_seq_ = 0;

  // RTT estimation / RTO.
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  bool have_rtt_ = false;
  sim::Duration rto_;
  sim::Timer rto_timer_;
  // seq -> (send time, was-retransmitted?)
  std::map<std::uint32_t, std::pair<sim::Time, bool>> send_times_;

  sim::TimeSeries cwnd_series_;
  Counters counters_;
};

class TcpReceiver {
 public:
  TcpReceiver(sim::Scheduler& sched, const TcpConfig& config, PacketSink sink);

  /// Feed every packet arriving at the receiver side.
  void on_packet(const net::Packet& pkt);

  /// Advertised receive window (bytes); shrink it to emulate a slow
  /// receiver (the DAPPER "receiver-limited" ground truth).
  void set_advertised_window(std::uint16_t w) { rwnd_ = w; }

  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }
  [[nodiscard]] std::uint64_t dup_acks_sent() const { return dup_acks_; }
  [[nodiscard]] bool saw_fin() const { return saw_fin_; }

 private:
  void send_ack(const net::Packet& cause, bool syn_ack);

  sim::Scheduler& sched_;
  TcpConfig config_;
  PacketSink sink_;
  std::uint32_t rcv_next_ = 0;  // next expected seq
  bool established_ = false;
  bool saw_fin_ = false;
  std::uint16_t rwnd_ = 65535;
  // seq -> (sequence-space length incl. FIN, payload bytes)
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>
      out_of_order_;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t dup_acks_ = 0;
  std::uint64_t flow_tag_ = 0;
};

}  // namespace intox::tcp
