#include "tcp/tcp.hpp"

#include <algorithm>

namespace intox::tcp {

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "closed";
    case TcpState::kSynSent: return "syn-sent";
    case TcpState::kEstablished: return "established";
    case TcpState::kFinSent: return "fin-sent";
    case TcpState::kDone: return "done";
  }
  return "?";
}

TcpSender::TcpSender(sim::Scheduler& sched, const TcpConfig& config,
                     net::FiveTuple flow, PacketSink sink)
    : sched_(sched), config_(config), flow_(flow), sink_(std::move(sink)),
      cwnd_(config.initial_cwnd_segments),
      ssthresh_(config.initial_ssthresh_segments),
      rto_(config.initial_rto), rto_timer_(sched, [this] { on_rto(); }) {}

void TcpSender::start(std::uint64_t bytes) {
  goal_bytes_ = bytes;
  snd_una_ = iss_;
  next_seq_ = iss_;
  state_ = TcpState::kSynSent;
  send_syn();
}

void TcpSender::stop() {
  state_ = TcpState::kDone;
  rto_timer_.cancel();
}

void TcpSender::send_syn() {
  net::Packet p;
  p.src = flow_.src;
  p.dst = flow_.dst;
  net::TcpHeader t;
  t.src_port = flow_.src_port;
  t.dst_port = flow_.dst_port;
  t.seq = iss_;
  t.syn = true;
  p.l4 = t;
  p.flow_tag = flow_tag_;
  sink_(std::move(p));
  arm_rto();
}

void TcpSender::enter_established() {
  state_ = TcpState::kEstablished;
  snd_una_ = iss_ + 1;  // SYN consumes one sequence number
  next_seq_ = snd_una_;
  cwnd_series_.record(sched_.now(), cwnd_);
  try_send();
}

void TcpSender::send_segment(std::uint32_t seq, bool retransmission) {
  net::Packet p;
  p.src = flow_.src;
  p.dst = flow_.dst;
  net::TcpHeader t;
  t.src_port = flow_.src_port;
  t.dst_port = flow_.dst_port;
  t.seq = seq;
  t.ack_flag = true;
  // FIN rides the last segment once all payload has been queued.
  const std::uint64_t offset = seq - (iss_ + 1);
  const bool is_last =
      goal_bytes_ > 0 && offset + config_.mss >= goal_bytes_;
  t.fin = is_last;
  p.l4 = t;
  const std::uint32_t remaining =
      goal_bytes_ > 0
          ? static_cast<std::uint32_t>(
                std::min<std::uint64_t>(config_.mss, goal_bytes_ - offset))
          : config_.mss;
  p.payload_bytes = remaining;
  p.flow_tag = flow_tag_;

  ++counters_.segments_sent;
  // Karn's rule: never sample RTT from retransmitted segments.
  send_times_[seq] = {sched_.now(), retransmission};
  if (is_last) fin_sent_ = true;
  sink_(std::move(p));
}

void TcpSender::try_send() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kFinSent) return;
  const auto cwnd_bytes =
      static_cast<std::uint64_t>(cwnd_ * static_cast<double>(config_.mss));
  const std::uint64_t window =
      std::min<std::uint64_t>(cwnd_bytes, peer_window_);

  while (bytes_in_flight() + config_.mss <= window) {
    const std::uint64_t offset = next_seq_ - (iss_ + 1);
    if (goal_bytes_ > 0 && offset >= goal_bytes_) break;  // stream done
    send_segment(next_seq_, false);
    const std::uint32_t len =
        goal_bytes_ > 0
            ? static_cast<std::uint32_t>(
                  std::min<std::uint64_t>(config_.mss, goal_bytes_ - offset))
            : config_.mss;
    next_seq_ += len;
    if (fin_sent_) {
      state_ = TcpState::kFinSent;
      break;
    }
  }
  if (bytes_in_flight() > 0 && !rto_timer_.armed()) arm_rto();
}

void TcpSender::arm_rto() { rto_timer_.arm_after(rto_); }

void TcpSender::on_rto() {
  if (state_ == TcpState::kDone || state_ == TcpState::kClosed) return;
  ++counters_.timeouts;

  if (state_ == TcpState::kSynSent) {
    rto_ = std::min<sim::Duration>(rto_ * 2, config_.rto_max);
    send_syn();
    return;
  }
  if (bytes_in_flight() == 0) return;

  // Classic timeout reaction: collapse to one segment, halve ssthresh,
  // back off the timer, retransmit the lowest unacked segment.
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
  dupacks_ = 0;
  in_recovery_ = true;
  recover_seq_ = next_seq_;
  cwnd_series_.record(sched_.now(), cwnd_);
  rto_ = std::min<sim::Duration>(rto_ * 2, config_.rto_max);
  ++counters_.rto_retransmits;
  send_segment(snd_una_, true);
  arm_rto();
}

void TcpSender::on_ack(std::uint32_t ack, std::uint16_t window) {
  peer_window_ = window;

  if (ack > snd_una_) {
    // New data acknowledged.
    const std::uint64_t newly = ack - snd_una_;
    acked_bytes_ += newly;

    // RTT sample from the oldest newly-acked, non-retransmitted segment.
    for (auto it = send_times_.begin();
         it != send_times_.end() && it->first < ack;) {
      if (!it->second.second) {
        const double sample = sim::to_seconds(sched_.now() - it->second.first);
        if (!have_rtt_) {
          srtt_s_ = sample;
          rttvar_s_ = sample / 2.0;
          have_rtt_ = true;
        } else {
          rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - sample);
          srtt_s_ = 0.875 * srtt_s_ + 0.125 * sample;
        }
        const double rto_s = srtt_s_ + 4.0 * rttvar_s_;
        rto_ = std::clamp(sim::seconds(rto_s), config_.rto_min,
                          config_.rto_max);
      }
      it = send_times_.erase(it);
    }

    snd_una_ = ack;
    dupacks_ = 0;
    rto_timer_.cancel();

    if (in_recovery_) {
      if (snd_una_ < recover_seq_) {
        // Partial ACK: the next hole is at the new snd_una — retransmit
        // it right away (NewReno) instead of stalling for an RTO.
        ++counters_.fast_retransmits;
        send_segment(snd_una_, true);
        arm_rto();
        maybe_finish();
        return;
      }
      // Recovery complete.
      in_recovery_ = false;
      cwnd_ = ssthresh_;
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(newly) / config_.mss;  // slow start
    } else {
      cwnd_ += static_cast<double>(newly) / config_.mss / cwnd_;  // CA
    }
    cwnd_series_.record(sched_.now(), cwnd_);
    if (bytes_in_flight() > 0) arm_rto();
    maybe_finish();
    try_send();
    return;
  }

  // Duplicate ACK.
  if (ack == snd_una_ && bytes_in_flight() > 0) {
    ++dupacks_;
    if (dupacks_ == config_.dupack_threshold && !in_recovery_) {
      // Fast retransmit + (simplified) fast recovery.
      ssthresh_ = std::max(2.0, cwnd_ / 2.0);
      cwnd_ = ssthresh_;
      in_recovery_ = true;
      recover_seq_ = next_seq_;
      cwnd_series_.record(sched_.now(), cwnd_);
      ++counters_.fast_retransmits;
      send_segment(snd_una_, true);
      arm_rto();
    }
  }
}

void TcpSender::maybe_finish() {
  if (state_ == TcpState::kFinSent && goal_bytes_ > 0 &&
      acked_bytes_ >= goal_bytes_ + 1) {  // +1 for the FIN
    state_ = TcpState::kDone;
    rto_timer_.cancel();
  }
}

void TcpSender::on_packet(const net::Packet& pkt) {
  const auto* t = pkt.tcp();
  if (!t) return;
  if (state_ == TcpState::kSynSent && t->syn && t->ack_flag &&
      t->ack == iss_ + 1) {
    rto_timer_.cancel();
    rto_ = config_.initial_rto;
    enter_established();
    return;
  }
  if (t->ack_flag &&
      (state_ == TcpState::kEstablished || state_ == TcpState::kFinSent)) {
    on_ack(t->ack, t->window);
  }
}

}  // namespace intox::tcp
