#include "tcp/tcp.hpp"

namespace intox::tcp {

TcpReceiver::TcpReceiver(sim::Scheduler& sched, const TcpConfig& config,
                         PacketSink sink)
    : sched_(sched), config_(config), sink_(std::move(sink)) {}

void TcpReceiver::send_ack(const net::Packet& cause, bool syn_ack) {
  net::Packet p;
  p.src = cause.dst;
  p.dst = cause.src;
  net::TcpHeader t;
  const auto* ct = cause.tcp();
  t.src_port = ct->dst_port;
  t.dst_port = ct->src_port;
  t.ack = rcv_next_;
  t.ack_flag = true;
  t.syn = syn_ack;
  t.seq = 2000;  // receiver's ISS; we never send data on this side
  t.window = rwnd_;
  p.l4 = t;
  p.payload_bytes = 0;
  p.flow_tag = flow_tag_;
  sink_(std::move(p));
}

void TcpReceiver::on_packet(const net::Packet& pkt) {
  const auto* t = pkt.tcp();
  if (!t) return;
  flow_tag_ = pkt.flow_tag;

  if (t->syn) {
    rcv_next_ = t->seq + 1;
    established_ = true;
    send_ack(pkt, /*syn_ack=*/true);
    return;
  }
  if (!established_) return;

  const std::uint32_t len = pkt.payload_bytes + (t->fin ? 1u : 0u);
  if (len == 0) return;  // pure ACK towards us: nothing to do

  if (t->seq == rcv_next_) {
    // In-order: consume it and any buffered continuation.
    rcv_next_ += len;
    bytes_received_ += pkt.payload_bytes;
    if (t->fin) saw_fin_ = true;
    for (auto it = out_of_order_.find(rcv_next_); it != out_of_order_.end();
         it = out_of_order_.find(rcv_next_)) {
      rcv_next_ += it->second.first;
      bytes_received_ += it->second.second;
      out_of_order_.erase(it);
    }
    send_ack(pkt, false);
  } else if (t->seq > rcv_next_) {
    // Hole: buffer and emit a duplicate ACK (the fast-retransmit signal).
    out_of_order_.emplace(t->seq, std::make_pair(len, pkt.payload_bytes));
    if (t->fin) saw_fin_ = true;
    ++dup_acks_;
    send_ack(pkt, false);
  } else {
    // Old (already-received) segment, e.g. a spurious retransmission:
    // re-ack so the sender can move on.
    send_ack(pkt, false);
  }
}

}  // namespace intox::tcp
