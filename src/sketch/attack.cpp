#include "sketch/attack.hpp"

#include <algorithm>

#include "net/hash.hpp"
#include "obs/metrics.hpp"

namespace intox::sketch {

std::vector<std::uint64_t> craft_saturating_keys(std::size_t cells,
                                                 std::uint32_t hashes,
                                                 std::uint32_t seed,
                                                 std::size_t count,
                                                 std::size_t search_budget) {
  std::vector<bool> covered(cells, false);
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  std::uint64_t candidate = 0x4d414c1ceULL;  // arbitrary search start

  for (std::size_t n = 0; n < count; ++n) {
    std::uint64_t best_key = candidate;
    std::size_t best_new = 0;
    for (std::size_t b = 0; b < search_budget; ++b, ++candidate) {
      std::size_t fresh = 0;
      for (std::uint32_t i = 0; i < hashes; ++i) {
        fresh += !covered[bloom_index(candidate, i, cells, seed)];
      }
      if (fresh > best_new) {
        best_new = fresh;
        best_key = candidate;
        if (fresh == hashes) break;  // cannot do better
      }
    }
    keys.push_back(best_key);
    for (std::uint32_t i = 0; i < hashes; ++i) {
      covered[bloom_index(best_key, i, cells, seed)] = true;
    }
  }
  return keys;
}

std::vector<std::uint64_t> find_false_positive_keys(
    std::size_t cells, std::uint32_t hashes, std::uint32_t seed,
    const std::vector<std::uint64_t>& cover_keys, std::size_t count,
    std::uint64_t start_key, std::uint64_t search_limit) {
  std::vector<bool> cover(cells, false);
  for (std::uint64_t k : cover_keys) {
    for (std::uint32_t i = 0; i < hashes; ++i) {
      cover[bloom_index(k, i, cells, seed)] = true;
    }
  }

  std::vector<std::uint64_t> hits;
  for (std::uint64_t key = start_key;
       key < start_key + search_limit && hits.size() < count; ++key) {
    bool inside = true;
    for (std::uint32_t i = 0; i < hashes && inside; ++i) {
      inside = cover[bloom_index(key, i, cells, seed)];
    }
    // Exclude the cover keys themselves: we want *non-members* that the
    // filter will claim to contain.
    if (inside &&
        std::find(cover_keys.begin(), cover_keys.end(), key) ==
            cover_keys.end()) {
      hits.push_back(key);
    }
  }
  return hits;
}

PollutionOutcome run_bloom_pollution(
    std::size_t cells, std::uint32_t hashes, std::uint32_t seed,
    const std::vector<std::uint64_t>& legit_keys,
    const std::vector<std::uint64_t>& attack_keys) {
  BloomFilter filter{cells, hashes, seed};
  for (std::uint64_t k : legit_keys) filter.insert(k);

  PollutionOutcome out;
  out.fill_before = filter.fill_fraction();
  out.fpr_before = bloom_empirical_fpr(filter, 20000);
  for (std::uint64_t k : attack_keys) filter.insert(k);
  out.fill_after = filter.fill_fraction();
  out.fpr_after = bloom_empirical_fpr(filter, 20000);

  static obs::Counter& inserts =
      obs::Registry::global().counter("sketch.inserts");
  static obs::Counter& collisions =
      obs::Registry::global().counter("sketch.collisions");
  static obs::Gauge& fill_hwm =
      obs::Registry::global().gauge("sketch.fill_ratio_hwm");
  inserts.add(filter.inserted());
  if (filter.collisions()) collisions.add(filter.collisions());
  fill_hwm.update_max(out.fill_after);
  return out;
}

FlowRadarAttackOutcome run_flowradar_overflow(const FlowRadarConfig& config,
                                              std::size_t legit_flows,
                                              std::size_t attack_flows,
                                              std::uint64_t seed) {
  FlowRadarAttackOutcome out;
  out.legit_flows = legit_flows;
  out.attack_flows = attack_flows;

  FlowRadar radar{config};
  for (std::size_t i = 0; i < legit_flows; ++i) {
    const std::uint64_t flow = net::mix64(seed * 1000003 + i);
    for (int p = 0; p < 3; ++p) radar.add_packet(flow);
  }
  out.decode_complete_before = radar.decode().complete();

  // The attacker sprays single-packet flows with distinct keys — the
  // cheapest possible traffic (one packet per fake flow, no handshake).
  for (std::size_t i = 0; i < attack_flows; ++i) {
    radar.add_packet(net::mix64((seed + 77) * 1000033 + i) |
                     (std::uint64_t{1} << 62));
  }
  const DecodeResult after = radar.decode();
  out.decode_complete_after = after.complete();
  out.decoded_flows_after = after.flows.size();
  out.stuck_cells_after = after.stuck_cells;
  return out;
}

}  // namespace intox::sketch
