#include "sketch/flowradar.hpp"

#include <algorithm>

namespace intox::sketch {

FlowRadar::FlowRadar(const FlowRadarConfig& config)
    : config_(config),
      seen_(config.bloom_cells, config.bloom_hashes, config.seed),
      table_(config.table_cells) {}

void FlowRadar::add_packet(std::uint64_t flow) {
  if (!seen_.contains(flow)) {
    seen_.insert(flow);
    ++distinct_;
    for (std::uint32_t i = 0; i < config_.table_hashes; ++i) {
      Cell& c =
          table_[partitioned_index(flow, i, config_.table_hashes,
                                   table_.size(), config_.seed ^ 0xf10eu)];
      c.flow_xor ^= flow;
      c.flow_count += 1;
      c.packet_count += 1;
    }
  } else {
    for (std::uint32_t i = 0; i < config_.table_hashes; ++i) {
      Cell& c =
          table_[partitioned_index(flow, i, config_.table_hashes,
                                   table_.size(), config_.seed ^ 0xf10eu)];
      c.packet_count += 1;
    }
  }
}

DecodeResult FlowRadar::decode() const {
  std::vector<Cell> work = table_;
  DecodeResult result;
  std::unordered_map<std::uint64_t, std::uint64_t> flow_packets;

  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (work[i].flow_count != 1) continue;
      const std::uint64_t flow = work[i].flow_xor;
      // A pure cell names one flow; its packet count is recoverable by
      // the standard FlowRadar SolveSingle step: here every cell of the
      // flow carries the same per-flow count only once other flows are
      // removed, so we take the count at peel time.
      const std::uint64_t packets_here = work[i].packet_count;
      flow_packets[flow] = packets_here;
      for (std::uint32_t k = 0; k < config_.table_hashes; ++k) {
        Cell& c = work[partitioned_index(flow, k, config_.table_hashes,
                                        work.size(), config_.seed ^ 0xf10eu)];
        c.flow_xor ^= flow;
        c.flow_count -= 1;
        c.packet_count -= packets_here;
      }
      progress = true;
    }
  }

  // intox-analyze: allow(taint, collection pass only; flows sorted below)
  for (const auto& [flow, packets] : flow_packets) {
    result.flows.push_back({flow, packets});
  }
  // flow_packets iterates in hash order, which is implementation- and
  // seed-dependent; callers compare decoded sets byte-for-byte across
  // runs, so emit flows in id order.
  std::sort(result.flows.begin(), result.flows.end(),
            [](const DecodedFlow& a, const DecodedFlow& b) {
              return a.flow < b.flow;
            });
  for (const auto& c : work) {
    if (c.flow_count != 0) ++result.stuck_cells;
  }
  return result;
}

void FlowRadar::clear() {
  seen_.clear();
  table_.assign(table_.size(), Cell{});
  distinct_ = 0;
}

}  // namespace intox::sketch
