// §5-V countermeasure for sketch pollution: secret/rotating hash seeds.
//
//   "Obfuscating this logic, or varying it over time, can thus hinder
//    attacks. This security-by-obscurity method ... can form part of a
//    defense-in-depth approach."
//
// The crafted-key attacks in attack.hpp require knowing the filter's
// hash seed. A RotatingBloom re-seeds (and rebuilds from a retained key
// window) every epoch: keys crafted against seed k lose their structure
// under seed k+1, degrading the attack to random insertions. The cost is
// the §5-V trade-off made measurable: rebuild work per rotation and a
// bounded retention window (older members are forgotten).
#pragma once

#include <cstdint>
#include <deque>

#include "sketch/bloom.hpp"

namespace intox::sketch {

struct RotationConfig {
  std::size_t cells = 4096;
  std::uint32_t hashes = 4;
  /// Insertions between seed rotations.
  std::uint64_t rotation_period = 4096;
  /// Members re-inserted after a rotation (bounded memory — a real data
  /// plane would swap between two filter banks instead).
  std::size_t retained_keys = 2048;
  std::uint64_t seed_sequence_start = 1;
};

class RotatingBloom {
 public:
  explicit RotatingBloom(const RotationConfig& config);

  void insert(std::uint64_t key);
  [[nodiscard]] bool contains(std::uint64_t key) const {
    return filter_.contains(key);
  }

  [[nodiscard]] std::uint32_t current_seed() const { return filter_.seed(); }
  [[nodiscard]] std::uint64_t rotations() const { return rotations_; }
  [[nodiscard]] double fill_fraction() const { return filter_.fill_fraction(); }
  [[nodiscard]] const BloomFilter& filter() const { return filter_; }

 private:
  void rotate();

  RotationConfig config_;
  BloomFilter filter_;
  std::deque<std::uint64_t> recent_;
  std::uint64_t since_rotation_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t seed_counter_;
};

}  // namespace intox::sketch
