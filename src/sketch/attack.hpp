// Pollution attacks on probabilistic telemetry (§3.2, after Gerbet et
// al. "The Power of Evil Choices in Bloom Filters").
//
// All the structures here use public, seedable hash functions, so an
// attacker can search the key space offline for keys whose hash images
// serve the attack:
//
//  * Bloom saturation — keys chosen to cover *fresh* cells fastest (a
//    greedy cover), driving the fill fraction and hence the FPR towards
//    1 with far fewer insertions than random traffic would need.
//  * Targeted collision — keys whose cells all lie inside a victim key's
//    cell set, manufacturing false positives for chosen non-member keys.
//  * FlowRadar overflow — spraying distinct flow keys to exceed the
//    coded table's decoding threshold, destroying the telemetry batch.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/bloom.hpp"
#include "sketch/flowradar.hpp"

namespace intox::sketch {

/// Greedily selects `count` keys maximizing new-cell coverage per key —
/// the saturation attack. `search_budget` candidate keys are examined
/// per selection (offline work only; Kerckhoff gives the hash).
std::vector<std::uint64_t> craft_saturating_keys(
    std::size_t cells, std::uint32_t hashes, std::uint32_t seed,
    std::size_t count, std::size_t search_budget = 64);

/// Finds keys whose whole cell set falls inside the union of the cells
/// of `cover_keys` (i.e., keys the filter will falsely report after the
/// cover is inserted). Searches keys from `start_key` upward; returns up
/// to `count` hits.
std::vector<std::uint64_t> find_false_positive_keys(
    std::size_t cells, std::uint32_t hashes, std::uint32_t seed,
    const std::vector<std::uint64_t>& cover_keys, std::size_t count,
    std::uint64_t start_key = 1, std::uint64_t search_limit = 2'000'000);

struct PollutionOutcome {
  double fpr_before = 0.0;
  double fpr_after = 0.0;
  double fill_before = 0.0;
  double fill_after = 0.0;
};

/// Measures FPR before/after inserting `attack_keys` into a filter that
/// already carries `legit_keys`.
PollutionOutcome run_bloom_pollution(
    std::size_t cells, std::uint32_t hashes, std::uint32_t seed,
    const std::vector<std::uint64_t>& legit_keys,
    const std::vector<std::uint64_t>& attack_keys);

struct FlowRadarAttackOutcome {
  std::size_t legit_flows = 0;
  std::size_t attack_flows = 0;
  bool decode_complete_before = false;
  bool decode_complete_after = false;
  std::size_t decoded_flows_after = 0;
  std::size_t stuck_cells_after = 0;
};

/// Baseline-vs-attack decode of a FlowRadar carrying `legit_flows`
/// normal flows plus `attack_flows` attacker-sprayed distinct flows.
FlowRadarAttackOutcome run_flowradar_overflow(const FlowRadarConfig& config,
                                              std::size_t legit_flows,
                                              std::size_t attack_flows,
                                              std::uint64_t seed = 1);

}  // namespace intox::sketch
