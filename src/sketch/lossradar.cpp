#include "sketch/lossradar.hpp"

namespace intox::sketch {

LossRadar::LossRadar(const LossRadarConfig& config)
    : config_(config), cells_(config.cells) {}

void LossRadar::add(std::uint64_t packet_id) {
  for (std::uint32_t i = 0; i < config_.hashes; ++i) {
    Cell& c = cells_[partitioned_index(packet_id, i, config_.hashes,
                                       cells_.size(), config_.seed)];
    c.id_xor ^= packet_id;
    c.count += 1;
  }
  ++count_;
}

LossDecodeResult LossRadar::diff_decode(const LossRadar& downstream) const {
  std::vector<Cell> diff = cells_;
  for (std::size_t i = 0; i < diff.size(); ++i) {
    diff[i].id_xor ^= downstream.cells_[i].id_xor;
    diff[i].count -= downstream.cells_[i].count;
  }

  LossDecodeResult result;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < diff.size(); ++i) {
      if (diff[i].count != 1) continue;
      const std::uint64_t id = diff[i].id_xor;
      result.lost.push_back(id);
      for (std::uint32_t k = 0; k < config_.hashes; ++k) {
        Cell& c = diff[partitioned_index(id, k, config_.hashes, diff.size(),
                                         config_.seed)];
        c.id_xor ^= id;
        c.count -= 1;
      }
      progress = true;
    }
  }
  for (const auto& c : diff) {
    if (c.count != 0) ++result.stuck_cells;
  }
  return result;
}

}  // namespace intox::sketch
