#include "sketch/bloom.hpp"

#include <cmath>

namespace intox::sketch {

double bloom_theoretical_fpr(std::size_t cells, std::uint32_t hashes,
                             std::uint64_t inserted) {
  const double m = static_cast<double>(cells);
  const double k = static_cast<double>(hashes);
  const double n = static_cast<double>(inserted);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

double bloom_empirical_fpr(const BloomFilter& filter, std::uint64_t probes,
                           std::uint64_t probe_seed) {
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < probes; ++i) {
    // Probe keys from a disjoint namespace (high bit set) so they cannot
    // collide with inserted keys as *keys* — only as hash images.
    const std::uint64_t key =
        net::mix64(probe_seed + i) | (std::uint64_t{1} << 63);
    hits += filter.contains(key);
  }
  return probes ? static_cast<double>(hits) / static_cast<double>(probes) : 0.0;
}

}  // namespace intox::sketch
