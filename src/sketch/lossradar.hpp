// LossRadar-style loss digest (Li et al., CoNEXT'16).
//
// Two meters — upstream and downstream of a network segment — encode
// every packet into small IBLT digests; subtracting the downstream
// digest from the upstream one leaves exactly the lost packets, which
// peel out individually. Correct as long as the number of losses in a
// batch stays within the digest's dimensioning; an attacker who inflates
// losses (or injects asymmetric traffic) stalls the decode.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/bloom.hpp"

namespace intox::sketch {

struct LossRadarConfig {
  std::size_t cells = 256;
  std::uint32_t hashes = 3;
  std::uint32_t seed = 21;
};

struct LossDecodeResult {
  std::vector<std::uint64_t> lost;  // packet ids recovered
  std::size_t stuck_cells = 0;
  [[nodiscard]] bool complete() const { return stuck_cells == 0; }
};

class LossRadar {
 public:
  explicit LossRadar(const LossRadarConfig& config);

  /// Records one packet (id must uniquely identify the packet, e.g.
  /// 5-tuple hash + IP id).
  void add(std::uint64_t packet_id);

  /// Digest subtraction: this (upstream) minus `downstream`, then peel.
  [[nodiscard]] LossDecodeResult diff_decode(const LossRadar& downstream) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] const LossRadarConfig& config() const { return config_; }

 private:
  struct Cell {
    std::uint64_t id_xor = 0;
    std::int64_t count = 0;
  };

  LossRadarConfig config_;
  std::vector<Cell> cells_;
  std::uint64_t count_ = 0;
};

}  // namespace intox::sketch
