// Bloom filter (plain and counting), dimensioned the way data-plane
// telemetry systems dimension them: for the *average* case. §3.2 of the
// paper (citing Gerbet et al.) notes this makes them attackable — the
// hash functions are public, so an adversary can construct key sets that
// concentrate on few cells and saturate the filter.
#pragma once

#include <cstdint>
#include <vector>

#include "net/hash.hpp"

namespace intox::sketch {

/// Derives the i-th cell index for a key from an independent mixed hash
/// per index — the analogue of a switch's per-hash CRC polynomials.
/// (Kirsch-Mitzenmacher double hashing is deliberately NOT used: its
/// h1 + i*h2 structure lets two keys collide on their *entire* cell set
/// orders of magnitude more often than independent hashes, which breaks
/// IBLT peeling even without an attacker.) Public and seedable — the
/// §3.2 attackers run this same function offline.
inline std::size_t bloom_index(std::uint64_t key, std::uint32_t i,
                               std::size_t cells, std::uint32_t seed) {
  const std::uint64_t h = net::mix64(
      key ^ net::mix64((std::uint64_t{seed} << 8) | (i + 1)));
  return static_cast<std::size_t>(h % cells);
}

/// Index into the i-th of `hashes` equal partitions of a `cells`-wide
/// table. XOR-based coded tables (FlowRadar, LossRadar) need each key's
/// cells to be *distinct* — a key hashing the same cell twice would
/// cancel its own XOR — so each hash function owns a partition, exactly
/// as FlowRadar lays out its coded table.
inline std::size_t partitioned_index(std::uint64_t key, std::uint32_t i,
                                     std::uint32_t hashes, std::size_t cells,
                                     std::uint32_t seed) {
  const std::size_t psize = cells / hashes;
  return static_cast<std::size_t>(i) * psize +
         bloom_index(key, i, psize, seed);
}

class BloomFilter {
 public:
  BloomFilter(std::size_t cells, std::uint32_t hashes, std::uint32_t seed = 0)
      : bits_(cells, false), hashes_(hashes), seed_(seed) {}

  void insert(std::uint64_t key) {
    bool flipped = false;
    for (std::uint32_t i = 0; i < hashes_; ++i) {
      auto bit = bits_[bloom_index(key, i, bits_.size(), seed_)];
      if (!bit) {
        bit = true;
        flipped = true;
      }
    }
    // A full collision: every cell was already set, so this key is now
    // indistinguishable from prior members — the saturation signal the
    // §3.2 crafted-key attack drives up.
    if (!flipped) ++collisions_;
    ++inserted_;
  }

  [[nodiscard]] bool contains(std::uint64_t key) const {
    for (std::uint32_t i = 0; i < hashes_; ++i) {
      if (!bits_[bloom_index(key, i, bits_.size(), seed_)]) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t cells() const { return bits_.size(); }
  [[nodiscard]] std::uint32_t hashes() const { return hashes_; }
  [[nodiscard]] std::uint32_t seed() const { return seed_; }
  [[nodiscard]] std::uint64_t inserted() const { return inserted_; }
  /// Insertions that set no new bit (all cells already occupied).
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }
  [[nodiscard]] double fill_fraction() const {
    std::size_t set = 0;
    for (bool b : bits_) set += b;
    return static_cast<double>(set) / static_cast<double>(bits_.size());
  }
  void clear() {
    bits_.assign(bits_.size(), false);
    inserted_ = 0;
    collisions_ = 0;
  }

 private:
  std::vector<bool> bits_;
  std::uint32_t hashes_;
  std::uint32_t seed_;
  std::uint64_t inserted_ = 0;
  std::uint64_t collisions_ = 0;
};

/// Counting Bloom filter with deletion support (used by LossRadar-style
/// meters).
class CountingBloom {
 public:
  CountingBloom(std::size_t cells, std::uint32_t hashes, std::uint32_t seed = 0)
      : counts_(cells, 0), hashes_(hashes), seed_(seed) {}

  void insert(std::uint64_t key) { update(key, +1); }
  void remove(std::uint64_t key) { update(key, -1); }

  [[nodiscard]] bool contains(std::uint64_t key) const {
    for (std::uint32_t i = 0; i < hashes_; ++i) {
      if (counts_[bloom_index(key, i, counts_.size(), seed_)] <= 0) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::size_t cells() const { return counts_.size(); }

 private:
  void update(std::uint64_t key, int delta) {
    for (std::uint32_t i = 0; i < hashes_; ++i) {
      counts_[bloom_index(key, i, counts_.size(), seed_)] += delta;
    }
  }
  std::vector<std::int32_t> counts_;
  std::uint32_t hashes_;
  std::uint32_t seed_;
};

/// Theoretical false-positive rate for n insertions into (m, k).
double bloom_theoretical_fpr(std::size_t cells, std::uint32_t hashes,
                             std::uint64_t inserted);

/// Empirical FPR measured with `probes` random non-member keys.
double bloom_empirical_fpr(const BloomFilter& filter, std::uint64_t probes,
                           std::uint64_t probe_seed = 0xfeed);

}  // namespace intox::sketch
