// FlowRadar-style flowset encoding (Li et al., NSDI'16).
//
// A Bloom filter detects "new flow?" and an invertible coded table (an
// IBLT: per-cell FlowXOR / FlowCount / PacketCount) records every flow
// and its packet count in constant per-packet work. The collector
// decodes by peeling pure cells (FlowCount == 1). Decoding succeeds with
// high probability as long as the number of distinct flows stays within
// the dimensioning — the average-case assumption §3.2 attacks: an
// adversary inflating the distinct-flow count (or targeting cells)
// makes the peeling stall, destroying the switch's telemetry.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sketch/bloom.hpp"

namespace intox::sketch {

struct FlowRadarConfig {
  std::size_t bloom_cells = 8192;
  std::uint32_t bloom_hashes = 4;
  std::size_t table_cells = 1024;
  std::uint32_t table_hashes = 3;
  std::uint32_t seed = 7;
};

struct DecodedFlow {
  std::uint64_t flow = 0;
  std::uint64_t packets = 0;
};

struct DecodeResult {
  std::vector<DecodedFlow> flows;
  /// Cells still undecoded when peeling stalled (0 = full success).
  std::size_t stuck_cells = 0;
  [[nodiscard]] bool complete() const { return stuck_cells == 0; }
};

class FlowRadar {
 public:
  explicit FlowRadar(const FlowRadarConfig& config);

  /// Per-packet update (flow key = hashed 5-tuple).
  void add_packet(std::uint64_t flow);

  /// Collector-side decode by peeling. Non-destructive.
  [[nodiscard]] DecodeResult decode() const;

  [[nodiscard]] std::uint64_t distinct_flows() const { return distinct_; }
  [[nodiscard]] const FlowRadarConfig& config() const { return config_; }
  void clear();

 private:
  struct Cell {
    std::uint64_t flow_xor = 0;
    std::uint32_t flow_count = 0;
    std::uint64_t packet_count = 0;
  };

  FlowRadarConfig config_;
  BloomFilter seen_;
  std::vector<Cell> table_;
  std::uint64_t distinct_ = 0;
};

}  // namespace intox::sketch
