#include "sketch/rotation.hpp"

#include "net/hash.hpp"
#include "obs/metrics.hpp"
#include "validate/invariant.hpp"

namespace intox::sketch {

RotatingBloom::RotatingBloom(const RotationConfig& config)
    : config_(config),
      filter_(config.cells, config.hashes,
              static_cast<std::uint32_t>(
                  net::mix64(config.seed_sequence_start))),
      seed_counter_(config.seed_sequence_start) {}

void RotatingBloom::insert(std::uint64_t key) {
  filter_.insert(key);
  recent_.push_back(key);
  if (recent_.size() > config_.retained_keys) recent_.pop_front();
  if (++since_rotation_ >= config_.rotation_period) rotate();
  INTOX_INVARIANT(recent_.size() <= config_.retained_keys,
                  "retention window leaked: %zu keys retained, limit %zu",
                  recent_.size(), config_.retained_keys);
  INTOX_INVARIANT(since_rotation_ < config_.rotation_period,
                  "missed a seed rotation: %llu inserts since rotation, "
                  "period %llu",
                  static_cast<unsigned long long>(since_rotation_),
                  static_cast<unsigned long long>(config_.rotation_period));
}

void RotatingBloom::rotate() {
  // Observability: how full (and how collided) the filter got before
  // the rotation wiped it — the fill high-water is the §3.2 saturation
  // signal a supervisor would watch.
  static obs::Counter& rotations =
      obs::Registry::global().counter("sketch.rotations");
  // Shared with sketch/attack.cpp on purpose: both paths feed one
  // process-wide saturation signal, whichever sketch variant ran.
  static obs::Counter& collisions =
      // intox-lint: allow(metrics)  -- shared with attack.cpp on purpose
      obs::Registry::global().counter("sketch.collisions");
  static obs::Gauge& fill_hwm =
      // intox-lint: allow(metrics)  -- shared with attack.cpp on purpose
      obs::Registry::global().gauge("sketch.fill_ratio_hwm");
  rotations.add(1);
  if (filter_.collisions()) collisions.add(filter_.collisions());
  fill_hwm.update_max(filter_.fill_fraction());

  ++rotations_;
  since_rotation_ = 0;
  ++seed_counter_;
  // The new seed is drawn from a sequence the attacker cannot predict
  // (modeled: mixed counter; a deployment would use a CSPRNG).
  filter_ = BloomFilter{config_.cells, config_.hashes,
                        static_cast<std::uint32_t>(net::mix64(seed_counter_))};
  for (std::uint64_t k : recent_) filter_.insert(k);
}

}  // namespace intox::sketch
