#include "sweep/cache.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <span>

#include "net/hash.hpp"

namespace intox::sweep {

namespace {

std::span<const std::byte> bytes_of(const std::string& s) {
  return std::as_bytes(std::span<const char>{s.data(), s.size()});
}

/// Two independent 64-bit FNV streams make the 128-bit address; the
/// seeds only need to differ, not be secret (the cache is a performance
/// structure, not a security boundary).
constexpr std::uint64_t kSeedLo = 0x73776565702d6c6fULL;  // "sweep-lo"
constexpr std::uint64_t kSeedHi = 0x73776565702d6869ULL;  // "sweep-hi"

}  // namespace

std::string CacheKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::uint64_t binary_fingerprint() {
  std::FILE* f = std::fopen("/proc/self/exe", "rb");
  if (f == nullptr) return 0;
  std::uint64_t h = net::fnv1a64({}, kSeedLo);
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    h = net::fnv1a64(std::as_bytes(std::span<const char>{buf, n}), h);
  }
  std::fclose(f);
  return h;
}

CacheKey point_cache_key(
    std::uint64_t binary_fp, const std::string& scenario,
    const std::vector<std::pair<std::string, std::string>>& knobs) {
  // Canonical pre-image: newline-framed fields. Knob names cannot
  // contain '\n' or '=' (declared as C++ literals), but string knob
  // *values* are arbitrary, so each value is length-prefixed — without
  // that, ("a", "b\nc=d") would collide with ("a","b"),("c","d").
  std::string pre;
  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(binary_fp));
  pre += fp;
  pre += '\n';
  pre += scenario;
  pre += '\n';
  for (const auto& [name, value] : knobs) {
    char len[24];
    std::snprintf(len, sizeof len, "%zu", value.size());
    pre += name;
    pre += '=';
    pre += len;
    pre += ':';
    pre += value;
    pre += '\n';
  }
  return CacheKey{net::fnv1a64(bytes_of(pre), kSeedLo),
                  net::fnv1a64(bytes_of(pre), kSeedHi)};
}

std::string PointCache::ensure_dir() const {
  // mkdir -p: walk the path creating each missing component.
  std::string partial;
  partial.reserve(dir_.size());
  for (std::size_t i = 0; i <= dir_.size(); ++i) {
    if (i < dir_.size() && dir_[i] != '/') {
      partial += dir_[i];
      continue;
    }
    if (i < dir_.size()) partial += '/';
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
      return "cannot create cache directory '" + partial +
             "': " + std::strerror(errno);
    }
  }
  return "";
}

std::string PointCache::record_path(const CacheKey& key) const {
  return dir_ + "/" + key.hex() + ".json";
}

std::string PointCache::log_path(const CacheKey& key) const {
  return dir_ + "/" + key.hex() + ".log";
}

std::string PointCache::dump_path(const CacheKey& key) const {
  return dir_ + "/" + key.hex() + ".flightrec.json";
}

std::string PointCache::failure_path(const CacheKey& key) const {
  return dir_ + "/" + key.hex() + ".fail.json";
}

std::string PointCache::trace_path(const CacheKey& key) const {
  return dir_ + "/" + key.hex() + ".trace.json";
}

bool PointCache::has(const CacheKey& key) const {
  struct stat st{};
  return ::stat(record_path(key).c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace intox::sweep
