// Content-addressed point cache: the resume half of `intox sweep`.
//
// A completed sweep point is stored as one record file whose name is a
// 128-bit hash of everything that determines the point's output:
//   * the driver binary (fingerprint of /proc/self/exe), so a rebuilt
//     binary never reuses stale results,
//   * the scenario name, and
//   * the fully resolved knob vector (every knob, canonical rendering),
//     which already folds in --set / --config / the point's own values
//     and the seed knob.
// Presence of the file *is* completion: records are committed by
// write-temp-then-rename (obs::write_point_record), so a worker killed
// mid-point leaves only a stray .tmp — never a partial record under the
// final name. An interrupted sweep resumes by rescanning for missing
// keys and re-running exactly those points.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace intox::sweep {

/// 128-bit content address, rendered as 32 lowercase hex digits.
struct CacheKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  [[nodiscard]] std::string hex() const;
};

/// FNV-1a over this process's own binary image (/proc/self/exe).
/// Returns 0 when the image cannot be read (non-procfs platforms); the
/// cache then degrades to knob-vector addressing for this process.
std::uint64_t binary_fingerprint();

/// The content address of one point: binary fingerprint + scenario +
/// the resolved (name, value) knob vector in declaration order.
CacheKey point_cache_key(
    std::uint64_t binary_fp, const std::string& scenario,
    const std::vector<std::pair<std::string, std::string>>& knobs);

/// Filesystem layout of one cache directory:
///   <dir>/<key>.json            committed point records
///   <dir>/<key>.log             the producing worker's stderr
///   <dir>/<key>.flightrec.json  the worker's crash dump, if it crashed
///   <dir>/<key>.fail.json       intox.sweep_failure.v1 sidecar for a
///                               failed point (never the record path, so
///                               presence-of-record == completion holds)
///   <dir>/<key>.trace.json      the worker's Chrome trace (--trace-out)
///   <dir>/task.*                shared task files (sweep/task_file.hpp)
class PointCache {
 public:
  explicit PointCache(std::string dir) : dir_(std::move(dir)) {}

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Creates the cache directory (and missing parents). Returns empty
  /// on success, else the diagnostic.
  [[nodiscard]] std::string ensure_dir() const;

  [[nodiscard]] std::string record_path(const CacheKey& key) const;
  [[nodiscard]] std::string log_path(const CacheKey& key) const;
  [[nodiscard]] std::string dump_path(const CacheKey& key) const;
  [[nodiscard]] std::string failure_path(const CacheKey& key) const;
  [[nodiscard]] std::string trace_path(const CacheKey& key) const;

  /// True when a committed record exists for `key`.
  [[nodiscard]] bool has(const CacheKey& key) const;

 private:
  std::string dir_;
};

}  // namespace intox::sweep
