#include "sweep/merge.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "obs/json.hpp"
#include "obs/json_parse.hpp"

namespace intox::sweep {

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// Running cross-point statistic for one metric. Accumulated in point
/// order over std::map (name-sorted emission), so the rendered numbers
/// are a pure function of the record set — resume byte-identity holds.
struct MetricAgg {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;

  void fold(double v) {
    if (count == 0) {
      min = max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    sum += v;
    ++count;
  }
};

void fold_metric_section(const obs::JsonValue& metrics, const char* section,
                         std::map<std::string, MetricAgg>* aggs) {
  const obs::JsonValue* obj = metrics.find(section);
  if (obj == nullptr || !obj->is_object()) return;
  for (const auto& [name, value] : obj->members) {
    if (value.is_number()) (*aggs)[name].fold(value.number);
  }
}

void write_aggregate_section(obs::JsonWriter& w, const char* section,
                             const std::map<std::string, MetricAgg>& aggs) {
  w.key(section).begin_object();
  for (const auto& [name, agg] : aggs) {
    w.key(name).begin_object();
    w.key("count").value(agg.count);
    w.key("min").value(agg.min);
    w.key("max").value(agg.max);
    w.key("mean").value(agg.count > 0
                            ? agg.sum / static_cast<double>(agg.count)
                            : 0.0);
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::string render_merged_report(const MergeInput& in, std::string* error) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value(kSweepReportSchema);
  w.key("scenario").value(in.scenario);
  w.key("family").value(in.family);
  w.key("axes").begin_array();
  for (const SweepAxis& axis : in.axes) {
    w.begin_object();
    w.key("key").value(axis.key);
    w.key("values").begin_array();
    for (const std::string& v : axis.values) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("points").value(static_cast<std::uint64_t>(in.record_paths.size()));
  std::map<std::string, MetricAgg> counter_aggs;
  std::map<std::string, MetricAgg> gauge_aggs;
  w.key("records").begin_array();
  std::string record;
  for (std::size_t i = 0; i < in.record_paths.size(); ++i) {
    if (!read_file(in.record_paths[i], &record)) {
      *error = "cannot read point record '" + in.record_paths[i] + "'";
      return "";
    }
    // Records end with the writer's trailing newline; strip it so the
    // splice stays a single JSON token.
    while (!record.empty() &&
           (record.back() == '\n' || record.back() == '\r')) {
      record.pop_back();
    }
    if (record.empty() || record.front() != '{' || record.back() != '}') {
      *error = "point record '" + in.record_paths[i] +
               "' is not a JSON object";
      return "";
    }
    w.raw(record);
    // Cross-point aggregates: a record without a parseable metrics
    // section (foreign or hand-written) simply contributes nothing.
    obs::JsonValue parsed;
    if (obs::json_parse(record, &parsed, nullptr)) {
      if (const obs::JsonValue* metrics = parsed.find("metrics")) {
        fold_metric_section(*metrics, "counters", &counter_aggs);
        fold_metric_section(*metrics, "gauges", &gauge_aggs);
      }
    }
  }
  w.end_array();
  w.key("aggregates").begin_object();
  write_aggregate_section(w, "counters", counter_aggs);
  write_aggregate_section(w, "gauges", gauge_aggs);
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

std::string commit_report(const std::string& path, const std::string& doc) {
  if (path.empty()) {
    if (std::fwrite(doc.data(), 1, doc.size(), stdout) != doc.size()) {
      return "cannot write report to stdout";
    }
    std::fflush(stdout);
    return "";
  }
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return "cannot write report to '" + tmp + "': " + std::strerror(errno);
  }
  bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  ok = (std::fclose(f) == 0) && ok;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return "cannot commit report to '" + path + "'";
  }
  return "";
}

int record_exit_code(const std::string& record_json, int fallback) {
  // Safe as a substring scan: JSON escaping means a raw '"' never
  // occurs inside a string value, so the first `"exit":` is the key the
  // known writer emitted.
  static constexpr char kNeedle[] = "\"exit\":";
  const auto pos = record_json.find(kNeedle);
  if (pos == std::string::npos) return fallback;
  const char* s = record_json.c_str() + pos + sizeof kNeedle - 1;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s) return fallback;
  return static_cast<int>(v);
}

}  // namespace intox::sweep
