// Sweep-point enumeration: the declarative half of `intox sweep`.
//
// A sweep is a cross product of axes, each parsed from the driver's
// `--sweep key=a:b:step` syntax. This layer turns the axes into a
// deterministic point list — point i is a full (key, value) vector —
// shared by three consumers:
//   * the serial `intox run --sweep` loop (unchanged iteration order:
//     the first `--sweep` flag varies slowest),
//   * the `--point N` protocol that lets a worker process execute
//     exactly one point of the product, and
//   * the `intox sweep` orchestrator, which shards points across
//     worker processes and caches them by knob vector.
//
// Values are materialized as `lo + i * step` from an integer index —
// never by repeated accumulation, which over long ranges drifts enough
// to drop or duplicate the endpoint (the 1e4-step regression in
// tests/sweep/point_test.cpp).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "scenario/knob.hpp"

namespace intox::sweep {

/// One `--sweep key=a:b:step` axis, with every value pre-rendered
/// exactly as `KnobSet::set` will receive it.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Parses `key=a:b:step` against the declared knobs. Returns empty on
/// success and fills *out, else the one-line diagnostic to print. The
/// value list is endpoint-exact: `0:1:0.1` yields 11 values ending in
/// "1", for any range length.
std::string parse_sweep_axis(const std::string& text,
                             const scenario::KnobSet& knobs, SweepAxis* out);

/// The cross-product size of `axes` (1 for no axes: the base config is
/// itself a single point). Returns 0 if the product would overflow the
/// kMaxSweepPoints guard.
std::size_t point_count(const std::vector<SweepAxis>& axes);

/// Ceiling on enumerable points; larger products are a config error
/// (the orchestrator would need > 10^7 cache entries).
inline constexpr std::size_t kMaxSweepPoints = 10'000'000;

/// One point of the cross product: (key, value) pairs in axis order.
using Point = std::vector<std::pair<std::string, std::string>>;

/// Materializes point `index` (0-based, row-major: the last axis varies
/// fastest, matching the serial sweep loop). index must be
/// < point_count(axes).
Point point_at(const std::vector<SweepAxis>& axes, std::size_t index);

/// The `[sweep] k=v k2=v2` banner body for a point (space-separated, in
/// axis order) — the exact string the serial sweep path prints.
std::string point_banner(const Point& point);

}  // namespace intox::sweep
