#include "sweep/orchestrator.hpp"

#include <fcntl.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/hash.hpp"
#include "obs/forensics.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "scenario/knob.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "sweep/cache.hpp"
#include "sweep/merge.hpp"
#include "sweep/point.hpp"
#include "sweep/task_file.hpp"

extern char** environ;

namespace intox::sweep {

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "intox: %s\n", message.c_str());
  return 2;
}

void sweep_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: intox sweep <scenario> [options]\n"
      "  --set key=value        override a knob (all points)\n"
      "  --sweep key=a:b:step   sweep a numeric knob (cross-product)\n"
      "  --config FILE          key=value lines, '#' comments\n"
      "  --threads N            per-point worker threads (default 1,\n"
      "                         which keeps point records byte-exact)\n"
      "  --workers N            concurrent worker processes (0 = auto)\n"
      "  --cache-dir DIR        point cache (default .intox-sweep-cache,\n"
      "                         or $INTOX_SWEEP_CACHE)\n"
      "  --out FILE             merged report path (default: stdout)\n"
      "  --metrics-out FILE     orchestrator BENCH_SWEEP.json report\n"
      "  --trace-out FILE       merged Chrome trace: orchestrator plus\n"
      "                         every worker, one lane per pid\n"
      "  --flightrec-out FILE   orchestrator flight-recorder dump path\n"
      "\n"
      "Completed points are cached by (binary, scenario, knob vector);\n"
      "rerunning the same command resumes an interrupted sweep and\n"
      "yields a byte-identical merged report.\n");
}

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

bool knob_is_swept(const std::vector<SweepAxis>& axes, std::string_view key) {
  for (const SweepAxis& axis : axes) {
    if (axis.key == key) return true;
  }
  return false;
}

/// Everything cmd_run-compatible that the orchestrator parsed.
struct SweepArgs {
  const scenario::Scenario* sc = nullptr;
  scenario::KnobSet knobs;               // base config: --config + --set
  std::vector<SweepAxis> axes;           // in flag order
  std::vector<std::string> child_flags;  // forwarded verbatim to workers
  std::size_t workers = 0;               // 0 = auto
  std::string cache_dir;
  std::string out_path;                  // empty = stdout
  std::string trace_out;                 // empty = no session trace
};

/// Applies a key=value config file (same semantics as `intox run`).
std::string apply_config(const std::string& path,
                         scenario::KnobSet* knobs) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return "--config: cannot open '" + path + "'";
  std::string line;
  char buf[4096];
  int lineno = 0;
  std::string error;
  while (error.empty() && std::fgets(buf, sizeof buf, f) != nullptr) {
    ++lineno;
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    const auto begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t");
    std::string body = line.substr(begin, end - begin + 1);
    if (body.empty() || body[0] == '#') continue;
    const auto eq = body.find('=');
    if (eq == std::string::npos || eq == 0) {
      error = path + ":" + std::to_string(lineno) +
              ": expected key=value, got '" + body + "'";
      break;
    }
    error = knobs->set(body.substr(0, eq), body.substr(eq + 1));
    if (!error.empty()) {
      error = path + ":" + std::to_string(lineno) + ": " + error;
    }
  }
  std::fclose(f);
  return error;
}

std::string parse_count(std::string_view flag, const char* s,
                        std::size_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (s[0] == '\0' || s[0] == '-' || end == s || *end != '\0' ||
      errno == ERANGE) {
    return std::string(flag) + " expects a non-negative integer, got '" +
           s + "'";
  }
  *out = static_cast<std::size_t>(v);
  return "";
}

/// Parses the sweep command line. Returns empty on success, else the
/// diagnostic (the caller prints and exits 2).
std::string parse_args(int argc, char** argv, SweepArgs* out) {
  if (argc < 3) return "sweep: missing scenario name";
  if (std::string_view(argv[2]) == "--help" ||
      std::string_view(argv[2]) == "-h") {
    sweep_usage(stdout);
    std::exit(0);
  }
  out->sc = scenario::Registry::instance().find(argv[2]);
  if (out->sc == nullptr) {
    return std::string("unknown scenario '") + argv[2] +
           "' (run 'intox list' to enumerate)";
  }
  if (out->sc->declare_knobs != nullptr) out->sc->declare_knobs(out->knobs);

  std::vector<std::string> set_keys;
  bool threads_given = false;
  for (int i = 3; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--set") {
      if (i + 1 >= argc) return "--set requires key=value";
      const std::string kv = argv[++i];
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        return "--set expects key=value, got '" + kv + "'";
      }
      std::string key = kv.substr(0, eq);
      if (knob_is_swept(out->axes, key)) {
        return "--set and --sweep both name knob '" + key +
               "' (a sweep decides that knob's value)";
      }
      std::string err = out->knobs.set(key, kv.substr(eq + 1));
      if (!err.empty()) return err;
      set_keys.push_back(std::move(key));
      out->child_flags.insert(out->child_flags.end(), {"--set", kv});
    } else if (arg == "--sweep") {
      if (i + 1 >= argc) return "--sweep requires key=a:b:step";
      const std::string spec = argv[++i];
      SweepAxis axis;
      std::string err = parse_sweep_axis(spec, out->knobs, &axis);
      if (!err.empty()) return err;
      if (std::find(set_keys.begin(), set_keys.end(), axis.key) !=
          set_keys.end()) {
        return "--set and --sweep both name knob '" + axis.key +
               "' (a sweep decides that knob's value)";
      }
      if (knob_is_swept(out->axes, axis.key)) {
        return "--sweep: knob '" + axis.key + "' swept twice";
      }
      out->axes.push_back(std::move(axis));
      out->child_flags.insert(out->child_flags.end(), {"--sweep", spec});
    } else if (arg == "--config") {
      if (i + 1 >= argc) return "--config requires a file path";
      const std::string path = argv[++i];
      std::string err = apply_config(path, &out->knobs);
      if (!err.empty()) return err;
      out->child_flags.insert(out->child_flags.end(), {"--config", path});
    } else if (arg == "--threads") {
      if (i + 1 >= argc) return "--threads requires a value";
      std::size_t threads = 0;
      std::string err = parse_count(arg, argv[++i], &threads);
      if (!err.empty()) return err;
      threads_given = true;
      out->child_flags.insert(out->child_flags.end(),
                              {"--threads", argv[i]});
    } else if (arg == "--workers") {
      if (i + 1 >= argc) return "--workers requires a value";
      std::string err = parse_count(arg, argv[++i], &out->workers);
      if (!err.empty()) return err;
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) return "--cache-dir requires a directory";
      out->cache_dir = argv[++i];
    } else if (arg == "--out") {
      if (i + 1 >= argc) return "--out requires a file path";
      out->out_path = argv[++i];
    } else if (arg == "--trace-out") {
      // Captured here rather than passed through: every process in the
      // sweep writing the same file would clobber it, so the
      // orchestrator and each worker get private paths that are merged
      // into this one at the end.
      if (i + 1 >= argc) return "--trace-out requires a value";
      out->trace_out = argv[++i];
    } else if (arg == "--metrics-out" || arg == "--flightrec-out") {
      // Orchestrator-side sinks, consumed by BenchSession from argv.
      if (i + 1 >= argc) return std::string(arg) + " requires a value";
      ++i;
    } else {
      return "unknown argument '" + std::string(arg) +
             "' (try 'intox sweep --help')";
    }
  }
  if (!threads_given) {
    // Default worker points to one thread: at --threads 1 the metrics
    // fold in point records is byte-exact, which the resume
    // byte-identity guarantee builds on.
    out->child_flags.insert(out->child_flags.end(), {"--threads", "1"});
  }
  if (out->cache_dir.empty()) {
    if (const char* env = std::getenv("INTOX_SWEEP_CACHE")) {
      if (env[0] != '\0') out->cache_dir = env;
    }
  }
  if (out->cache_dir.empty()) out->cache_dir = ".intox-sweep-cache";
  if (out->trace_out.empty()) {
    // INTOX_TRACE is the env spelling of --trace-out; routing it
    // through the same capture keeps workers (which inherit the
    // environment) from racing each other over one file.
    if (const char* env = std::getenv("INTOX_TRACE")) {
      if (env[0] != '\0') out->trace_out = env;
    }
  }
  return "";
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

/// Commits an intox.sweep_failure.v1 sidecar next to where the failed
/// point's record would live, pointing at the worker's stderr log and —
/// when the worker crashed hard enough to dump — its flight-recorder
/// dump. Best-effort: a failed point already exits the sweep non-zero.
void write_failure_sidecar(const std::string& path,
                           const std::string& scenario, std::size_t point,
                           const std::string& banner,
                           const std::string& log_path,
                           const std::string& flightrec_path) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("intox.sweep_failure.v1");
  w.key("scenario").value(scenario);
  w.key("point").value(static_cast<std::uint64_t>(point));
  w.key("banner").value(banner);
  w.key("log").value(log_path);
  w.key("flightrec");
  if (flightrec_path.empty()) {
    w.raw("null");
  } else {
    w.value(flightrec_path);
  }
  w.end_object();
  const std::string doc = w.str() + "\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
}

/// Folds the orchestrator's own trace buffer plus every existing
/// per-point worker trace into the requested --trace-out file, one
/// process lane per pid. Runs on every exit path that follows the
/// worker pool, including incomplete sweeps (partial traces are exactly
/// what a postmortem wants).
void finalize_session_trace(const SweepArgs& args, const PointCache& cache,
                            const std::vector<CacheKey>& keys) {
  if (args.trace_out.empty()) return;
  const std::string tmp = args.trace_out + ".orch.tmp.json";
  obs::trace_flush();
  // Disable before BenchSession teardown re-flushes over the merge.
  obs::set_trace_path("");
  std::vector<std::string> paths;
  std::vector<std::string> labels;
  if (file_exists(tmp)) {
    paths.push_back(tmp);
    labels.push_back("orchestrator");
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::string p = cache.trace_path(keys[i]);
    if (!file_exists(p)) continue;
    paths.push_back(p);
    labels.push_back("point " + std::to_string(i));
  }
  std::string error;
  if (paths.empty() ||
      !obs::merge_chrome_traces(paths, labels, args.trace_out, &error)) {
    std::fprintf(stderr, "intox sweep: trace merge failed: %s\n",
                 error.empty() ? "no readable trace inputs" : error.c_str());
  } else {
    std::fprintf(stderr, "intox sweep: merged trace -> %s\n",
                 args.trace_out.c_str());
  }
  std::remove(tmp.c_str());
}

/// Runs one worker child to completion, stderr redirected to
/// `log_path`. Returns true when the child could be spawned and waited
/// (the point outcome is judged by the cache afterwards, not here).
bool run_child(const std::vector<std::string>& args,
               const std::string& log_path, std::string* error) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_addopen(&actions, 2, log_path.c_str(),
                                   O_WRONLY | O_CREAT | O_TRUNC, 0666);
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, args[0].c_str(), &actions, nullptr, argv.data(),
                    environ);
  posix_spawn_file_actions_destroy(&actions);
  if (rc != 0) {
    *error = std::string("cannot spawn worker: ") + std::strerror(rc);
    return false;
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) {
      *error = std::string("waitpid failed: ") + std::strerror(errno);
      return false;
    }
  }
  return true;
}

}  // namespace

int sweep_main(int argc, char** argv) {
  SweepArgs args;
  {
    std::string err = parse_args(argc, argv, &args);
    if (!err.empty()) return fail(err);
  }
  const std::size_t total = point_count(args.axes);
  if (total == 0) {
    return fail("--sweep cross product exceeds " +
                std::to_string(kMaxSweepPoints) + " points");
  }
  const std::string exe = self_exe_path();
  if (exe.empty()) return fail("cannot resolve own binary path");

  // Content-address every point: base knobs + the point's own values.
  const std::uint64_t fp = binary_fingerprint();
  std::vector<CacheKey> keys;
  keys.reserve(total);
  std::string key_preimage;
  for (std::size_t i = 0; i < total; ++i) {
    scenario::KnobSet resolved = args.knobs;
    for (const auto& [key, value] : point_at(args.axes, i)) {
      std::string err = resolved.set(key, value);
      if (!err.empty()) return fail(err);  // range-rejected sweep point
    }
    std::vector<std::pair<std::string, std::string>> vec;
    vec.reserve(resolved.all().size());
    for (const scenario::Knob& k : resolved.all()) {
      vec.emplace_back(k.name, scenario::render_value(k));
    }
    keys.push_back(point_cache_key(fp, args.sc->name, vec));
    key_preimage += keys.back().hex();
    key_preimage += '\n';
  }

  PointCache cache{args.cache_dir};
  {
    std::string err = cache.ensure_dir();
    if (!err.empty()) return fail(err);
  }
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < total; ++i) {
    if (!cache.has(keys[i])) pending.push_back(i);
  }

  obs::BenchSession session{argc, argv, "SWEEP"};
  if (!args.trace_out.empty()) {
    // BenchSession pointed the trace layer at the user's file; swap in
    // a private temp so the final merge owns the real path.
    obs::set_trace_path(args.trace_out + ".orch.tmp.json");
  }
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& c_total = reg.counter("sweep.points_total");
  obs::Counter& c_cached = reg.counter("sweep.points_cached");
  obs::Counter& c_executed = reg.counter("sweep.points_executed");
  obs::Counter& c_failed = reg.counter("sweep.points_failed");
  c_total.add(total);
  c_cached.add(total - pending.size());

  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> failed{0};
  // Orchestration wall time is perf telemetry (stderr + BENCH_SWEEP
  // report); point *results* are content-addressed and deterministic.
  // intox-lint: allow(determinism)  -- perf telemetry, not results
  const auto start = std::chrono::steady_clock::now();

  std::size_t workers = 0;
  if (!pending.empty()) {
    // The task file is named by the sweep's own content (the point key
    // list), so a resumed run coordinates through the same file path.
    const std::uint64_t sweep_hash = net::fnv1a64(
        std::as_bytes(std::span<const char>{key_preimage.data(),
                                            key_preimage.size()}));
    char task_name[64];
    std::snprintf(task_name, sizeof task_name, "/task.%016llx",
                  static_cast<unsigned long long>(sweep_hash));
    TaskFile tasks;
    {
      std::string err = tasks.create(args.cache_dir + task_name, pending);
      if (!err.empty()) return fail(err);
    }

    workers = args.workers;
    if (workers == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      workers = hw > 0 ? hw : 1;
    }
    workers = std::min(workers, pending.size());

    std::mutex stderr_mu;
    auto worker = [&] {
      std::size_t idx = 0;
      while (tasks.claim(&idx)) {
        std::vector<std::string> child{exe, "run", args.sc->name};
        child.insert(child.end(), args.child_flags.begin(),
                     args.child_flags.end());
        child.insert(child.end(),
                     {"--point", std::to_string(idx), "--point-record",
                      cache.record_path(keys[idx]), "--flightrec-out",
                      cache.dump_path(keys[idx])});
        if (!args.trace_out.empty()) {
          child.insert(child.end(),
                       {"--trace-out", cache.trace_path(keys[idx])});
        }
        // A crash dump or failure sidecar from an earlier attempt must
        // not survive a clean rerun of the same point.
        std::remove(cache.dump_path(keys[idx]).c_str());
        std::remove(cache.failure_path(keys[idx]).c_str());
        std::string err;
        const bool spawned =
            run_child(child, cache.log_path(keys[idx]), &err);
        if (spawned && cache.has(keys[idx])) {
          executed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        failed.fetch_add(1, std::memory_order_relaxed);
        const std::string dump = cache.dump_path(keys[idx]);
        const bool have_dump = file_exists(dump);
        write_failure_sidecar(cache.failure_path(keys[idx]), args.sc->name,
                              idx, err, cache.log_path(keys[idx]),
                              have_dump ? dump : std::string{});
        std::lock_guard<std::mutex> lock(stderr_mu);
        std::fprintf(stderr, "intox sweep: point %zu failed%s%s (see %s)\n",
                     idx, err.empty() ? "" : ": ", err.c_str(),
                     cache.log_path(keys[idx]).c_str());
        if (have_dump) {
          std::fprintf(stderr,
                       "intox sweep: point %zu flight recorder dump: %s "
                       "(render with 'intox forensics')\n",
                       idx, dump.c_str());
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  c_executed.add(executed.load(std::memory_order_relaxed));
  c_failed.add(failed.load(std::memory_order_relaxed));

  const double wall = std::chrono::duration<double>(
      // intox-lint: allow(determinism)  -- orchestration perf telemetry
      std::chrono::steady_clock::now() - start).count();
  obs::SweepPerf perf;
  perf.name = "sweep.orchestrator";
  perf.trials = executed.load(std::memory_order_relaxed);
  perf.threads = workers;
  perf.wall_seconds = wall;
  obs::emit_sweep_perf(perf);

  std::size_t missing = 0;
  for (std::size_t i = 0; i < total; ++i) {
    if (!cache.has(keys[i])) ++missing;
  }
  std::fprintf(stderr,
               "intox sweep: %s: %zu points (%zu cached, %zu executed, "
               "%zu failed)\n",
               args.sc->name.c_str(), total, total - pending.size(),
               executed.load(std::memory_order_relaxed),
               failed.load(std::memory_order_relaxed));
  finalize_session_trace(args, cache, keys);
  if (missing > 0) {
    std::fprintf(stderr,
                 "intox sweep: %zu of %zu points incomplete; rerun the "
                 "same command to resume\n",
                 missing, total);
    return 1;
  }

  MergeInput in;
  in.scenario = args.sc->name;
  in.family = args.sc->family;
  in.axes = args.axes;
  in.record_paths.reserve(total);
  int exit_code = 0;
  for (std::size_t i = 0; i < total; ++i) {
    in.record_paths.push_back(cache.record_path(keys[i]));
  }
  std::string error;
  const std::string doc = render_merged_report(in, &error);
  if (doc.empty()) return fail(error);
  {
    std::string err = commit_report(args.out_path, doc);
    if (!err.empty()) return fail(err);
  }
  if (!args.out_path.empty()) {
    std::fprintf(stderr, "intox sweep: merged report -> %s\n",
                 args.out_path.c_str());
  }
  // The sweep's exit is the worst point exit, matching the serial
  // `intox run --sweep` contract.
  for (std::size_t i = 0; i < total; ++i) {
    std::FILE* f = std::fopen(in.record_paths[i].c_str(), "rb");
    if (f == nullptr) continue;
    std::string record;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) record.append(buf, n);
    std::fclose(f);
    exit_code = std::max(exit_code, record_exit_code(record));
  }
  return exit_code;
}

}  // namespace intox::sweep
