// `intox sweep`: multi-process, resumable sweep orchestration.
//
// Same grammar as `intox run` plus three flags of its own:
//
//   intox sweep <scenario> [--set k=v] [--config F] [--sweep k=a:b:step]
//               [--threads N] [--workers N] [--cache-dir DIR] [--out FILE]
//               [--metrics-out FILE]
//
// The orchestrator enumerates the sweep cross product (sweep/point.hpp),
// content-addresses every point (sweep/cache.hpp), writes the missing
// indices to a flock-shared task file (sweep/task_file.hpp), and runs N
// worker slots that each claim an index and fork/exec
// `intox run <scenario> ... --point i --point-record <cache path>`.
// When every record exists, the per-point records are merged — in point
// order — into one intox.sweep_report.v1 document (sweep/merge.hpp).
//
// Resume is free: a second invocation rescans the cache, re-runs only
// the missing points, and produces a byte-identical merged report.
// Cache-hit accounting goes to stderr and the obs registry
// (sweep.points_total / _cached / _executed / _failed), never into the
// report itself.
#pragma once

namespace intox::sweep {

/// Entry point for the `sweep` subcommand; argv[1] == "sweep". Returns
/// the process exit status: max over point exits when complete, 1 when
/// points are missing after the workers drain, 2 on a CLI error.
int sweep_main(int argc, char** argv);

}  // namespace intox::sweep
