// Shared task file: crash-safe work stealing for `intox sweep`.
//
// The orchestrator writes the list of pending point indices once, then
// every worker slot claims the next index through the same protocol:
// take an exclusive flock, read the cursor, hand out the entry it
// points at, advance the cursor, unlock. Fixed-width records make every
// offset computable from the file size alone, so a claim is two preads
// and one pwrite — no parsing, no rewrite of the tail.
//
// Layout (all lines fixed width):
//   offset  0: "intox.task.v1\n"              header, 14 bytes
//   offset 14: <cursor, 10 digits>"\n"        next unclaimed slot
//   offset 25: <index, 10 digits>"\n" ...     one line per pending point
//
// The flock serializes claims across *processes*; an internal mutex
// serializes the threads of one process sharing the TaskFile (flock is
// per open-file-description, so same-fd lockers would not exclude each
// other). A claim only advances the cursor — completion is recorded by
// the point cache, not here — so a worker killed mid-point costs one
// orphaned claim, and the next `intox sweep` run rewrites the file from
// a fresh cache scan and re-runs exactly the missing points.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace intox::sweep {

class TaskFile {
 public:
  TaskFile() = default;
  ~TaskFile();
  TaskFile(const TaskFile&) = delete;
  TaskFile& operator=(const TaskFile&) = delete;

  /// Creates (or truncates) the file at `path` and writes the pending
  /// list with the cursor at zero. Returns empty on success, else the
  /// diagnostic. The instance holds the file open for claim().
  [[nodiscard]] std::string create(const std::string& path,
                                   const std::vector<std::size_t>& pending);

  /// Opens an existing task file written by create() — the cross-process
  /// attach path. Returns empty on success, else the diagnostic.
  [[nodiscard]] std::string open(const std::string& path);

  /// Claims the next pending index. Returns false when the list is
  /// exhausted (or on I/O error, which it reports to stderr once).
  bool claim(std::size_t* index);

  /// Pending entries remaining (unclaimed), for progress reporting.
  [[nodiscard]] std::size_t remaining();

  void close();

 private:
  std::mutex mu_;  // intra-process; flock covers inter-process
  int fd_ = -1;
  std::size_t entries_ = 0;
};

}  // namespace intox::sweep
