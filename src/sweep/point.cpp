#include "sweep/point.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace intox::sweep {

namespace {

/// Number of values in [lo, hi] at the given stride. The count comes
/// from one division (plus a relative epsilon so 10/0.001 — which
/// floating-point division lands just *below* 10000 — still includes
/// its endpoint), never from accumulation.
std::size_t range_count(double lo, double hi, double step) {
  const double span = (hi - lo) / step;
  auto n = static_cast<std::size_t>(std::floor(span + 1e-9 * (span + 1.0)));
  // One guarded correction each way: the epsilon above may overshoot
  // into a value beyond hi, or fp division may still undershoot the
  // exact endpoint.
  const double tol = step * 1e-9;
  while (n > 0 && lo + static_cast<double>(n) * step > hi + tol) --n;
  if (lo + static_cast<double>(n + 1) * step <= hi + tol) ++n;
  return n + 1;
}

}  // namespace

std::string parse_sweep_axis(const std::string& text,
                             const scenario::KnobSet& knobs, SweepAxis* out) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    return "--sweep expects key=a:b:step, got '" + text + "'";
  }
  out->key = text.substr(0, eq);
  const scenario::Knob* knob = knobs.find(out->key);
  if (knob == nullptr) {
    return "--sweep: unknown knob '" + out->key + "'";
  }
  if (knob->kind != scenario::KnobKind::kU64 &&
      knob->kind != scenario::KnobKind::kDouble) {
    return "--sweep: knob '" + out->key + "' is " + to_string(knob->kind) +
           "; only u64/double knobs sweep";
  }
  const std::string range = text.substr(eq + 1);
  double parts[3];
  std::size_t pos = 0;
  for (int i = 0; i < 3; ++i) {
    const auto colon = range.find(':', pos);
    const bool last = i == 2;
    if (last != (colon == std::string::npos)) {
      return "--sweep expects key=a:b:step, got '" + text + "'";
    }
    const std::string piece =
        last ? range.substr(pos) : range.substr(pos, colon - pos);
    char* tail = nullptr;
    parts[i] = std::strtod(piece.c_str(), &tail);
    if (piece.empty() || tail == nullptr || *tail != '\0') {
      return "--sweep: '" + piece + "' in '" + text + "' is not a number";
    }
    pos = colon == std::string::npos ? range.size() : colon + 1;
  }
  const double lo = parts[0], hi = parts[1], step = parts[2];
  if (step <= 0.0) return "--sweep: step must be > 0 in '" + text + "'";
  if (lo > hi) return "--sweep: empty range in '" + text + "' (a > b)";

  const std::size_t count = range_count(lo, hi, step);
  out->values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    double v = lo + static_cast<double>(i) * step;
    // Snap the last value onto the declared endpoint when the product
    // lands within one epsilon of it, so `0:10:0.001` ends in exactly
    // "10" rather than 10 ± 2 ulp.
    if (i + 1 == count && std::fabs(v - hi) <= step * 1e-9) v = hi;
    char buf[64];
    if (knob->kind == scenario::KnobKind::kU64) {
      const double rounded = std::round(v);
      if (std::fabs(v - rounded) > 1e-6) {
        return "--sweep: integer knob '" + out->key +
               "' hit non-integer value in '" + text + "'";
      }
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(rounded));
    } else {
      std::snprintf(buf, sizeof buf, "%.12g", v);
    }
    out->values.emplace_back(buf);
  }
  return "";
}

std::size_t point_count(const std::vector<SweepAxis>& axes) {
  std::size_t n = 1;
  for (const SweepAxis& axis : axes) {
    if (axis.values.empty()) return 0;
    if (n > kMaxSweepPoints / axis.values.size()) return 0;
    n *= axis.values.size();
  }
  return n;
}

Point point_at(const std::vector<SweepAxis>& axes, std::size_t index) {
  Point point;
  point.reserve(axes.size());
  // Row-major decode: peel the fastest-varying (last) axis first, then
  // reverse into axis order.
  std::size_t rest = index;
  for (std::size_t a = axes.size(); a > 0; --a) {
    const SweepAxis& axis = axes[a - 1];
    point.emplace_back(axis.key, axis.values[rest % axis.values.size()]);
    rest /= axis.values.size();
  }
  std::reverse(point.begin(), point.end());
  return point;
}

std::string point_banner(const Point& point) {
  std::string banner;
  for (const auto& [key, value] : point) {
    if (!banner.empty()) banner += ' ';
    banner += key + "=" + value;
  }
  return banner;
}

}  // namespace intox::sweep
