#include "sweep/task_file.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace intox::sweep {

namespace {

constexpr char kHeader[] = "intox.task.v1\n";
constexpr std::size_t kHeaderLen = sizeof kHeader - 1;  // 14
constexpr std::size_t kLineLen = 11;                    // 10 digits + \n
constexpr std::size_t kCursorOff = kHeaderLen;
constexpr std::size_t kEntriesOff = kHeaderLen + kLineLen;

void format_line(std::size_t value, char out[kLineLen]) {
  std::snprintf(out, kLineLen + 1, "%010zu\n", value);
}

bool parse_line(const char in[kLineLen], std::size_t* value) {
  std::size_t v = 0;
  for (std::size_t i = 0; i < kLineLen - 1; ++i) {
    if (in[i] < '0' || in[i] > '9') return false;
    v = v * 10 + static_cast<std::size_t>(in[i] - '0');
  }
  if (in[kLineLen - 1] != '\n') return false;
  *value = v;
  return true;
}

/// flock with EINTR retry.
bool lock(int fd, int op) {
  while (::flock(fd, op) != 0) {
    if (errno != EINTR) return false;
  }
  return true;
}

bool write_all(int fd, const char* data, std::size_t n, off_t off) {
  while (n > 0) {
    const ssize_t w = ::pwrite(fd, data, n, off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
    off += w;
  }
  return true;
}

bool read_all(int fd, char* data, std::size_t n, off_t off) {
  while (n > 0) {
    const ssize_t r = ::pread(fd, data, n, off);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    data += r;
    n -= static_cast<std::size_t>(r);
    off += r;
  }
  return true;
}

}  // namespace

TaskFile::~TaskFile() { close(); }

void TaskFile::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  entries_ = 0;
}

std::string TaskFile::create(const std::string& path,
                             const std::vector<std::size_t>& pending) {
  close();
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0666);
  if (fd < 0) {
    return "cannot open task file '" + path + "': " + std::strerror(errno);
  }
  // The rewrite happens under the same lock claims take, so a racing
  // orchestrator on the identical sweep sees either the old complete
  // list or the new one, never a torn file.
  if (!lock(fd, LOCK_EX)) {
    ::close(fd);
    return "cannot lock task file '" + path + "': " + std::strerror(errno);
  }
  std::string doc{kHeader};
  char line[kLineLen + 1];
  format_line(0, line);
  doc.append(line, kLineLen);
  for (std::size_t idx : pending) {
    format_line(idx, line);
    doc.append(line, kLineLen);
  }
  bool ok = ::ftruncate(fd, 0) == 0 &&
            write_all(fd, doc.data(), doc.size(), 0);
  lock(fd, LOCK_UN);
  if (!ok) {
    ::close(fd);
    return "cannot write task file '" + path + "': " + std::strerror(errno);
  }
  fd_ = fd;
  entries_ = pending.size();
  return "";
}

std::string TaskFile::open(const std::string& path) {
  close();
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return "cannot open task file '" + path + "': " + std::strerror(errno);
  }
  char header[kHeaderLen];
  struct stat st{};
  if (!read_all(fd, header, kHeaderLen, 0) ||
      std::memcmp(header, kHeader, kHeaderLen) != 0 ||
      ::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < kEntriesOff ||
      (static_cast<std::size_t>(st.st_size) - kEntriesOff) % kLineLen != 0) {
    ::close(fd);
    return "'" + path + "' is not an intox.task.v1 file";
  }
  fd_ = fd;
  entries_ = (static_cast<std::size_t>(st.st_size) - kEntriesOff) / kLineLen;
  return "";
}

bool TaskFile::claim(std::size_t* index) {
  std::lock_guard<std::mutex> guard(mu_);
  if (fd_ < 0) return false;
  if (!lock(fd_, LOCK_EX)) return false;
  bool claimed = false;
  char line[kLineLen];
  std::size_t cursor = 0;
  if (read_all(fd_, line, kLineLen, kCursorOff) &&
      parse_line(line, &cursor) && cursor < entries_) {
    const off_t off =
        static_cast<off_t>(kEntriesOff + cursor * kLineLen);
    if (read_all(fd_, line, kLineLen, off) && parse_line(line, index)) {
      char next[kLineLen + 1];
      format_line(cursor + 1, next);
      if (write_all(fd_, next, kLineLen, kCursorOff)) {
        claimed = true;
      } else {
        std::fprintf(stderr,
                     "intox sweep: task-file cursor write failed: %s\n",
                     std::strerror(errno));
      }
    }
  }
  lock(fd_, LOCK_UN);
  return claimed;
}

std::size_t TaskFile::remaining() {
  std::lock_guard<std::mutex> guard(mu_);
  if (fd_ < 0) return 0;
  if (!lock(fd_, LOCK_SH)) return 0;
  char line[kLineLen];
  std::size_t cursor = entries_;
  if (read_all(fd_, line, kLineLen, kCursorOff)) parse_line(line, &cursor);
  lock(fd_, LOCK_UN);
  return cursor >= entries_ ? 0 : entries_ - cursor;
}

}  // namespace intox::sweep
