// Merged sweep report: one deterministic document per completed sweep.
//
// The orchestrator concatenates the per-point records — in point order,
// verbatim — under an intox.sweep_report.v1.1 envelope, and folds
// cross-point aggregates (count/min/max/mean per metric, across every
// point whose record carries a parseable metrics section) after the
// records array. Every field is a pure function of (binary, scenario,
// knob vector), so a sweep that was interrupted and resumed produces a
// report byte-identical to an uninterrupted run; cache-hit accounting
// deliberately lives in the obs registry / stderr summary instead,
// where it belongs.
//
// v1 -> v1.1: added the "aggregates" object (minor bump — consumers of
// v1 fields are unaffected apart from the schema string).
#pragma once

#include <string>
#include <vector>

#include "sweep/point.hpp"

namespace intox::sweep {

inline constexpr const char* kSweepReportSchema = "intox.sweep_report.v1.1";

struct MergeInput {
  std::string scenario;
  std::string family;
  std::vector<SweepAxis> axes;
  /// Committed record file paths, in point order (position == index).
  std::vector<std::string> record_paths;
};

/// Reads every record and renders the merged report document (with a
/// trailing newline). Returns empty and sets *error on failure.
std::string render_merged_report(const MergeInput& in, std::string* error);

/// Writes `doc` to `path` via write-temp-then-rename, or to stdout when
/// `path` is empty. Returns empty on success, else the diagnostic.
std::string commit_report(const std::string& path, const std::string& doc);

/// Extracts the top-level "exit" field from a point record rendered by
/// obs::write_point_record. This is a known-writer scan, not a JSON
/// parser: the writer emits exactly one `"exit":<int>` key at the top
/// level, before the free-form "stdout" string. Returns `fallback` if
/// the pattern is absent.
int record_exit_code(const std::string& record_json, int fallback = 1);

}  // namespace intox::sweep
