// P4-style stateful register array.
//
// Programmable switches expose state as fixed-size register arrays with
// read-modify-write access from the packet pipeline. Modeling state this
// way (instead of unbounded maps) keeps ports of data-plane algorithms
// honest about their memory footprint — the very constraint §3.2 points
// to when discussing state-exhaustion attacks.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace intox::dataplane {

template <typename T>
class RegisterArray {
 public:
  explicit RegisterArray(std::size_t size, T initial = T{})
      : initial_(initial), cells_(size, initial) {}

  [[nodiscard]] std::size_t size() const { return cells_.size(); }

  [[nodiscard]] const T& read(std::size_t index) const {
    check(index);
    return cells_[index];
  }

  void write(std::size_t index, T value) {
    check(index);
    cells_[index] = std::move(value);
  }

  /// Atomic-in-the-pipeline read-modify-write: `f` receives a mutable
  /// reference and its return value is forwarded to the caller.
  template <typename F>
  auto apply(std::size_t index, F&& f) -> decltype(f(std::declval<T&>())) {
    check(index);
    return f(cells_[index]);
  }

  /// Resets every cell to the initial value (control-plane reset).
  void reset() { cells_.assign(cells_.size(), initial_); }

  [[nodiscard]] const std::vector<T>& cells() const { return cells_; }

 private:
  void check(std::size_t index) const {
    if (index >= cells_.size()) {
      throw std::out_of_range("RegisterArray index " + std::to_string(index) +
                              " >= size " + std::to_string(cells_.size()));
    }
  }

  T initial_;
  std::vector<T> cells_;
};

}  // namespace intox::dataplane
