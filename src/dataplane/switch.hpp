// A routed switch node: LPM forwarding + a chain of programmable
// pipeline stages, plus the TTL/ICMP behaviour traceroute depends on.
#pragma once

#include <memory>
#include <vector>

#include "dataplane/pipeline.hpp"
#include "net/lpm.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace intox::dataplane {

class RoutedSwitch : public sim::Node {
 public:
  RoutedSwitch(std::string name, sim::Scheduler& sched,
               net::Ipv4Addr router_addr)
      : sim::Node(std::move(name)), sched_(sched), addr_(router_addr) {}

  /// Installs prefix -> egress port.
  void add_route(const net::Prefix& prefix, int port) {
    routes_.insert(prefix, static_cast<std::uint32_t>(port));
  }
  bool remove_route(const net::Prefix& prefix) { return routes_.erase(prefix); }

  /// Appends a pipeline stage; stages run in insertion order and may
  /// override the routing decision. The switch does not own processors.
  void add_processor(PacketProcessor* p) { pipeline_.push_back(p); }

  /// Address used as the source of ICMP time-exceeded replies — the
  /// identity this hop reveals to traceroute. NetHide-style obfuscation
  /// (and malicious topology faking) works by rewriting this.
  void set_reply_addr(net::Ipv4Addr a) { reply_addr_ = a; }
  [[nodiscard]] net::Ipv4Addr addr() const { return addr_; }
  [[nodiscard]] net::Ipv4Addr reply_addr() const {
    return reply_addr_.value_or(addr_);
  }

  void receive(net::Packet pkt, int ingress_port) override;

  struct Counters {
    std::uint64_t forwarded = 0;
    std::uint64_t dropped_no_route = 0;
    std::uint64_t dropped_pipeline = 0;
    std::uint64_t ttl_expired = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  void send_time_exceeded(const net::Packet& expired);

  sim::Scheduler& sched_;
  net::Ipv4Addr addr_;
  std::optional<net::Ipv4Addr> reply_addr_;
  net::LpmTable<std::uint32_t> routes_;
  std::vector<PacketProcessor*> pipeline_;
  Counters counters_;
};

/// A terminal node that hands every received packet to a callback —
/// used for hosts, measurement sinks, and protocol endpoints.
class CallbackNode : public sim::Node {
 public:
  using Handler = std::function<void(net::Packet, int)>;
  CallbackNode(std::string name, Handler handler)
      : sim::Node(std::move(name)), handler_(std::move(handler)) {}

  void receive(net::Packet pkt, int ingress_port) override {
    if (handler_) handler_(std::move(pkt), ingress_port);
  }
  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Exposes Node::send for driving traffic into the network.
  void inject(int port, net::Packet pkt) { send(port, std::move(pkt)); }

 private:
  Handler handler_;
};

}  // namespace intox::dataplane
