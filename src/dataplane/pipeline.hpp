// Packet-processing pipeline interface.
//
// A PacketProcessor is a stage a switch runs on every packet after the
// routing lookup; it can observe headers, update its register state, and
// override the forwarding decision — exactly the power a P4 program has.
// Blink's data-plane pipeline and SP-PIFO's scheduler both implement it.
#pragma once

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace intox::dataplane {

struct PipelineMetadata {
  int ingress_port = -1;
  /// Egress chosen by the routing lookup; a processor may override it.
  int egress_port = -1;
  bool drop = false;
};

class PacketProcessor {
 public:
  virtual ~PacketProcessor() = default;
  virtual void process(const net::Packet& pkt, PipelineMetadata& meta,
                       sim::Time now) = 0;
};

}  // namespace intox::dataplane
