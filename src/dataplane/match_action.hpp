// Exact-match match-action table with a default action.
#pragma once

#include <optional>
#include <unordered_map>

namespace intox::dataplane {

template <typename Key, typename Action, typename Hash = std::hash<Key>>
class MatchActionTable {
 public:
  explicit MatchActionTable(Action default_action = Action{})
      : default_(std::move(default_action)) {}

  void insert(const Key& key, Action action) {
    table_[key] = std::move(action);
  }
  bool erase(const Key& key) { return table_.erase(key) > 0; }
  void set_default(Action action) { default_ = std::move(action); }

  /// Returns the matching action, or the default.
  [[nodiscard]] const Action& lookup(const Key& key) const {
    auto it = table_.find(key);
    return it != table_.end() ? it->second : default_;
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return table_.count(key) > 0;
  }
  [[nodiscard]] std::size_t size() const { return table_.size(); }

 private:
  Action default_;
  std::unordered_map<Key, Action, Hash> table_;
};

}  // namespace intox::dataplane
