#include "dataplane/switch.hpp"

namespace intox::dataplane {

void RoutedSwitch::receive(net::Packet pkt, int ingress_port) {
  // TTL handling first, as in a real router.
  if (pkt.ttl <= 1) {
    ++counters_.ttl_expired;
    send_time_exceeded(pkt);
    return;
  }
  --pkt.ttl;

  PipelineMetadata meta;
  meta.ingress_port = ingress_port;
  if (auto match = routes_.lookup(pkt.dst)) {
    meta.egress_port = static_cast<int>(match->value);
  }

  for (PacketProcessor* stage : pipeline_) {
    stage->process(pkt, meta, sched_.now());
    if (meta.drop) {
      ++counters_.dropped_pipeline;
      return;
    }
  }

  if (meta.egress_port < 0) {
    ++counters_.dropped_no_route;
    return;
  }
  ++counters_.forwarded;
  send(meta.egress_port, std::move(pkt));
}

void RoutedSwitch::send_time_exceeded(const net::Packet& expired) {
  net::Packet reply;
  reply.src = reply_addr();
  reply.dst = expired.src;
  reply.ttl = 64;
  net::IcmpHeader icmp;
  icmp.type = net::IcmpType::kTimeExceeded;
  icmp.code = 0;  // TTL exceeded in transit
  if (const auto* u = expired.udp()) {
    icmp.id = u->dst_port;  // echo the probe's port so the prober can match
  } else if (const auto* ic = expired.icmp()) {
    icmp.id = ic->id;
    icmp.seq = ic->seq;
  }
  reply.l4 = icmp;
  reply.payload_bytes = 28;  // embedded original IP header + 8 bytes
  reply.flow_tag = expired.flow_tag;

  if (auto match = routes_.lookup(reply.dst)) {
    send(static_cast<int>(match->value), std::move(reply));
  }
}

}  // namespace intox::dataplane
