// Flow-trace import/export.
//
// The experiments in this repository synthesize CAIDA-like traces; users
// with real traces (anonymized flow logs, NetFlow exports, ...) can feed
// them through the same drivers by converting to this CSV schema:
//
//   id,src,dst,src_port,dst_port,proto,start_ns,duration_ns,
//   pkt_interval_ns,payload_bytes,malicious
//
// One header line, one flow per line. Parsing is strict: any malformed
// line fails the whole import (traces are measurement inputs — silent
// truncation would bias results).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trafficgen/flow.hpp"

namespace intox::trafficgen {

/// Serializes flows to CSV (with header).
std::string to_csv(const std::vector<FlowSpec>& flows);

/// Parses CSV produced by to_csv (or hand-written to the same schema).
/// Returns nullopt on any malformed content.
std::optional<std::vector<FlowSpec>> from_csv(std::string_view text);

/// File convenience wrappers.
bool write_csv_file(const std::string& path,
                    const std::vector<FlowSpec>& flows);
std::optional<std::vector<FlowSpec>> read_csv_file(const std::string& path);

}  // namespace intox::trafficgen
