// Packet-level flow drivers.
//
// A driver turns a FlowSpec into a scheduled packet stream feeding a sink
// (usually a host's egress link, or a Blink pipeline directly).
//
//  * LegitFlowDriver sends fresh in-order TCP segments for the flow's
//    lifetime, then a FIN. On `enter_failure_mode()` it starts
//    retransmitting its last segment with exponential RTO backoff — the
//    genuine signal Blink listens for.
//  * MaliciousFlowDriver implements the §3.1 attacker: it stays active
//    forever and emits back-to-back duplicate-sequence segments every
//    period, so any cell it occupies both never expires and always looks
//    like it is retransmitting. No TCP handshake is ever performed,
//    matching the paper's observation that none is needed.
#pragma once

#include <deque>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "trafficgen/flow.hpp"

namespace intox::trafficgen {

using PacketSink = std::function<void(net::Packet)>;

class LegitFlowDriver {
 public:
  LegitFlowDriver(sim::Scheduler& sched, sim::Rng rng, FlowSpec spec,
                  PacketSink sink);

  /// Schedules the flow's first packet at spec.start.
  void start();
  /// Switches to RTO-driven retransmission of the last segment (a real
  /// path failure as seen from the sender).
  void enter_failure_mode();
  /// Returns to normal transmission (path repaired).
  void exit_failure_mode();
  void stop();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const FlowSpec& spec() const { return spec_; }

 private:
  void send_next();
  void send_retransmission();
  net::Packet make_packet(std::uint32_t seq, bool fin = false) const;

  sim::Scheduler& sched_;
  sim::Rng rng_;
  FlowSpec spec_;
  PacketSink sink_;
  std::uint32_t next_seq_ = 1000;
  std::uint32_t last_sent_seq_ = 1000;
  sim::Duration rto_ = sim::seconds(1);
  bool failure_mode_ = false;
  bool finished_ = false;
  sim::Scheduler::EventId pending_;
};

class MaliciousFlowDriver {
 public:
  struct Options {
    /// Gap between consecutive segments. Every segment is a fresh chance
    /// to capture a freed selector cell, so the attacker spaces them
    /// evenly (back-to-back duplicates would halve the capture rate) and
    /// keeps the gap well below the victim's 2 s eviction timeout.
    sim::Duration send_period = sim::millis(250);
    /// Each sequence number is sent this many times (on consecutive
    /// sends) before advancing; >= 2 makes every pair look retransmitted.
    int repeats_per_seq = 2;
  };

  MaliciousFlowDriver(sim::Scheduler& sched, sim::Rng rng, FlowSpec spec,
                      PacketSink sink, Options options);
  MaliciousFlowDriver(sim::Scheduler& sched, sim::Rng rng, FlowSpec spec,
                      PacketSink sink)
      : MaliciousFlowDriver(sched, rng, std::move(spec), std::move(sink),
                            Options{}) {}

  void start();
  void stop();

  [[nodiscard]] const FlowSpec& spec() const { return spec_; }

 private:
  void send_one();

  sim::Scheduler& sched_;
  sim::Rng rng_;
  FlowSpec spec_;
  PacketSink sink_;
  Options options_;
  std::uint32_t seq_ = 5000;
  int sends_of_current_seq_ = 0;
  bool running_ = false;
  sim::Scheduler::EventId pending_;
};

/// Owns and runs a whole population of drivers — the shape every Blink
/// experiment uses.
class FlowPopulation {
 public:
  FlowPopulation(sim::Scheduler& sched, sim::Rng rng, PacketSink sink);

  void add_legit(const FlowSpec& spec);
  void add_malicious(const FlowSpec& spec,
                     MaliciousFlowDriver::Options options);
  void add_malicious(const FlowSpec& spec) {
    add_malicious(spec, MaliciousFlowDriver::Options{});
  }
  void start_all();
  /// Puts every currently-unfinished legitimate flow into failure mode.
  void fail_all_legit();
  void stop_all();

  [[nodiscard]] std::size_t legit_count() const { return legit_.size(); }
  [[nodiscard]] std::size_t malicious_count() const {
    return malicious_.size();
  }

 private:
  sim::Scheduler& sched_;
  sim::Rng rng_;
  PacketSink sink_;
  std::uint64_t next_fork_ = 0;
  // By-value driver pools: deque keeps element addresses stable (the
  // drivers' scheduled closures capture `this`) while storing them in
  // contiguous chunks instead of one heap allocation per flow, so the
  // start_all/fail_all sweeps walk dense memory.
  std::deque<LegitFlowDriver> legit_;
  std::deque<MaliciousFlowDriver> malicious_;
};

}  // namespace intox::trafficgen
