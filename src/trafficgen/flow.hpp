// Flow specifications produced by the trace synthesizer and consumed by
// the packet-level drivers.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace intox::trafficgen {

struct FlowSpec {
  std::uint64_t id = 0;            // ground-truth flow tag
  net::FiveTuple tuple;
  sim::Time start = 0;
  sim::Duration duration = 0;      // active lifetime; ignored if malicious
  sim::Duration pkt_interval = 0;  // mean packet inter-arrival
  std::uint32_t payload_bytes = 512;
  bool malicious = false;
};

}  // namespace intox::trafficgen
