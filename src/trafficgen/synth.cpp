#include "trafficgen/synth.hpp"

#include <cmath>

namespace intox::trafficgen {

net::FiveTuple random_tuple_to(const net::Prefix& prefix, sim::Rng& rng) {
  net::FiveTuple t;
  t.src = net::Ipv4Addr{static_cast<std::uint32_t>(
      rng.uniform_int(0x0b000000ULL, 0xdfffffffULL))};
  const int host_bits = 32 - prefix.length();
  const std::uint32_t host =
      host_bits == 0 ? 0
                     : static_cast<std::uint32_t>(rng.uniform_int(
                           0, (std::uint64_t{1} << host_bits) - 1));
  t.dst = net::Ipv4Addr{prefix.addr().value() | host};
  t.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
  t.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 1023));
  t.proto = net::IpProto::kTcp;
  return t;
}

sim::Duration draw_duration(const TraceConfig& config, sim::Rng& rng) {
  const double mean = static_cast<double>(config.mean_duration);
  switch (config.duration_model) {
    case DurationModel::kExponential:
      return static_cast<sim::Duration>(rng.exponential(mean));
    case DurationModel::kLogNormal: {
      // mean of lognormal = exp(mu + sigma^2/2)  =>  mu = ln(mean) - s^2/2.
      constexpr double kSigma = 1.2;
      const double mu = std::log(mean) - kSigma * kSigma / 2.0;
      return static_cast<sim::Duration>(rng.lognormal(mu, kSigma));
    }
    case DurationModel::kBoundedPareto: {
      constexpr double kAlpha = 1.3;
      const double lo = static_cast<double>(sim::millis(100));
      const double hi = 20.0 * mean;
      // Rejection-sample the bounded tail; scale x_m so the unbounded
      // mean alpha*x_m/(alpha-1) matches the target, then clamp.
      const double x_m = mean * (kAlpha - 1.0) / kAlpha;
      double d = rng.pareto(std::max(x_m, lo), kAlpha);
      if (d > hi) d = hi;
      return static_cast<sim::Duration>(d);
    }
  }
  return config.mean_duration;
}

std::vector<FlowSpec> synthesize_trace(const TraceConfig& config,
                                       sim::Rng& rng) {
  std::vector<FlowSpec> flows;
  std::uint64_t next_id = 1;

  auto make_flow = [&](sim::Time start, sim::Duration duration) {
    FlowSpec f;
    f.id = next_id++;
    f.tuple = random_tuple_to(config.victim_prefix, rng);
    f.start = start;
    f.duration = duration;
    f.pkt_interval = config.pkt_interval;
    f.payload_bytes = config.payload_bytes;
    flows.push_back(f);
  };

  // Initial steady-state population. For the exponential model the
  // residual lifetime of an in-progress flow is again exponential
  // (memoryless); for the heavy-tailed models this is an approximation,
  // which washes out after the first few mean durations.
  for (std::size_t i = 0; i < config.active_flows; ++i) {
    make_flow(0, draw_duration(config, rng));
  }

  // Poisson arrivals at the equilibrium rate  lambda = N / E[duration].
  const double mean_dur = static_cast<double>(config.mean_duration);
  const double lambda_per_ns =
      static_cast<double>(config.active_flows) / mean_dur;
  sim::Time t = 0;
  while (true) {
    t += static_cast<sim::Duration>(rng.exponential(1.0 / lambda_per_ns));
    if (t >= config.horizon) break;
    make_flow(t, draw_duration(config, rng));
  }
  return flows;
}

std::vector<FlowSpec> synthesize_malicious_flows(const TraceConfig& config,
                                                 std::size_t count,
                                                 sim::Time start,
                                                 sim::Rng& rng,
                                                 std::uint64_t first_id) {
  std::vector<FlowSpec> flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FlowSpec f;
    f.id = first_id + i;
    f.tuple = random_tuple_to(config.victim_prefix, rng);
    f.start = start;
    f.duration = 0;  // unused: malicious drivers run until stopped
    f.pkt_interval = config.pkt_interval;
    f.payload_bytes = config.payload_bytes;
    f.malicious = true;
    flows.push_back(f);
  }
  return flows;
}

}  // namespace intox::trafficgen
