#include "trafficgen/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "net/ipv4.hpp"

namespace intox::trafficgen {

namespace {

constexpr std::string_view kHeader =
    "id,src,dst,src_port,dst_port,proto,start_ns,duration_ns,"
    "pkt_interval_ns,payload_bytes,malicious";

template <typename T>
bool parse_number(std::string_view field, T& out) {
  const auto* first = field.data();
  const auto* last = field.data() + field.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

std::vector<std::string_view> split(std::string_view line, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const auto pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

}  // namespace

std::string to_csv(const std::vector<FlowSpec>& flows) {
  std::ostringstream out;
  out << kHeader << '\n';
  for (const FlowSpec& f : flows) {
    out << f.id << ',' << net::to_string(f.tuple.src) << ','
        << net::to_string(f.tuple.dst) << ',' << f.tuple.src_port << ','
        << f.tuple.dst_port << ',' << static_cast<int>(f.tuple.proto) << ','
        << f.start << ',' << f.duration << ',' << f.pkt_interval << ','
        << f.payload_bytes << ',' << (f.malicious ? 1 : 0) << '\n';
  }
  return out.str();
}

std::optional<std::vector<FlowSpec>> from_csv(std::string_view text) {
  std::vector<FlowSpec> flows;
  std::size_t line_start = 0;
  bool first_line = true;
  while (line_start < text.size()) {
    auto line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;

    if (first_line) {
      first_line = false;
      if (line != kHeader) return std::nullopt;
      continue;
    }

    const auto fields = split(line, ',');
    if (fields.size() != 11) return std::nullopt;

    FlowSpec f;
    const auto src = net::parse_ipv4(fields[1]);
    const auto dst = net::parse_ipv4(fields[2]);
    int proto = 0;
    int malicious = 0;
    if (!parse_number(fields[0], f.id) || !src || !dst ||
        !parse_number(fields[3], f.tuple.src_port) ||
        !parse_number(fields[4], f.tuple.dst_port) ||
        !parse_number(fields[5], proto) ||
        !parse_number(fields[6], f.start) ||
        !parse_number(fields[7], f.duration) ||
        !parse_number(fields[8], f.pkt_interval) ||
        !parse_number(fields[9], f.payload_bytes) ||
        !parse_number(fields[10], malicious)) {
      return std::nullopt;
    }
    if (proto != 1 && proto != 6 && proto != 17) return std::nullopt;
    if (malicious != 0 && malicious != 1) return std::nullopt;
    f.tuple.src = *src;
    f.tuple.dst = *dst;
    f.tuple.proto = static_cast<net::IpProto>(proto);
    f.malicious = malicious == 1;
    flows.push_back(f);
  }
  return flows;
}

bool write_csv_file(const std::string& path,
                    const std::vector<FlowSpec>& flows) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv(flows);
  return static_cast<bool>(out);
}

std::optional<std::vector<FlowSpec>> read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv(buffer.str());
}

}  // namespace intox::trafficgen
