#include "trafficgen/driver.hpp"

namespace intox::trafficgen {

LegitFlowDriver::LegitFlowDriver(sim::Scheduler& sched, sim::Rng rng,
                                 FlowSpec spec, PacketSink sink)
    : sched_(sched),
      rng_(rng),
      spec_(std::move(spec)),
      sink_(std::move(sink)) {}

net::Packet LegitFlowDriver::make_packet(std::uint32_t seq, bool fin) const {
  net::Packet p;
  p.src = spec_.tuple.src;
  p.dst = spec_.tuple.dst;
  net::TcpHeader tcp;
  tcp.src_port = spec_.tuple.src_port;
  tcp.dst_port = spec_.tuple.dst_port;
  tcp.seq = seq;
  tcp.ack_flag = true;
  tcp.fin = fin;
  p.l4 = tcp;
  p.payload_bytes = fin ? 0 : spec_.payload_bytes;
  p.flow_tag = spec_.id;
  return p;
}

void LegitFlowDriver::start() {
  pending_ = sched_.schedule_at(spec_.start, [this] { send_next(); });
}

void LegitFlowDriver::send_next() {
  if (finished_) return;
  const sim::Time end = spec_.start + spec_.duration;
  if (sched_.now() >= end) {
    sink_(make_packet(next_seq_, /*fin=*/true));
    finished_ = true;
    return;
  }
  last_sent_seq_ = next_seq_;
  sink_(make_packet(next_seq_));
  next_seq_ += spec_.payload_bytes;
  pending_ = sched_.schedule_after(
      rng_.exp_duration(spec_.pkt_interval), [this] { send_next(); });
}

void LegitFlowDriver::enter_failure_mode() {
  if (finished_ || failure_mode_) return;
  failure_mode_ = true;
  if (pending_.valid()) sched_.cancel(pending_);
  rto_ = sim::seconds(1);
  send_retransmission();
}

void LegitFlowDriver::send_retransmission() {
  if (finished_ || !failure_mode_) return;
  sink_(make_packet(last_sent_seq_));
  pending_ = sched_.schedule_after(rto_, [this] { send_retransmission(); });
  rto_ = std::min<sim::Duration>(rto_ * 2, sim::seconds(60));
}

void LegitFlowDriver::exit_failure_mode() {
  if (!failure_mode_) return;
  failure_mode_ = false;
  if (pending_.valid()) sched_.cancel(pending_);
  if (!finished_) {
    pending_ = sched_.schedule_after(
        rng_.exp_duration(spec_.pkt_interval), [this] { send_next(); });
  }
}

void LegitFlowDriver::stop() {
  finished_ = true;
  if (pending_.valid()) sched_.cancel(pending_);
}

MaliciousFlowDriver::MaliciousFlowDriver(sim::Scheduler& sched, sim::Rng rng,
                                         FlowSpec spec, PacketSink sink,
                                         Options options)
    : sched_(sched), rng_(rng), spec_(std::move(spec)),
      sink_(std::move(sink)), options_(options) {}

void MaliciousFlowDriver::start() {
  running_ = true;
  // Desynchronize across the botnet so the victim sees a steady
  // aggregate rather than pulses.
  const auto jitter = static_cast<sim::Duration>(
      rng_.uniform() * static_cast<double>(options_.send_period));
  pending_ = sched_.schedule_at(spec_.start + jitter, [this] { send_one(); });
}

void MaliciousFlowDriver::send_one() {
  if (!running_) return;
  net::Packet p;
  p.src = spec_.tuple.src;
  p.dst = spec_.tuple.dst;
  net::TcpHeader tcp;
  tcp.src_port = spec_.tuple.src_port;
  tcp.dst_port = spec_.tuple.dst_port;
  tcp.seq = seq_;
  tcp.ack_flag = true;
  p.l4 = tcp;
  p.payload_bytes = spec_.payload_bytes;
  p.flow_tag = spec_.id;
  sink_(std::move(p));

  if (++sends_of_current_seq_ >= options_.repeats_per_seq) {
    seq_ += spec_.payload_bytes;  // advance: the flow keeps looking alive
    sends_of_current_seq_ = 0;
  }
  pending_ =
      sched_.schedule_after(options_.send_period, [this] { send_one(); });
}

void MaliciousFlowDriver::stop() {
  running_ = false;
  if (pending_.valid()) sched_.cancel(pending_);
}

FlowPopulation::FlowPopulation(sim::Scheduler& sched, sim::Rng rng,
                               PacketSink sink)
    : sched_(sched), rng_(rng), sink_(std::move(sink)) {}

void FlowPopulation::add_legit(const FlowSpec& spec) {
  legit_.emplace_back(sched_, rng_.fork(next_fork_++), spec, sink_);
}

void FlowPopulation::add_malicious(const FlowSpec& spec,
                                   MaliciousFlowDriver::Options options) {
  malicious_.emplace_back(sched_, rng_.fork(next_fork_++), spec, sink_,
                          options);
}

void FlowPopulation::start_all() {
  for (auto& d : legit_) d.start();
  for (auto& d : malicious_) d.start();
}

void FlowPopulation::fail_all_legit() {
  for (auto& d : legit_) d.enter_failure_mode();
}

void FlowPopulation::stop_all() {
  for (auto& d : legit_) d.stop();
  for (auto& d : malicious_) d.stop();
}

}  // namespace intox::trafficgen
