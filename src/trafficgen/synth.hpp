// Synthetic "CAIDA-like" per-prefix trace generation.
//
// The paper's Fig. 2 experiment is parameterized by (t_R, q_m): the mean
// time a legitimate flow stays in Blink's sample and the malicious flow
// fraction. Blink samples a flow for its *remaining* lifetime, so with
// exponentially distributed flow durations (memoryless) the sampled
// residence time equals the duration mean — we therefore synthesize flows
// with exponential durations whose mean is the target t_R. Heavy-tailed
// (log-normal / bounded-Pareto) duration models are provided too, for the
// t_R-sweep experiment that mirrors the paper's top-20-prefix analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.hpp"
#include "sim/rng.hpp"
#include "trafficgen/flow.hpp"

namespace intox::trafficgen {

enum class DurationModel {
  kExponential,   // memoryless; sampled residency == mean duration
  kLogNormal,     // sigma fixed at 1.2, mu derived from the mean
  kBoundedPareto, // alpha 1.3, bounds [0.1 s, 20 * mean]
};

struct TraceConfig {
  net::Prefix victim_prefix{net::Ipv4Addr{10, 0, 0, 0}, 8};
  /// Target number of concurrently active legitimate flows.
  std::size_t active_flows = 2000;
  /// Mean flow duration (== mean sampled residency t_R for kExponential).
  sim::Duration mean_duration = sim::seconds(8.37);
  DurationModel duration_model = DurationModel::kExponential;
  /// Mean packet inter-arrival within a flow. Must be well under Blink's
  /// 2 s eviction timeout or flows churn out of the sample prematurely.
  sim::Duration pkt_interval = sim::millis(250);
  /// Trace horizon; flows are generated so the prefix stays at the target
  /// active count from t=0 to the horizon.
  sim::Duration horizon = sim::seconds(510);
  std::uint32_t payload_bytes = 512;
};

/// Generates legitimate flow arrivals for one destination prefix.
/// Includes an initial steady-state population active at t = 0.
std::vector<FlowSpec> synthesize_trace(const TraceConfig& config,
                                       sim::Rng& rng);

/// Generates `count` malicious flows, all starting at `start` and running
/// forever (the Blink attacker keeps them permanently active).
std::vector<FlowSpec> synthesize_malicious_flows(const TraceConfig& config,
                                                 std::size_t count,
                                                 sim::Time start,
                                                 sim::Rng& rng,
                                                 std::uint64_t first_id);

/// Draws one flow duration from the configured model.
sim::Duration draw_duration(const TraceConfig& config, sim::Rng& rng);

/// Draws a random 5-tuple with destination inside `prefix`.
net::FiveTuple random_tuple_to(const net::Prefix& prefix, sim::Rng& rng);

}  // namespace intox::trafficgen
