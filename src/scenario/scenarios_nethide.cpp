// NetHide scenario (§4.3): honest vs obfuscated vs maliciously faked
// topology as seen by traceroute and a mapping prober. Ported verbatim
// from the pre-registry bench binary.
#include <string>

#include "nethide/obfuscate.hpp"
#include "scenario/registry.hpp"

namespace intox::scenario {
namespace {

void declare_nethide(KnobSet& knobs) {
  knobs.declare_double("accuracy_floor", 0.5,
                       "NetHide stops deviating below this accuracy", 0.0,
                       1.0);
}

Table run_nethide(Ctx& ctx) {
  ctx.out.header("NETHIDE", "topology presented to traceroute: honest, "
                            "obfuscated, maliciously faked");

  const nethide::Topology topo = nethide::Topology::dumbbell();
  const nethide::PathTable honest =
      nethide::PathTable::all_shortest_paths(topo);

  nethide::ObfuscationConfig ocfg;
  ocfg.accuracy_floor = ctx.knobs.d("accuracy_floor");
  const auto defended = nethide::obfuscate(topo, ocfg);
  // The decoy shares node ids with reality, so it must match its size.
  const auto faked = nethide::present_fake_topology(
      topo, nethide::Topology::ring(topo.node_count()));

  ctx.out.row("%-14s %10s %10s %12s", "presentation", "accuracy",
              "utility", "max-density");
  ctx.out.row("%-14s %10.3f %10.3f %12zu", "honest", 1.0, 1.0,
              nethide::max_flow_density(honest));
  ctx.out.row("%-14s %10.3f %10.3f %12zu", "nethide", defended.accuracy,
              defended.utility, defended.presented_max_density);
  ctx.out.row("%-14s %10.3f %10.3f %12zu", "malicious", faked.accuracy,
              faked.utility, faked.presented_max_density);

  ctx.out.row();
  ctx.out.row("example traceroute 0 -> 7 under each presentation:");
  auto print_route = [&](const char* label,
                         const nethide::PathTable& table) {
    auto hops = nethide::traceroute(topo, table, 0, 7);
    std::string line;
    for (const auto& h : hops) line += " " + net::to_string(h.from);
    ctx.out.row("  %-10s%s", label, line.c_str());
  };
  print_route("honest", honest);
  print_route("nethide", defended.presented);
  print_route("malicious", faked.presented);

  // What a mapping prober concludes.
  const auto inferred_fake = nethide::infer_topology(topo, faked.presented);
  std::size_t phantom_links = 0;
  for (const nethide::Edge& e : inferred_fake.links()) {
    phantom_links += !topo.has_link(e.a, e.b);
  }

  ctx.out.row();
  ctx.out.row(
      "prober's map under the malicious decoy: %zu links, %zu phantom",
      inferred_fake.link_count(), phantom_links);

  ctx.out.claim(
      defended.presented_max_density < defended.physical_max_density,
      "NetHide hides the bottleneck (max apparent flow density "
      "drops) — the defensive use");
  ctx.out.claim(defended.accuracy > 0.8 && defended.utility > 0.5,
                "NetHide keeps traceroute mostly truthful (minimal "
                "lying)");
  ctx.out.claim(faked.accuracy < defended.accuracy - 0.1,
                "the malicious operator's decoy is far less faithful — "
                "same mechanism, opposite intent");
  ctx.out.claim(phantom_links > 0,
                "the prober's inferred map contains links that do not "
                "exist");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kNethide,
                        {"nethide.topology", "NETHIDE",
                         "honest vs obfuscated vs maliciously faked "
                         "topology",
                         declare_nethide, run_nethide});

}  // namespace

int scenario_anchor_nethide() { return 0; }

}  // namespace intox::scenario
