#include "scenario/scenario.hpp"

#include "obs/report.hpp"

namespace intox::scenario {

void Ctx::perf(const char* sweep) const { perf(sweep, runner.last_report()); }

void Ctx::perf(const char* sweep, const sim::RunReport& report) const {
  obs::SweepPerf record;
  record.name = sweep;
  record.trials = report.trials;
  record.threads = report.threads;
  record.wall_seconds = report.wall_seconds;
  record.shard_seconds = report.shard_seconds;
  obs::emit_sweep_perf(record);
}

}  // namespace intox::scenario
