// PCC scenarios (§4.2): single-flow rate oscillation under the
// utility-equalizing MitM, and the fleet-scale aggregate-fluctuation
// sweep. Ported verbatim from the pre-registry bench binaries.
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "pcc/experiment.hpp"
#include "scenario/registry.hpp"

namespace intox::scenario {
namespace {

// ---------------------------------------------------------- oscillation

void declare_oscillation(KnobSet& knobs) {
  const pcc::PccExperimentConfig def = pcc::default_oscillation_config();
  knobs.declare_double("duration_s", sim::to_seconds(def.duration),
                       "per-experiment simulated duration", 1.0, 10000.0);
  knobs.declare_u64("seed", def.seed, "shared experiment seed");
}

Table run_oscillation(Ctx& ctx) {
  auto base = [&ctx] {
    pcc::PccExperimentConfig cfg = pcc::default_oscillation_config();
    cfg.duration = sim::seconds(ctx.knobs.d("duration_s"));
    cfg.seed = ctx.knobs.u("seed");
    return cfg;
  };
  auto print = [&ctx](const char* label,
                      const pcc::PccExperimentResult& r) {
    ctx.out.row("%-22s %9.2f %8.2f%% %8.2f%% %8llu %8llu %9.2f%%", label,
                r.mean_rate_bps / 1e6, r.rate_cv * 100.0,
                r.osc_amplitude * 100.0,
                static_cast<unsigned long long>(r.inconclusive),
                static_cast<unsigned long long>(r.decisions),
                r.attacker_observed
                    ? 100.0 * static_cast<double>(r.attacker_dropped) /
                          static_cast<double>(r.attacker_observed)
                    : 0.0);
  };

  ctx.out.header("PCC-OSC",
                 "PCC rate oscillation under a utility-equalizing MitM");
  ctx.out.row("%-22s %9s %9s %9s %8s %8s %10s", "scenario", "rate[Mb]",
              "rate-cv", "amp", "inconcl", "decide", "drop-share");

  std::vector<std::pair<const char*, pcc::PccExperimentConfig>> scenarios;
  scenarios.emplace_back("pcc clean", base());
  {
    auto atk = base();
    atk.attack = true;
    scenarios.emplace_back("pcc + mitm(omnisc.)", atk);
    atk.mitm.mode = pcc::PccMitmConfig::Mode::kShaper;
    scenarios.emplace_back("pcc + mitm(shaper)", atk);
  }
  {
    auto reno = base();
    reno.kind = pcc::SenderKind::kReno;
    scenarios.emplace_back("reno clean", reno);
    reno.attack = true;
    scenarios.emplace_back("reno + mitm(omnisc.)", reno);
  }

  std::vector<pcc::PccExperimentResult> results;
  {
    obs::TraceSpan phase{"PCC-OSC.scenarios", "bench"};
    results = ctx.runner.map(scenarios.size(), [&](std::size_t i) {
      return pcc::run_pcc_experiment(scenarios[i].second);
    });
  }
  ctx.perf("PCC-OSC");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    print(scenarios[i].first, results[i]);
  }

  const pcc::PccExperimentResult& clean = results[0];
  const pcc::PccExperimentResult& omniscient = results[1];

  ctx.out.claim(clean.rate_cv < 0.08,
                "clean PCC converges (rate CV < 8% in steady state)");
  ctx.out.claim(omniscient.rate_cv > 1.3 * clean.rate_cv &&
                    omniscient.osc_amplitude >= 0.05,
                "MitM-attacked PCC fluctuates at the +-5% scale without "
                "converging (paper's headline)");
  ctx.out.claim(omniscient.mean_rate_bps < 0.85 * clean.mean_rate_bps,
                "attacked flow is pinned below its fair rate");
  ctx.out.claim(
      static_cast<double>(omniscient.attacker_dropped) <
          0.05 * static_cast<double>(omniscient.attacker_observed),
      "attacker tampers with <5% of packets");
  ctx.out.claim(omniscient.inconclusive > clean.decisions / 2,
                "experiments are driven inconclusive (epsilon escalates)");

  // Ablation: epsilon_max — the oscillation amplitude the attacker gets
  // for free is exactly PCC's own experiment range.
  ctx.out.row();
  ctx.out.row("ablation: epsilon_max under attack");
  const std::vector<double> emaxes{0.02, 0.05, 0.10};
  std::vector<pcc::PccExperimentResult> ablations;
  {
    obs::TraceSpan phase{"PCC-OSC.ablation", "bench"};
    ablations = ctx.runner.map(emaxes.size(), [&](std::size_t i) {
      auto cfg = base();
      cfg.attack = true;
      cfg.pcc.epsilon_max = emaxes[i];
      return pcc::run_pcc_experiment(cfg);
    });
  }
  ctx.perf("PCC-OSC-ABLATION");
  for (std::size_t i = 0; i < emaxes.size(); ++i) {
    ctx.out.row("  eps_max %.2f -> rate-cv %5.2f%%, amp %5.2f%%", emaxes[i],
                ablations[i].rate_cv * 100.0,
                ablations[i].osc_amplitude * 100.0);
  }
  ctx.out.note("epsilon_max bounds the attacker-induced oscillation — the "
               "paper's own countermeasure suggestion (cf. "
               "bench_defenses).");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kOscillation,
                        {"pcc.oscillation", "PCC-OSC",
                         "PCC rate oscillation under a utility-equalizing "
                         "MitM",
                         declare_oscillation, run_oscillation});

// ---------------------------------------------------------------- fleet

void declare_fleet(KnobSet& knobs) {
  const pcc::PccExperimentConfig def = pcc::default_fleet_config(1, false);
  knobs.declare_double("duration_s", sim::to_seconds(def.duration),
                       "per-experiment simulated duration", 1.0, 10000.0);
  knobs.declare_u64("seed", def.seed, "shared experiment seed");
}

Table run_fleet(Ctx& ctx) {
  auto fleet_config = [&ctx](std::size_t flows, bool attack) {
    pcc::PccExperimentConfig cfg = pcc::default_fleet_config(flows, attack);
    cfg.duration = sim::seconds(ctx.knobs.d("duration_s"));
    cfg.seed = ctx.knobs.u("seed");
    return cfg;
  };

  ctx.out.header("PCC-FLEET",
                 "aggregate traffic fluctuation at a victim destination");

  const std::vector<std::size_t> fleet_sizes{1, 4, 16, 48};
  // Trials 2k / 2k+1 are fleet k clean / attacked.
  std::vector<pcc::PccExperimentResult> results;
  {
    obs::TraceSpan phase{"PCC-FLEET.sweep", "bench"};
    results = ctx.runner.map(2 * fleet_sizes.size(), [&](std::size_t i) {
      return pcc::run_pcc_experiment(
          fleet_config(fleet_sizes[i / 2], i % 2 == 1));
    });
  }
  ctx.perf("PCC-FLEET");

  ctx.out.row("%6s | %14s %14s | %14s %14s", "flows", "clean agg[Mb]",
              "clean agg-cv", "attacked[Mb]", "attacked-cv");
  bool cv_grows = true;
  double last_clean_cv = 0.0, last_attacked_cv = 0.0;
  for (std::size_t k = 0; k < fleet_sizes.size(); ++k) {
    const std::size_t flows = fleet_sizes[k];
    const pcc::PccExperimentResult& clean = results[2 * k];
    const pcc::PccExperimentResult& attacked = results[2 * k + 1];
    const sim::Duration duration = fleet_config(flows, false).duration;

    sim::RunningStats clean_late, attacked_late;
    for (const auto& [t, v] : clean.delivered_bps.points()) {
      if (t >= duration * 2 / 3) clean_late.add(v);
    }
    for (const auto& [t, v] : attacked.delivered_bps.points()) {
      if (t >= duration * 2 / 3) attacked_late.add(v);
    }
    ctx.out.row("%6zu | %14.1f %13.2f%% | %14.1f %13.2f%%", flows,
                clean_late.mean() / 1e6, clean.delivered_cv * 100.0,
                attacked_late.mean() / 1e6, attacked.delivered_cv * 100.0);
    if (flows >= 16) cv_grows &= attacked.delivered_cv > clean.delivered_cv;
    last_clean_cv = clean.delivered_cv;
    last_attacked_cv = attacked.delivered_cv;
  }

  ctx.out.claim(cv_grows,
                "at fleet scale the attacked aggregate fluctuates more "
                "than the clean one");
  ctx.out.claim(last_attacked_cv > 1.2 * last_clean_cv,
                "destination-side arrival variability grows by >20% under "
                "attack at 48 flows");
  ctx.out.note("statistical multiplexing normally smooths aggregates; the "
               "synchronized per-flow oscillations re-introduce variance "
               "at the destination.");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kFleet,
                        {"pcc.fleet", "PCC-FLEET",
                         "aggregate traffic fluctuation at a victim "
                         "destination",
                         declare_fleet, run_fleet});

}  // namespace

int scenario_anchor_pcc() { return 0; }

}  // namespace intox::scenario
