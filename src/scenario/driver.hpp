// The `intox` driver: one strict command line over every registered
// scenario.
//
//   intox list                      enumerate scenarios
//   intox knobs <scenario>          show a scenario's declared knobs
//   intox run <scenario> [opts]     run one scenario
//   intox validate [scenario...]    throw-mode invariant sweep, quiet
//   intox help                      usage
//
// driver_main returns the process exit code instead of exiting so the
// legacy bench shims (and tests) can call it in-process; the only path
// that terminates directly is obs::parse_threads_arg's strict --threads
// handling, which exits 2 exactly as the pre-registry benches did.
#pragma once

namespace intox::scenario {

int driver_main(int argc, char** argv);

}  // namespace intox::scenario
