// Blink scenarios (§3.1): the Fig. 2 reproduction, the t_R sensitivity
// sweep, and the end-to-end hijack over the packet-level switch
// pipeline. Ported verbatim from the pre-registry bench binaries; the
// console output is byte-identical at default knobs.
#include <chrono>
#include <cmath>
#include <vector>

#include "blink/attacker.hpp"
#include "blink/cell_process.hpp"
#include "dataplane/switch.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "scenario/registry.hpp"
#include "sim/network.hpp"

namespace intox::scenario {
namespace {

// ---------------------------------------------------------------- fig2

void declare_fig2(KnobSet& knobs) {
  knobs.declare_u64("runs", 12,
                    "packet-level simulation runs (the figure used 50)", 1,
                    100000);
  knobs.declare_u64("bots", 105,
                    "malicious flows against the 2000-flow trace "
                    "(q_m = bots/2000)",
                    1, 1999);
}

Table run_fig2(Ctx& ctx) {
  const std::size_t runs = ctx.knobs.u("runs");
  const std::size_t bots = ctx.knobs.u("bots");
  ctx.out.header("FIG2", "malicious flows in Blink's sample over time");
  const double tr = 8.37;
  const double qm = static_cast<double>(bots) / 2000.0;
  const std::size_t n = 64, majority = 32;

  // Packet-level simulations (2000 legit + `bots` malicious flows each),
  // sharded across the runner. Each trial is seeded by its index alone
  // and the aggregates are folded in trial order below, so the output
  // does not depend on scheduling.
  std::vector<blink::Fig2Result> trials;
  {
    obs::TraceSpan phase{"FIG2.simulate", "bench"};
    trials = ctx.runner.map(runs, [bots](std::size_t r) {
      blink::Fig2Config cfg = blink::default_fig2_config(r);
      cfg.malicious_flows = bots;
      return blink::run_fig2_experiment(cfg);
    });
  }
  ctx.perf("FIG2");

  sim::SeriesStats sampled{0, sim::seconds(500), sim::seconds(25)};
  sim::RunningStats majority_times, measured_tr;
  std::size_t reroutes = 0;
  for (const blink::Fig2Result& result : trials) {
    sampled.add(result.malicious_sampled);
    if (result.time_to_majority_seconds >= 0) {
      majority_times.add(result.time_to_majority_seconds);
    }
    measured_tr.add(result.measured_tr_seconds);
    reroutes += !result.reroutes.empty();
  }

  ctx.out.row("%6s  %8s  %6s  %6s  | packet-level sim (mean of %zu runs, "
              "min, max)",
              "t[s]", "calc-avg", "p5", "p95", runs);
  for (std::size_t i = 0; i < sampled.points(); ++i) {
    const int t = static_cast<int>(i) * 25;
    const double p = blink::cell_malicious_probability(qm, t, tr);
    const double mean = static_cast<double>(n) * p;
    const auto p5 = blink::binomial_quantile(n, p, 0.05);
    const auto p95 = blink::binomial_quantile(n, p, 0.95);
    const sim::RunningStats& at_t = sampled.at(i);
    ctx.out.row("%6d  %8.1f  %6zu  %6zu  | %8.1f  %6.0f  %6.0f", t, mean, p5,
                p95, at_t.mean(), at_t.min(), at_t.max());
  }

  const double t_mean32 = blink::time_to_expected_count(n, qm, tr, 32.0);
  ctx.out.row();
  ctx.out.row("closed-form mean crosses %zu at           %.0f s", majority,
              t_mean32);
  ctx.out.row(
      "packet-level majority reached at (mean)  %.0f s  [paper: 172 s]",
      majority_times.mean());
  ctx.out.row(
      "measured sampled-residency t_R           %.2f s  [target 8.37 s]",
      measured_tr.mean());
  ctx.out.row("runs reaching majority                   %zu/%zu",
              majority_times.count(), runs);
  ctx.out.row("runs triggering a bogus reroute          %zu/%zu", reroutes,
              runs);

  ctx.out.claim(majority_times.count() == runs,
                "attack reaches a malicious majority in every run");
  ctx.out.claim(majority_times.mean() > 100 && majority_times.mean() < 260,
                "time-to-majority lands in the paper's 100-260 s regime "
                "(~172 s)");
  ctx.out.claim(std::abs(measured_tr.mean() - 8.37) < 1.5,
                "synthetic trace reproduces the target t_R = 8.37 s");
  ctx.out.claim(reroutes == runs, "every run ends with Blink hijacked");
  ctx.out.note("closed form slightly leads the packet-level runs: only ~52 "
               "of 64 cells are reachable by 105 hashed flows (capture "
               "ceiling).");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kFig2,
                        {"blink.fig2", "FIG2",
                         "Fig. 2: malicious flows in Blink's sample over "
                         "time",
                         declare_fig2, run_fig2});

// ------------------------------------------------------------ tr-sweep

void declare_tr_sweep(KnobSet& knobs) {
  knobs.declare_u64("cells", 64, "Blink sample size n (majority = n/2)", 2,
                    4096);
  knobs.declare_double("budget_s", 510.0,
                       "attacker time budget t_B = sample reset period",
                       1.0, 100000.0);
  knobs.declare_u64("mc_runs", 400, "Monte-Carlo trials per t_R column", 1,
                    1000000);
  knobs.declare_u64("mc_seed", 7, "Monte-Carlo base seed");
}

Table run_tr_sweep(Ctx& ctx) {
  ctx.out.header("BLINK-TR",
                 "attack feasibility vs sampled-flow residency t_R");
  const std::size_t n = ctx.knobs.u("cells");
  const std::size_t majority = n / 2;
  const double budget = ctx.knobs.d("budget_s");
  const std::size_t mc_runs = ctx.knobs.u("mc_runs");

  // Part 1: minimum q_m for 95%-confident majority within one reset.
  ctx.out.row("%8s  %12s  %16s", "t_R[s]", "min q_m",
              "botnet vs 2000 flows");
  double prev_qm = 0.0;
  bool monotone = true;
  for (double tr : {2.0, 5.0, 8.37, 10.0, 15.0, 20.0, 30.0, 40.0}) {
    const double qm = blink::min_qm_for_success(n, budget, tr, majority,
                                                0.95);
    const auto bots = static_cast<std::size_t>(
        std::ceil(2000.0 * qm / (1.0 - qm)));
    ctx.out.row("%8.2f  %11.4f%%  %13zu hosts", tr, qm * 100.0, bots);
    monotone &= qm > prev_qm;
    prev_qm = qm;
  }
  ctx.out.claim(monotone, "longer t_R requires strictly higher q_m");

  const double qm_median =
      blink::min_qm_for_success(n, budget, 5.0, majority, 0.95);
  const double qm_mean =
      blink::min_qm_for_success(n, budget, 10.0, majority, 0.95);
  ctx.out.claim(qm_median < 0.05 && qm_mean < 0.08,
                "at the CAIDA-like t_R of 5-10 s, <8% malicious traffic "
                "suffices (paper: 5.25% at 8.37 s)");

  // Part 2: cross-check closed form vs Monte-Carlo at q_m = 5.25%.
  ctx.out.row();
  ctx.out.row("%8s  %14s  %14s", "t_R[s]", "theory P[win]", "monte-carlo");
  bool agree = true;
  sim::Rng rng{ctx.knobs.u("mc_seed")};
  sim::RunReport mc_perf;
  for (double tr : {5.0, 8.37, 15.0, 30.0}) {
    const double theory =
        blink::attack_success_probability(n, 0.0525, budget, tr, majority);
    blink::CellProcessConfig cfg;
    cfg.tr_seconds = tr;
    sim::Rng sub = rng.fork(static_cast<std::uint64_t>(tr * 100));
    const double mc = blink::empirical_success_rate(cfg, majority, mc_runs,
                                                    sub, ctx.runner);
    mc_perf.trials += ctx.runner.last_report().trials;
    mc_perf.threads = ctx.runner.last_report().threads;
    mc_perf.wall_seconds += ctx.runner.last_report().wall_seconds;
    ctx.out.row("%8.2f  %13.3f  %13.3f", tr, theory, mc);
    agree &= std::abs(theory - mc) < 0.08;
  }
  ctx.perf("BLINK-TR-MC", mc_perf);
  ctx.out.claim(agree, "Monte-Carlo matches the closed form within 0.08");

  // Part 3: ablations of Blink's own parameters (DESIGN.md §6).
  ctx.out.row();
  ctx.out.row(
      "ablation: cells n (majority = n/2), t_R = 8.37 s, qm = 5.25%%");
  for (std::size_t cells : {16u, 32u, 64u, 128u, 256u}) {
    const double p = blink::attack_success_probability(cells, 0.0525, budget,
                                                       8.37, cells / 2);
    ctx.out.row("  n = %4zu   P[attack succeeds] = %.4f", cells, p);
  }
  ctx.out.note("larger samples narrow the binomial spread around the same "
               "mean: cell count barely defends");

  ctx.out.row("ablation: reset period t_B (attacker's time budget)");
  bool budget_helps = true;
  double prev = 1.0;
  for (double tb : {510.0, 255.0, 127.0, 60.0, 30.0}) {
    const double p =
        blink::attack_success_probability(n, 0.0525, tb, 8.37, majority);
    ctx.out.row("  t_B = %4.0f s   P[success] = %.4f", tb, p);
    budget_helps &= p <= prev + 1e-12;
    prev = p;
  }
  ctx.out.claim(budget_helps,
                "shorter reset periods shrink the attack window (defense "
                "lever, at the cost of re-learning the sample)");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kTrSweep,
                        {"blink.tr-sweep", "BLINK-TR",
                         "attack feasibility vs sampled-flow residency t_R",
                         declare_tr_sweep, run_tr_sweep});

// ----------------------------------------------------------------- e2e

void declare_e2e(KnobSet& knobs) {
  knobs.declare_u64("bots", 105, "malicious flows injected at the ingress",
                    0, 100000);
  knobs.declare_double("horizon_s", 300.0, "simulated horizon in seconds",
                       1.0, 100000.0);
  knobs.declare_u64("seed", 2024, "top-level experiment seed");
}

Table run_e2e(Ctx& ctx) {
  ctx.out.header("BLINK-E2E", "traffic hijack via fake retransmissions");

  sim::Scheduler sched;
  sim::Network net{sched};
  sim::Rng rng{ctx.knobs.u("seed")};

  dataplane::CallbackNode source{"ingress", nullptr};
  dataplane::RoutedSwitch sw{"blink-switch", sched,
                             net::Ipv4Addr{192, 0, 2, 1}};
  dataplane::CallbackNode primary{"primary-nexthop", nullptr};
  dataplane::CallbackNode attacker_hop{"attacker-nexthop", nullptr};

  sim::LinkConfig fast;
  fast.rate_bps = 10e9;
  fast.prop_delay = sim::millis(1);
  net.connect(source, 0, sw, 0, fast);
  net.connect(sw, 1, primary, 0, fast);
  net.connect(sw, 2, attacker_hop, 0, fast);

  trafficgen::TraceConfig trace;  // 2000 flows, t_R = 8.37 s
  trace.horizon = sim::seconds(ctx.knobs.d("horizon_s"));
  sw.add_route(net::Prefix{net::Ipv4Addr{10, 0, 0, 0}, 8}, 1);

  blink::BlinkNode node{blink::BlinkConfig{}};
  node.monitor_prefix(trace.victim_prefix, /*primary=*/1, /*backup=*/2);
  sw.add_processor(&node);

  std::uint64_t legit_to_primary = 0, legit_to_attacker = 0;
  primary.set_handler([&](net::Packet p, int) {
    legit_to_primary += !blink::is_malicious_tag(p.flow_tag);
  });
  attacker_hop.set_handler([&](net::Packet p, int) {
    legit_to_attacker += !blink::is_malicious_tag(p.flow_tag);
  });

  std::uint64_t injected = 0;
  trafficgen::FlowPopulation pop{
      sched, rng.fork("drivers"), [&](net::Packet p) {
        ++injected;
        source.inject(0, std::move(p));
      }};
  {
    sim::Rng trng = rng.fork("trace");
    for (const auto& f : trafficgen::synthesize_trace(trace, trng)) {
      pop.add_legit(f);
    }
  }
  {
    sim::Rng brng = rng.fork("bots");
    trafficgen::MaliciousFlowDriver::Options opts;
    opts.send_period = trace.pkt_interval;
    for (const auto& f : trafficgen::synthesize_malicious_flows(
             trace, ctx.knobs.u("bots"), 0, brng,
             blink::kMaliciousTagBase)) {
      pop.add_malicious(f, opts);
    }
  }

  // Time the simulation span and record injected-packets/sec as a perf
  // sweep. Goes to stderr + the BENCH json only, never stdout, so the
  // scenario's parity golden is unaffected.
  // intox-lint: allow(determinism)  -- perf timing only, never stdout
  const auto wall_start = std::chrono::steady_clock::now();
  pop.start_all();
  sched.run_until(trace.horizon);
  pop.stop_all();
  const std::chrono::duration<double> wall =
      // intox-lint: allow(determinism)  -- perf timing only, never stdout
      std::chrono::steady_clock::now() - wall_start;
  {
    obs::SweepPerf perf;
    perf.name = "e2e_packets";
    perf.trials = injected;
    perf.threads = 1;
    perf.wall_seconds = wall.count();
    obs::emit_sweep_perf(perf);
  }

  const auto& reroutes = node.reroutes();
  ctx.out.row("reroute events:        %zu", reroutes.size());
  if (!reroutes.empty()) {
    ctx.out.row("hijack at:             %.1f s (retransmitting cells: %zu)",
                sim::to_seconds(reroutes[0].when),
                reroutes[0].retransmitting_cells);
  }
  ctx.out.row("legit pkts to primary: %llu",
              static_cast<unsigned long long>(legit_to_primary));
  ctx.out.row("legit pkts hijacked:   %llu",
              static_cast<unsigned long long>(legit_to_attacker));
  const double hijacked_share =
      static_cast<double>(legit_to_attacker) /
      static_cast<double>(legit_to_primary + legit_to_attacker);
  ctx.out.row("hijacked share:        %.1f%% of legitimate traffic",
              hijacked_share * 100.0);

  ctx.out.claim(!reroutes.empty(),
                "fake retransmissions trigger a reroute");
  ctx.out.claim(legit_to_attacker > 0,
                "legitimate traffic flows through the attacker's next-hop");
  ctx.out.claim(hijacked_share > 0.2,
                "a large share of the remaining horizon's traffic is "
                "hijacked");
  ctx.out.note("no TCP handshake was ever performed: malicious drivers "
               "emit raw duplicate segments only (cf. §3.1).");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kE2e,
                        {"blink.e2e", "BLINK-E2E",
                         "traffic hijack via fake retransmissions, full "
                         "switch pipeline",
                         declare_e2e, run_e2e});

}  // namespace

int scenario_anchor_blink() { return 0; }

}  // namespace intox::scenario
