// Pytheas scenarios (§4.1): group QoE poisoning by lying clients (plus
// the UCB-discount / group-size / MitM ablations) and the CDN-site
// overload stampede. Ported verbatim from the pre-registry benches.
#include <utility>
#include <vector>

#include "pytheas/experiment.hpp"
#include "scenario/registry.hpp"

namespace intox::scenario {
namespace {

// --------------------------------------------------------------- poison

void declare_poison(KnobSet& knobs) {
  const pytheas::PoisonConfig def;
  knobs.declare_u64("legit", def.legit_sessions,
                    "honest sessions per group in the bots x amp grid", 1,
                    100000);
  knobs.declare_u64("epochs", def.epochs,
                    "decision epochs per experiment", 1, 100000);
}

Table run_poison(Ctx& ctx) {
  const std::size_t legit = ctx.knobs.u("legit");
  const std::size_t epochs = ctx.knobs.u("epochs");
  ctx.out.header("PYTH-QOE", "group QoE poisoning by lying clients");

  std::vector<std::pair<std::size_t, std::size_t>> grid;  // (bots, amp)
  for (std::size_t bots : {0u, 10u, 20u, 40u, 60u}) {
    for (std::size_t amp : {1u, 3u, 12u}) {
      if (bots == 0 && amp != 1) continue;
      grid.emplace_back(bots, amp);
    }
  }
  grid.emplace_back(12, 12);  // the amplification-substitutes claim

  const auto grid_results =
      ctx.runner.map(grid.size(), [&](std::size_t i) {
        pytheas::PoisonConfig cfg;
        cfg.legit_sessions = legit;
        cfg.epochs = epochs;
        cfg.bot_sessions = grid[i].first;
        cfg.bot_amplification = grid[i].second;
        return pytheas::run_poisoning_experiment(cfg);
      });
  ctx.perf("PYTH-QOE-GRID");

  ctx.out.row("%6s %6s %8s | %10s %10s %8s", "bots", "amp", "rep-share",
              "qoe-before", "qoe-after", "flipped");
  double qoe_drop_at_40 = 0.0;
  double flipped_at_12_amp12 = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto [bots, amp] = grid[i];
    const pytheas::PoisonResult& r = grid_results[i];
    if (bots == 12 && amp == 12) {
      // Off-grid probe point: feeds the claim below, not the table.
      flipped_at_12_amp12 = r.flipped_fraction;
      continue;
    }
    const double share = static_cast<double>(bots * amp) /
                         static_cast<double>(bots * amp + legit);
    ctx.out.row("%6zu %6zu %7.1f%% | %10.2f %10.2f %7.0f%%", bots, amp,
                share * 100.0, r.mean_qoe_before, r.mean_qoe_after,
                r.flipped_fraction * 100.0);
    if (bots == 40 && amp == 3) {
      qoe_drop_at_40 = r.mean_qoe_before - r.mean_qoe_after;
    }
  }

  ctx.out.claim(qoe_drop_at_40 > 1.0,
                "17% lying clients (3x reports) cost the whole group >1.0 "
                "QoE");
  ctx.out.claim(flipped_at_12_amp12 > 0.8,
                "amplification substitutes for bots: 5.7% of clients with "
                "12x reports still flip the group");

  // Ablation: UCB discount factor (how fast honest history decays).
  ctx.out.row();
  ctx.out.row("ablation: UCB discount (bots=40, amp=3)");
  const std::vector<double> discounts{0.90, 0.98, 0.999};
  const auto discount_results =
      ctx.runner.map(discounts.size(), [&](std::size_t i) {
        pytheas::PoisonConfig cfg;
        cfg.bot_sessions = 40;
        cfg.engine.ucb.discount = discounts[i];
        return pytheas::run_poisoning_experiment(cfg);
      });
  ctx.perf("PYTH-QOE-DISCOUNT");
  for (std::size_t i = 0; i < discounts.size(); ++i) {
    ctx.out.row("  discount %.3f -> qoe-after %.2f, flipped %3.0f%%",
                discounts[i], discount_results[i].mean_qoe_after,
                discount_results[i].flipped_fraction * 100.0);
  }
  ctx.out.note("slower forgetting (discount -> 1) makes poisoning slower "
               "but also makes the system sluggish to genuine QoE "
               "shifts.");

  // Ablation: group size at a fixed bot *count* (is the damage about
  // fractions or absolutes?).
  ctx.out.row("ablation: group size with a fixed 40-bot botnet");
  const std::vector<std::size_t> group_sizes{100, 200, 400, 800};
  const auto size_results =
      ctx.runner.map(group_sizes.size(), [&](std::size_t i) {
        pytheas::PoisonConfig cfg;
        cfg.legit_sessions = group_sizes[i];
        cfg.bot_sessions = 40;
        return pytheas::run_poisoning_experiment(cfg);
      });
  ctx.perf("PYTH-QOE-GROUPSIZE");
  for (std::size_t i = 0; i < group_sizes.size(); ++i) {
    ctx.out.row("  %4zu legit -> qoe-after %.2f, flipped %3.0f%%",
                group_sizes[i], size_results[i].mean_qoe_after,
                size_results[i].flipped_fraction * 100.0);
  }
  ctx.out.note("bigger groups dilute a fixed botnet — but group "
               "membership is public (§4.1), so attackers simply target "
               "smaller groups.");

  // §4.1 MitM variant: no lying at all — the attacker genuinely degrades
  // a subset of members' traffic and the group decision does the rest.
  ctx.out.row();
  ctx.out.row(
      "MitM variant (honest reports, real drops on a member subset):");
  ctx.out.row("%10s | %12s %12s %8s %10s", "victims", "qoe-before",
              "qoe-after", "flipped", "touched");
  const std::vector<double> victim_fractions{0.1, 0.3, 0.45, 0.6};
  const auto mitm_results =
      ctx.runner.map(victim_fractions.size(), [&](std::size_t i) {
        pytheas::MitmQoeConfig mcfg;
        mcfg.victim_fraction = victim_fractions[i];
        return pytheas::run_mitm_qoe_experiment(mcfg);
      });
  ctx.perf("PYTH-QOE-MITM");
  double collateral = 0.0;
  for (std::size_t i = 0; i < victim_fractions.size(); ++i) {
    const double f = victim_fractions[i];
    const pytheas::MitmQoeResult& r = mitm_results[i];
    ctx.out.row("%9.0f%% | %12.2f %12.2f %7.0f%% %9.1f%%", f * 100.0,
                r.untouched_before, r.untouched_after,
                r.flipped_fraction * 100.0, r.touched_share * 100.0);
    if (f == 0.45) collateral = r.untouched_before - r.untouched_after;
  }
  ctx.out.claim(collateral > 1.0,
                "members whose traffic was never touched lose >1.0 QoE — "
                "the group decision is the damage amplifier");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kPoison,
                        {"pytheas.poison", "PYTH-QOE",
                         "group QoE poisoning by lying clients",
                         declare_poison, run_poison});

// ------------------------------------------------------------------ cdn

void declare_cdn(KnobSet& knobs) {
  const pytheas::CdnConfig def = pytheas::default_cdn_attack_config();
  knobs.declare_u64("sessions", def.sessions, "clients in the group", 1,
                    100000);
  knobs.declare_u64("attack_start", def.attack_start_epoch,
                    "epoch at which the MitM starts throttling site 0", 0,
                    100000);
  knobs.declare_double("throttle", def.throttle_penalty,
                       "QoE penalty the MitM inflicts on site-0 traffic",
                       0.0, 100.0);
}

Table run_cdn(Ctx& ctx) {
  auto scenario = [&ctx] {
    pytheas::CdnConfig cfg = pytheas::default_cdn_attack_config();
    cfg.sessions = ctx.knobs.u("sessions");
    cfg.attack_start_epoch = ctx.knobs.u("attack_start");
    cfg.throttle_penalty = ctx.knobs.d("throttle");
    return cfg;
  };

  ctx.out.header("PYTH-CDN", "CDN-site overload via MitM throttling");

  auto clean_cfg = scenario();
  clean_cfg.attack_start_epoch = clean_cfg.epochs + 1;
  const auto clean = pytheas::run_cdn_experiment(clean_cfg);
  const auto attacked = pytheas::run_cdn_experiment(scenario());

  ctx.out.row("%18s  %12s  %12s", "", "no attack", "throttled");
  ctx.out.row("%18s  %12.2f  %12.2f", "final site-0 load",
              clean.site0_load.points().back().second,
              attacked.site0_load.points().back().second);
  ctx.out.row("%18s  %12.2f  %12.2f", "final site-1 load",
              clean.site1_load.points().back().second,
              attacked.site1_load.points().back().second);
  ctx.out.row("%18s  %12.2f  %12.2f", "site-1 peak load/cap",
              clean.site1_peak_overload, attacked.site1_peak_overload);
  ctx.out.row("%18s  %12.2f  %12.2f", "mean QoE (late)", clean.qoe_after,
              attacked.qoe_after);

  ctx.out.row();
  ctx.out.row(
      "site loads over time (attacked run; attack starts at epoch 50):");
  ctx.out.row("%8s  %8s  %8s  %8s", "epoch", "site0", "site1", "QoE");
  for (int e = 0; e <= 140; e += 20) {
    ctx.out.row("%8d  %8.0f  %8.0f  %8.2f", e,
                attacked.site0_load.at(sim::seconds(e)),
                attacked.site1_load.at(sim::seconds(e)),
                attacked.mean_qoe.at(sim::seconds(e)));
  }

  ctx.out.claim(clean.site1_peak_overload < 1.0,
                "without the attacker, the small site is never overloaded");
  ctx.out.claim(attacked.site1_peak_overload > 1.2,
                "throttling the big site stampedes the group onto the "
                "small one, overloading it past capacity");
  ctx.out.claim(attacked.qoe_after < clean.qoe_after - 0.15,
                "every client's QoE degrades even though site 1 was never "
                "touched by the attacker");
  ctx.out.note("the attacker throttles only site-0 traffic; the overload "
               "at site 1 is manufactured entirely by Pytheas's group "
               "decision.");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kCdn,
                        {"pytheas.cdn", "PYTH-CDN",
                         "CDN-site overload via MitM throttling",
                         declare_cdn, run_cdn});

}  // namespace

int scenario_anchor_pytheas() { return 0; }

}  // namespace intox::scenario
