#include "scenario/driver.hpp"

int main(int argc, char** argv) {
  return intox::scenario::driver_main(argc, argv);
}
