#include <string_view>

#include "scenario/driver.hpp"
#include "sweep/orchestrator.hpp"

int main(int argc, char** argv) {
  // The sweep orchestrator dispatches here, not in driver_main:
  // intox_sweep links against intox_scenario, so the driver library
  // cannot depend back on it.
  if (argc >= 2 && std::string_view(argv[1]) == "sweep") {
    return intox::sweep::sweep_main(argc, argv);
  }
  return intox::scenario::driver_main(argc, argv);
}
