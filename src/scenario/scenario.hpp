// The Scenario interface: one declarative experiment = a name, a report
// family, typed knobs, and a run function. Every bench and example in
// this reproduction registers itself here (see scenarios_*.cpp); the
// `intox` driver and the legacy bench shims are the only entry points.
#pragma once

#include <cstddef>
#include <string>

#include "scenario/console.hpp"
#include "scenario/knob.hpp"
#include "sim/runner.hpp"

namespace intox::scenario {

/// What a scenario run leaves behind: the process exit code plus the
/// claim tally the console recorded while the run printed. Scenario
/// bodies fill exit_code only; the driver copies the console counters in
/// after the run returns.
struct Table {
  int exit_code = 0;
  std::size_t claims = 0;
  std::size_t passed = 0;
};

/// Everything a scenario body may touch. The driver owns thread-count
/// resolution and the observability session (--threads / --metrics-out /
/// --trace-out, INTOX_*); the body only sees the resolved runner and the
/// console.
class Ctx {
 public:
  Ctx(const KnobSet& knob_set, Console& console, sim::ParallelRunner& r)
      : knobs(knob_set), out(console), runner(r) {}

  const KnobSet& knobs;
  Console& out;
  sim::ParallelRunner& runner;

  /// Emits the per-sweep perf record for the runner's last dispatch
  /// (legacy stderr JSON + the current BenchSession's run report).
  void perf(const char* sweep) const;
  void perf(const char* sweep, const sim::RunReport& report) const;
};

using DeclareKnobsFn = void (*)(KnobSet&);
using RunFn = Table (*)(Ctx&);

/// One registered experiment. `family` keys the BENCH_<family>.json run
/// report exactly as the pre-registry bench binaries did.
struct Scenario {
  std::string name;
  std::string family;
  std::string description;
  DeclareKnobsFn declare_knobs = nullptr;
  RunFn run = nullptr;
};

}  // namespace intox::scenario
