#include "scenario/console.hpp"

#include <cstdarg>
#include <cstdio>

namespace intox::scenario {

void Console::header(const char* exp_id, const char* what) {
  if (quiet_) return;
  std::printf("\n================================================"
              "================\n");
  std::printf("%s — %s\n", exp_id, what);
  std::printf("================================================"
              "================\n");
}

void Console::row(const char* fmt, ...) {
  if (quiet_) return;
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

void Console::row() {
  if (quiet_) return;
  std::printf("\n");
}

void Console::raw(const char* fmt, ...) {
  if (quiet_) return;
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
}

void Console::claim(bool ok, const char* text) {
  ++claims_;
  if (ok) ++passed_;
  if (quiet_) return;
  std::printf("  [%s] %s\n", ok ? "PASS" : "CHECK", text);
}

void Console::note(const char* text) {
  if (quiet_) return;
  std::printf("  note: %s\n", text);
}

}  // namespace intox::scenario
