#include "scenario/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace intox::scenario {

// Each scenarios_*.cpp exports one anchor function. Calling them from
// instance() makes every linker that pulls in the registry also pull in
// those objects from the static library — without the calls, nothing
// would, and their self-registering statics would never run.
int scenario_anchor_blink();
int scenario_anchor_pcc();
int scenario_anchor_pytheas();
int scenario_anchor_sketch();
int scenario_anchor_sppifo();
int scenario_anchor_nethide();
int scenario_anchor_defense();
int scenario_anchor_ext();
int scenario_anchor_examples();
int scenario_anchor_debug();

namespace {

int touch_anchors() {
  return scenario_anchor_blink() + scenario_anchor_pcc() +
         scenario_anchor_pytheas() + scenario_anchor_sketch() +
         scenario_anchor_sppifo() + scenario_anchor_nethide() +
         scenario_anchor_defense() + scenario_anchor_ext() +
         scenario_anchor_examples() + scenario_anchor_debug();
}

}  // namespace

Registry& Registry::instance() {
  static Registry registry;
  [[maybe_unused]] static const int anchors = touch_anchors();
  return registry;
}

void Registry::add(Scenario scenario) {
  if (find(scenario.name) != nullptr) {
    std::fprintf(stderr, "intox: duplicate scenario registration '%s'\n",
                 scenario.name.c_str());
    std::abort();
  }
  scenarios_.push_back(std::move(scenario));
}

const Scenario* Registry::find(std::string_view name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const Scenario*> Registry::all() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const Scenario& s : scenarios_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const Scenario* a, const Scenario* b) {
              return a->name < b->name;
            });
  return out;
}

Registration::Registration(Scenario scenario) {
  Registry::instance().add(std::move(scenario));
}

}  // namespace intox::scenario
