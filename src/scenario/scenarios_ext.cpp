// Extensions scenario: the other §3.2 systems the paper names but does
// not evaluate (RON, egress steering, DAPPER, in-network NN inference,
// seed-rotation defense). Ported verbatim from the pre-registry bench
// binary.
#include <cstdint>

#include "dapper/attack.hpp"
#include "egress/attack.hpp"
#include "innet/attack.hpp"
#include "net/hash.hpp"
#include "ron/attack.hpp"
#include "scenario/registry.hpp"
#include "sketch/attack.hpp"
#include "sketch/rotation.hpp"

namespace intox::scenario {
namespace {

void declare_ext(KnobSet& knobs) {
  knobs.declare_u64("nn_seed", 11,
                    "train/test split seed for the in-network classifier");
  knobs.declare_u64("rotation_period", 1024,
                    "inserts between hash-seed rotations (EXT-ROTATE)", 1,
                    1000000);
}

Table run_ext(Ctx& ctx) {
  ctx.out.header("EXT-RON",
                 "diverting a resilient overlay by dropping probes");

  ron::RonExperimentConfig clean_cfg;
  clean_cfg.attack = false;
  const auto clean = ron::run_ron_attack_experiment(clean_cfg);
  const auto attacked =
      ron::run_ron_attack_experiment(ron::RonExperimentConfig{});

  ctx.out.row("%-26s %12s %12s", "", "no attack", "probe drops");
  ctx.out.row("%-26s %12s %12s", "route 0->1 after",
              clean.routed_via_attacker_after ? "via attacker" : "direct",
              attacked.routed_via_attacker_after ? "via attacker"
                                                 : "direct");
  ctx.out.row("%-26s %9.2f ms %9.2f ms", "mean data latency",
              clean.mean_latency_after_ms, attacked.mean_latency_after_ms);
  ctx.out.row("%-26s %12llu %12llu", "probes dropped",
              static_cast<unsigned long long>(clean.probes_dropped),
              static_cast<unsigned long long>(attacked.probes_dropped));
  ctx.out.row("%-26s %12llu %12llu", "data packets (untouched)",
              static_cast<unsigned long long>(clean.data_packets_sent),
              static_cast<unsigned long long>(attacked.data_packets_sent));

  ctx.out.claim(
      clean.routed_direct_before && !clean.routed_via_attacker_after,
      "healthy overlay keeps the direct (best) path");
  ctx.out.claim(attacked.routed_via_attacker_after,
                "dropping probes on the good paths herds traffic through "
                "the attacker's relay");
  ctx.out.claim(attacked.mean_latency_after_ms >
                    2.0 * attacked.mean_latency_before_ms,
                "victim pays ~3x latency although the real direct path "
                "was perfect the whole time");
  ctx.out.note("only probe packets were dropped; every data packet was "
               "forwarded untouched — perception, not reality, was "
               "attacked.");

  ctx.out.header("EXT-EGRESS",
                 "steering passive-measurement egress selection "
                 "(Espresso / Edge Fabric class)");
  egress::EgressExperimentConfig ecfg;
  ecfg.attack = false;
  const auto eclean = egress::run_egress_attack_experiment(ecfg);
  ecfg.attack = true;
  const auto eatk = egress::run_egress_attack_experiment(ecfg);
  ctx.out.row("%-26s %12s %12s", "", "no attack", "degraded");
  ctx.out.row("%-26s %12zu %12zu", "preferred egress path",
              eclean.preferred_after, eatk.preferred_after);
  ctx.out.row("%-26s %9.1f ms %9.1f ms", "mean user RTT",
              eclean.mean_rtt_after_ms, eatk.mean_rtt_after_ms);
  ctx.out.row("%-26s %11.1f%% %11.1f%%", "time on attacker's path",
              eclean.attacker_path_fraction * 100.0,
              eatk.attacker_path_fraction * 100.0);
  ctx.out.row("%-26s %12llu %12llu", "packets dropped by MitM",
              static_cast<unsigned long long>(eclean.attacker_dropped),
              static_cast<unsigned long long>(eatk.attacker_dropped));
  ctx.out.claim(eclean.preferred_after == 0 &&
                    eclean.attacker_path_fraction < 0.05,
                "undisturbed edge prefers the genuinely best peering "
                "path");
  ctx.out.claim(eatk.preferred_after == ecfg.attacker.attacker_path &&
                    eatk.attacker_path_fraction > 0.7,
                "degrading the good paths' flows herds the prefix onto "
                "the attacker's peering path");
  ctx.out.claim(static_cast<double>(eatk.attacker_dropped) <
                    0.05 * static_cast<double>(eatk.packets_total),
                "sustained tampering volume stays under 5% of traffic "
                "(passive measurements amplify small signals)");

  ctx.out.header("EXT-DAPPER",
                 "implicating an innocent party in TCP diagnosis");

  ctx.out.row("%-12s | %8s %8s %8s %8s | %10s", "MitM target", "healthy",
              "sender", "network", "receiver", "touched");
  bool all_correct = true;
  for (auto target :
       {dapper::Implicate::kNone, dapper::Implicate::kSender,
        dapper::Implicate::kNetwork, dapper::Implicate::kReceiver}) {
    const auto r = dapper::run_diagnosis_experiment(
        dapper::ConversationConfig{}, target);
    ctx.out.row("%-12s | %7.0f%% %7.0f%% %7.0f%% %7.0f%% | %9.2f%%",
                dapper::to_string(target), r.healthy_fraction * 100.0,
                r.sender_fraction * 100.0, r.network_fraction * 100.0,
                r.receiver_fraction * 100.0,
                100.0 * static_cast<double>(r.packets_touched) /
                    static_cast<double>(r.packets_total));
    switch (target) {
      case dapper::Implicate::kNone:
        all_correct &= r.dominant == dapper::Verdict::kHealthy;
        break;
      case dapper::Implicate::kSender:
        all_correct &= r.dominant == dapper::Verdict::kSenderLimited;
        break;
      case dapper::Implicate::kNetwork:
        all_correct &= r.dominant == dapper::Verdict::kNetworkLimited;
        break;
      case dapper::Implicate::kReceiver:
        all_correct &= r.dominant == dapper::Verdict::kReceiverLimited;
        break;
    }
  }
  ctx.out.claim(all_correct,
                "for each of sender/network/receiver there is a header "
                "manipulation that pins DAPPER's blame exactly there");
  ctx.out.note("the rewritten fields (rwnd, ack number, replayed "
               "segments) are unauthenticated; the real connection was "
               "healthy in every run.");

  ctx.out.header("EXT-NN",
                 "adversarial examples vs an in-network classifier");
  const std::uint64_t nn_seed = ctx.knobs.u("nn_seed");
  const auto clf = innet::train_classifier(nn_seed);
  ctx.out.row("classifier: %zu->%zu->%zu fixed-point MLP; test accuracy "
              "float %.1f%%, quantized %.1f%%",
              innet::kFeatures, innet::kHidden, innet::kClasses,
              clf.test_accuracy * 100.0,
              clf.quantized_test_accuracy * 100.0);
  ctx.out.row("%8s | %10s %14s", "budget", "evasion", "random control");
  double evasion_at_64 = 0.0, random_at_64 = 0.0, detect = 0.0;
  for (int budget : {16, 32, 64, 96}) {
    innet::EvasionConfig ecfg2;
    ecfg2.budget = budget;
    const auto o = innet::run_evasion_experiment(nn_seed, ecfg2);
    ctx.out.row("%8d | %9.1f%% %13.1f%%", budget, o.evasion_rate * 100.0,
                o.random_flip_rate * 100.0);
    if (budget == 64) {
      evasion_at_64 = o.evasion_rate;
      random_at_64 = o.random_flip_rate;
      detect = o.clean_detection_rate;
    }
  }
  ctx.out.claim(detect > 0.9, "deployed classifier catches >90% of "
                              "attacks on clean inputs");
  ctx.out.claim(evasion_at_64 > 0.7 && evasion_at_64 > random_at_64 + 0.3,
                "header-tweak adversarial examples evade detection; "
                "random tweaks of the same size do not");
  ctx.out.note("every feature is a header field any Internet host sets "
               "freely — the paper's point about exposing NN inference "
               "to arbitrary inputs.");

  ctx.out.header("EXT-ROTATE", "§5-V obfuscation: rotating hash seeds vs "
                               "crafted-key pollution");
  sketch::RotationConfig rcfg;
  rcfg.cells = 4096;
  rcfg.hashes = 4;
  rcfg.rotation_period = ctx.knobs.u("rotation_period");
  rcfg.retained_keys = 512;
  sketch::RotatingBloom defended{rcfg};
  const auto crafted = sketch::craft_saturating_keys(
      rcfg.cells, rcfg.hashes, defended.current_seed(), 1024);
  sketch::BloomFilter undefended{rcfg.cells, rcfg.hashes,
                                 defended.current_seed()};
  for (auto k : crafted) undefended.insert(k);
  for (auto k : crafted) defended.insert(k);
  const double fpr_static = sketch::bloom_empirical_fpr(undefended, 20000);
  const double fpr_rotated =
      sketch::bloom_empirical_fpr(defended.filter(), 20000);
  ctx.out.row("crafted 1024-key pollution: static filter FPR %.1f%%, "
              "rotating filter FPR %.1f%% (%llu rotation(s))",
              fpr_static * 100.0, fpr_rotated * 100.0,
              static_cast<unsigned long long>(defended.rotations()));
  ctx.out.claim(fpr_static > 0.5 && fpr_rotated < fpr_static / 3.0,
                "seed rotation strips crafted keys of their structure "
                "(defense-in-depth, as §5-V suggests)");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kExt,
                        {"ext.survey", "EXT",
                         "RON / egress / DAPPER / in-network NN / seed "
                         "rotation survey",
                         declare_ext, run_ext});

}  // namespace

int scenario_anchor_ext() { return 0; }

}  // namespace intox::scenario
