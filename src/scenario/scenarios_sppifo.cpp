// SP-PIFO scenario (§3.2): scheduling quality under random vs
// adversarial rank arrival order, plus the queue-count ablation. Ported
// verbatim from the pre-registry bench binary.
#include <cstdint>

#include "scenario/registry.hpp"
#include "sppifo/attack.hpp"

namespace intox::scenario {
namespace {

void declare_sppifo(KnobSet& knobs) {
  const sppifo::RankWorkload def =
      sppifo::default_bench_workload(sppifo::ArrivalOrder::kUniformRandom);
  knobs.declare_u64("packets", def.packets, "packets per rank sequence", 1,
                    10000000);
  knobs.declare_u64("seed", 1, "rank-sequence seed for the order table");
  knobs.declare_u64("ablation_seed", 3,
                    "rank-sequence seed for the queue-count ablation");
}

Table run_sppifo(Ctx& ctx) {
  const std::size_t packets = ctx.knobs.u("packets");
  auto run = [packets](sppifo::ArrivalOrder order, std::uint64_t seed) {
    sppifo::RankWorkload w = sppifo::default_bench_workload(order);
    w.packets = packets;
    sim::Rng rng{seed};
    const auto ranks = sppifo::generate_ranks(w, rng);
    return sppifo::run_scheduling_experiment(sppifo::ScheduleConfig{},
                                             ranks);
  };
  auto print = [&ctx](const char* label,
                      const sppifo::SchedulingResult& r) {
    ctx.out.row("%-14s %10llu %10llu %10llu %12llu %10.2f", label,
                static_cast<unsigned long long>(r.sp_dequeue_inversions),
                static_cast<unsigned long long>(r.sp_push_downs),
                static_cast<unsigned long long>(r.sp_drops),
                static_cast<unsigned long long>(r.sp_high_priority_drops),
                r.mean_rank_error);
  };

  ctx.out.header("SPPIFO", "SP-PIFO scheduling quality: random vs "
                           "adversarial rank order (same rank multiset)");

  ctx.out.row("%-14s %10s %10s %10s %12s %10s", "order", "inversions",
              "push-downs", "drops", "hi-pri drops", "rank-err");
  const std::uint64_t seed = ctx.knobs.u("seed");
  const auto uniform = run(sppifo::ArrivalOrder::kUniformRandom, seed);
  const auto drag = run(sppifo::ArrivalOrder::kDragAndBurst, seed);
  const auto saw = run(sppifo::ArrivalOrder::kSawtooth, seed);
  print("uniform", uniform);
  print("drag+burst", drag);
  print("sawtooth", saw);

  ctx.out.claim(uniform.sp_high_priority_drops == 0,
                "under the design's random-order assumption, no "
                "high-priority packet is ever dropped");
  ctx.out.claim(drag.sp_high_priority_drops > 20,
                "drag+burst forces drops of top-quartile (highest "
                "priority) packets");
  ctx.out.claim(saw.sp_push_downs > 3 * uniform.sp_push_downs,
                "sawtooth keeps the queue bounds permanently "
                "mis-calibrated (push-down storm)");
  ctx.out.claim(drag.mean_rank_error > 3.0 * uniform.mean_rank_error,
                "scheduling order diverges several-fold further from the "
                "ideal PIFO under attack");
  ctx.out.claim(uniform.pifo_high_priority_drops == 0 &&
                    drag.pifo_high_priority_drops == 0,
                "the ideal PIFO reference never drops high-priority "
                "packets under either order");

  // Ablation: number of strict-priority queues.
  ctx.out.row();
  ctx.out.row("ablation: queue count (drag+burst)");
  for (std::size_t queues : {2u, 4u, 8u, 16u, 32u}) {
    sppifo::RankWorkload w =
        sppifo::default_bench_workload(sppifo::ArrivalOrder::kDragAndBurst);
    w.packets = packets;
    sim::Rng rng{ctx.knobs.u("ablation_seed")};
    const auto ranks = sppifo::generate_ranks(w, rng);
    sppifo::ScheduleConfig cfg;
    cfg.sp.queues = queues;
    cfg.sp.per_queue_capacity = 128 / queues;  // fixed total buffer
    const auto r = sppifo::run_scheduling_experiment(cfg, ranks);
    ctx.out.row("  %2zu queues: rank-err %6.2f, hi-pri drops %llu", queues,
                r.mean_rank_error,
                static_cast<unsigned long long>(r.sp_high_priority_drops));
  }
  ctx.out.note("more queues approximate PIFO better in the benign case "
               "but the adversarial order still defeats the adaptation.");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kSppifo,
                        {"sppifo.adversarial", "SPPIFO",
                         "SP-PIFO scheduling quality under adversarial "
                         "rank order",
                         declare_sppifo, run_sppifo});

}  // namespace

int scenario_anchor_sppifo() { return 0; }

}  // namespace intox::scenario
