// The narrated example walk-throughs, registered as scenarios so the
// `intox` driver runs them too. Each example's stdout is reproduced
// byte-for-byte via Console::raw; the on-disk examples/*.cpp binaries
// are thin shims onto these registrations.
#include <cstdint>
#include <memory>
#include <string>

#include "blink/attacker.hpp"
#include "blink/blink_node.hpp"
#include "dataplane/switch.hpp"
#include "egress/attack.hpp"
#include "nethide/obfuscate.hpp"
#include "pcc/experiment.hpp"
#include "pytheas/experiment.hpp"
#include "scenario/registry.hpp"
#include "sim/network.hpp"
#include "supervisor/attack_synth.hpp"
#include "supervisor/pytheas_guard.hpp"
#include "trafficgen/driver.hpp"
#include "trafficgen/synth.hpp"

namespace intox::scenario {
namespace {

// ----------------------------------------------------------- quickstart

void declare_quickstart(KnobSet& knobs) {
  knobs.declare_u64("flows", 50, "legitimate flows in the workload", 1,
                    1000000);
  knobs.declare_u64("malicious", 5, "always-active malicious flows", 0,
                    1000000);
  knobs.declare_double("horizon_s", 30.0, "simulated horizon in seconds",
                       1.0, 100000.0);
  knobs.declare_u64("seed", 42, "workload seed");
}

Table run_quickstart(Ctx& ctx) {
  sim::Scheduler sched;
  sim::Network net{sched};

  // Topology: src host --- switch --- dst host.
  dataplane::CallbackNode src{"src", nullptr};
  dataplane::RoutedSwitch sw{"sw1", sched, net::Ipv4Addr{192, 0, 2, 1}};
  dataplane::CallbackNode dst{"dst", nullptr};
  net.connect(src, 0, sw, 0, sim::LinkConfig{});
  net.connect(sw, 1, dst, 0, sim::LinkConfig{});
  sw.add_route(net::Prefix{net::Ipv4Addr{10, 0, 0, 0}, 8}, 1);

  std::uint64_t delivered = 0;
  dst.set_handler([&](net::Packet, int) { ++delivered; });

  // Workload: legitimate flows plus always-active malicious flows, all
  // towards 10.0.0.0/8.
  const sim::Duration horizon = sim::seconds(ctx.knobs.d("horizon_s"));
  sim::Rng rng{ctx.knobs.u("seed")};
  trafficgen::TraceConfig cfg;
  cfg.active_flows = ctx.knobs.u("flows");
  cfg.mean_duration = sim::seconds(5);
  cfg.horizon = horizon;

  trafficgen::FlowPopulation pop{
      sched, rng.fork("drivers"),
      [&](net::Packet p) { src.inject(0, std::move(p)); }};
  sim::Rng trace_rng = rng.fork("trace");
  for (const auto& f : trafficgen::synthesize_trace(cfg, trace_rng)) {
    pop.add_legit(f);
  }
  sim::Rng bad_rng = rng.fork("malicious");
  for (const auto& f : trafficgen::synthesize_malicious_flows(
           cfg, ctx.knobs.u("malicious"), sim::seconds(1), bad_rng,
           1u << 20)) {
    pop.add_malicious(f);
  }

  pop.start_all();
  sched.run_until(horizon);
  pop.stop_all();

  ctx.out.raw("quickstart: simulated 30 s\n");
  ctx.out.raw("  flows:      %zu legit, %zu malicious\n", pop.legit_count(),
              pop.malicious_count());
  ctx.out.raw("  switch:     %llu forwarded, %llu no-route drops\n",
              static_cast<unsigned long long>(sw.counters().forwarded),
              static_cast<unsigned long long>(
                  sw.counters().dropped_no_route));
  ctx.out.raw("  delivered:  %llu packets\n",
              static_cast<unsigned long long>(delivered));
  ctx.out.raw("  events:     %llu processed\n",
              static_cast<unsigned long long>(sched.events_processed()));
  Table table;
  table.exit_code = delivered > 0 ? 0 : 1;
  return table;
}

INTOX_REGISTER_SCENARIO(kQuickstart,
                        {"quickstart", "QUICKSTART",
                         "smallest end-to-end use of the library",
                         declare_quickstart, run_quickstart});

// --------------------------------------------------------- blink.hijack

void declare_hijack(KnobSet& knobs) {
  knobs.declare_u64("bots", 105, "always-active fake flows the attacker "
                                 "opens",
                    1, 100000);
  knobs.declare_u64("trials", 8, "seeded Monte-Carlo trials", 1, 100000);
}

Table run_hijack(Ctx& ctx) {
  const std::size_t bots = ctx.knobs.u("bots");
  const std::size_t trials = ctx.knobs.u("trials");

  // Plan the attack with the closed-form model first, like an attacker
  // sizing a botnet rental.
  blink::BlinkConfig blink_cfg;
  const blink::AttackPlan plan =
      blink::plan_attack(blink_cfg, /*legit_flows=*/2000,
                         /*tr_seconds=*/8.37,
                         /*confidence=*/0.95);
  ctx.out.raw(
      "attack planner: >=%zu always-active flows give 95%% success\n"
      "  (q_m = %.2f%%, expected majority after %.0f s)\n\n",
      plan.malicious_flows, plan.qm * 100.0,
      plan.expected_majority_time_s);

  ctx.out.raw(
      "launching %zu malicious flows against 2000 legitimate ones "
      "(t_R = 8.37 s), %zu seeded trials on %zu worker(s)...\n\n",
      bots, trials, ctx.runner.threads());
  const auto results = ctx.runner.map(trials, [bots](std::size_t trial) {
    blink::Fig2Config cfg;
    cfg.malicious_flows = bots;
    cfg.trace.horizon = sim::seconds(300);
    cfg.seed = 42 + trial;
    return blink::run_fig2_experiment(cfg);
  });

  // Narrate trial 0, the run the original walk-through showed.
  const blink::Fig2Result& result = results.front();
  ctx.out.raw("%8s  %22s\n", "time[s]", "malicious cells (of 64)");
  for (int t = 0; t <= 300; t += 30) {
    const int cells =
        static_cast<int>(result.malicious_sampled.at(sim::seconds(t)));
    ctx.out.raw("%8d  [%-32.*s] %d\n", t, cells / 2,
                "################################", cells);
  }

  if (result.time_to_majority_seconds >= 0) {
    ctx.out.raw("\nmajority captured after %.0f s\n",
                result.time_to_majority_seconds);
  } else {
    ctx.out.raw("\nmajority NOT captured within the horizon\n");
  }
  if (!result.reroutes.empty()) {
    ctx.out.raw(
        "Blink rerouted 10.0.0.0/8 at %.1f s — traffic now flows via "
        "the attacker's next-hop.\n",
        sim::to_seconds(result.reroutes.front().when));
  } else {
    ctx.out.raw("no reroute was triggered.\n");
  }

  // Fold the whole batch, in trial order, into the summary.
  sim::RunningStats majority_times;
  std::size_t hijacked = 0;
  for (const blink::Fig2Result& r : results) {
    if (r.time_to_majority_seconds >= 0) {
      majority_times.add(r.time_to_majority_seconds);
    }
    hijacked += !r.reroutes.empty();
  }
  ctx.out.raw(
      "\nacross %zu trials: %zu hijacks; majority after %.0f s mean "
      "(min %.0f, max %.0f)\n",
      trials, hijacked, majority_times.mean(), majority_times.min(),
      majority_times.max());
  ctx.perf("BLINK-HIJACK");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kHijack,
                        {"blink.hijack", "BLINK-HIJACK",
                         "the §3.1 Blink attack, narrated",
                         declare_hijack, run_hijack});

// ------------------------------------------------------------- pcc.mitm

void declare_mitm(KnobSet& knobs) {
  knobs.declare_bool("attack", false, "enable the bottleneck MitM");
  knobs.declare_double("duration_s", 60.0,
                       "simulated duration in seconds", 1.0, 10000.0);
  knobs.declare_u64("seed", 7, "experiment seed");
}

Table run_mitm(Ctx& ctx) {
  const bool attack = ctx.knobs.b("attack");

  pcc::PccExperimentConfig cfg;
  cfg.duration = sim::seconds(ctx.knobs.d("duration_s"));
  cfg.attack = attack;
  cfg.seed = ctx.knobs.u("seed");
  ctx.out.raw("PCC over a 20 Mbps bottleneck, 40 ms RTT — %s\n\n",
              attack ? "MitM ATTACK ACTIVE (pass nothing to disable)"
                     : "clean run (pass --attack to enable the MitM)");

  const auto r = pcc::run_pcc_experiment(cfg);

  ctx.out.raw("%8s  %10s\n", "time[s]", "rate[Mbps]");
  for (double t = 2; t <= 60; t += 2) {
    const double rate = r.rate.at(sim::seconds(t)) / 1e6;
    ctx.out.raw("%8.0f  %10.2f  |%-*s*\n", t, rate,
                static_cast<int>(rate * 1.5), "");
  }

  ctx.out.raw("\nsteady-state (last 20 s):\n");
  ctx.out.raw("  mean rate          %.2f Mbps\n", r.mean_rate_bps / 1e6);
  ctx.out.raw("  rate CV            %.2f%%\n", r.rate_cv * 100.0);
  ctx.out.raw("  oscillation amp.   +-%.2f%%\n", r.osc_amplitude * 100.0);
  ctx.out.raw("  experiments        %llu inconclusive / %llu decisions\n",
              static_cast<unsigned long long>(r.inconclusive),
              static_cast<unsigned long long>(r.decisions));
  if (attack) {
    ctx.out.raw("  attacker dropped   %llu of %llu packets (%.2f%%)\n",
                static_cast<unsigned long long>(r.attacker_dropped),
                static_cast<unsigned long long>(r.attacker_observed),
                100.0 * static_cast<double>(r.attacker_dropped) /
                    static_cast<double>(r.attacker_observed));
  }
  return Table{};
}

INTOX_REGISTER_SCENARIO(kMitm,
                        {"pcc.mitm", "PCC-MITM",
                         "the §4.2 PCC oscillation attack, narrated",
                         declare_mitm, run_mitm});

// ----------------------------------------------------- pytheas.streaming

void declare_streaming(KnobSet& knobs) {
  knobs.declare_bool("defend", false,
                     "install the §5 report-distribution guard");
  knobs.declare_u64("bots", 40, "lying sessions joining at epoch 30", 0,
                    100000);
}

Table run_streaming(Ctx& ctx) {
  const bool defend = ctx.knobs.b("defend");

  pytheas::PoisonConfig cfg;
  cfg.bot_sessions = ctx.knobs.u("bots");
  ctx.out.raw(
      "Pytheas group: 200 honest sessions + 40 bots (from epoch 30), "
      "%s\n\n",
      defend ? "DEFENSE ON" : "defense off (--defend)");

  std::shared_ptr<supervisor::PytheasGuard> guard;
  if (defend) guard = std::make_shared<supervisor::PytheasGuard>();
  const pytheas::PoisonResult r =
      pytheas::run_poisoning_experiment(cfg, guard);

  ctx.out.raw("%8s  %10s  %10s\n", "epoch", "group arm", "honest QoE");
  for (int e = 0; e < 120; e += 10) {
    const auto t = sim::seconds(static_cast<double>(e));
    ctx.out.raw("%8d  %10.0f  %10.2f  %s\n", e, r.chosen_arm.at(t),
                r.legit_qoe.at(t),
                e >= 30 ? (r.chosen_arm.at(t) > 0.5
                               ? "<- flipped to bad arm!"
                               : "(bots lying)")
                        : "");
  }

  ctx.out.raw("\nhonest-client QoE: %.2f before, %.2f after\n",
              r.mean_qoe_before, r.mean_qoe_after);
  ctx.out.raw(
      "group exploited the bad arm in %.0f%% of the final epochs\n",
      r.flipped_fraction * 100.0);
  if (guard) {
    ctx.out.raw(
        "guard filtered %llu reports (%llu rate-limited, %llu "
        "quarantined outliers)\n",
        static_cast<unsigned long long>(r.filtered_reports),
        static_cast<unsigned long long>(guard->rate_limited()),
        static_cast<unsigned long long>(guard->quarantined()));
  }
  return Table{};
}

INTOX_REGISTER_SCENARIO(kStreaming,
                        {"pytheas.streaming", "PYTH-STREAM",
                         "the §4.1 report-poisoning attack with the §5 "
                         "defense toggle",
                         declare_streaming, run_streaming});

// --------------------------------------------------- nethide.traceroute

void declare_traceroute(KnobSet& knobs) {
  knobs.declare_u64("rows", 3, "grid rows of the real topology", 2, 100);
  knobs.declare_u64("cols", 3, "grid columns of the real topology", 2,
                    100);
}

Table run_traceroute(Ctx& ctx) {
  const std::size_t rows = ctx.knobs.u("rows");
  const std::size_t cols = ctx.knobs.u("cols");
  const auto last = static_cast<nethide::NodeId>(rows * cols - 1);

  auto show_route = [&ctx](const char* label,
                           const nethide::Topology& topo,
                           const nethide::PathTable& table,
                           nethide::NodeId src, nethide::NodeId dst) {
    ctx.out.raw("  %-10s", label);
    for (const nethide::Hop& h :
         nethide::traceroute(topo, table, src, dst)) {
      ctx.out.raw(" %2d:%s", h.ttl, net::to_string(h.from).c_str());
    }
    ctx.out.raw("\n");
  };

  ctx.out.raw("== Part 1: one network, three presented topologies ==\n");
  const nethide::Topology topo = nethide::Topology::grid(rows, cols);
  const nethide::PathTable honest =
      nethide::PathTable::all_shortest_paths(topo);
  const auto defended =
      nethide::obfuscate(topo, nethide::ObfuscationConfig{});
  const auto faked = nethide::present_fake_topology(
      topo, nethide::Topology::ring(rows * cols));

  ctx.out.raw("traceroute 0 -> %u:\n", last);
  show_route("honest", topo, honest, 0, last);
  show_route("nethide", topo, defended.presented, 0, last);
  show_route("malicious", topo, faked.presented, 0, last);

  ctx.out.raw(
      "\nmetrics vs reality:      accuracy   utility   max-density\n");
  ctx.out.raw("  honest                 %8.3f  %8.3f  %8zu\n", 1.0, 1.0,
              nethide::max_flow_density(honest));
  ctx.out.raw("  nethide (defensive)    %8.3f  %8.3f  %8zu\n",
              defended.accuracy, defended.utility,
              defended.presented_max_density);
  ctx.out.raw("  malicious decoy        %8.3f  %8.3f  %8zu\n",
              faked.accuracy, faked.utility, faked.presented_max_density);

  ctx.out.raw("\n== Part 2: packet-level ICMP forgery ==\n");
  sim::Scheduler sched;
  sim::Network net{sched};
  dataplane::CallbackNode prober{"prober", nullptr};
  dataplane::RoutedSwitch r1{"r1", sched, net::Ipv4Addr{10, 255, 0, 1}};
  dataplane::RoutedSwitch r2{"r2", sched, net::Ipv4Addr{10, 255, 0, 2}};
  dataplane::CallbackNode target{"target", nullptr};
  net.connect(prober, 0, r1, 0, sim::LinkConfig{});
  net.connect(r1, 1, r2, 0, sim::LinkConfig{});
  net.connect(r2, 1, target, 0, sim::LinkConfig{});
  const net::Prefix dst_prefix{net::Ipv4Addr{198, 18, 0, 0}, 15};
  const net::Prefix back{net::Ipv4Addr{192, 0, 2, 0}, 24};
  r1.add_route(dst_prefix, 1);
  r1.add_route(back, 0);
  r2.add_route(dst_prefix, 1);
  r2.add_route(back, 0);

  // The "operator" rewrites r2's ICMP identity to a fantasy router.
  r2.set_reply_addr(net::Ipv4Addr{203, 0, 113, 77});

  prober.set_handler([&](net::Packet p, int) {
    if (const auto* icmp = p.icmp();
        icmp && icmp->type == net::IcmpType::kTimeExceeded) {
      ctx.out.raw("  reply from %s (ttl probe)\n",
                  net::to_string(p.src).c_str());
    }
  });

  for (std::uint8_t ttl = 1; ttl <= 2; ++ttl) {
    net::Packet probe;
    probe.src = net::Ipv4Addr{192, 0, 2, 9};
    probe.dst = net::Ipv4Addr{198, 18, 0, 1};
    probe.ttl = ttl;
    probe.l4 =
        net::UdpHeader{33434, static_cast<std::uint16_t>(33434 + ttl)};
    prober.inject(0, probe);
  }
  sched.run();
  ctx.out.raw(
      "  (the second hop is really 10.255.0.2 — the ICMP source was "
      "forged to 203.0.113.77)\n");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kTraceroute,
                        {"nethide.traceroute", "NETHIDE-TR",
                         "§4.3: who controls ICMP controls the map",
                         declare_traceroute, run_traceroute});

// ------------------------------------------------------ attack.synthesis

void declare_synthesis(KnobSet& knobs) {
  knobs.declare_u64("iterations", 6000, "fuzzer iteration budget", 1,
                    10000000);
  knobs.declare_u64("seed", 7, "fuzzer seed");
}

Table run_synthesis(Ctx& ctx) {
  const net::Prefix kVictim{net::Ipv4Addr{10, 0, 0, 0}, 8};

  supervisor::SynthConfig cfg;
  cfg.flow_pool = 64;
  cfg.sequence_length = 1200;
  cfg.max_iterations = ctx.knobs.u("iterations");
  cfg.seed = ctx.knobs.u("seed");

  blink::BlinkConfig blink_cfg;
  blink_cfg.cells = 16;  // small instance: tractable demo

  ctx.out.raw(
      "searching for a packet sequence that makes Blink reroute "
      "%s...\n",
      net::to_string(kVictim).c_str());

  supervisor::AttackSynthesizer synth{cfg};
  const auto result = synth.search(
      [&]() -> std::unique_ptr<dataplane::PacketProcessor> {
        auto node = std::make_unique<blink::BlinkNode>(blink_cfg);
        node->monitor_prefix(kVictim, 0, 1);
        return node;
      },
      [kVictim](dataplane::PacketProcessor& p) {
        auto& node = static_cast<blink::BlinkNode&>(p);
        double s = static_cast<double>(
            node.selector(kVictim)->occupied_count());
        s += 50.0 * static_cast<double>(node.max_retransmitting());
        s += 1000.0 * static_cast<double>(node.reroutes().size());
        return s;
      },
      [](dataplane::PacketProcessor& p) {
        return !static_cast<blink::BlinkNode&>(p).reroutes().empty();
      });

  if (!result.found) {
    ctx.out.raw("no attack found in %zu iterations (best score %.0f)\n",
                result.iterations, result.best_score);
    Table table;
    table.exit_code = 1;
    return table;
  }

  ctx.out.raw("ATTACK FOUND after %zu candidate sequences.\n",
              result.iterations);

  // Characterize the witness: how §3.1-shaped is it?
  std::size_t repeats = 0, tight_gaps = 0;
  for (const auto& g : result.witness) {
    repeats += g.repeat_seq;
    tight_gaps += g.gap_ms <= 25;
  }
  ctx.out.raw(
      "witness: %zu packets, %.0f%% duplicate-seq, %.0f%% in tight "
      "bursts (<=25 ms gaps)\n",
      result.witness.size(),
      100.0 * static_cast<double>(repeats) /
          static_cast<double>(result.witness.size()),
      100.0 * static_cast<double>(tight_gaps) /
          static_cast<double>(result.witness.size()));

  // Replay the witness to prove it is self-contained.
  auto victim = std::make_unique<blink::BlinkNode>(blink_cfg);
  victim->monitor_prefix(kVictim, 0, 1);
  synth.replay(result.witness, *victim);
  ctx.out.raw(
      "replay on a fresh Blink instance: %zu reroute(s) triggered\n",
      victim->reroutes().size());
  ctx.out.raw(
      "\nthe fuzzer rediscovered the paper's attack recipe: keep "
      "flows alive and\nretransmit in synchronized bursts — exactly "
      "the §3.1 construction.\n");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kSynthesis,
                        {"attack.synthesis", "ATTACK-SYNTH",
                         "§5-II automated attack discovery vs Blink",
                         declare_synthesis, run_synthesis});

// ------------------------------------------------------- egress.steering

void declare_steering(KnobSet& knobs) {
  knobs.declare_bool("attack", false,
                     "enable the MitM degrading the good paths");
}

Table run_steering(Ctx& ctx) {
  const bool attack = ctx.knobs.b("attack");

  egress::EgressExperimentConfig cfg;
  cfg.attack = attack;
  ctx.out.raw(
      "edge PoP with peering paths: 0 (10 ms), 1 (14 ms), "
      "2 (25 ms, ATTACKER-TAPPED)\n%s\n\n",
      attack ? "MitM degrading paths 0 and 1 from t = 10 s"
             : "no attack (pass --attack to enable)");

  const auto r = egress::run_egress_attack_experiment(cfg);

  ctx.out.raw("preferred path before: %zu\n", r.preferred_before);
  ctx.out.raw("preferred path after:  %zu%s\n", r.preferred_after,
              r.preferred_after == cfg.attacker.attacker_path
                  ? "  <- the attacker's path"
                  : "");
  ctx.out.raw("mean user RTT:         %.1f ms -> %.1f ms\n",
              r.mean_rtt_before_ms, r.mean_rtt_after_ms);
  ctx.out.raw("time on attacker path: %.0f%% of post-warmup epochs\n",
              r.attacker_path_fraction * 100.0);
  ctx.out.raw("packets dropped:       %llu of %llu (%.1f%%)\n",
              static_cast<unsigned long long>(r.attacker_dropped),
              static_cast<unsigned long long>(r.packets_total),
              r.packets_total
                  ? 100.0 * static_cast<double>(r.attacker_dropped) /
                        static_cast<double>(r.packets_total)
                  : 0.0);
  if (attack) {
    ctx.out.raw(
        "\nthe edge's *passive* measurements are its weakness: "
        "whoever shapes the\nflows shapes the measurements, and "
        "the best honest paths lose by forfeit.\n");
  }
  return Table{};
}

INTOX_REGISTER_SCENARIO(kSteering,
                        {"egress.steering", "EGRESS-STEER",
                         "§3.2 egress-selection steering, narrated",
                         declare_steering, run_steering});

}  // namespace

int scenario_anchor_examples() { return 0; }

}  // namespace intox::scenario
