#include "scenario/knob.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace intox::scenario {
namespace {

std::string render_default(const Knob& knob) {
  char buf[64];
  switch (knob.kind) {
    case KnobKind::kBool:
      return knob.b ? "true" : "false";
    case KnobKind::kU64:
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(knob.u));
      return buf;
    case KnobKind::kDouble:
      std::snprintf(buf, sizeof buf, "%g", knob.d);
      return buf;
    case KnobKind::kString:
      return knob.s;
  }
  return "";
}

}  // namespace

std::string render_value(const Knob& knob) {
  switch (knob.kind) {
    case KnobKind::kBool:
      return knob.b ? "true" : "false";
    case KnobKind::kU64: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(knob.u));
      return buf;
    }
    case KnobKind::kDouble: {
      // Shortest round-trip form: KnobSet::set(render_value(k)) restores
      // the exact bits, and distinct doubles never collide as text.
      char buf[32];
      const auto [end, ec] =
          std::to_chars(buf, buf + sizeof buf, knob.d);
      return ec == std::errc{} ? std::string(buf, end) : "nan";
    }
    case KnobKind::kString:
      return knob.s;
  }
  return "";
}

const char* to_string(KnobKind kind) {
  switch (kind) {
    case KnobKind::kBool:
      return "bool";
    case KnobKind::kU64:
      return "u64";
    case KnobKind::kDouble:
      return "double";
    case KnobKind::kString:
      return "string";
  }
  return "?";
}

void KnobSet::declare(Knob knob) {
  if (find(knob.name) != nullptr) {
    throw std::logic_error("knob '" + knob.name + "' declared twice");
  }
  knob.default_text = render_default(knob);
  knobs_.push_back(std::move(knob));
}

void KnobSet::declare_bool(const std::string& name, bool def,
                           const std::string& help) {
  Knob k;
  k.name = name;
  k.kind = KnobKind::kBool;
  k.help = help;
  k.b = def;
  declare(std::move(k));
}

void KnobSet::declare_u64(const std::string& name, std::uint64_t def,
                          const std::string& help) {
  Knob k;
  k.name = name;
  k.kind = KnobKind::kU64;
  k.help = help;
  k.u = def;
  declare(std::move(k));
}

void KnobSet::declare_u64(const std::string& name, std::uint64_t def,
                          const std::string& help, std::uint64_t min,
                          std::uint64_t max) {
  Knob k;
  k.name = name;
  k.kind = KnobKind::kU64;
  k.help = help;
  k.u = def;
  k.has_range = true;
  k.min_value = static_cast<double>(min);
  k.max_value = static_cast<double>(max);
  declare(std::move(k));
}

void KnobSet::declare_double(const std::string& name, double def,
                             const std::string& help) {
  Knob k;
  k.name = name;
  k.kind = KnobKind::kDouble;
  k.help = help;
  k.d = def;
  declare(std::move(k));
}

void KnobSet::declare_double(const std::string& name, double def,
                             const std::string& help, double min,
                             double max) {
  Knob k;
  k.name = name;
  k.kind = KnobKind::kDouble;
  k.help = help;
  k.d = def;
  k.has_range = true;
  k.min_value = min;
  k.max_value = max;
  declare(std::move(k));
}

void KnobSet::declare_string(const std::string& name, const std::string& def,
                             const std::string& help) {
  Knob k;
  k.name = name;
  k.kind = KnobKind::kString;
  k.help = help;
  k.s = def;
  declare(std::move(k));
}

const Knob* KnobSet::find(std::string_view name) const {
  for (const Knob& k : knobs_) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

const Knob& KnobSet::require(std::string_view name, KnobKind kind) const {
  const Knob* k = find(name);
  if (k == nullptr) {
    throw std::logic_error("undeclared knob '" + std::string(name) + "'");
  }
  if (k->kind != kind) {
    throw std::logic_error("knob '" + std::string(name) + "' is " +
                           to_string(k->kind) + ", accessed as " +
                           to_string(kind));
  }
  return *k;
}

bool KnobSet::b(std::string_view name) const {
  return require(name, KnobKind::kBool).b;
}

std::uint64_t KnobSet::u(std::string_view name) const {
  return require(name, KnobKind::kU64).u;
}

double KnobSet::d(std::string_view name) const {
  return require(name, KnobKind::kDouble).d;
}

const std::string& KnobSet::s(std::string_view name) const {
  return require(name, KnobKind::kString).s;
}

std::string KnobSet::declared_names() const {
  std::string out;
  for (const Knob& k : knobs_) {
    out += (out.empty() ? "" : ", ") + k.name;
  }
  return out.empty() ? "<none>" : out;
}

std::string KnobSet::set(const std::string& key, const std::string& value) {
  Knob* knob = nullptr;
  for (Knob& k : knobs_) {
    if (k.name == key) {
      knob = &k;
      break;
    }
  }
  if (knob == nullptr) {
    return "unknown knob '" + key + "' (declared: " + declared_names() + ")";
  }
  switch (knob->kind) {
    case KnobKind::kBool: {
      if (value == "true" || value == "1") {
        knob->b = true;
      } else if (value == "false" || value == "0") {
        knob->b = false;
      } else {
        return "knob '" + key + "' expects true/false, got '" + value + "'";
      }
      return "";
    }
    case KnobKind::kU64: {
      if (value.empty() || value[0] == '-') {
        return "knob '" + key + "' expects an unsigned integer, got '" +
               value + "'";
      }
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return "knob '" + key + "' expects an unsigned integer, got '" +
               value + "'";
      }
      const double as_double = static_cast<double>(parsed);
      if (knob->has_range &&
          (as_double < knob->min_value || as_double > knob->max_value)) {
        char buf[128];
        std::snprintf(buf, sizeof buf, "knob '%s' out of range [%.0f, %.0f]: %s",
                      key.c_str(), knob->min_value, knob->max_value,
                      value.c_str());
        return buf;
      }
      knob->u = parsed;
      return "";
    }
    case KnobKind::kDouble: {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (value.empty() || end == value.c_str() || *end != '\0') {
        return "knob '" + key + "' expects a number, got '" + value + "'";
      }
      if (knob->has_range &&
          (parsed < knob->min_value || parsed > knob->max_value)) {
        char buf[128];
        std::snprintf(buf, sizeof buf, "knob '%s' out of range [%g, %g]: %s",
                      key.c_str(), knob->min_value, knob->max_value,
                      value.c_str());
        return buf;
      }
      knob->d = parsed;
      return "";
    }
    case KnobKind::kString: {
      knob->s = value;
      return "";
    }
  }
  return "knob '" + key + "' has an unknown kind";
}

}  // namespace intox::scenario
