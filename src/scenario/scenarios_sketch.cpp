// Sketch-telemetry scenario (§3.2): Bloom-filter saturation, targeted
// false positives, FlowRadar decode destruction and LossRadar digest
// overflow. Ported verbatim from the pre-registry bench binary.
#include <cstdint>
#include <vector>

#include "net/hash.hpp"
#include "scenario/registry.hpp"
#include "sketch/attack.hpp"
#include "sketch/lossradar.hpp"

namespace intox::scenario {
namespace {

void declare_sketch(KnobSet& knobs) {
  knobs.declare_u64("cells", 4096, "Bloom filter size m in cells", 8,
                    1u << 24);
  knobs.declare_u64("hashes", 4, "Bloom filter hash count k", 1, 16);
  knobs.declare_u64("seed", 11, "public hash seed (Kerckhoff)");
}

Table run_sketch(Ctx& ctx) {
  ctx.out.header("SKETCH", "polluting probabilistic telemetry structures");

  const std::size_t kCells = ctx.knobs.u("cells");
  const auto kHashes = static_cast<std::uint32_t>(ctx.knobs.u("hashes"));
  const auto kSeed = static_cast<std::uint32_t>(ctx.knobs.u("seed"));

  // Part 1: Bloom saturation — crafted vs random keys, equal counts.
  std::vector<std::uint64_t> legit;
  for (int i = 0; i < 400; ++i) legit.push_back(net::mix64(i + 1));

  ctx.out.row("Bloom filter m=%zu k=%u, 400 legitimate keys resident",
              kCells, kHashes);
  ctx.out.row("%8s | %10s %10s | %10s %10s", "attack", "rand fill",
              "rand FPR", "craft fill", "craft FPR");
  double crafted_fpr_mid = 0.0, random_fpr_mid = 0.0;
  double crafted_fpr_half_m = 0.0, random_fpr_half_m = 0.0;
  for (std::size_t keys : {256u, 512u, 1024u, 2048u}) {
    std::vector<std::uint64_t> random_keys;
    for (std::size_t i = 0; i < keys; ++i) {
      random_keys.push_back(net::mix64(0xabc000 + i));
    }
    const auto crafted =
        sketch::craft_saturating_keys(kCells, kHashes, kSeed, keys);
    const auto r1 = sketch::run_bloom_pollution(kCells, kHashes, kSeed,
                                                legit, random_keys);
    const auto r2 = sketch::run_bloom_pollution(kCells, kHashes, kSeed,
                                                legit, crafted);
    ctx.out.row("%8zu | %9.3f %9.3f%% | %9.3f %9.3f%%", keys,
                r1.fill_after, r1.fpr_after * 100.0, r2.fill_after,
                r2.fpr_after * 100.0);
    if (keys == 1024) {
      crafted_fpr_mid = r2.fpr_after;
      random_fpr_mid = r1.fpr_after;
    }
    if (keys == 2048) {
      crafted_fpr_half_m = r2.fpr_after;
      random_fpr_half_m = r1.fpr_after;
    }
  }
  ctx.out.claim(crafted_fpr_mid > 2.0 * random_fpr_mid,
                "crafted keys inflate the false-positive rate >2x faster "
                "than random traffic at equal insert counts (evil "
                "choices)");
  ctx.out.claim(crafted_fpr_half_m > 0.99 && random_fpr_half_m < 0.8,
                "m/2 crafted keys fully saturate the filter (FPR = 1) "
                "while random keys leave it far from saturated");

  // Part 2: targeted false positives.
  const auto fps =
      sketch::find_false_positive_keys(kCells, kHashes, kSeed, legit, 10);
  ctx.out.row();
  ctx.out.row("targeted collisions found offline: %zu keys the filter "
              "will falsely report as members",
              fps.size());
  ctx.out.claim(!fps.empty(),
                "attacker can manufacture specific false positives "
                "(public hash functions, Kerckhoff)");

  // Part 3: FlowRadar decode destruction.
  ctx.out.row();
  ctx.out.row("FlowRadar coded table: 1024 cells, 200 legitimate flows");
  ctx.out.row("%12s | %10s %12s %12s", "attack flows", "decode ok",
              "flows out", "stuck cells");
  sketch::FlowRadarConfig frcfg;
  bool before_ok = false, after_broken = false;
  for (std::size_t attack : {0u, 400u, 800u, 1600u, 3200u}) {
    const auto r = sketch::run_flowradar_overflow(frcfg, 200, attack);
    ctx.out.row("%12zu | %10s %12zu %12zu", attack,
                r.decode_complete_after ? "yes" : "NO",
                r.decoded_flows_after, r.stuck_cells_after);
    if (attack == 0) before_ok = r.decode_complete_after;
    if (attack == 1600) after_broken = !r.decode_complete_after;
  }
  ctx.out.claim(before_ok, "well-dimensioned FlowRadar decodes perfectly");
  ctx.out.claim(after_broken,
                "single-packet flow spraying destroys the telemetry batch "
                "(decode stalls)");

  // Part 4: LossRadar digest overflow.
  sketch::LossRadarConfig lrcfg;
  sketch::LossRadar up{lrcfg}, down{lrcfg};
  for (std::uint64_t i = 1; i <= 400; ++i) {
    const auto id = net::mix64(i);
    up.add(id);
    if (i % 40 != 0) down.add(id);  // 10 genuine losses
  }
  const auto small_loss = up.diff_decode(down);
  sketch::LossRadar up2{lrcfg}, down2{lrcfg};
  for (std::uint64_t i = 1; i <= 4000; ++i) up2.add(net::mix64(i));
  const auto flood = up2.diff_decode(down2);
  ctx.out.row();
  ctx.out.row("LossRadar (256 cells): 10 genuine losses -> decode %s, "
              "%zu ids recovered",
              small_loss.complete() ? "ok" : "STALLED",
              small_loss.lost.size());
  ctx.out.row("LossRadar under loss flood (4000 losses) -> decode %s",
              flood.complete() ? "ok" : "STALLED");
  ctx.out.claim(small_loss.complete() && small_loss.lost.size() == 10,
                "LossRadar pinpoints every genuine loss in the benign "
                "case");
  ctx.out.claim(!flood.complete(),
                "an attacker-inflated loss batch overflows the digest and "
                "blinds the loss telemetry");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kSketch,
                        {"sketch.pollution", "SKETCH",
                         "polluting probabilistic telemetry structures",
                         declare_sketch, run_sketch});

}  // namespace

int scenario_anchor_sketch() { return 0; }

}  // namespace intox::scenario
