// Legacy bench/example entry points. The historical binaries
// (bench_blink_fig2, examples/pcc_mitm, ...) stay on disk as one-line
// main()s that forward here; run_legacy_shim rewrites their historical
// flags onto `intox run <scenario> --set ...` and calls driver_main
// in-process, so stdout stays byte-identical to the pre-registry
// binaries.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace intox::scenario {

struct LegacySpec {
  /// Legacy value flag -> knob name, e.g. {"--runs", "runs"}; the flag
  /// consumes the next argument as the knob value.
  std::vector<std::pair<std::string, std::string>> value_flags;
  /// Legacy boolean switch -> knob name, e.g. {"--attack", "attack"};
  /// presence sets the knob true.
  std::vector<std::pair<std::string, std::string>> switch_flags;
  /// Knob receiving a single bare positional argument (e.g.
  /// blink_hijack's bot count); empty = positionals rejected.
  std::string positional_knob;
};

/// Forwards a legacy command line to `intox run <scenario>`. The
/// driver's own flags (--threads, --metrics-out, --trace-out, --set,
/// --sweep, --config) pass through unchanged; anything else must match
/// the spec or the shim prints a one-line diagnostic and returns 2.
int run_legacy_shim(const char* scenario, int argc, char** argv,
                    const LegacySpec& spec = {});

}  // namespace intox::scenario
