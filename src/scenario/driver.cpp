#include "scenario/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/report.hpp"
#include "scenario/console.hpp"
#include "scenario/knob.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "sim/runner.hpp"
#include "validate/invariant.hpp"

namespace intox::scenario {
namespace {

/// One-line stderr diagnostic + exit status 2, the same contract
/// obs::parse_threads_arg established for --threads.
int fail(const std::string& message) {
  std::fprintf(stderr, "intox: %s\n", message.c_str());
  return 2;
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: intox <command> [args]\n"
               "  list                       enumerate registered scenarios\n"
               "  knobs <scenario>           show a scenario's knobs\n"
               "  run <scenario> [options]   run one scenario\n"
               "      --set key=value        override a knob\n"
               "      --sweep key=a:b:step   sweep a numeric knob "
               "(cross-product)\n"
               "      --config FILE          key=value lines, '#' comments\n"
               "      --threads N            worker threads (0 = auto)\n"
               "      --metrics-out FILE     write the BENCH_<family>.json "
               "report here\n"
               "      --trace-out FILE       write trace spans here\n"
               "  validate [scenario...]     rerun with throw-mode "
               "invariants, console off\n"
               "  help                       this text\n");
}

const Scenario* find_or_diagnose(const char* name, std::string* error) {
  const Scenario* sc = Registry::instance().find(name);
  if (sc == nullptr) {
    *error = std::string("unknown scenario '") + name +
             "' (run 'intox list' to enumerate)";
  }
  return sc;
}

int cmd_list() {
  for (const Scenario* sc : Registry::instance().all()) {
    std::printf("%-22s %-12s %s\n", sc->name.c_str(), sc->family.c_str(),
                sc->description.c_str());
  }
  return 0;
}

int cmd_knobs(int argc, char** argv) {
  if (argc < 3) return fail("knobs: missing scenario name");
  std::string error;
  const Scenario* sc = find_or_diagnose(argv[2], &error);
  if (sc == nullptr) return fail(error);
  KnobSet knobs;
  if (sc->declare_knobs != nullptr) sc->declare_knobs(knobs);
  std::printf("%s (%s) — %s\n", sc->name.c_str(), sc->family.c_str(),
              sc->description.c_str());
  for (const Knob& k : knobs.all()) {
    std::string spec = std::string(to_string(k.kind)) + "=" + k.default_text;
    if (k.has_range) {
      char range[64];
      std::snprintf(range, sizeof range, " in [%g, %g]", k.min_value,
                    k.max_value);
      spec += range;
    }
    std::printf("  %-18s %-28s %s\n", k.name.c_str(), spec.c_str(),
                k.help.c_str());
  }
  return 0;
}

/// Applies a key=value config file; returns empty on success, else the
/// diagnostic to print.
std::string apply_config(const std::string& path, KnobSet* knobs) {
  std::ifstream in{path};
  if (!in) return "--config: cannot open '" + path + "'";
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    std::string body = line.substr(begin, end - begin + 1);
    if (body.empty() || body[0] == '#') continue;
    const auto eq = body.find('=');
    if (eq == std::string::npos || eq == 0) {
      return path + ":" + std::to_string(lineno) +
             ": expected key=value, got '" + body + "'";
    }
    std::string err = knobs->set(body.substr(0, eq), body.substr(eq + 1));
    if (!err.empty()) {
      return path + ":" + std::to_string(lineno) + ": " + err;
    }
  }
  return "";
}

struct SweepSpec {
  std::string key;
  std::vector<std::string> values;  // pre-rendered, validated via set()
};

/// Parses `key=a:b:step` against the declared knobs. Returns empty on
/// success and fills *out, else the diagnostic.
std::string parse_sweep(const std::string& text, const KnobSet& knobs,
                        SweepSpec* out) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    return "--sweep expects key=a:b:step, got '" + text + "'";
  }
  out->key = text.substr(0, eq);
  const Knob* knob = knobs.find(out->key);
  if (knob == nullptr) {
    return "--sweep: unknown knob '" + out->key + "'";
  }
  if (knob->kind != KnobKind::kU64 && knob->kind != KnobKind::kDouble) {
    return "--sweep: knob '" + out->key + "' is " +
           to_string(knob->kind) + "; only u64/double knobs sweep";
  }
  const std::string range = text.substr(eq + 1);
  double parts[3];
  std::size_t pos = 0;
  for (int i = 0; i < 3; ++i) {
    const auto colon = range.find(':', pos);
    const bool last = i == 2;
    if (last != (colon == std::string::npos)) {
      return "--sweep expects key=a:b:step, got '" + text + "'";
    }
    const std::string piece =
        last ? range.substr(pos) : range.substr(pos, colon - pos);
    char* tail = nullptr;
    parts[i] = std::strtod(piece.c_str(), &tail);
    if (piece.empty() || tail == nullptr || *tail != '\0') {
      return "--sweep: '" + piece + "' in '" + text + "' is not a number";
    }
    pos = colon == std::string::npos ? range.size() : colon + 1;
  }
  const double lo = parts[0], hi = parts[1], step = parts[2];
  if (step <= 0.0) return "--sweep: step must be > 0 in '" + text + "'";
  if (lo > hi) return "--sweep: empty range in '" + text + "' (a > b)";
  for (double v = lo; v <= hi + step * 1e-9; v += step) {
    char buf[64];
    if (knob->kind == KnobKind::kU64) {
      const double rounded = std::round(v);
      if (std::fabs(v - rounded) > 1e-6) {
        return "--sweep: integer knob '" + out->key +
               "' hit non-integer value in '" + text + "'";
      }
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(rounded));
    } else {
      std::snprintf(buf, sizeof buf, "%.12g", v);
    }
    out->values.emplace_back(buf);
  }
  return "";
}

int run_once(const Scenario& sc, const KnobSet& knobs, Console* console,
             sim::ParallelRunner* runner) {
  Ctx ctx{knobs, *console, *runner};
  Table table = sc.run(ctx);
  return table.exit_code;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return fail("run: missing scenario name");
  std::string error;
  const Scenario* sc = find_or_diagnose(argv[2], &error);
  if (sc == nullptr) return fail(error);

  KnobSet knobs;
  if (sc->declare_knobs != nullptr) sc->declare_knobs(knobs);

  std::vector<SweepSpec> sweeps;
  for (int i = 3; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--set") {
      if (i + 1 >= argc) return fail("--set requires key=value");
      const std::string kv = argv[++i];
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail("--set expects key=value, got '" + kv + "'");
      }
      std::string err = knobs.set(kv.substr(0, eq), kv.substr(eq + 1));
      if (!err.empty()) return fail(err);
    } else if (arg == "--sweep") {
      if (i + 1 >= argc) return fail("--sweep requires key=a:b:step");
      SweepSpec spec;
      std::string err = parse_sweep(argv[++i], knobs, &spec);
      if (!err.empty()) return fail(err);
      sweeps.push_back(std::move(spec));
    } else if (arg == "--config") {
      if (i + 1 >= argc) return fail("--config requires a file path");
      std::string err = apply_config(argv[++i], &knobs);
      if (!err.empty()) return fail(err);
    } else if (arg == "--threads" || arg == "--metrics-out" ||
               arg == "--trace-out") {
      // Value validated and consumed by BenchSession from the original
      // argv; here we only insist the value exists.
      if (i + 1 >= argc) {
        return fail(std::string(arg) + " requires a value");
      }
      ++i;
    } else {
      return fail("unknown argument '" + std::string(arg) +
                  "' (try 'intox help')");
    }
  }

  obs::BenchSession session{argc, argv, sc->family};
  sim::ParallelRunner runner{session.threads()};
  Console console;

  if (sweeps.empty()) return run_once(*sc, knobs, &console, &runner);

  // Cross-product in flag order; first --sweep varies slowest.
  int exit_code = 0;
  std::vector<std::size_t> index(sweeps.size(), 0);
  for (;;) {
    std::string banner;
    for (std::size_t s = 0; s < sweeps.size(); ++s) {
      const std::string& value = sweeps[s].values[index[s]];
      std::string err = knobs.set(sweeps[s].key, value);
      if (!err.empty()) return fail(err);  // range-rejected sweep point
      if (!banner.empty()) banner += ' ';
      banner += sweeps[s].key + "=" + value;
    }
    std::printf("[sweep] %s\n", banner.c_str());
    exit_code = std::max(exit_code, run_once(*sc, knobs, &console, &runner));
    std::size_t s = sweeps.size();
    while (s > 0 && ++index[s - 1] == sweeps[s - 1].values.size()) {
      index[s - 1] = 0;
      --s;
    }
    if (s == 0) break;
  }
  return exit_code;
}

int cmd_validate(int argc, char** argv) {
  std::vector<const Scenario*> targets;
  if (argc > 2) {
    for (int i = 2; i < argc; ++i) {
      std::string error;
      const Scenario* sc = find_or_diagnose(argv[i], &error);
      if (sc == nullptr) return fail(error);
      targets.push_back(sc);
    }
  } else {
    targets = Registry::instance().all();
  }

  int failures = 0;
  for (const Scenario* sc : targets) {
    KnobSet knobs;
    if (sc->declare_knobs != nullptr) sc->declare_knobs(knobs);
    obs::BenchSession session{0, nullptr, sc->family};
    sim::ParallelRunner runner{session.threads()};
    Console console;
    console.set_quiet(true);
    validate::ScopedInvariantMode mode{validate::InvariantMode::kThrow};
    std::string verdict = "OK";
    try {
      Ctx ctx{knobs, console, runner};
      Table table = sc->run(ctx);
      if (table.exit_code != 0) {
        verdict = "FAIL (exit " + std::to_string(table.exit_code) + ")";
        ++failures;
      }
    } catch (const validate::InvariantError& e) {
      verdict = std::string("FAIL (") + e.what() + ")";
      ++failures;
    }
    std::printf("validate %-22s %s\n", sc->name.c_str(), verdict.c_str());
    std::fflush(stdout);
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace

int driver_main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string_view command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    usage(stdout);
    return 0;
  }
  if (command == "list") return cmd_list();
  if (command == "knobs") return cmd_knobs(argc, argv);
  if (command == "run") return cmd_run(argc, argv);
  if (command == "validate") return cmd_validate(argc, argv);
  return fail("unknown command '" + std::string(command) +
              "' (try 'intox help')");
}

}  // namespace intox::scenario
