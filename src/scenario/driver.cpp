#include "scenario/driver.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flightrec.hpp"
#include "obs/forensics.hpp"
#include "obs/report.hpp"
#include "scenario/console.hpp"
#include "scenario/knob.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "sim/runner.hpp"
#include "sweep/point.hpp"
#include "validate/invariant.hpp"

namespace intox::scenario {
namespace {

/// One-line stderr diagnostic + exit status 2, the same contract
/// obs::parse_threads_arg established for --threads.
int fail(const std::string& message) {
  std::fprintf(stderr, "intox: %s\n", message.c_str());
  return 2;
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: intox <command> [args]\n"
               "  list                       enumerate registered scenarios\n"
               "  knobs <scenario>           show a scenario's knobs\n"
               "  run <scenario> [options]   run one scenario\n"
               "      --set key=value        override a knob\n"
               "      --sweep key=a:b:step   sweep a numeric knob "
               "(cross-product)\n"
               "      --config FILE          key=value lines, '#' comments\n"
               "      --threads N            worker threads (0 = auto)\n"
               "      --metrics-out FILE     write the BENCH_<family>.json "
               "report here\n"
               "      --trace-out FILE       write trace spans here\n"
               "      --flightrec-out FILE   write the flight-recorder "
               "crash dump here\n"
               "      --point N              run only point N of the sweep "
               "cross-product\n"
               "      --point-record FILE    with --point: write a point "
               "record instead of stdout\n"
               "  sweep <scenario> [options] run a sweep across worker "
               "processes\n"
               "      (run + --workers N, --cache-dir DIR, --out FILE; see "
               "'intox sweep --help')\n"
               "  forensics <dump> [--trace-out FILE]\n"
               "                             render a flight-recorder crash "
               "dump as a timeline\n"
               "                             (and optionally a Chrome-trace "
               "file)\n"
               "  validate [scenario...]     rerun with throw-mode "
               "invariants, console off\n"
               "  help                       this text\n");
}

const Scenario* find_or_diagnose(const char* name, std::string* error) {
  const Scenario* sc = Registry::instance().find(name);
  if (sc == nullptr) {
    *error = std::string("unknown scenario '") + name +
             "' (run 'intox list' to enumerate)";
  }
  return sc;
}

int cmd_list() {
  for (const Scenario* sc : Registry::instance().all()) {
    std::printf("%-22s %-12s %s\n", sc->name.c_str(), sc->family.c_str(),
                sc->description.c_str());
  }
  return 0;
}

int cmd_knobs(int argc, char** argv) {
  if (argc < 3) return fail("knobs: missing scenario name");
  std::string error;
  const Scenario* sc = find_or_diagnose(argv[2], &error);
  if (sc == nullptr) return fail(error);
  KnobSet knobs;
  if (sc->declare_knobs != nullptr) sc->declare_knobs(knobs);
  std::printf("%s (%s) — %s\n", sc->name.c_str(), sc->family.c_str(),
              sc->description.c_str());
  for (const Knob& k : knobs.all()) {
    std::string spec = std::string(to_string(k.kind)) + "=" + k.default_text;
    if (k.has_range) {
      char range[64];
      std::snprintf(range, sizeof range, " in [%g, %g]", k.min_value,
                    k.max_value);
      spec += range;
    }
    std::printf("  %-18s %-28s %s\n", k.name.c_str(), spec.c_str(),
                k.help.c_str());
  }
  return 0;
}

/// Applies a key=value config file; returns empty on success, else the
/// diagnostic to print.
std::string apply_config(const std::string& path, KnobSet* knobs) {
  std::ifstream in{path};
  if (!in) return "--config: cannot open '" + path + "'";
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    std::string body = line.substr(begin, end - begin + 1);
    if (body.empty() || body[0] == '#') continue;
    const auto eq = body.find('=');
    if (eq == std::string::npos || eq == 0) {
      return path + ":" + std::to_string(lineno) +
             ": expected key=value, got '" + body + "'";
    }
    std::string err = knobs->set(body.substr(0, eq), body.substr(eq + 1));
    if (!err.empty()) {
      return path + ":" + std::to_string(lineno) + ": " + err;
    }
  }
  return "";
}

int run_once(const Scenario& sc, const KnobSet& knobs, Console* console,
             sim::ParallelRunner* runner) {
  Ctx ctx{knobs, *console, *runner};
  Table table = sc.run(ctx);
  return table.exit_code;
}

/// Redirects fd 1 into a tmpfile between begin() and end(), so a
/// `--point-record` worker can embed the scenario's table output in its
/// record instead of interleaving it with the orchestrator's own
/// stdout. Scenarios print through stdio, so an fd-level swap catches
/// everything, including child-library printf.
class StdoutCapture {
 public:
  ~StdoutCapture() {
    if (active_) end();
  }

  bool begin() {
    std::fflush(stdout);
    saved_fd_ = ::dup(1);
    tmp_ = std::tmpfile();
    if (saved_fd_ < 0 || tmp_ == nullptr ||
        ::dup2(::fileno(tmp_), 1) < 0) {
      if (saved_fd_ >= 0) ::close(saved_fd_);
      if (tmp_ != nullptr) std::fclose(tmp_);
      saved_fd_ = -1;
      tmp_ = nullptr;
      return false;
    }
    active_ = true;
    return true;
  }

  std::string end() {
    if (!active_) return "";
    std::fflush(stdout);
    ::dup2(saved_fd_, 1);
    ::close(saved_fd_);
    active_ = false;
    std::string text;
    std::rewind(tmp_);
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, tmp_)) > 0) {
      text.append(buf, n);
    }
    std::fclose(tmp_);
    tmp_ = nullptr;
    return text;
  }

 private:
  int saved_fd_ = -1;
  std::FILE* tmp_ = nullptr;
  bool active_ = false;
};

bool knob_is_swept(const std::vector<sweep::SweepAxis>& axes,
                   std::string_view key) {
  for (const sweep::SweepAxis& axis : axes) {
    if (axis.key == key) return true;
  }
  return false;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return fail("run: missing scenario name");
  std::string error;
  const Scenario* sc = find_or_diagnose(argv[2], &error);
  if (sc == nullptr) return fail(error);

  KnobSet knobs;
  if (sc->declare_knobs != nullptr) sc->declare_knobs(knobs);

  std::vector<sweep::SweepAxis> axes;
  std::vector<std::string> set_keys;
  std::optional<std::size_t> point;
  std::string point_record_path;
  for (int i = 3; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--set") {
      if (i + 1 >= argc) return fail("--set requires key=value");
      const std::string kv = argv[++i];
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail("--set expects key=value, got '" + kv + "'");
      }
      std::string key = kv.substr(0, eq);
      if (knob_is_swept(axes, key)) {
        return fail("--set and --sweep both name knob '" + key +
                    "' (a sweep decides that knob's value)");
      }
      std::string err = knobs.set(key, kv.substr(eq + 1));
      if (!err.empty()) return fail(err);
      set_keys.push_back(std::move(key));
    } else if (arg == "--sweep") {
      if (i + 1 >= argc) return fail("--sweep requires key=a:b:step");
      sweep::SweepAxis axis;
      std::string err = sweep::parse_sweep_axis(argv[++i], knobs, &axis);
      if (!err.empty()) return fail(err);
      if (std::find(set_keys.begin(), set_keys.end(), axis.key) !=
          set_keys.end()) {
        return fail("--set and --sweep both name knob '" + axis.key +
                    "' (a sweep decides that knob's value)");
      }
      if (knob_is_swept(axes, axis.key)) {
        return fail("--sweep: knob '" + axis.key + "' swept twice");
      }
      axes.push_back(std::move(axis));
    } else if (arg == "--config") {
      if (i + 1 >= argc) return fail("--config requires a file path");
      std::string err = apply_config(argv[++i], &knobs);
      if (!err.empty()) return fail(err);
    } else if (arg == "--point") {
      if (i + 1 >= argc) return fail("--point requires an index");
      const char* s = argv[++i];
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(s, &end, 10);
      if (s[0] == '\0' || end == s || *end != '\0' || errno == ERANGE ||
          s[0] == '-') {
        return fail(std::string("--point expects a non-negative integer, "
                                "got '") + s + "'");
      }
      point = static_cast<std::size_t>(v);
    } else if (arg == "--point-record") {
      if (i + 1 >= argc) return fail("--point-record requires a file path");
      point_record_path = argv[++i];
    } else if (arg == "--threads" || arg == "--metrics-out" ||
               arg == "--trace-out" || arg == "--flightrec-out") {
      // Value validated and consumed by BenchSession from the original
      // argv; here we only insist the value exists.
      if (i + 1 >= argc) {
        return fail(std::string(arg) + " requires a value");
      }
      ++i;
    } else {
      return fail("unknown argument '" + std::string(arg) +
                  "' (try 'intox help')");
    }
  }

  if (!point_record_path.empty() && !point.has_value()) {
    return fail("--point-record requires --point");
  }
  const std::size_t total = sweep::point_count(axes);
  if (total == 0) {
    return fail("--sweep cross product exceeds " +
                std::to_string(sweep::kMaxSweepPoints) + " points");
  }
  if (point.has_value() && *point >= total) {
    return fail("--point " + std::to_string(*point) +
                " out of range (sweep has " + std::to_string(total) +
                (total == 1 ? " point)" : " points)"));
  }

  obs::flightrec_set_scenario(sc->name.c_str());
  obs::BenchSession session{argc, argv, sc->family};
  if (point.has_value()) session.apply_point_suffix(*point);
  sim::ParallelRunner runner{session.threads()};
  Console console;

  if (point.has_value()) {
    // Worker mode: execute exactly one point of the product. With
    // --point-record, stdout goes into the record file instead of the
    // terminal — the orchestrator merges records in point order, so the
    // concatenated output is byte-identical to the serial sweep.
    const sweep::Point pt = sweep::point_at(axes, *point);
    for (const auto& [key, value] : pt) {
      std::string err = knobs.set(key, value);
      if (!err.empty()) return fail(err);  // range-rejected sweep point
    }
    StdoutCapture capture;
    const bool recording = !point_record_path.empty();
    if (recording && !capture.begin()) {
      return fail("--point-record: cannot capture stdout");
    }
    if (!axes.empty()) {
      std::printf("[sweep] %s\n", sweep::point_banner(pt).c_str());
    }
    const int exit_code = run_once(*sc, knobs, &console, &runner);
    if (recording) {
      obs::PointRecord record;
      record.scenario = sc->name;
      record.family = sc->family;
      for (const Knob& k : knobs.all()) {
        record.knobs.emplace_back(k.name, render_value(k));
      }
      record.banner = sweep::point_banner(pt);
      record.exit_code = exit_code;
      record.stdout_text = capture.end();
      if (!obs::write_point_record(point_record_path, record)) return 1;
    }
    return exit_code;
  }

  if (axes.empty()) return run_once(*sc, knobs, &console, &runner);

  // Cross-product in flag order; first --sweep varies slowest.
  int exit_code = 0;
  for (std::size_t i = 0; i < total; ++i) {
    const sweep::Point pt = sweep::point_at(axes, i);
    for (const auto& [key, value] : pt) {
      std::string err = knobs.set(key, value);
      if (!err.empty()) return fail(err);  // range-rejected sweep point
    }
    std::printf("[sweep] %s\n", sweep::point_banner(pt).c_str());
    exit_code = std::max(exit_code, run_once(*sc, knobs, &console, &runner));
  }
  return exit_code;
}

int cmd_validate(int argc, char** argv) {
  std::vector<const Scenario*> targets;
  if (argc > 2) {
    for (int i = 2; i < argc; ++i) {
      std::string error;
      const Scenario* sc = find_or_diagnose(argv[i], &error);
      if (sc == nullptr) return fail(error);
      targets.push_back(sc);
    }
  } else {
    targets = Registry::instance().all();
  }

  int failures = 0;
  for (const Scenario* sc : targets) {
    KnobSet knobs;
    if (sc->declare_knobs != nullptr) sc->declare_knobs(knobs);
    obs::flightrec_set_scenario(sc->name.c_str());
    obs::BenchSession session{0, nullptr, sc->family};
    sim::ParallelRunner runner{session.threads()};
    Console console;
    console.set_quiet(true);
    validate::ScopedInvariantMode mode{validate::InvariantMode::kThrow};
    std::string verdict = "OK";
    try {
      Ctx ctx{knobs, console, runner};
      Table table = sc->run(ctx);
      if (table.exit_code != 0) {
        verdict = "FAIL (exit " + std::to_string(table.exit_code) + ")";
        ++failures;
      }
    } catch (const validate::InvariantError& e) {
      verdict = std::string("FAIL (") + e.what() + ")";
      ++failures;
    }
    std::printf("validate %-22s %s\n", sc->name.c_str(), verdict.c_str());
    std::fflush(stdout);
  }
  return failures > 0 ? 1 : 0;
}

int cmd_forensics(int argc, char** argv) {
  std::string dump_path;
  std::string trace_out;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--trace-out") {
      if (i + 1 >= argc) return fail("--trace-out requires a value");
      trace_out = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return fail("forensics: unknown argument '" + std::string(arg) +
                  "' (usage: intox forensics <dump> [--trace-out FILE])");
    } else if (dump_path.empty()) {
      dump_path = arg;
    } else {
      return fail("forensics: multiple dump paths given");
    }
  }
  if (dump_path.empty()) return fail("forensics: missing dump path");

  obs::FlightrecDump dump;
  std::string error;
  if (!obs::load_flightrec_dump(dump_path, &dump, &error)) {
    return fail("forensics: " + error);
  }
  const std::string timeline = obs::render_flightrec_timeline(dump);
  std::fwrite(timeline.data(), 1, timeline.size(), stdout);
  if (!trace_out.empty()) {
    const std::string doc = obs::render_flightrec_chrome_trace(dump);
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    if (f == nullptr) {
      return fail("forensics: cannot write " + trace_out);
    }
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    if (!ok) return fail("forensics: short write to " + trace_out);
    std::fprintf(stderr, "forensics: wrote Chrome trace to %s\n",
                 trace_out.c_str());
  }
  return 0;
}

}  // namespace

int driver_main(int argc, char** argv) {
  // Crash plumbing first: any command (and any scenario body it runs)
  // dumps the flight recorder on a fatal invariant or signal. The
  // pid-suffixed default keeps concurrent drivers from clobbering one
  // another; --flightrec-out / INTOX_FLIGHTREC_DUMP override it.
  obs::flightrec_init();
  if (obs::flightrec_dump_path().empty()) {
    obs::set_flightrec_dump_path(
        "intox.flightrec." + std::to_string(static_cast<long>(::getpid())) +
        ".json");
  }
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string_view command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    usage(stdout);
    return 0;
  }
  if (command == "list") return cmd_list();
  if (command == "knobs") return cmd_knobs(argc, argv);
  if (command == "run") return cmd_run(argc, argv);
  if (command == "validate") return cmd_validate(argc, argv);
  if (command == "forensics") return cmd_forensics(argc, argv);
  return fail("unknown command '" + std::string(command) +
              "' (try 'intox help')");
}

}  // namespace intox::scenario
