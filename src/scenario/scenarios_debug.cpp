// debug.* scenarios: deterministic workloads whose only purpose is to
// exercise the failure plumbing — the flight recorder, the fatal
// invariant path, and the sweep orchestrator's crash forensics. The
// workload is plain scheduler churn with a running checksum, so the
// stdout (and thus the point record) is a pure function of the knobs.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "net/hash.hpp"
#include "obs/flightrec.hpp"
#include "scenario/registry.hpp"
#include "sim/event_queue.hpp"
#include "validate/invariant.hpp"

namespace intox::scenario {
namespace {

void declare_debug_crash(KnobSet& knobs) {
  knobs.declare_u64("seed", 1,
                    "rng stream selector; also matched against "
                    "INTOX_DEBUG_CRASH_SEED");
  knobs.declare_u64("events", 20000, "scheduler events to fire", 2,
                    100000000);
  knobs.declare_string("crash", "none",
                       "force a failure at the midpoint: "
                       "none|segv|abort|invariant");
}

void force_crash(const std::string& mode) {
  if (mode == "segv") {
    std::raise(SIGSEGV);
  } else if (mode == "abort") {
    std::abort();
  } else if (mode == "invariant") {
    validate::set_invariant_mode(validate::InvariantMode::kFatal);
    INTOX_INVARIANT(false, "debug.crash: forced fatal invariant");
  }
  // Unknown mode: keep running; the claim below still verifies the
  // workload itself.
}

Table run_debug_crash(Ctx& ctx) {
  ctx.out.header("DEBUG",
                 "deterministic scheduler churn with an optional forced "
                 "crash at the midpoint");

  const std::uint64_t seed = ctx.knobs.u("seed");
  const std::uint64_t events = ctx.knobs.u("events");
  std::string crash = ctx.knobs.s("crash");
  // Out-of-band crash trigger for the crash-forensics harness: the env
  // pair picks ONE sweep point (by seed) without entering the knob
  // vector, so the point's cache key — and therefore the resumed
  // sweep's merged report — is byte-identical with and without it.
  if (const char* env = std::getenv("INTOX_DEBUG_CRASH_SEED")) {
    char* end = nullptr;
    if (std::strtoull(env, &end, 10) == seed && end != env) {
      const char* mode = std::getenv("INTOX_DEBUG_CRASH_MODE");
      crash = (mode != nullptr && mode[0] != '\0') ? mode : "segv";
    }
  }

  sim::Scheduler sched;
  sim::Rng rng{seed};
  std::uint64_t fired = 0;
  std::uint64_t checksum = 0;
  const std::uint64_t crash_at = events / 2;
  std::function<void()> tick = [&] {
    ++fired;
    checksum = net::mix64(checksum ^ fired);
    if (fired == crash_at && crash != "none") {
      obs::flightrec_record(obs::FrType::kNote,
                            static_cast<std::uint64_t>(sched.now()), 1,
                            fired, checksum);
      force_crash(crash);
    }
    if (fired < events) {
      sched.schedule_after(
          1 + static_cast<sim::Duration>(rng.uniform_int(0, 1000)), tick);
    }
  };
  sched.schedule_at(0, tick);
  sched.run();

  ctx.out.row("fired %llu events, checksum %016llx",
              static_cast<unsigned long long>(fired),
              static_cast<unsigned long long>(checksum));
  ctx.out.claim(fired == events, "every scheduled event fired");
  Table table;
  table.exit_code = fired == events ? 0 : 1;
  return table;
}

INTOX_REGISTER_SCENARIO(kDebugCrash,
                        {"debug.crash", "DEBUG",
                         "deterministic churn that can crash on demand "
                         "(flight-recorder forensics harness)",
                         declare_debug_crash, run_debug_crash});

}  // namespace

int scenario_anchor_debug() { return 0; }

}  // namespace intox::scenario
