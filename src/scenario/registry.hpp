// Self-registering scenario registry. A scenarios_*.cpp file defines
// its declare/run functions and registers them with
//
//   namespace {
//   INTOX_REGISTER_SCENARIO(kFig2, {"blink.fig2", "FIG2",
//                                   "description...", declare, run});
//   }  // namespace
//
// plus one anchor constant (see registry.cpp) so the static library's
// linker keeps the translation unit alive.
#pragma once

#include <string_view>
#include <vector>

#include "scenario/scenario.hpp"

namespace intox::scenario {

class Registry {
 public:
  /// The process-wide registry; populated by Registration statics before
  /// main().
  static Registry& instance();

  /// Aborts on a duplicate name: two scenarios claiming one name is a
  /// build-wiring bug, not a runtime condition.
  void add(Scenario scenario);

  [[nodiscard]] const Scenario* find(std::string_view name) const;
  /// Every scenario, sorted by name.
  [[nodiscard]] std::vector<const Scenario*> all() const;

 private:
  std::vector<Scenario> scenarios_;
};

struct Registration {
  explicit Registration(Scenario scenario);
};

#define INTOX_REGISTER_SCENARIO(ident, ...)      \
  const ::intox::scenario::Registration ident {  \
    ::intox::scenario::Scenario __VA_ARGS__      \
  }

}  // namespace intox::scenario
