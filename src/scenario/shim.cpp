#include "scenario/shim.hpp"

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/driver.hpp"

namespace intox::scenario {
namespace {

const std::string* lookup(
    const std::vector<std::pair<std::string, std::string>>& table,
    std::string_view flag) {
  for (const auto& [legacy, knob] : table) {
    if (legacy == flag) return &knob;
  }
  return nullptr;
}

}  // namespace

int run_legacy_shim(const char* scenario, int argc, char** argv,
                    const LegacySpec& spec) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 8);
  args.emplace_back(argc > 0 ? argv[0] : "intox");
  args.emplace_back("run");
  args.emplace_back(scenario);

  bool positional_used = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--threads" || arg == "--metrics-out" ||
        arg == "--trace-out" || arg == "--set" || arg == "--sweep" ||
        arg == "--config") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "intox: %s requires a value\n", argv[i]);
        return 2;
      }
      args.emplace_back(arg);
      args.emplace_back(argv[++i]);
      continue;
    }
    if (const std::string* knob = lookup(spec.value_flags, arg)) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "intox: %s requires a value\n", argv[i]);
        return 2;
      }
      args.emplace_back("--set");
      args.emplace_back(*knob + "=" + argv[++i]);
      continue;
    }
    if (const std::string* knob = lookup(spec.switch_flags, arg)) {
      args.emplace_back("--set");
      args.emplace_back(*knob + "=true");
      continue;
    }
    if (!spec.positional_knob.empty() && !positional_used &&
        arg.rfind("--", 0) != 0) {
      positional_used = true;
      args.emplace_back("--set");
      args.emplace_back(spec.positional_knob + "=" + std::string(arg));
      continue;
    }
    std::fprintf(stderr, "intox: unknown argument '%s'\n", argv[i]);
    return 2;
  }

  std::vector<char*> forwarded;
  forwarded.reserve(args.size());
  for (std::string& a : args) forwarded.push_back(a.data());
  return driver_main(static_cast<int>(forwarded.size()), forwarded.data());
}

}  // namespace intox::scenario
