// The scenario console: byte-compatible with the bench_util.hpp table
// conventions every bench printed before the scenario registry existed
// (64-column `=` rules, "  [PASS]/[CHECK]" claims, "  note:" remarks).
// Stdout stays the golden artifact — the parity tests diff `intox run`
// against the legacy bench output byte for byte — while the console
// additionally tallies claims for the driver's Table and supports a
// quiet mode so `intox validate` can run every scenario silently.
#pragma once

#include <cstddef>

namespace intox::scenario {

class Console {
 public:
  void header(const char* exp_id, const char* what);

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 2, 3)))
#endif
  void row(const char* fmt, ...);

  /// Blank table row (avoids the zero-length-format warning).
  void row();

  /// printf passthrough for narrated output (the example scenarios). No
  /// newline is appended.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 2, 3)))
#endif
  void raw(const char* fmt, ...);

  void claim(bool ok, const char* text);
  void note(const char* text);

  void set_quiet(bool quiet) { quiet_ = quiet; }
  [[nodiscard]] bool quiet() const { return quiet_; }
  [[nodiscard]] std::size_t claims() const { return claims_; }
  [[nodiscard]] std::size_t passed() const { return passed_; }

 private:
  bool quiet_ = false;
  std::size_t claims_ = 0;
  std::size_t passed_ = 0;
};

}  // namespace intox::scenario
