// Typed experiment knobs: the declarative half of a Scenario.
//
// Every scenario declares its tunable parameters once — name, type,
// default, range, help text — and both the `intox` driver's strict
// `--set`/`--sweep`/`--config` parsing and the legacy bench shims apply
// values through the same KnobSet. Unknown keys, malformed values and
// out-of-range numbers are rejected with a one-line diagnostic instead
// of silently falling through to a default (the same contract
// obs::parse_threads_arg established for --threads).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace intox::scenario {

enum class KnobKind { kBool, kU64, kDouble, kString };

const char* to_string(KnobKind kind);

struct Knob;

/// Renders a knob's *current* value as text that round-trips exactly
/// through KnobSet::set (doubles in shortest round-trip form). This is
/// the canonical form the sweep cache keys and point records use — two
/// distinct values never render to the same string.
std::string render_value(const Knob& knob);

struct Knob {
  std::string name;
  KnobKind kind = KnobKind::kU64;
  std::string help;
  // Current value; only the member matching `kind` is meaningful.
  bool b = false;
  std::uint64_t u = 0;
  double d = 0.0;
  std::string s;
  /// The declared default, pre-rendered for `intox knobs`.
  std::string default_text;
  /// Inclusive numeric range (kU64 / kDouble only).
  bool has_range = false;
  double min_value = 0.0;
  double max_value = 0.0;
};

class KnobSet {
 public:
  void declare_bool(const std::string& name, bool def,
                    const std::string& help);
  void declare_u64(const std::string& name, std::uint64_t def,
                   const std::string& help);
  void declare_u64(const std::string& name, std::uint64_t def,
                   const std::string& help, std::uint64_t min,
                   std::uint64_t max);
  void declare_double(const std::string& name, double def,
                      const std::string& help);
  void declare_double(const std::string& name, double def,
                      const std::string& help, double min, double max);
  void declare_string(const std::string& name, const std::string& def,
                      const std::string& help);

  /// Typed accessors; a wrong name or kind is a programming error in the
  /// scenario body and throws std::logic_error.
  [[nodiscard]] bool b(std::string_view name) const;
  [[nodiscard]] std::uint64_t u(std::string_view name) const;
  [[nodiscard]] double d(std::string_view name) const;
  [[nodiscard]] const std::string& s(std::string_view name) const;

  /// Strictly applies one key/value pair. Returns an empty string on
  /// success, else the one-line diagnostic the caller should print.
  [[nodiscard]] std::string set(const std::string& key,
                                const std::string& value);

  [[nodiscard]] const Knob* find(std::string_view name) const;
  [[nodiscard]] const std::vector<Knob>& all() const { return knobs_; }

 private:
  void declare(Knob knob);
  [[nodiscard]] const Knob& require(std::string_view name,
                                    KnobKind kind) const;
  [[nodiscard]] std::string declared_names() const;

  std::vector<Knob> knobs_;
};

}  // namespace intox::scenario
