// Defense scenario (§5): reruns each case-study attack with the
// corresponding supervisor guard enabled, and sweeps the guards'
// thresholds to expose the detection / false-positive trade-off. Ported
// verbatim from the pre-registry bench binary.
#include <cstdint>
#include <memory>

#include "blink/attacker.hpp"
#include "pcc/attacker.hpp"
#include "pcc/receiver.hpp"
#include "pytheas/experiment.hpp"
#include "scenario/registry.hpp"
#include "supervisor/blink_guard.hpp"
#include "supervisor/pcc_guard.hpp"
#include "supervisor/pytheas_guard.hpp"

namespace intox::scenario {
namespace {

// ---- Blink -----------------------------------------------------------

struct BlinkRun {
  std::size_t reroutes = 0;
  std::size_t vetoed = 0;
  double first_reroute_s = -1.0;
};

BlinkRun run_blink(bool attack, bool genuine_failure,
                   supervisor::BlinkRtoGuard* guard, std::uint64_t seed) {
  sim::Scheduler sched;
  sim::Rng rng{seed};
  trafficgen::TraceConfig trace;
  trace.active_flows = attack ? 2000 : 800;
  trace.horizon = sim::seconds(attack ? 240 : 90);

  blink::BlinkNode node{blink::BlinkConfig{}};
  node.monitor_prefix(trace.victim_prefix, 0, 1);
  if (guard) node.set_reroute_guard(guard->as_reroute_guard());

  auto sink = [&](net::Packet p) {
    dataplane::PipelineMetadata meta;
    node.process(p, meta, sched.now());
  };
  trafficgen::FlowPopulation pop{sched, rng.fork("drivers"), sink};
  {
    sim::Rng trng = rng.fork("trace");
    for (const auto& f : trafficgen::synthesize_trace(trace, trng)) {
      pop.add_legit(f);
    }
  }
  if (attack) {
    sim::Rng brng = rng.fork("bots");
    trafficgen::MaliciousFlowDriver::Options opts;
    opts.send_period = trace.pkt_interval;
    for (const auto& f : trafficgen::synthesize_malicious_flows(
             trace, 105, 0, brng, blink::kMaliciousTagBase)) {
      pop.add_malicious(f, opts);
    }
  }
  pop.start_all();
  if (genuine_failure) {
    sched.schedule_at(sim::seconds(60), [&] { pop.fail_all_legit(); });
  }
  sched.run_until(trace.horizon);
  pop.stop_all();

  BlinkRun out;
  out.reroutes = node.reroutes().size();
  out.vetoed = static_cast<std::size_t>(node.vetoed());
  if (!node.reroutes().empty()) {
    out.first_reroute_s = sim::to_seconds(node.reroutes()[0].when);
  }
  return out;
}

// ---- PCC -------------------------------------------------------------

struct PccRun {
  double rate_cv = 0.0;
  double amp = 0.0;
  bool detected = false;
};

PccRun run_pcc(bool attack, bool with_guard, std::uint64_t seed) {
  sim::Scheduler sched;
  pcc::PccConfig cfg;
  cfg.seed = seed;
  sim::LinkConfig fwd;
  fwd.rate_bps = 20e6;
  fwd.prop_delay = sim::millis(20);
  fwd.queue_limit_bytes = 64 * 1024;
  fwd.red_min_bytes = 8 * 1024;
  fwd.red_max_bytes = 64 * 1024;
  fwd.red_max_prob = 0.25;
  sim::LinkConfig rev;
  rev.rate_bps = 1e9;
  rev.prop_delay = sim::millis(20);

  pcc::PccSender* sp = nullptr;
  sim::Link reverse{sched, rev, [&](net::Packet a) {
                      sp->on_ack(static_cast<std::uint32_t>(a.flow_tag),
                                 sched.now());
                    }};
  pcc::PccReceiver recv{
      [&](net::Packet a) { reverse.transmit(std::move(a)); }};
  sim::Link bottleneck{sched, fwd,
                       [&](net::Packet d) { recv.on_data(d); }};
  net::FiveTuple t{net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{2, 2, 2, 2},
                   10000, 443, net::IpProto::kUdp};
  pcc::PccSender sender{sched, cfg, t, [&](net::Packet p) {
                          bottleneck.transmit(std::move(p));
                        }};
  sp = &sender;
  std::unique_ptr<supervisor::PccGuard> guard;
  if (with_guard) guard = std::make_unique<supervisor::PccGuard>(sender);
  std::unique_ptr<pcc::PccMitm> mitm;
  if (attack) {
    mitm = std::make_unique<pcc::PccMitm>(sched, pcc::PccMitmConfig{},
                                          &sender);
    mitm->attach(bottleneck);
  }
  sender.start();
  sched.run_until(sim::seconds(60));
  sender.stop();

  PccRun out;
  sim::RunningStats stats;
  for (const auto& [when, rate] : sender.rate_series().points()) {
    if (when >= sim::seconds(40)) stats.add(rate);
  }
  out.rate_cv = stats.mean() > 0 ? stats.stddev() / stats.mean() : 0.0;
  out.amp = stats.mean() > 0
                ? (stats.max() - stats.min()) / (2.0 * stats.mean())
                : 0.0;
  out.detected = guard && guard->detected();
  return out;
}

void declare_defense(KnobSet& knobs) {
  knobs.declare_u64("blink_seed", 21, "Blink guard attack-run seed");
  knobs.declare_u64("blink_failure_seed", 22,
                    "Blink guard genuine-failure-run seed");
  knobs.declare_u64("sweep_seed", 31,
                    "Blink veto-fraction sweep attack seed");
  knobs.declare_u64("sweep_failure_seed", 32,
                    "Blink veto-fraction sweep genuine-failure seed");
  knobs.declare_u64("pyth_bots", 40,
                    "lying sessions in the Pytheas guard experiments", 0,
                    100000);
  knobs.declare_u64("pcc_seed", 5, "PCC guard experiment seed");
}

Table run_defense(Ctx& ctx) {
  ctx.out.header("DEFENSE",
                 "§5 supervisors vs the three case-study attacks");

  // ---- Blink RTO-plausibility guard ----------------------------------
  const std::uint64_t blink_seed = ctx.knobs.u("blink_seed");
  const std::uint64_t blink_failure_seed =
      ctx.knobs.u("blink_failure_seed");
  ctx.out.row("Blink (RTO-plausibility guard):");
  const auto blink_attack = run_blink(true, false, nullptr, blink_seed);
  supervisor::BlinkRtoGuard bguard1;
  const auto blink_defended = run_blink(true, false, &bguard1, blink_seed);
  supervisor::BlinkRtoGuard bguard2;
  const auto blink_failure =
      run_blink(false, true, &bguard2, blink_failure_seed);
  ctx.out.row("  attack, no guard : %zu reroute(s) at %.0f s (hijacked)",
              blink_attack.reroutes, blink_attack.first_reroute_s);
  ctx.out.row("  attack, guarded  : %zu reroute(s), %zu vetoed",
              blink_defended.reroutes, blink_defended.vetoed);
  ctx.out.row("  real failure     : %zu reroute(s) at %.1f s, %zu vetoed",
              blink_failure.reroutes, blink_failure.first_reroute_s,
              blink_failure.vetoed);
  ctx.out.claim(blink_attack.reroutes > 0,
                "undefended Blink gets hijacked");
  ctx.out.claim(blink_defended.reroutes == 0 && blink_defended.vetoed > 0,
                "guard vetoes the fake failure");
  ctx.out.claim(blink_failure.reroutes > 0 && blink_failure.vetoed == 0,
                "guard does not delay genuine fast reroute");

  // Threshold sweep: veto_fraction trade-off.
  ctx.out.row("  threshold sweep (veto when implausible fraction >= f):");
  for (double f : {0.10, 0.25, 0.50, 0.90}) {
    supervisor::BlinkGuardConfig gcfg;
    gcfg.veto_fraction = f;
    supervisor::BlinkRtoGuard ga{gcfg}, gb{gcfg};
    const auto atk =
        run_blink(true, false, &ga, ctx.knobs.u("sweep_seed"));
    const auto fail =
        run_blink(false, true, &gb, ctx.knobs.u("sweep_failure_seed"));
    ctx.out.row("    f=%.2f : attack blocked=%s, genuine reroute kept=%s",
                f, atk.reroutes == 0 ? "yes" : "NO",
                fail.reroutes > 0 ? "yes" : "NO");
  }

  // ---- Pytheas report filter ------------------------------------------
  ctx.out.row();
  ctx.out.row("Pytheas (rate-limit + outlier quarantine):");
  pytheas::PoisonConfig pcfg;
  pcfg.bot_sessions = ctx.knobs.u("pyth_bots");
  const auto pyth_attack = pytheas::run_poisoning_experiment(pcfg);
  auto pguard = std::make_shared<supervisor::PytheasGuard>();
  const auto pyth_defended =
      pytheas::run_poisoning_experiment(pcfg, pguard);
  pytheas::PoisonConfig clean_cfg;
  clean_cfg.bot_sessions = 0;
  auto pguard2 = std::make_shared<supervisor::PytheasGuard>();
  const auto pyth_clean_guarded =
      pytheas::run_poisoning_experiment(clean_cfg, pguard2);
  ctx.out.row("  attack, no guard : QoE %.2f -> %.2f, flipped %3.0f%%",
              pyth_attack.mean_qoe_before, pyth_attack.mean_qoe_after,
              pyth_attack.flipped_fraction * 100.0);
  ctx.out.row(
      "  attack, guarded  : QoE %.2f -> %.2f, flipped %3.0f%%, "
      "%llu reports filtered (%llu rate-limited, %llu outliers)",
      pyth_defended.mean_qoe_before, pyth_defended.mean_qoe_after,
      pyth_defended.flipped_fraction * 100.0,
      static_cast<unsigned long long>(pyth_defended.filtered_reports),
      static_cast<unsigned long long>(pguard->rate_limited()),
      static_cast<unsigned long long>(pguard->quarantined()));
  ctx.out.row("  clean, guarded   : QoE after %.2f (false-positive cost)",
              pyth_clean_guarded.mean_qoe_after);
  ctx.out.claim(pyth_attack.flipped_fraction > 0.5,
                "undefended group decision flips");
  ctx.out.claim(pyth_defended.flipped_fraction < 0.1,
                "guard keeps the group on the genuinely-best arm");
  ctx.out.claim(pyth_clean_guarded.mean_qoe_after >
                    pyth_attack.mean_qoe_before - 0.2,
                "guard costs clean operation essentially nothing");

  ctx.out.row(
      "  outlier-k sweep (quarantine when |q-med| > k*MAD + 0.3):");
  for (double k : {2.0, 4.0, 8.0, 16.0}) {
    supervisor::PytheasGuardConfig gcfg;
    gcfg.outlier_k = k;
    auto g = std::make_shared<supervisor::PytheasGuard>(gcfg);
    const auto r = pytheas::run_poisoning_experiment(pcfg, g);
    ctx.out.row("    k=%4.1f : flipped %3.0f%%, quarantined %llu", k,
                r.flipped_fraction * 100.0,
                static_cast<unsigned long long>(g->quarantined()));
  }

  // ---- PCC epsilon clamp ----------------------------------------------
  ctx.out.row();
  ctx.out.row("PCC (drop-pattern detector + epsilon clamp):");
  const std::uint64_t pcc_seed = ctx.knobs.u("pcc_seed");
  const auto pcc_clean = run_pcc(false, true, pcc_seed);
  const auto pcc_attack = run_pcc(true, false, pcc_seed);
  const auto pcc_defended = run_pcc(true, true, pcc_seed);
  ctx.out.row("  clean, guarded   : cv %5.2f%%, amp %5.2f%%, detected=%s",
              pcc_clean.rate_cv * 100.0, pcc_clean.amp * 100.0,
              pcc_clean.detected ? "YES (false positive)" : "no");
  ctx.out.row("  attack, no guard : cv %5.2f%%, amp %5.2f%%",
              pcc_attack.rate_cv * 100.0, pcc_attack.amp * 100.0);
  ctx.out.row("  attack, guarded  : cv %5.2f%%, amp %5.2f%%, detected=%s",
              pcc_defended.rate_cv * 100.0, pcc_defended.amp * 100.0,
              pcc_defended.detected ? "yes" : "NO");
  ctx.out.claim(!pcc_clean.detected,
                "no false alarm on the benign congested path");
  ctx.out.claim(pcc_defended.detected,
                "probe-targeted loss pattern detected");
  ctx.out.claim(pcc_defended.amp < pcc_attack.amp,
                "epsilon clamp shrinks the attacker-induced oscillation");
  return Table{};
}

INTOX_REGISTER_SCENARIO(kDefense,
                        {"defense.guards", "DEFENSE",
                         "§5 supervisors vs the three case-study attacks",
                         declare_defense, run_defense});

}  // namespace

int scenario_anchor_defense() { return 0; }

}  // namespace intox::scenario
