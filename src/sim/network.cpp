#include "sim/network.hpp"

namespace intox::sim {

Link& Network::connect_oneway(Node& a, int port_a, Node& b, int port_b,
                              const LinkConfig& config) {
  links_.push_back(std::make_unique<Link>(
      sched_, config,
      [&b, port_b](net::Packet pkt) { b.receive(std::move(pkt), port_b); }));
  Link& link = *links_.back();
  a.attach_port(port_a, &link);
  return link;
}

Network::Duplex Network::connect(Node& a, int port_a, Node& b, int port_b,
                                 const LinkConfig& config) {
  Link& ab = connect_oneway(a, port_a, b, port_b, config);
  Link& ba = connect_oneway(b, port_b, a, port_a, config);
  return Duplex{ab, ba};
}

}  // namespace intox::sim
