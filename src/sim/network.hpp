// Network: owns links and wires nodes together over a shared scheduler.
#pragma once

#include <memory>
#include <vector>

#include "sim/node.hpp"

namespace intox::sim {

class Network {
 public:
  explicit Network(Scheduler& sched) : sched_(sched) {}

  struct Duplex {
    Link& a_to_b;
    Link& b_to_a;
  };

  /// Creates a duplex connection: a.port_a --link--> b.port_b and back.
  /// The same config is used in both directions.
  Duplex connect(Node& a, int port_a, Node& b, int port_b,
                 const LinkConfig& config);

  /// Creates a one-way link from a.port_a into b.port_b.
  Link& connect_oneway(Node& a, int port_a, Node& b, int port_b,
                       const LinkConfig& config);

  [[nodiscard]] Scheduler& scheduler() { return sched_; }

 private:
  Scheduler& sched_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace intox::sim
