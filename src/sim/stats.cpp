#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace intox::sim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const std::size_t n = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double TimeSeries::at(Time t, double before) const {
  // points_ is time-ordered by construction (record() is called as the
  // simulation advances).
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](Time lhs, const auto& p) { return lhs < p.first; });
  if (it == points_.begin()) return before;
  return std::prev(it)->second;
}

double TimeSeries::mean_over(Time from, Time to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t < from || t > to) continue;
    sum += v;
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::vector<double> TimeSeries::resample(Time from, Time to,
                                         Duration step) const {
  std::vector<double> out;
  for (Time t = from; t <= to; t += step) out.push_back(at(t));
  return out;
}

SeriesStats::SeriesStats(Time from, Time to, Duration step)
    : from_(from), step_(step) {
  std::size_t points = 0;
  for (Time t = from; t <= to; t += step) ++points;
  cells_.resize(points);
}

void SeriesStats::add(const TimeSeries& series) {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].add(series.at(time_at(i)));
  }
  ++series_;
}

void SeriesStats::merge(const SeriesStats& other) {
  // Grids must match; cheap structural check only.
  if (other.cells_.size() != cells_.size()) return;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].merge(other.cells_[i]);
  }
  series_ += other.series_;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    return;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

void Histogram::add(double x) {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;
  }
  ++counts_[i];
  ++total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return bucket_lo(i) + width_ / 2.0;
  }
  return hi_;
}

}  // namespace intox::sim
