#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "validate/invariant.hpp"

namespace intox::sim {

void RunningStats::add(double x) {
  INTOX_INVARIANT(!std::isnan(x), "RunningStats::add(NaN) would poison the "
                                  "mean of all %zu samples", n_);
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const std::size_t n = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void TimeSeries::record(Time t, double value) {
  INTOX_INVARIANT(points_.empty() || t >= points_.back().first,
                  "TimeSeries::record time went backwards (%lld < %lld); "
                  "at()/mean_over() assume time order",
                  static_cast<long long>(t),
                  static_cast<long long>(points_.back().first));
  points_.push_back({t, value});
}

double TimeSeries::at(Time t, double before) const {
  // points_ is time-ordered by construction (record() enforces it).
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](Time lhs, const auto& p) { return lhs < p.first; });
  if (it == points_.begin()) return before;
  return std::prev(it)->second;
}

double TimeSeries::mean_over(Time from, Time to) const {
  INTOX_INVARIANT(to >= from, "mean_over window is inverted: [%lld, %lld]",
                  static_cast<long long>(from), static_cast<long long>(to));
  if (to <= from) return at(from);
  // Integrate the step function: each segment contributes value * width.
  double integral = 0.0;
  Time seg_start = from;
  auto it = std::upper_bound(
      points_.begin(), points_.end(), from,
      [](Time lhs, const auto& p) { return lhs < p.first; });
  double value = (it == points_.begin()) ? 0.0 : std::prev(it)->second;
  for (; it != points_.end() && it->first < to; ++it) {
    if (it->first > seg_start) {
      integral += value * static_cast<double>(it->first - seg_start);
      seg_start = it->first;
    }
    value = it->second;  // same-timestamp points: the last one wins
  }
  integral += value * static_cast<double>(to - seg_start);
  return integral / static_cast<double>(to - from);
}

std::vector<double> TimeSeries::resample(Time from, Time to,
                                         Duration step) const {
  INTOX_INVARIANT(step > 0, "resample step must be positive (got %lld)",
                  static_cast<long long>(step));
  std::vector<double> out;
  if (step <= 0) return out;
  for (Time t = from; t <= to; t += step) out.push_back(at(t));
  return out;
}

SeriesStats::SeriesStats(Time from, Time to, Duration step)
    : from_(from), step_(step) {
  INTOX_INVARIANT(step > 0, "SeriesStats grid step must be positive (got "
                            "%lld)", static_cast<long long>(step));
  INTOX_INVARIANT(to >= from, "SeriesStats grid is inverted: [%lld, %lld]",
                  static_cast<long long>(from), static_cast<long long>(to));
  if (step <= 0 || to < from) return;  // degraded path: empty grid
  cells_.resize(static_cast<std::size_t>((to - from) / step) + 1);
}

void SeriesStats::add(const TimeSeries& series) {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].add(series.at(time_at(i)));
  }
  ++series_;
}

void SeriesStats::merge(const SeriesStats& other) {
  if (other.cells_.size() != cells_.size() || other.from_ != from_ ||
      other.step_ != step_) {
    // A silent return here used to drop the other shard's trials from the
    // sweep aggregate — exactly the input corruption the paper warns
    // about, applied to ourselves.
    INTOX_INVARIANT(false,
                    "SeriesStats::merge grid mismatch (%zu cells from %lld "
                    "step %lld vs %zu cells from %lld step %lld) would drop "
                    "%zu series",
                    cells_.size(), static_cast<long long>(from_),
                    static_cast<long long>(step_), other.cells_.size(),
                    static_cast<long long>(other.from_),
                    static_cast<long long>(other.step_), other.series_);
    return;  // counter-only mode: keep the old skip rather than mixing grids
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].merge(other.cells_[i]);
  }
  series_ += other.series_;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi),
      width_(buckets > 0 ? (hi - lo) / static_cast<double>(buckets) : 0.0),
      counts_(buckets, 0) {
  INTOX_INVARIANT(buckets > 0, "Histogram needs at least one bucket");
  INTOX_INVARIANT(hi > lo, "Histogram range is empty: [%g, %g)", lo, hi);
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    INTOX_INVARIANT(false,
                    "Histogram::merge layout mismatch ([%g, %g) x%zu vs "
                    "[%g, %g) x%zu) would drop %llu samples",
                    lo_, hi_, counts_.size(), other.lo_, other.hi_,
                    other.counts_.size(),
                    static_cast<unsigned long long>(other.total_));
    return;  // counter-only mode: keep the old skip rather than mixing layouts
  }
  if (other.total_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (total_ == 0) {
    min_seen_ = other.min_seen_;
    max_seen_ = other.max_seen_;
  } else {
    min_seen_ = std::min(min_seen_, other.min_seen_);
    max_seen_ = std::max(max_seen_, other.max_seen_);
  }
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;

  std::uint64_t in_range = 0;
  for (std::uint64_t c : counts_) in_range += c;
  INTOX_INVARIANT(in_range + underflow_ + overflow_ == total_,
                  "Histogram::merge lost samples: %llu bucketed + %llu "
                  "under + %llu over != %llu total",
                  static_cast<unsigned long long>(in_range),
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_),
                  static_cast<unsigned long long>(total_));
}

void Histogram::add(double x) {
  INTOX_INVARIANT(!std::isnan(x), "Histogram::add(NaN) is unclassifiable");
  if (std::isnan(x)) return;  // counter-only mode: drop rather than misfile
  if (total_ == 0) {
    min_seen_ = max_seen_ = x;
  } else {
    min_seen_ = std::min(min_seen_, x);
    max_seen_ = std::max(max_seen_, x);
  }
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // float edge case
    ++counts_[i];
  }
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  if (q <= 0.0) return min_seen_;
  if (q >= 1.0) return max_seen_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  // Rank order: underflow mass first, then the buckets, then overflow.
  if (target < underflow_) return min_seen_;
  std::uint64_t seen = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) {
      const double mid = bucket_lo(i) + width_ / 2.0;
      return std::clamp(mid, min_seen_, max_seen_);
    }
  }
  return max_seen_;  // target falls in the overflow mass
}

}  // namespace intox::sim
