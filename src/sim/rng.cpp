#include "sim/rng.hpp"

#include <cmath>

#include "net/hash.hpp"

namespace intox::sim {

Rng Rng::fork(std::string_view label) const {
  const std::uint64_t h = net::fnv1a64(
      std::as_bytes(std::span{label.data(), label.size()}), seed_);
  return Rng{net::mix64(h)};
}

Rng Rng::fork(std::uint64_t index) const {
  return Rng{net::mix64(seed_ ^ net::mix64(index + 1))};
}

double Rng::pareto(double x_m, double alpha) {
  // Inverse-CDF sampling; guard against u == 0 which would diverge.
  double u = uniform();
  if (u <= 0.0) u = 1e-18;
  return x_m / std::pow(u, 1.0 / alpha);
}

}  // namespace intox::sim
