#include "sim/event_queue.hpp"

namespace intox::sim {

Scheduler::EventId Scheduler::schedule_at(Time t, Callback cb) {
  if (t < now_) t = now_;
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return EventId{id};
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

bool Scheduler::pop_next(Entry& out) {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    auto c = cancelled_.find(e.id);
    if (c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    out = e;
    return true;
  }
  return false;
}

std::size_t Scheduler::run(std::size_t limit) {
  std::size_t n = 0;
  Entry e;
  while (n < limit && pop_next(e)) {
    now_ = e.time;
    auto it = callbacks_.find(e.id);
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    cb();
    ++n;
    ++processed_;
  }
  return n;
}

std::size_t Scheduler::run_until(Time t) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    // Peek through tombstones without popping live entries early.
    Entry top = heap_.top();
    if (cancelled_.count(top.id)) {
      heap_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.time > t) break;
    heap_.pop();
    now_ = top.time;
    auto it = callbacks_.find(top.id);
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    cb();
    ++n;
    ++processed_;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace intox::sim
