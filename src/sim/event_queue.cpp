#include "sim/event_queue.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "validate/invariant.hpp"

namespace intox::sim {

Scheduler::~Scheduler() {
  // Retirement-time accounting: a single fold into the registry per
  // scheduler lifetime instead of per event. Totals are sums of what
  // each (deterministically seeded) trial processed, so they fold to
  // the same values for any --threads.
  static obs::Counter& processed_counter =
      obs::Registry::global().counter("sim.scheduler.events_processed");
  static obs::Gauge& depth_gauge =
      obs::Registry::global().gauge("sim.scheduler.queue_depth_hwm");
  if (processed_ > 0) processed_counter.add(processed_);
  if (depth_hwm_ > 0) {
    depth_gauge.update_max(static_cast<double>(depth_hwm_));
  }
}

Scheduler::EventId Scheduler::schedule_at(Time t, Callback cb) {
  INTOX_INVARIANT(static_cast<bool>(cb),
                  "null callback scheduled at t=%lld would crash at fire "
                  "time", static_cast<long long>(t));
  if (!cb) return EventId{};  // counter-only mode: refuse, return invalid id
  if (t < now_) t = now_;
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  if (const std::size_t depth = pending(); depth > depth_hwm_) {
    depth_hwm_ = depth;
  }
  return EventId{id};
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

bool Scheduler::pop_next(Entry& out) {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    auto c = cancelled_.find(e.id);
    if (c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    out = e;
    return true;
  }
  return false;
}

std::size_t Scheduler::run(std::size_t limit) {
  // Drain-batch span: one event per run() call, not per event — the
  // enabled() check keeps the disabled-path cost to one atomic load.
  const bool tracing = obs::trace_enabled();
  const double span_start = tracing ? obs::trace_now_us() : 0.0;
  std::size_t n = 0;
  Entry e;
  while (n < limit && pop_next(e)) {
    // The heap must hand back entries in non-decreasing time order; a
    // violation means heap corruption (or an externally-forced clock)
    // and every subsequent timestamp would be wrong.
    INTOX_INVARIANT(e.time >= now_,
                    "scheduler time went backwards: popped t=%lld with "
                    "now=%lld", static_cast<long long>(e.time),
                    static_cast<long long>(now_));
    auto it = callbacks_.find(e.id);
    INTOX_INVARIANT(it != callbacks_.end(),
                    "live heap entry id=%llu has no callback (tombstone "
                    "bookkeeping leak)",
                    static_cast<unsigned long long>(e.id));
    if (it == callbacks_.end()) continue;  // counter-only mode: skip
    if (e.time > now_) now_ = e.time;
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    cb();
    ++n;
    ++processed_;
  }
  if (tracing && n > 0) {
    obs::trace_complete("scheduler.drain", "sim", span_start, "events", n,
                        "pending", pending());
  }
  return n;
}

std::size_t Scheduler::run_until(Time t) {
  const bool tracing = obs::trace_enabled();
  const double span_start = tracing ? obs::trace_now_us() : 0.0;
  std::size_t n = 0;
  while (!heap_.empty()) {
    // Peek through tombstones without popping live entries early.
    Entry top = heap_.top();
    if (cancelled_.count(top.id)) {
      heap_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.time > t) break;
    heap_.pop();
    INTOX_INVARIANT(top.time >= now_,
                    "scheduler time went backwards: popped t=%lld with "
                    "now=%lld", static_cast<long long>(top.time),
                    static_cast<long long>(now_));
    auto it = callbacks_.find(top.id);
    INTOX_INVARIANT(it != callbacks_.end(),
                    "live heap entry id=%llu has no callback (tombstone "
                    "bookkeeping leak)",
                    static_cast<unsigned long long>(top.id));
    if (it == callbacks_.end()) continue;  // counter-only mode: skip
    if (top.time > now_) now_ = top.time;
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    cb();
    ++n;
    ++processed_;
  }
  if (now_ < t) now_ = t;
  if (tracing && n > 0) {
    obs::trace_complete("scheduler.drain_until", "sim", span_start, "events",
                        n, "pending", pending());
  }
  return n;
}

}  // namespace intox::sim
