#include "sim/event_queue.hpp"

#include <cstdlib>
#include <cstring>

#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "validate/invariant.hpp"
#include "validate/oracles.hpp"

namespace intox::sim {

namespace {

// EventId <-> wheel handle. Slab slot in the low 32 bits (+1 so a
// default-constructed id stays invalid), generation above. Generations
// start at 1, so a live event's value is never 0.
Scheduler::EventId encode_id(TimingWheel::Ref ref) {
  return Scheduler::EventId{
      (static_cast<std::uint64_t>(ref.gen) << 32) |
      (static_cast<std::uint64_t>(ref.index) + 1)};
}

TimingWheel::Ref decode_id(Scheduler::EventId id) {
  return TimingWheel::Ref{
      static_cast<std::uint32_t>((id.value & 0xffffffffull) - 1),
      static_cast<std::uint32_t>(id.value >> 32)};
}

bool oracle_armed_by_env() {
  static const bool armed = [] {
    const char* v = std::getenv("INTOX_SCHED_ORACLE");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
  }();
  return armed;
}

}  // namespace

Scheduler::Scheduler() {
  if (oracle_armed_by_env()) enable_oracle();
}

Scheduler::~Scheduler() {
  // Retirement-time accounting: a single fold into the registry per
  // scheduler lifetime instead of per event. Totals are sums of what
  // each (deterministically seeded) trial processed, so they fold to
  // the same values for any --threads.
  static obs::Counter& processed_counter =
      obs::Registry::global().counter("sim.scheduler.events_processed");
  static obs::Gauge& depth_gauge =
      obs::Registry::global().gauge("sim.scheduler.queue_depth_hwm");
  if (processed_ > 0) processed_counter.add(processed_);
  if (depth_hwm_ > 0) {
    depth_gauge.update_max(static_cast<double>(depth_hwm_));
  }
}

void Scheduler::enable_oracle() {
  if (oracle_) return;
  INTOX_INVARIANT(pending() == 0,
                  "oracle attached to a scheduler with %zu pending events "
                  "(the mirror starts empty)", pending());
  oracle_ = std::make_unique<validate::SchedulerOracle>();
}

Scheduler::EventId Scheduler::schedule_at(Time t, Callback cb) {
  INTOX_INVARIANT(static_cast<bool>(cb),
                  "null callback scheduled at t=%lld would crash at fire "
                  "time", static_cast<long long>(t));
  if (!cb) return EventId{};  // counter-only mode: refuse, return invalid id
  if (t < now_) t = now_;
  const EventId id = encode_id(wheel_.insert(t, std::move(cb)));
  if (oracle_) oracle_->mirror_schedule(t, id.value, pending());
  if (const std::size_t depth = pending(); depth > depth_hwm_) {
    depth_hwm_ = depth;
  }
  return id;
}

Scheduler::EventId Scheduler::schedule_after(Duration d, Callback cb) {
  if (d < 0) d = 0;
  // Saturating add (satellite of the wheel rewrite): now_ + d used to
  // wrap for huge delays, scheduling the event in the deep past. The
  // event now parks at kTimeMax — "never", observably — and the
  // overflow itself is reported.
  INTOX_INVARIANT(d <= kTimeMax - now_,
                  "schedule_after overflow: now=%lld + d=%lld exceeds the "
                  "time horizon; saturating to kTimeMax",
                  static_cast<long long>(now_), static_cast<long long>(d));
  return schedule_at(saturating_add(now_, d), std::move(cb));
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const bool erased = wheel_.erase(decode_id(id));
  if (oracle_) oracle_->mirror_cancel(id.value, erased, pending());
  return erased;
}

bool Scheduler::fire_next(Time bound) {
  Callback cb;
  Time t = 0;
  TimingWheel::Ref ref;
  if (!wheel_.pop_min_until(bound, cb, t, &ref)) return false;
  // The wheel must hand back events in non-decreasing time order; a
  // violation means bucket corruption (or an externally-forced clock)
  // and every subsequent timestamp would be wrong.
  INTOX_INVARIANT(t >= now_,
                  "scheduler time went backwards: popped t=%lld with "
                  "now=%lld", static_cast<long long>(t),
                  static_cast<long long>(now_));
  const bool have_cb = static_cast<bool>(cb);
  INTOX_INVARIANT(have_cb,
                  "live wheel event id=%llu has no callback (slab "
                  "bookkeeping corruption)",
                  static_cast<unsigned long long>(encode_id(ref).value));
  if (oracle_) oracle_->mirror_fire(encode_id(ref).value, t, pending());
  if (t > now_) now_ = t;
  // Hottest record site in the repo: one enabled-check + five relaxed
  // stores, guarded by the blink.e2e perf-gate baseline.
  obs::flightrec_record(obs::FrType::kSchedFire,
                        static_cast<std::uint64_t>(t));
  if (!have_cb) return true;  // counter-only mode: consume, skip
  cb();
  ++processed_;
  return true;
}

std::size_t Scheduler::run(std::size_t limit) {
  // Drain-batch span: one event per run() call, not per event — the
  // enabled() check keeps the disabled-path cost to one atomic load.
  const bool tracing = obs::trace_enabled();
  const double span_start = tracing ? obs::trace_now_us() : 0.0;
  std::size_t n = 0;
  const std::uint64_t before = processed_;
  while (n < limit && fire_next(kTimeMax)) {
    n = static_cast<std::size_t>(processed_ - before);
  }
  if (tracing && n > 0) {
    obs::trace_complete("scheduler.drain", "sim", span_start, "events", n,
                        "pending", pending());
  }
  return n;
}

std::size_t Scheduler::run_until(Time t) {
  const bool tracing = obs::trace_enabled();
  const double span_start = tracing ? obs::trace_now_us() : 0.0;
  const std::uint64_t before = processed_;
  while (fire_next(t)) {
  }
  if (now_ < t) now_ = t;
  wheel_.advance_cursor(t);
  if (oracle_) oracle_->mirror_boundary(t, pending());
  const auto n = static_cast<std::size_t>(processed_ - before);
  if (tracing && n > 0) {
    obs::trace_complete("scheduler.drain_until", "sim", span_start, "events",
                        n, "pending", pending());
  }
  return n;
}

}  // namespace intox::sim
