// Hierarchical timing wheel: the zero-allocation event store behind
// sim::Scheduler.
//
// Events live in a slab of 64-byte nodes (freelist reuse, generation
// tags) threaded into intrusive doubly-linked bucket lists. Buckets are
// arranged in 11 levels of 64 slots; level k buckets span 64^k ns, so
// level 0 resolves single nanoseconds and level 10's overflow slots
// reach past the maximum representable Time. An event is parked at the
// highest level where its timestamp differs from the wheel cursor and
// cascades toward level 0 as the cursor approaches — each event moves at
// most 10 times, independent of queue depth.
//
// Ordering contract (the one the 17 scenario parity goldens depend on):
// events fire in (time, scheduling order). Every bucket list is kept
// sorted by the insertion sequence number:
//   * direct inserts append at the tail (their seq is globally maximal);
//   * a cascade empties one source bucket in list order into buckets
//     that are provably empty (all lower levels have been drained before
//     a higher-level bucket can cascade), preserving relative order.
// A level-0 bucket therefore holds exactly one timestamp in FIFO order,
// and draining it head-first replays the scheduling order — including
// events appended *during* the drain by callbacks scheduling at `now`.
//
// Cancellation unlinks in O(1) and returns the node to the freelist
// immediately (no tombstones). Handles carry a generation so a stale
// cancel after slot reuse is refused instead of killing the new tenant.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace intox::sim {

class TimingWheel {
 public:
  using Callback = std::function<void()>;

  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;           // 64
  static constexpr int kLevels = 11;                      // 66 bits > Time
  static constexpr std::uint32_t kNil = UINT32_MAX;

  /// Slab handle: (node index, generation). Stale handles (the node
  /// fired or was erased, and possibly reused) are detected and refused.
  struct Ref {
    std::uint32_t index = kNil;
    std::uint32_t gen = 0;
    [[nodiscard]] bool valid() const { return index != kNil; }
  };

  TimingWheel();

  TimingWheel(const TimingWheel&) = delete;
  TimingWheel& operator=(const TimingWheel&) = delete;

  /// Parks `cb` at absolute time `t`. Requires t >= cursor() — the
  /// caller (Scheduler) clamps to its clock, which never trails the
  /// cursor. Assigns the next sequence number (FIFO tie-breaker).
  Ref insert(Time t, Callback cb);

  /// O(1) unlink + freelist release. Returns false (and does nothing)
  /// when the handle is stale: already fired, already erased, or the
  /// slot was reused by a later event.
  bool erase(Ref ref);

  /// Pops the earliest (time, seq) event with time <= bound: moves its
  /// callback into `cb_out`, its timestamp into `t_out`, frees the node,
  /// and advances the cursor to that timestamp. Returns false (without
  /// advancing the cursor past `bound`) when no such event exists.
  /// `ref_out`, when given, receives the popped event's (now stale)
  /// handle — the identity the differential oracle mirrors.
  bool pop_min_until(Time bound, Callback& cb_out, Time& t_out,
                     Ref* ref_out = nullptr);

  /// Advances the cursor floor to `t` (e.g. after run_until(t) drained
  /// everything due). Requires every pending event to be at time >= t.
  void advance_cursor(Time t);

  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Lower bound of every pending event's timestamp.
  [[nodiscard]] Time cursor() const { return static_cast<Time>(cursor_); }
  /// Total nodes ever taken from slab growth (capacity watermark).
  [[nodiscard]] std::size_t slab_capacity() const { return nodes_.size(); }
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// True when `ref` addresses a live (pending) event.
  [[nodiscard]] bool is_live(Ref ref) const {
    return ref.index < nodes_.size() && nodes_[ref.index].bucket != kNoBucket
        && nodes_[ref.index].gen == ref.gen;
  }
  /// Timestamp of a live event (undefined for stale refs).
  [[nodiscard]] Time time_of(Ref ref) const { return nodes_[ref.index].time; }

 private:
  static constexpr std::uint16_t kNoBucket = UINT16_MAX;

  struct Node {
    Callback cb;              // 32 bytes on libstdc++
    Time time = 0;            // 8
    std::uint64_t seq = 0;    // 8: FIFO-within-instant tie-breaker
    std::uint32_t next = kNil;  // bucket list / freelist link
    std::uint32_t prev = kNil;
    std::uint32_t gen = 1;    // bumped on release; 0 never used
    std::uint16_t bucket = kNoBucket;  // level * kSlots + slot, or free
  };
  static_assert(kLevels * kSlotBits >= 64, "wheel must span the Time range");

  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  [[nodiscard]] std::uint32_t alloc_node();
  void free_node(std::uint32_t idx);
  /// Appends node `idx` (time already set) to the bucket owning its
  /// timestamp relative to the current cursor.
  void place(std::uint32_t idx);
  void unlink(std::uint32_t idx);
  /// Moves every event of bucket (level, slot) down the hierarchy after
  /// the cursor advanced into that bucket's span.
  void cascade(int level, int slot);

  std::vector<Node> nodes_;
  std::uint32_t free_head_ = kNil;
  Bucket buckets_[kLevels * kSlots];
  std::uint64_t occupancy_[kLevels] = {};
  std::uint64_t cursor_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;

  // Test-only seam: the cascade-boundary and corruption tests peek at
  // occupancy/bucket state and poison node callbacks in place.
  friend class TimingWheelTestPeer;
};

}  // namespace intox::sim
