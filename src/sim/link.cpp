#include "sim/link.hpp"

#include <algorithm>

#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "validate/invariant.hpp"

namespace intox::sim {

namespace {

void record_drop(obs::FrDropCause cause, const sim::Scheduler& sched,
                 const net::Packet& pkt) {
  obs::flightrec_record(obs::FrType::kLinkDrop,
                        static_cast<std::uint64_t>(sched.now()),
                        static_cast<std::uint64_t>(cause), pkt.dst.value(),
                        pkt.size_bytes());
}

}  // namespace

Link::~Link() {
  // Counter handles are resolved once per process; the destructor then
  // folds this link's totals with relaxed sharded adds. Totals are
  // per-trial work, so they are identical for any --threads.
  struct Handles {
    obs::Counter& tx_packets;
    obs::Counter& tx_bytes;
    obs::Counter& delivered;
    obs::Counter& dropped_queue;
    obs::Counter& dropped_red;
    obs::Counter& dropped_tap;
    obs::Counter& dropped_down;
  };
  static Handles h{
      obs::Registry::global().counter("sim.link.tx_packets"),
      obs::Registry::global().counter("sim.link.tx_bytes"),
      obs::Registry::global().counter("sim.link.delivered_packets"),
      obs::Registry::global().counter("sim.link.dropped_queue"),
      obs::Registry::global().counter("sim.link.dropped_red"),
      obs::Registry::global().counter("sim.link.dropped_tap"),
      obs::Registry::global().counter("sim.link.dropped_down"),
  };
  if (counters_.tx_packets) h.tx_packets.add(counters_.tx_packets);
  if (counters_.tx_bytes) h.tx_bytes.add(counters_.tx_bytes);
  if (counters_.delivered_packets) h.delivered.add(counters_.delivered_packets);
  if (counters_.dropped_queue) h.dropped_queue.add(counters_.dropped_queue);
  if (counters_.dropped_red) h.dropped_red.add(counters_.dropped_red);
  if (counters_.dropped_tap) h.dropped_tap.add(counters_.dropped_tap);
  if (counters_.dropped_down) h.dropped_down.add(counters_.dropped_down);
}

double Link::backlog_bytes() const {
  const Time now = sched_.now();
  if (next_free_ <= now) return 0.0;
  return to_seconds(next_free_ - now) * config_.rate_bps / 8.0;
}

void Link::transmit(net::Packet pkt) {
  INTOX_INVARIANT(config_.rate_bps > 0,
                  "link rate must be positive (got %g bps)",
                  config_.rate_bps);
  ++counters_.tx_packets;
  counters_.tx_bytes += pkt.size_bytes();

  if (!up_) {
    ++counters_.dropped_down;
    record_drop(obs::FrDropCause::kDown, sched_, pkt);
    return;
  }
  if (tap_ && tap_(pkt) == TapAction::kDrop) {
    ++counters_.dropped_tap;
    record_drop(obs::FrDropCause::kTap, sched_, pkt);
    return;
  }

  // Fluid drop-tail: the backlog is the time until the transmitter frees
  // up, expressed in bytes at line rate.
  const double backlog = backlog_bytes();
  if (backlog + pkt.size_bytes() >
      static_cast<double>(config_.queue_limit_bytes)) {
    ++counters_.dropped_queue;
    record_drop(obs::FrDropCause::kQueue, sched_, pkt);
    return;
  }

  // Optional RED early drop on the backlog ramp.
  if (config_.red_min_bytes > 0 && backlog > config_.red_min_bytes) {
    const double span = std::max<double>(
        1.0,
        static_cast<double>(config_.red_max_bytes) - config_.red_min_bytes);
    const double p = std::min(
        config_.red_max_prob,
        config_.red_max_prob * (backlog - config_.red_min_bytes) / span);
    if (red_rng_.bernoulli(p)) {
      ++counters_.dropped_red;
      record_drop(obs::FrDropCause::kRed, sched_, pkt);
      return;
    }
  }

  const Time now = sched_.now();
  const auto serialization = static_cast<Duration>(
      static_cast<double>(pkt.size_bytes()) * 8.0 / config_.rate_bps *
      static_cast<double>(kSecond));
  const Time start = std::max(now, next_free_);
  next_free_ = start + std::max<Duration>(serialization, 1);
  const Time arrival = next_free_ + config_.prop_delay;
  // The transmitter can only move forward in time; a regression here
  // means the serialization-time arithmetic overflowed (negative rate,
  // absurd packet size) and every later delivery time would be wrong.
  INTOX_INVARIANT(next_free_ > start && arrival > now,
                  "link time arithmetic went backwards: start=%lld "
                  "next_free=%lld arrival=%lld now=%lld",
                  static_cast<long long>(start),
                  static_cast<long long>(next_free_),
                  static_cast<long long>(arrival),
                  static_cast<long long>(now));

  const auto h = in_flight_.allocate();
  in_flight_[h] = std::move(pkt);
  sched_.schedule_at(arrival, [this, h] {
    ++counters_.delivered_packets;
    // Move out and release before delivering: the sink may reenter
    // transmit() and reuse (or grow past) this slot.
    net::Packet delivered = std::move(in_flight_[h]);
    in_flight_.release(h);
    deliver_(std::move(delivered));
  });
}

}  // namespace intox::sim
