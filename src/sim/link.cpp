#include "sim/link.hpp"

#include <algorithm>

#include "validate/invariant.hpp"

namespace intox::sim {

double Link::backlog_bytes() const {
  const Time now = sched_.now();
  if (next_free_ <= now) return 0.0;
  return to_seconds(next_free_ - now) * config_.rate_bps / 8.0;
}

void Link::transmit(net::Packet pkt) {
  INTOX_INVARIANT(config_.rate_bps > 0,
                  "link rate must be positive (got %g bps)",
                  config_.rate_bps);
  ++counters_.tx_packets;
  counters_.tx_bytes += pkt.size_bytes();

  if (!up_) {
    ++counters_.dropped_down;
    return;
  }
  if (tap_ && tap_(pkt) == TapAction::kDrop) {
    ++counters_.dropped_tap;
    return;
  }

  // Fluid drop-tail: the backlog is the time until the transmitter frees
  // up, expressed in bytes at line rate.
  const double backlog = backlog_bytes();
  if (backlog + pkt.size_bytes() >
      static_cast<double>(config_.queue_limit_bytes)) {
    ++counters_.dropped_queue;
    return;
  }

  // Optional RED early drop on the backlog ramp.
  if (config_.red_min_bytes > 0 && backlog > config_.red_min_bytes) {
    const double span = std::max<double>(
        1.0, static_cast<double>(config_.red_max_bytes) - config_.red_min_bytes);
    const double p = std::min(
        config_.red_max_prob,
        config_.red_max_prob * (backlog - config_.red_min_bytes) / span);
    if (red_rng_.bernoulli(p)) {
      ++counters_.dropped_red;
      return;
    }
  }

  const Time now = sched_.now();
  const auto serialization = static_cast<Duration>(
      static_cast<double>(pkt.size_bytes()) * 8.0 / config_.rate_bps *
      static_cast<double>(kSecond));
  const Time start = std::max(now, next_free_);
  next_free_ = start + std::max<Duration>(serialization, 1);
  const Time arrival = next_free_ + config_.prop_delay;
  // The transmitter can only move forward in time; a regression here
  // means the serialization-time arithmetic overflowed (negative rate,
  // absurd packet size) and every later delivery time would be wrong.
  INTOX_INVARIANT(next_free_ > start && arrival > now,
                  "link time arithmetic went backwards: start=%lld "
                  "next_free=%lld arrival=%lld now=%lld",
                  static_cast<long long>(start),
                  static_cast<long long>(next_free_),
                  static_cast<long long>(arrival),
                  static_cast<long long>(now));

  sched_.schedule_at(arrival, [this, pkt = std::move(pkt)]() mutable {
    ++counters_.delivered_packets;
    deliver_(std::move(pkt));
  });
}

}  // namespace intox::sim
