// Parallel Monte-Carlo trial runner with deterministic sharding.
//
// Every sweep in this reproduction is "run N independent seeded trials,
// aggregate the results". ParallelRunner shards those trials across a
// worker pool while keeping the output *bit-identical for any thread
// count*: each trial derives its own Rng via `Rng::fork(trial_index)`
// (never a shared stream), per-trial results land in a slot indexed by
// trial, and aggregation folds the slots serially in trial order. Thread
// count therefore changes wall-clock time and nothing else.
//
// Thread-count resolution (first match wins): explicit `threads`
// argument > the INTOX_THREADS environment variable > hardware
// concurrency. Benches expose the first as `--threads N`.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace intox::sim {

/// Resolves a requested worker count: `requested` if > 0, else
/// INTOX_THREADS if set to a positive integer, else
/// std::thread::hardware_concurrency() (min 1).
std::size_t resolve_threads(std::size_t requested);

/// Timing of the most recent `run`/`map` call — the per-sweep perf line
/// the benches emit. `shard_seconds` holds each worker's busy time for
/// the dispatch (one entry per worker), from which `shard_imbalance`
/// derives the max/mean load ratio the observability layer reports.
struct RunReport {
  std::size_t trials = 0;
  std::size_t threads = 1;
  double wall_seconds = 0.0;
  std::vector<double> shard_seconds;
  [[nodiscard]] double trials_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds
                              : 0.0;
  }
  /// max/mean worker busy time: 1.0 = perfectly balanced; 0 = unknown
  /// (no shard timing recorded, e.g. a hand-accumulated report).
  [[nodiscard]] double shard_imbalance() const;
};

class ParallelRunner {
 public:
  /// threads == 0 defers to INTOX_THREADS / hardware concurrency.
  explicit ParallelRunner(std::size_t threads = 0)
      : threads_(resolve_threads(threads)) {}

  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] const RunReport& last_report() const { return report_; }

  /// Runs fn(trial_index) for each trial, returning the results in trial
  /// order. The result type must be default-constructible and
  /// move-assignable. Trials are claimed dynamically (an atomic cursor),
  /// so uneven trial costs balance across workers; determinism is
  /// unaffected because results are keyed by index, not completion order.
  template <typename Fn>
  auto map(std::size_t n_trials, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<R> out(n_trials);
    dispatch(n_trials, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Seeded variant: fn(trial_index, rng) where rng = base.fork(index).
  /// This is the canonical Monte-Carlo entry point — the base Rng is
  /// never advanced, so the trial streams do not depend on scheduling.
  template <typename Fn>
  auto run(const Rng& base, std::size_t n_trials, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t, Rng&>> {
    return map(n_trials, [&](std::size_t i) {
      Rng rng = base.fork(i);
      return fn(i, rng);
    });
  }

  /// Convenience reduction: fn(trial_index, rng) -> double, folded into a
  /// RunningStats in trial order.
  template <typename Fn>
  RunningStats run_stats(const Rng& base, std::size_t n_trials, Fn&& fn) {
    RunningStats agg;
    for (double x : run(base, n_trials, std::forward<Fn>(fn))) agg.add(x);
    return agg;
  }

 private:
  /// Executes body(0..n-1) across the pool; records report_. Rethrows the
  /// first trial exception after all workers have joined.
  void dispatch(std::size_t n_trials,
                const std::function<void(std::size_t)>& body);

  std::size_t threads_;
  RunReport report_;
};

}  // namespace intox::sim
