#include "sim/timing_wheel.hpp"

#include <bit>
#include <utility>

#include "validate/invariant.hpp"

namespace intox::sim {

namespace {

constexpr std::uint64_t low_bits(int n) {
  return n >= 64 ? ~0ull : (1ull << n) - 1;
}

}  // namespace

TimingWheel::TimingWheel() = default;

std::uint32_t TimingWheel::alloc_node() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    Node& n = nodes_[idx];
    INTOX_INVARIANT(n.bucket == kNoBucket,
                    "wheel freelist points at a parked node %u (bucket %u)",
                    idx, n.bucket);
    free_head_ = n.next;
    n.next = n.prev = kNil;
    return idx;
  }
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  INTOX_INVARIANT(idx != kNil, "wheel slab exhausted the 32-bit index space");
  nodes_.emplace_back();
  return idx;
}

void TimingWheel::free_node(std::uint32_t idx) {
  Node& n = nodes_[idx];
  n.cb = nullptr;  // run the closure's destructor eagerly
  ++n.gen;
  n.bucket = kNoBucket;
  n.prev = kNil;
  n.next = free_head_;
  free_head_ = idx;
}

void TimingWheel::place(std::uint32_t idx) {
  Node& n = nodes_[idx];
  const auto ut = static_cast<std::uint64_t>(n.time);
  INTOX_INVARIANT(ut >= cursor_,
                  "wheel insert behind the cursor: t=%llu cursor=%llu",
                  static_cast<unsigned long long>(ut),
                  static_cast<unsigned long long>(cursor_));
  const std::uint64_t diff = ut ^ cursor_;
  const int level =
      diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kSlotBits;
  const int slot = static_cast<int>((ut >> (level * kSlotBits)) &
                                    (kSlots - 1));
  const auto b = static_cast<std::uint16_t>(level * kSlots + slot);
  n.bucket = b;
  Bucket& bucket = buckets_[b];
  // Tail-append. Direct inserts carry the globally largest seq; cascade
  // replays a seq-sorted list into empty buckets — either way the list
  // stays sorted by seq, which is the FIFO-within-instant guarantee.
  INTOX_INVARIANT(bucket.tail == kNil || nodes_[bucket.tail].seq < n.seq,
                  "wheel bucket %u would lose FIFO order: tail seq %llu >= "
                  "inserted seq %llu", b,
                  static_cast<unsigned long long>(
                      bucket.tail == kNil ? 0 : nodes_[bucket.tail].seq),
                  static_cast<unsigned long long>(n.seq));
  n.prev = bucket.tail;
  n.next = kNil;
  if (bucket.tail == kNil) {
    bucket.head = idx;
    occupancy_[level] |= 1ull << slot;
  } else {
    nodes_[bucket.tail].next = idx;
  }
  bucket.tail = idx;
}

void TimingWheel::unlink(std::uint32_t idx) {
  Node& n = nodes_[idx];
  INTOX_INVARIANT(n.bucket != kNoBucket, "unlink of a detached wheel node");
  Bucket& bucket = buckets_[n.bucket];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    bucket.head = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    bucket.tail = n.prev;
  }
  if (bucket.head == kNil) {
    occupancy_[n.bucket / kSlots] &= ~(1ull << (n.bucket % kSlots));
  }
  n.bucket = kNoBucket;
  n.prev = n.next = kNil;
}

TimingWheel::Ref TimingWheel::insert(Time t, Callback cb) {
  const std::uint32_t idx = alloc_node();
  Node& n = nodes_[idx];
  n.cb = std::move(cb);
  n.time = t;
  n.seq = next_seq_++;
  place(idx);
  ++live_;
  return Ref{idx, n.gen};
}

bool TimingWheel::erase(Ref ref) {
  if (ref.index >= nodes_.size()) return false;
  Node& n = nodes_[ref.index];
  if (n.bucket == kNoBucket || n.gen != ref.gen) return false;  // stale
  unlink(ref.index);
  free_node(ref.index);
  INTOX_INVARIANT(live_ > 0, "wheel live-event count would underflow");
  --live_;
  return true;
}

void TimingWheel::cascade(int level, int slot) {
  const auto b = static_cast<std::uint16_t>(level * kSlots + slot);
  Bucket& bucket = buckets_[b];
  std::uint32_t idx = bucket.head;
  // Detach the whole list first: place() below must see the bucket as
  // empty (its occupancy bit cleared) while redistributing.
  bucket.head = bucket.tail = kNil;
  occupancy_[level] &= ~(1ull << slot);
  while (idx != kNil) {
    Node& n = nodes_[idx];
    const std::uint32_t next = n.next;
    n.prev = n.next = kNil;
    n.bucket = kNoBucket;
    place(idx);  // lands at a level strictly below `level`
    INTOX_INVARIANT(n.bucket / kSlots < level,
                    "wheel cascade did not descend: node stayed at level %d",
                    n.bucket / kSlots);
    idx = next;
  }
}

bool TimingWheel::pop_min_until(Time bound, Callback& cb_out, Time& t_out,
                                Ref* ref_out) {
  if (live_ == 0) return false;
  const auto ubound = static_cast<std::uint64_t>(bound < 0 ? 0 : bound);
  for (;;) {
    // Level 0: buckets hold exactly one timestamp; the lowest occupied
    // slot at or after the cursor is the global minimum.
    const int c0 = static_cast<int>(cursor_ & (kSlots - 1));
    const std::uint64_t m0 = occupancy_[0] & ~low_bits(c0);
    if (m0 != 0) {
      const int slot = std::countr_zero(m0);
      const std::uint64_t base = (cursor_ & ~low_bits(kSlotBits)) +
                                 static_cast<std::uint64_t>(slot);
      if (base > ubound) return false;
      cursor_ = base;
      Bucket& bucket = buckets_[slot];
      const std::uint32_t idx = bucket.head;
      Node& n = nodes_[idx];
      INTOX_INVARIANT(static_cast<std::uint64_t>(n.time) == base,
                      "level-0 wheel bucket holds t=%lld but spans tick "
                      "%llu", static_cast<long long>(n.time),
                      static_cast<unsigned long long>(base));
      cb_out = std::move(n.cb);
      t_out = n.time;
      if (ref_out != nullptr) *ref_out = Ref{idx, n.gen};
      unlink(idx);
      free_node(idx);
      --live_;
      return true;
    }
    // Level 0 exhausted for this window: cascade the next occupied
    // higher-level bucket (strictly beyond the cursor's own slot — the
    // cursor's slot at level k is, by construction, held at levels < k).
    bool cascaded = false;
    for (int level = 1; level < kLevels; ++level) {
      const int ck =
          static_cast<int>((cursor_ >> (level * kSlotBits)) & (kSlots - 1));
      const std::uint64_t mk = occupancy_[level] & ~low_bits(ck + 1);
      if (mk == 0) continue;
      const int slot = std::countr_zero(mk);
      const int span_bits = (level + 1) * kSlotBits;
      const std::uint64_t base =
          (span_bits >= 64 ? 0 : (cursor_ & ~low_bits(span_bits))) |
          (static_cast<std::uint64_t>(slot) << (level * kSlotBits));
      if (base > ubound) return false;
      cursor_ = base;
      cascade(level, slot);
      cascaded = true;
      break;
    }
    if (!cascaded) return false;  // nothing pending anywhere
  }
}

void TimingWheel::advance_cursor(Time t) {
  const auto ut = static_cast<std::uint64_t>(t < 0 ? 0 : t);
  if (ut <= cursor_) return;
  // Legal only once everything due at or before `t` has been drained.
  // The probe pop makes the misuse loud: it would surface exactly the
  // event the caller was about to skip.
  Callback cb;
  Time when = 0;
  const bool skipped = pop_min_until(t, cb, when);
  INTOX_INVARIANT(!skipped,
                  "advance_cursor(%lld) skipped a pending event at t=%lld",
                  static_cast<long long>(t), static_cast<long long>(when));
  if (skipped) {
    // Degraded path (count mode): re-park the event instead of dropping
    // it, and refuse the cursor jump so it can still fire.
    insert(when, std::move(cb));
    return;
  }
  cursor_ = ut;
}

}  // namespace intox::sim
