#include "sim/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "validate/invariant.hpp"

namespace intox::sim {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("INTOX_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

double RunReport::shard_imbalance() const {
  if (shard_seconds.empty()) return 0.0;
  double sum = 0.0, max = 0.0;
  for (double s : shard_seconds) {
    sum += s;
    if (s > max) max = s;
  }
  const double mean = sum / static_cast<double>(shard_seconds.size());
  return mean > 0.0 ? max / mean : 0.0;
}

void ParallelRunner::dispatch(std::size_t n_trials,
                              const std::function<void(std::size_t)>& body) {
  // Shard wall-clock timing is perf telemetry (stderr / run report
  // only); trial *results* depend solely on Rng::fork(i).
  // intox-lint: allow(determinism)  -- perf telemetry, not results
  const auto start = std::chrono::steady_clock::now();
  obs::TraceSpan span{"runner.dispatch", "runner"};
  INTOX_INVARIANT(threads_ >= 1, "runner resolved to zero workers");
  const std::size_t workers =
      n_trials > 0 ? std::min(std::max<std::size_t>(threads_, 1), n_trials)
                   : std::size_t{1};
  span.arg0("trials", n_trials);
  span.arg1("workers", workers);
  std::vector<double> shard_seconds(workers, 0.0);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n_trials; ++i) body(i);
  } else {
    std::atomic<std::size_t> cursor{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&](std::size_t shard) {
      obs::TraceSpan shard_span{"runner.shard", "runner"};
      // intox-lint: allow(determinism)  -- per-shard perf telemetry
      const auto shard_start = std::chrono::steady_clock::now();
      std::size_t claimed = 0;
      for (;;) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= n_trials) break;
        try {
          body(i);
          ++claimed;
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          // Drain the remaining trials so peers exit promptly.
          cursor.store(n_trials, std::memory_order_relaxed);
          break;
        }
      }
      shard_seconds[shard] = std::chrono::duration<double>(
          // intox-lint: allow(determinism)  -- per-shard perf telemetry
          std::chrono::steady_clock::now() - shard_start).count();
      shard_span.arg0("trials", claimed);
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker, w);
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  const auto elapsed = std::chrono::duration<double>(
      // intox-lint: allow(determinism)  -- dispatch perf telemetry
      std::chrono::steady_clock::now() - start);
  if (workers <= 1) shard_seconds.assign(1, elapsed.count());
  report_ = RunReport{n_trials, workers, elapsed.count(),
                      std::move(shard_seconds)};

  // Registry accounting is aggregate-only (nothing per-trial): totals
  // fold deterministically across thread counts; the imbalance gauge is
  // a high-water mark, which is placement-dependent by nature — it
  // describes this process's scheduling, not the simulated statistics.
  static obs::Counter& trials_counter =
      obs::Registry::global().counter("sim.runner.trials");
  static obs::Counter& dispatch_counter =
      obs::Registry::global().counter("sim.runner.dispatches");
  static obs::Gauge& imbalance_gauge = []() -> obs::Gauge& {
    // Placement-dependent by nature (it measures this process's thread
    // scheduling), so deterministic snapshots — the sweep point records
    // — leave it out.
    obs::Registry::global().mark_placement_dependent(
        "sim.runner.shard_imbalance_hwm");
    return obs::Registry::global().gauge("sim.runner.shard_imbalance_hwm");
  }();
  trials_counter.add(n_trials);
  dispatch_counter.add(1);
  imbalance_gauge.update_max(report_.shard_imbalance());
}

}  // namespace intox::sim
