#include "sim/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "validate/invariant.hpp"

namespace intox::sim {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("INTOX_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ParallelRunner::dispatch(std::size_t n_trials,
                              const std::function<void(std::size_t)>& body) {
  const auto start = std::chrono::steady_clock::now();
  INTOX_INVARIANT(threads_ >= 1, "runner resolved to zero workers");
  const std::size_t workers =
      n_trials > 0 ? std::min(std::max<std::size_t>(threads_, 1), n_trials)
                   : std::size_t{1};

  if (workers <= 1) {
    for (std::size_t i = 0; i < n_trials; ++i) body(i);
  } else {
    std::atomic<std::size_t> cursor{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&] {
      for (;;) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= n_trials) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          // Drain the remaining trials so peers exit promptly.
          cursor.store(n_trials, std::memory_order_relaxed);
          return;
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);
  report_ = RunReport{n_trials, workers, elapsed.count()};
}

}  // namespace intox::sim
