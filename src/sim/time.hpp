// Simulated time.
//
// Time is a signed 64-bit count of nanoseconds since the start of the
// simulation. Signed so that subtraction is safe; 64 bits gives ~292 years
// of range, far beyond any experiment here.
#pragma once

#include <cstdint>

namespace intox::sim {

using Time = std::int64_t;      // absolute, ns since simulation start
using Duration = std::int64_t;  // relative, ns

/// Largest representable instant. Scheduler arithmetic saturates here
/// instead of wrapping (schedule_after with a huge delay parks the event
/// at the end of time rather than in the past).
inline constexpr Time kTimeMax = INT64_MAX;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;
inline constexpr Duration kMinute = 60 * kSecond;

/// Converts seconds (possibly fractional) to a Duration.
constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}
constexpr Duration millis(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}
constexpr Duration micros(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}

/// Converts a Duration to fractional seconds (for reporting).
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// `t + d` clamped to [t, kTimeMax] — never wraps past the end of time.
/// Requires t >= 0 and d >= 0.
constexpr Time saturating_add(Time t, Duration d) {
  return d > kTimeMax - t ? kTimeMax : t + d;
}

}  // namespace intox::sim
