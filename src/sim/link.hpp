// Point-to-point link model.
//
// A Link is unidirectional: it serializes packets at a configured rate,
// applies propagation delay, and drops when its drop-tail queue is full.
// Two hooks make it the substrate for the paper's attacker models:
//   * `set_tap` installs a man-in-the-middle interceptor that may inspect,
//     mutate, or drop each packet at ingress (§2.1 "MitM" privilege);
//   * `set_up(false)` injects a link failure (what Blink is meant to
//     detect — and what attackers fake).
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/slab.hpp"

namespace intox::sim {

struct LinkConfig {
  double rate_bps = 1e9;                        // serialization rate
  Duration prop_delay = kMillisecond;           // one-way propagation
  std::uint32_t queue_limit_bytes = 256 * 1024; // drop-tail threshold
  /// Optional RED-style AQM: drop probability ramps linearly from 0 at
  /// `red_min_bytes` of backlog to `red_max_prob` at `red_max_bytes`.
  /// red_min_bytes == 0 disables early drop (pure drop-tail).
  std::uint32_t red_min_bytes = 0;
  std::uint32_t red_max_bytes = 0;
  double red_max_prob = 0.1;
  /// Base seed of the link's RED drop stream. Each link forks this with
  /// its scheduler-assigned stream ordinal, so two links sharing the
  /// default seed still draw *independent* drop sequences — seeding the
  /// raw constant into every link made identical backlogs drop in
  /// lockstep across a topology, correlating losses that the paper's
  /// experiments treat as independent.
  std::uint64_t red_seed = 0x51ed;
};

enum class TapAction { kForward, kDrop };

class Link {
 public:
  using Sink = std::function<void(net::Packet)>;
  /// MitM interceptor: may mutate the packet; returning kDrop discards it.
  using Tap = std::function<TapAction(net::Packet&)>;

  Link(Scheduler& sched, LinkConfig config, Sink deliver)
      : sched_(sched), config_(config), deliver_(std::move(deliver)),
        red_rng_(Rng{config_.red_seed}.fork(sched_.next_stream_ordinal())) {
  }
  /// Publishes the lifetime counters (packets, bytes, drops by cause)
  /// into the obs metrics registry — one fold per link, zero cost on
  /// the per-packet path.
  ~Link();

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Enqueues a packet for transmission at the sender-side of the link.
  void transmit(net::Packet pkt);

  void set_tap(Tap tap) { tap_ = std::move(tap); }
  void clear_tap() { tap_ = nullptr; }

  /// Injects / repairs a link failure. While down, every packet is lost.
  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool is_up() const { return up_; }

  [[nodiscard]] const LinkConfig& config() const { return config_; }
  /// Current queueing backlog, in bytes not yet serialized.
  [[nodiscard]] double backlog_bytes() const;

  struct Counters {
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t delivered_packets = 0;
    std::uint64_t dropped_queue = 0;
    std::uint64_t dropped_red = 0;
    std::uint64_t dropped_tap = 0;
    std::uint64_t dropped_down = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  Scheduler& sched_;
  LinkConfig config_;
  Sink deliver_;
  Tap tap_;
  bool up_ = true;
  Time next_free_ = 0;  // when the transmitter finishes its current backlog
  Counters counters_;
  Rng red_rng_;  // forked per link in the constructor
  /// In-flight packets parked between serialization and delivery. The
  /// delivery closure captures only {this, handle} (16 bytes), so it
  /// fits std::function's small-buffer storage — the per-packet path
  /// stops heap-allocating, and packet payloads reuse slab slots.
  SlabPool<net::Packet> in_flight_;
};

}  // namespace intox::sim
