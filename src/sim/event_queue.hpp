// Discrete-event scheduler.
//
// A single-threaded event queue with a simulated clock. Events scheduled
// for the same instant fire in scheduling order (FIFO), which keeps runs
// fully deterministic. Cancellation is O(1) amortized: cancelled events
// are tombstoned and skipped lazily when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace intox::sim {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  /// Publishes lifetime totals (events processed, queue-depth high-water
  /// mark) into the obs metrics registry — retirement-time accounting,
  /// so the drain loop itself carries no per-event registry cost.
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Opaque handle for cancellation. Default-constructed ids are invalid.
  struct EventId {
    std::uint64_t value = 0;
    [[nodiscard]] bool valid() const { return value != 0; }
  };

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (clamped to now if in the past).
  EventId schedule_at(Time t, Callback cb);

  /// Schedules `cb` after `d` nanoseconds (clamped to >= 0).
  EventId schedule_after(Duration d, Callback cb) {
    return schedule_at(now_ + (d < 0 ? 0 : d), std::move(cb));
  }

  /// Cancels a pending event. Returns false if it already fired, was
  /// already cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events have fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs all events with timestamp <= t, then advances the clock to t.
  std::size_t run_until(Time t);

  [[nodiscard]] std::size_t pending() const {
    return heap_.size() - cancelled_.size();
  }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  /// Most live events ever pending at once on this scheduler.
  [[nodiscard]] std::size_t queue_depth_high_water() const {
    return depth_hwm_;
  }
  /// Cancelled-but-not-yet-popped entries still occupying the heap.
  /// Tests assert this drains back to zero (no tombstone leak) once the
  /// clock passes the cancelled events' deadlines.
  [[nodiscard]] std::size_t tombstones() const { return cancelled_.size(); }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // tie-breaker: FIFO within an instant
    std::uint64_t id;
    // Heap is a max-heap by default; invert to get earliest-first.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops the next non-cancelled entry; returns false if none.
  bool pop_next(Entry& out);

  Time now_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t depth_hwm_ = 0;
  std::priority_queue<Entry> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::unordered_set<std::uint64_t> cancelled_;

  // Test-only seam: lets the integrity tests corrupt internal state
  // (e.g. force the clock past a pending event) and assert that the
  // INTOX_INVARIANT checks in run()/run_until() catch it.
  friend class SchedulerTestPeer;
};

/// A restartable one-shot timer bound to a scheduler — the common pattern
/// for protocol timeouts (RTO, eviction, reset). Re-arming cancels any
/// pending expiry.
class Timer {
 public:
  Timer(Scheduler& sched, Scheduler::Callback on_expire)
      : sched_(sched), on_expire_(std::move(on_expire)) {}

  void arm_after(Duration d) {
    cancel();
    id_ = sched_.schedule_after(d, [this] {
      id_ = {};
      on_expire_();
    });
  }
  void arm_at(Time t) {
    cancel();
    id_ = sched_.schedule_at(t, [this] {
      id_ = {};
      on_expire_();
    });
  }
  void cancel() {
    if (id_.valid()) {
      sched_.cancel(id_);
      id_ = {};
    }
  }
  [[nodiscard]] bool armed() const { return id_.valid(); }

 private:
  Scheduler& sched_;
  Scheduler::Callback on_expire_;
  Scheduler::EventId id_;
};

}  // namespace intox::sim
