// Discrete-event scheduler.
//
// A single-threaded event queue with a simulated clock, built on a
// hierarchical timing wheel with slab-allocated events (sim/timing_wheel).
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which keeps runs fully deterministic; runs of same-timestamp events
// drain straight out of one wheel bucket with no per-event re-ordering
// work. Cancellation unlinks and reclaims in O(1) — there are no
// tombstones — and a stale cancel (the event already fired, or its slab
// slot was reused) is refused via the handle's generation tag.
//
// A differential oracle (validate::SchedulerOracle, a sorted-vector
// reference queue) can be attached — programmatically or with
// INTOX_SCHED_ORACLE=1 — to cross-check every schedule/cancel/fire
// against the obviously-correct implementation while the sim runs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/time.hpp"
#include "sim/timing_wheel.hpp"

namespace intox::validate {
class SchedulerOracle;
}  // namespace intox::validate

namespace intox::sim {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler();
  /// Publishes lifetime totals (events processed, queue-depth high-water
  /// mark) into the obs metrics registry — retirement-time accounting,
  /// so the drain loop itself carries no per-event registry cost.
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Opaque handle for cancellation. Default-constructed ids are invalid.
  /// Encodes (slab slot, generation); the value is NOT sequential.
  struct EventId {
    std::uint64_t value = 0;
    [[nodiscard]] bool valid() const { return value != 0; }
  };

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (clamped to now if in the past).
  EventId schedule_at(Time t, Callback cb);

  /// Schedules `cb` after `d` nanoseconds (clamped to >= 0). The add
  /// saturates at kTimeMax — a huge delay parks the event at the end of
  /// time (and raises an INTOX_INVARIANT) instead of wrapping into the
  /// past.
  EventId schedule_after(Duration d, Callback cb);

  /// Cancels a pending event. Returns false if it already fired, was
  /// already cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events have fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs all events with timestamp <= t, then advances the clock to t.
  std::size_t run_until(Time t);

  [[nodiscard]] std::size_t pending() const { return wheel_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  /// Most live events ever pending at once on this scheduler.
  [[nodiscard]] std::size_t queue_depth_high_water() const {
    return depth_hwm_;
  }
  /// Cancelled-but-unreclaimed entries. Always 0 on the timing wheel —
  /// cancel unlinks eagerly — kept so depth accounting reads uniformly
  /// across scheduler implementations (and tests can pin the guarantee).
  [[nodiscard]] std::size_t tombstones() const { return 0; }

  /// Hands out consecutive ordinals (0, 1, 2, ...) for entities that
  /// need their own RNG stream — links fork their RED AQM stream as
  /// Rng{seed}.fork(ordinal). Construction order is deterministic in a
  /// scenario, so the assignment is reproducible; distinct ordinals
  /// keep per-entity streams decorrelated even when every entity is
  /// configured with the same base seed.
  [[nodiscard]] std::uint64_t next_stream_ordinal() {
    return stream_ordinals_++;
  }

  /// Attaches the sorted-vector differential oracle: every subsequent
  /// schedule/cancel/fire is mirrored and cross-checked (INTOX_INVARIANT
  /// on divergence). Also armed at construction by INTOX_SCHED_ORACLE=1.
  /// Call with pending() == 0 — the mirror starts empty.
  void enable_oracle();
  [[nodiscard]] bool oracle_enabled() const { return oracle_ != nullptr; }

 private:
  // Pops the next due event (time <= bound), fires it, advances now_.
  bool fire_next(Time bound);

  Time now_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t stream_ordinals_ = 0;
  std::size_t depth_hwm_ = 0;
  TimingWheel wheel_;
  std::unique_ptr<validate::SchedulerOracle> oracle_;

  // Test-only seam: lets the integrity tests corrupt internal state
  // (e.g. force the clock past a pending event, null out a parked
  // callback) and assert that the INTOX_INVARIANT checks catch it.
  friend class SchedulerTestPeer;
};

/// A restartable one-shot timer bound to a scheduler — the common pattern
/// for protocol timeouts (RTO, eviction, reset). Re-arming cancels any
/// pending expiry.
class Timer {
 public:
  Timer(Scheduler& sched, Scheduler::Callback on_expire)
      : sched_(sched), on_expire_(std::move(on_expire)) {}

  void arm_after(Duration d) {
    cancel();
    id_ = sched_.schedule_after(d, [this] {
      id_ = {};
      on_expire_();
    });
  }
  void arm_at(Time t) {
    cancel();
    id_ = sched_.schedule_at(t, [this] {
      id_ = {};
      on_expire_();
    });
  }
  void cancel() {
    if (id_.valid()) {
      sched_.cancel(id_);
      id_ = {};
    }
  }
  [[nodiscard]] bool armed() const { return id_.valid(); }

 private:
  Scheduler& sched_;
  Scheduler::Callback on_expire_;
  Scheduler::EventId id_;
};

}  // namespace intox::sim
