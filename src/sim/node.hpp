// Node base class: anything that can receive packets on numbered ports
// and transmit on attached egress links.
#pragma once

#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/link.hpp"

namespace intox::sim {

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Invoked by the network when a packet arrives on `ingress_port`.
  virtual void receive(net::Packet pkt, int ingress_port) = 0;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Wires `link` as the egress for `port` (grows the port table).
  void attach_port(int port, Link* link) {
    if (port >= static_cast<int>(ports_.size())) {
      ports_.resize(port + 1, nullptr);
    }
    ports_[static_cast<std::size_t>(port)] = link;
  }

  [[nodiscard]] int port_count() const {
    return static_cast<int>(ports_.size());
  }
  [[nodiscard]] Link* egress(int port) const {
    return (port >= 0 && port < port_count())
               ? ports_[static_cast<std::size_t>(port)]
               : nullptr;
  }

 protected:
  /// Transmits on `port`; silently drops if the port is unwired (matches
  /// real switches blackholing to a missing next hop).
  void send(int port, net::Packet pkt) {
    if (Link* l = egress(port)) l->transmit(std::move(pkt));
  }

 private:
  std::string name_;
  std::vector<Link*> ports_;
};

}  // namespace intox::sim
