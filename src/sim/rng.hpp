// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component takes an explicit Rng (or a seed) — nothing
// in the library reads global entropy. `fork` derives statistically
// independent substreams from labels, so adding a new consumer does not
// perturb the draws seen by existing ones.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string_view>

#include "sim/time.hpp"

namespace intox::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derives an independent substream keyed by (this seed, label).
  [[nodiscard]] Rng fork(std::string_view label) const;
  /// Derives an independent substream keyed by (this seed, index).
  [[nodiscard]] Rng fork(std::uint64_t index) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>{lo, hi}(engine_);
  }
  bool bernoulli(double p) { return std::bernoulli_distribution{p}(engine_); }
  /// Exponential with the given mean (not rate).
  double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }
  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
  }
  /// Pareto with scale x_m > 0 and shape alpha > 0.
  double pareto(double x_m, double alpha);
  std::uint64_t poisson(double mean) {
    return static_cast<std::uint64_t>(
        std::poisson_distribution<long>{mean}(engine_));
  }

  /// Exponential inter-arrival duration with the given mean.
  Duration exp_duration(Duration mean) {
    return static_cast<Duration>(exponential(static_cast<double>(mean)));
  }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    std::shuffle(c.begin(), c.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace intox::sim
