// Slab (freelist) object pool with generation-tagged handles.
//
// The hot-path engine keeps events, in-flight packets, and per-flow
// records in flat slabs instead of individually heap-allocated objects:
// allocation is a freelist pop, release is a freelist push, and every
// object of a kind lives in one contiguous vector, so the scheduler's
// drain loop and the per-flow scans walk linear memory.
//
// Handles are (index, generation) pairs. The generation is bumped on
// every release, so a stale handle held across a free/re-alloc cycle is
// detected instead of silently aliasing the new occupant — the
// scheduler's cancel-after-fire path depends on this.
//
// In Debug builds (and whenever INTOX_SLAB_POISON is defined) released
// slots are poisoned with a recognizable byte pattern and re-checked on
// allocation, so use-after-free through a raw reference (as opposed to a
// checked handle) trips an INTOX_INVARIANT instead of reading plausible
// stale state.
#pragma once

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "validate/invariant.hpp"

namespace intox::sim {

#if !defined(NDEBUG) && !defined(INTOX_SLAB_POISON)
#define INTOX_SLAB_POISON 1
#endif

/// Byte written over the trailing pad of released slots when poisoning
/// is enabled (0xDB: "dead byte").
inline constexpr unsigned char kSlabPoisonByte = 0xDB;

/// A freelist slab of T. T must be default-constructible; objects are
/// reset to a default-constructed state on release so reuse never
/// observes the previous occupant.
template <typename T>
class SlabPool {
 public:
  static constexpr std::uint32_t kNil = UINT32_MAX;

  struct Handle {
    std::uint32_t index = kNil;
    std::uint32_t generation = 0;
    [[nodiscard]] bool valid() const { return index != kNil; }
    friend bool operator==(const Handle&, const Handle&) = default;
  };

  SlabPool() = default;
  explicit SlabPool(std::size_t reserve) { slots_.reserve(reserve); }

  /// Allocates a slot (freelist pop, or slab growth) and returns its
  /// handle. The object is default-constructed state.
  Handle allocate() {
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      Slot& s = slots_[idx];
      INTOX_INVARIANT(!s.live, "slab freelist points at a live slot %u",
                      idx);
      check_poison(s);
      free_head_ = s.next_free;
      --free_count_;
    } else {
      idx = static_cast<std::uint32_t>(slots_.size());
      INTOX_INVARIANT(idx != kNil, "slab pool exhausted the 32-bit index "
                      "space");
      slots_.emplace_back();
    }
    Slot& s = slots_[idx];
    s.live = true;
    s.next_free = kNil;
    ++live_count_;
    return Handle{idx, s.generation};
  }

  /// Releases a slot back to the freelist. The handle (and every copy of
  /// it) becomes stale: `get()` on it returns nullptr from now on.
  void release(Handle h) {
    Slot& s = checked_slot(h);
    s.value = T{};  // drop payload eagerly (callbacks, buffers)
    s.live = false;
    ++s.generation;
    poison(s);
    s.next_free = free_head_;
    free_head_ = h.index;
    ++free_count_;
    --live_count_;
  }

  /// The object behind a handle, or nullptr if the handle is stale
  /// (already released, possibly re-allocated to someone else).
  [[nodiscard]] T* get(Handle h) {
    if (h.index >= slots_.size()) return nullptr;
    Slot& s = slots_[h.index];
    if (!s.live || s.generation != h.generation) return nullptr;
    return &s.value;
  }
  [[nodiscard]] const T* get(Handle h) const {
    return const_cast<SlabPool*>(this)->get(h);
  }

  /// Unchecked access for the owner's hot loop: `h` must be live.
  [[nodiscard]] T& operator[](Handle h) { return checked_slot(h).value; }
  /// Index-only access when the caller tracks liveness itself.
  [[nodiscard]] T& at_index(std::uint32_t idx) { return slots_[idx].value; }
  [[nodiscard]] const T& at_index(std::uint32_t idx) const {
    return slots_[idx].value;
  }
  [[nodiscard]] std::uint32_t generation_at(std::uint32_t idx) const {
    return slots_[idx].generation;
  }
  [[nodiscard]] bool live_at(std::uint32_t idx) const {
    return idx < slots_.size() && slots_[idx].live;
  }

  [[nodiscard]] std::size_t size() const { return live_count_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t free_slots() const { return free_count_; }

  void reserve(std::size_t n) { slots_.reserve(n); }

 private:
  struct Slot {
    T value{};
    std::uint32_t generation = 1;  // 0 never used: lets 0 mean "invalid"
    std::uint32_t next_free = kNil;
    bool live = false;
#ifdef INTOX_SLAB_POISON
    // Canary re-checked on allocation: anything scribbling over released
    // slots (use-after-free through a raw pointer) is caught at reuse.
    unsigned char canary[4] = {0, 0, 0, 0};
#endif
  };

  Slot& checked_slot(Handle h) {
    INTOX_INVARIANT(h.index < slots_.size(),
                    "slab handle index %u out of range (capacity %zu)",
                    h.index, slots_.size());
    Slot& s = slots_[h.index];
    INTOX_INVARIANT(s.live && s.generation == h.generation,
                    "stale slab handle {index=%u gen=%u}: slot is %s with "
                    "gen=%u", h.index, h.generation,
                    s.live ? "live" : "free", s.generation);
    return s;
  }

#ifdef INTOX_SLAB_POISON
  static void poison(Slot& s) {
    std::memset(s.canary, kSlabPoisonByte, sizeof(s.canary));
  }
  static void check_poison(const Slot& s) {
    for (unsigned char c : s.canary) {
      INTOX_INVARIANT(c == kSlabPoisonByte,
                      "slab poison canary overwritten (use-after-free "
                      "through a raw reference): got 0x%02x", c);
      if (c != kSlabPoisonByte) break;  // count mode: report once
    }
  }
#else
  static void poison(Slot&) {}
  static void check_poison(const Slot&) {}
#endif

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNil;
  std::size_t free_count_ = 0;
  std::size_t live_count_ = 0;

  // Test-only seam: the poisoning tests scribble over a released slot's
  // canary to prove the reuse check trips.
  friend class SlabPoolTestPeer;
};

}  // namespace intox::sim
