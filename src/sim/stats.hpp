// Lightweight statistics helpers used by tests and benchmark harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace intox::sim {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; `q` in [0, 1]. Sorts a copy.
double percentile(std::vector<double> values, double q);

/// A (time, value) series sampled during a run, e.g. "number of malicious
/// flows in Blink's sample" or "PCC sending rate".
class TimeSeries {
 public:
  void record(Time t, double value) { points_.push_back({t, value}); }
  [[nodiscard]] const std::vector<std::pair<Time, double>>& points() const {
    return points_;
  }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Value at time t (step interpolation: last point at or before t).
  /// Returns `before` if t precedes the first sample.
  [[nodiscard]] double at(Time t, double before = 0.0) const;

  /// Mean of values with timestamps in [from, to].
  [[nodiscard]] double mean_over(Time from, Time to) const;

  /// Resamples onto a fixed grid (step interpolation) — handy for
  /// averaging many runs.
  [[nodiscard]] std::vector<double> resample(Time from, Time to,
                                             Duration step) const;

 private:
  std::vector<std::pair<Time, double>> points_;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x);
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace intox::sim
