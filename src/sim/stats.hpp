// Lightweight statistics helpers used by tests and benchmark harnesses.
//
// All aggregation paths here raise INTOX_INVARIANT violations instead of
// silently degrading: mismatched shard merges, non-monotonic series
// timestamps, NaN samples, and non-conserved histogram totals are the
// internal equivalent of the paper's "intoxicated inputs" — they corrupt
// every downstream sweep statistic if allowed through quietly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace intox::sim {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  /// Folds another accumulator in (Chan et al. parallel Welford merge):
  /// the result is what a single accumulator would hold after seeing both
  /// sample sets. Used to combine per-trial stats from parallel sweeps.
  void merge(const RunningStats& other);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; `q` in [0, 1]. Sorts a copy.
double percentile(std::vector<double> values, double q);

/// A (time, value) series sampled during a run, e.g. "number of malicious
/// flows in Blink's sample" or "PCC sending rate". Timestamps must be
/// non-decreasing (they are recorded as the simulation advances); a
/// backwards `record` raises an invariant violation.
class TimeSeries {
 public:
  void record(Time t, double value);
  [[nodiscard]] const std::vector<std::pair<Time, double>>& points() const {
    return points_;
  }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Value at time t (step interpolation: last point at or before t).
  /// Returns `before` if t precedes the first sample.
  [[nodiscard]] double at(Time t, double before = 0.0) const;

  /// Time-weighted mean of the step function over [from, to]: the
  /// integral of `at(t)` divided by the window length. (Before the
  /// integrity pass this was an unweighted average of the points that
  /// happened to fall in the window, which biased bursty series toward
  /// whichever level was sampled most often.) For an empty window
  /// (from == to) returns `at(from)`.
  [[nodiscard]] double mean_over(Time from, Time to) const;

  /// Resamples onto a fixed grid (step interpolation) — handy for
  /// averaging many runs.
  [[nodiscard]] std::vector<double> resample(Time from, Time to,
                                             Duration step) const;

 private:
  std::vector<std::pair<Time, double>> points_;
};

/// Cross-trial aggregate of many (time, value) series: a RunningStats per
/// grid point. Each added series is step-resampled onto the grid, so
/// ragged per-trial sampling is fine. `merge` combines two aggregates
/// built on the same grid — the reduction step of parallel sweeps.
/// Merging mismatched grids raises an invariant violation (and, in
/// counter-only mode, skips the merge rather than mixing grids).
class SeriesStats {
 public:
  SeriesStats(Time from, Time to, Duration step);
  void add(const TimeSeries& series);
  void merge(const SeriesStats& other);
  [[nodiscard]] std::size_t points() const { return cells_.size(); }
  [[nodiscard]] Time time_at(std::size_t i) const {
    return from_ + step_ * static_cast<Time>(i);
  }
  [[nodiscard]] const RunningStats& at(std::size_t i) const {
    return cells_[i];
  }
  /// Number of series folded in so far.
  [[nodiscard]] std::size_t series_count() const { return series_; }

 private:
  Time from_;
  Duration step_;
  std::vector<RunningStats> cells_;
  std::size_t series_ = 0;
};

/// Fixed-width histogram over [lo, hi). Out-of-range samples are counted
/// in dedicated underflow/overflow counters — NOT clamped into the edge
/// buckets (clamping used to shift the edge-bucket mass and silently
/// corrupt tail quantiles). `total()` counts every added sample,
/// in-range or not, and is conserved across `merge`.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x);
  /// Adds another histogram's counts. The bucket layouts must match;
  /// a mismatch raises an invariant violation (and, in counter-only
  /// mode, skips the merge rather than mixing layouts).
  void merge(const Histogram& other);
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return counts_;
  }
  /// All samples ever added, including under/overflow.
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Samples below lo / at-or-above hi.
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  /// Exact observed extremes (valid when total() > 0).
  [[nodiscard]] double min() const { return min_seen_; }
  [[nodiscard]] double max() const { return max_seen_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const {
    return lo_ + width_ * static_cast<double>(i);
  }
  /// Bucket-resolution quantile over ALL samples (out-of-range mass
  /// included). q <= 0 returns the observed min, q >= 1 the observed max
  /// — never a mid-bucket value below the true extreme. Mid-range
  /// results are bucket centers clamped to the observed range.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace intox::sim
