// File discovery, suppression pragmas, baseline handling, reporting.
//
// Suppression syntax (per line, same line or the line directly above):
//   // intox-lint: allow(determinism)
//   // intox-lint: allow(metrics, header)
// Every pragma must suppress at least one finding, otherwise the
// `pragma` check flags it — stale suppressions rot the baseline.
//
// Baseline file: `path:check:count` lines (# comments allowed). Up to
// <count> findings of <check> in <path> are tolerated and reported as
// baselined instead of failing the run. The intent is an empty
// baseline; it exists so a genuinely new check can land before its
// last stragglers are fixed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "checks.hpp"

namespace intox::lint {

struct Options {
  std::string root = ".";
  std::string baseline_path;          // empty = no baseline
  std::vector<std::string> paths;     // relative to root; empty = default set
  std::vector<std::string> only_checks;  // empty = all
};

struct RunResult {
  std::vector<Finding> findings;   // active findings (fail the run)
  std::vector<Finding> baselined;  // matched a baseline allowance
  int files_scanned = 0;
  int suppressed = 0;
};

/// Scans the tree and returns the partitioned findings. Throws
/// std::runtime_error on unusable input (missing root, bad baseline).
RunResult run_lint(const Options& opts);

/// Prints `path:line: [check] message` lines, sorted, to `out`.
void print_findings(std::ostream& out, const std::vector<Finding>& findings);

}  // namespace intox::lint
