// Token model for the intox-lint scanner.
//
// The linter does not parse C++ — it scans a token stream plus raw
// lines, which is exactly enough for the project-specific conventions
// it enforces (see checks.hpp) and keeps the tool dependency-free so it
// builds everywhere CI does (no libclang).
#pragma once

#include <string>
#include <vector>

namespace intox::lint {

enum class TokenKind {
  kIdentifier,   // foo, std, INTOX_INVARIANT
  kNumber,       // 42, 0x1f, 1e-3, 42ull
  kString,       // "..." (text excludes quotes; raw strings unescaped)
  kCharLiteral,  // 'x'
  kPunct,        // one operator/punctuator per token ("++", "<<=", "(")
  kPreprocessor, // one token per logical directive line ("#pragma once")
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  // 1-based line of the token's first character
};

using TokenStream = std::vector<Token>;

}  // namespace intox::lint
