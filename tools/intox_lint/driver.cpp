#include "driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "lexer.hpp"

namespace fs = std::filesystem;

namespace intox::lint {
namespace {

const std::vector<std::string> kDefaultPaths = {"src", "bench", "examples",
                                                "tests"};

bool has_lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

// Directories that must never be scanned: build trees and the lint
// fixture corpus (which is known-bad on purpose and exercised by the
// tests with an explicit --root).
bool is_skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name == "fixtures" ||
         name.rfind("build", 0) == 0;
}

std::string to_rel(const fs::path& p, const fs::path& root) {
  std::string rel = p.lexically_relative(root).generic_string();
  if (rel.rfind("./", 0) == 0) rel = rel.substr(2);
  return rel;
}

std::vector<std::string> collect_files(const Options& opts,
                                       const fs::path& root) {
  const bool defaults = opts.paths.empty();
  const std::vector<std::string>& roots = defaults ? kDefaultPaths : opts.paths;
  std::vector<std::string> rel_files;
  for (const std::string& r : roots) {
    const fs::path base = root / r;
    if (fs::is_regular_file(base)) {
      rel_files.push_back(to_rel(base, root));
      continue;
    }
    if (!fs::is_directory(base)) {
      // A missing default directory is fine (a fixture mini-repo may
      // only have src/); a path the user named must exist.
      if (defaults) continue;
      throw std::runtime_error("intox_lint: no such file or directory: " +
                               base.string());
    }
    fs::recursive_directory_iterator it(base), end;
    for (; it != end; ++it) {
      if (it->is_directory() && is_skipped_dir(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && has_lintable_extension(it->path()))
        rel_files.push_back(to_rel(it->path(), root));
    }
  }
  // Deterministic scan order => deterministic duplicate-metric "first
  // registration" attribution and output order.
  std::sort(rel_files.begin(), rel_files.end());
  rel_files.erase(std::unique(rel_files.begin(), rel_files.end()),
                  rel_files.end());
  return rel_files;
}

// line number (1-based) -> set of check names allowed on that line.
using SuppressionMap = std::map<int, std::set<std::string>>;

SuppressionMap parse_suppressions(const std::string& source,
                                  const std::string& rel_path,
                                  std::vector<Finding>& malformed) {
  static const std::regex re(R"(intox-lint:\s*allow\(([^)]*)\))");
  SuppressionMap out;
  std::istringstream in(source);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::smatch m;
    if (!std::regex_search(line, m, re)) continue;
    // A suppression must say why: `allow(check)  -- justification`.
    // Unexplained pragmas rot — nobody can tell later whether they are
    // still needed or were ever sound.
    static const std::regex why_re(R"(^\s*--\s*\S)");
    const std::string trailer = m.suffix().str();
    if (!std::regex_search(trailer, why_re)) {
      malformed.push_back(
          {rel_path, lineno, "pragma",
           "suppression has no justification; write allow(" + m[1].str() +
               ")  -- why this is safe here"});
      continue;
    }
    std::set<std::string> checks;
    std::istringstream list(m[1].str());
    std::string item;
    while (std::getline(list, item, ',')) {
      item.erase(0, item.find_first_not_of(" \t"));
      item.erase(item.find_last_not_of(" \t") + 1);
      if (item.empty()) continue;
      const auto& known = check_names();
      if (std::find(known.begin(), known.end(), item) == known.end()) {
        malformed.push_back({rel_path, lineno, "pragma",
                             "unknown check '" + item +
                                 "' in intox-lint pragma (see --list-checks)"});
        continue;
      }
      checks.insert(item);
    }
    if (!checks.empty()) out[lineno] = std::move(checks);
  }
  return out;
}

struct BaselineEntry {
  std::string path;
  std::string check;
  int allowed = 0;
  int used = 0;
};

std::vector<BaselineEntry> load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("intox_lint: cannot read baseline: " + path);
  }
  std::vector<BaselineEntry> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line.erase(0, line.find_first_not_of(" \t"));
    line.erase(line.find_last_not_of(" \t\r") + 1);
    if (line.empty()) continue;
    const auto last = line.rfind(':');
    const auto mid = last == std::string::npos ? std::string::npos
                                               : line.rfind(':', last - 1);
    if (mid == std::string::npos) {
      throw std::runtime_error("intox_lint: malformed baseline line " +
                               std::to_string(lineno) +
                               " (want path:check:count): " + line);
    }
    BaselineEntry e;
    e.path = line.substr(0, mid);
    e.check = line.substr(mid + 1, last - mid - 1);
    try {
      e.allowed = std::stoi(line.substr(last + 1));
    } catch (const std::exception&) {
      throw std::runtime_error("intox_lint: bad count in baseline line " +
                               std::to_string(lineno) + ": " + line);
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("intox_lint: cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

RunResult run_lint(const Options& opts) {
  const fs::path root(opts.root);
  if (!fs::is_directory(root))
    throw std::runtime_error("intox_lint: root is not a directory: " +
                             opts.root);

  std::vector<BaselineEntry> baseline;
  if (!opts.baseline_path.empty())
    baseline = load_baseline(opts.baseline_path);

  RunResult result;
  Checker checker;
  std::vector<Finding> raw;

  struct FileState {
    SuppressionMap suppressions;
    std::set<int> used_pragma_lines;
  };
  std::map<std::string, FileState> files;

  for (const std::string& rel : collect_files(opts, root)) {
    const std::string source = read_file(root / rel);
    FileState& st = files[rel];
    st.suppressions = parse_suppressions(source, rel, raw);
    checker.scan_file(classify(rel), cxxlex::tokenize(source), raw);
    ++result.files_scanned;
  }
  checker.finish(raw);

  auto check_enabled = [&](const std::string& check) {
    return opts.only_checks.empty() ||
           std::find(opts.only_checks.begin(), opts.only_checks.end(),
                     check) != opts.only_checks.end();
  };

  for (Finding& f : raw) {
    if (!check_enabled(f.check)) continue;
    // Per-line suppression: same line or the line directly above.
    if (f.check != "pragma") {
      FileState& st = files[f.path];
      bool suppressed = false;
      for (int line : {f.line, f.line - 1}) {
        auto it = st.suppressions.find(line);
        if (it != st.suppressions.end() && it->second.count(f.check)) {
          st.used_pragma_lines.insert(line);
          suppressed = true;
          break;
        }
      }
      if (suppressed) {
        ++result.suppressed;
        continue;
      }
    }
    // Baseline: consume an allowance if one is left.
    bool baselined = false;
    for (BaselineEntry& e : baseline) {
      if (e.path == f.path && e.check == f.check && e.used < e.allowed) {
        ++e.used;
        baselined = true;
        break;
      }
    }
    (baselined ? result.baselined : result.findings).push_back(std::move(f));
  }

  // Stale pragmas: a suppression that suppressed nothing is itself a
  // finding, so the checked-in baseline of pragmas cannot rot. Only
  // meaningful when every check ran — under --check filtering a pragma
  // for a disabled check would look stale.
  if (opts.only_checks.empty()) {
    for (auto& [path, st] : files) {
      for (const auto& [line, checks] : st.suppressions) {
        if (st.used_pragma_lines.count(line)) continue;
        std::string joined;
        for (const std::string& c : checks)
          joined += (joined.empty() ? "" : ", ") + c;
        result.findings.push_back(
            {path, line, "pragma",
             "suppression for '" + joined +
                 "' matches no finding; delete the stale pragma"});
      }
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.check, a.message) <
                     std::tie(b.path, b.line, b.check, b.message);
            });
  return result;
}

void print_findings(std::ostream& out, const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    out << f.path << ":" << f.line << ": [" << f.check << "] " << f.message
        << "\n";
  }
}

}  // namespace intox::lint
