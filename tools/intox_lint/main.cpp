// intox_lint — project-specific static analysis for the intox tree.
//
//   intox_lint [--root DIR] [--baseline FILE] [--check NAME]...
//              [--list-checks] [PATH...]
//
// PATHs are files or directories relative to --root (default: src,
// bench, examples, tests). Exit status: 0 clean, 1 findings, 2 usage
// or I/O error. Findings print as `path:line: [check] message` on
// stdout; the summary goes to stderr.
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>

#include "driver.hpp"

namespace {

int usage(std::ostream& out, int status) {
  out << "usage: intox_lint [--root DIR] [--baseline FILE] [--check NAME]...\n"
         "                  [--list-checks] [PATH...]\n"
         "\n"
         "Scans PATHs (default: src bench examples tests, relative to\n"
         "--root) for violations of the project's determinism, invariant,\n"
         "metrics, and header conventions. Suppress a finding with\n"
         "`// intox-lint: allow(<check>)  -- justification` on the same or\n"
         "preceding line; a suppression without the `-- justification`\n"
         "trailer is itself a finding.\n";
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  intox::lint::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "intox_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--list-checks") {
      for (const std::string& c : intox::lint::check_names())
        std::cout << c << "\n";
      return 0;
    } else if (arg == "--root") {
      opts.root = next_value("--root");
    } else if (arg == "--baseline") {
      opts.baseline_path = next_value("--baseline");
    } else if (arg == "--check") {
      opts.only_checks.push_back(next_value("--check"));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "intox_lint: unknown option: " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      opts.paths.push_back(arg);
    }
  }

  intox::lint::RunResult result;
  try {
    result = intox::lint::run_lint(opts);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  intox::lint::print_findings(std::cout, result.findings);
  std::cerr << "intox_lint: " << result.findings.size() << " finding"
            << (result.findings.size() == 1 ? "" : "s") << " ("
            << result.suppressed << " suppressed, " << result.baselined.size()
            << " baselined) across " << result.files_scanned << " files\n";
  return result.findings.empty() ? 0 : 1;
}
