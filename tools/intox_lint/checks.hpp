// The project-specific checks. Each one enforces a convention that
// PRs 1-3 made load-bearing but that nothing mechanical guarded:
//
//   determinism  Trial results must be a pure function of the seed.
//                Bans entropy/wall-clock reads (std::random_device,
//                rand/srand, time/gettimeofday, <chrono> clock types)
//                in src/, bench/ and examples/, and literal-seeded
//                Rng construction in src/ (seeds must be forked or
//                plumbed from config so `--threads` cannot perturb
//                them). Perf-timing clocks carry a justified
//                `// intox-lint: allow(determinism)  -- why` pragma
//                (the trailer is mandatory; see the pragma check).
//
//   invariant    INTOX_INVARIANT conditions compile out under
//                -DINTOX_INVARIANTS_DISABLED, so a side effect in the
//                condition changes program behavior between
//                configurations. Flags assignment, ++/--, and calls to
//                known-mutating methods inside the condition.
//
//   metrics      Metric-name string literals at registration sites
//                (.counter("...") etc.) must match the dotted
//                `family.name` grammar and be unique per registration
//                site, so two subsystems cannot silently fold their
//                counts together.
//
//   header       #pragma once in every header, no `using namespace`
//                at header scope, and no <iostream> in src/ headers
//                (hot-path translation units must not inherit stream
//                globals and their static initializers).
//
//   cli          Bench/example binaries are thin shims onto the
//                scenario registry; indexing argv there is hand-rolled
//                argument parsing that bypasses the driver's strict
//                --set/--sweep validation. Forward argc/argv to
//                intox::scenario::run_legacy_shim instead.
//
//   pragma       Suppressions are themselves linted: an allow(...)
//                with no `-- justification` trailer, an unknown check
//                name, or a pragma that suppresses nothing is a
//                finding, so the suppression inventory cannot rot.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "token.hpp"

namespace intox::lint {

// The token model lives in the shared tools/cxxlex library.
using cxxlex::Token;
using cxxlex::TokenKind;
using cxxlex::TokenStream;

struct Finding {
  std::string path;  // repo-relative, '/'-separated
  int line;
  std::string check;  // "determinism" | "invariant" | "metrics" | ...
  std::string message;
};

/// Where a file sits in the tree decides which checks apply to it.
struct FileClass {
  std::string rel_path;
  bool in_src = false;
  bool in_bench = false;
  bool in_examples = false;
  bool in_tests = false;
  bool is_header = false;
};

FileClass classify(const std::string& rel_path);

/// Names of every check, for --list-checks and pragma validation.
const std::vector<std::string>& check_names();

/// Runs all single-file checks and accumulates cross-file state (the
/// metric-name registry). Call finish() once after the last file to
/// emit duplicate-registration findings.
class Checker {
 public:
  void scan_file(const FileClass& fc, const TokenStream& tokens,
                 std::vector<Finding>& out);
  void finish(std::vector<Finding>& out);

 private:
  struct MetricSite {
    std::string path;
    int line;
  };
  // name -> every registration site seen, in scan order.
  std::map<std::string, std::vector<MetricSite>> metric_sites_;
};

}  // namespace intox::lint
