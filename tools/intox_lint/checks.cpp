#include "checks.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <regex>
#include <string_view>

namespace intox::lint {
namespace {

// ---------------------------------------------------------------------------
// determinism

// Any appearance of these identifiers is a wall-clock / entropy read
// (or a type whose only purpose is one).
constexpr std::array<std::string_view, 8> kBannedIdentifiers = {
    "random_device",   "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday",    "clock_gettime", "timespec_get", "srand",
};

// Banned only as calls: `time` and `clock` are common member / variable
// names (sim/time.hpp), so a bare identifier is fine — `time(...)` as a
// free or std-qualified call is not.
constexpr std::array<std::string_view, 5> kBannedCalls = {
    "rand", "time", "clock", "localtime", "gmtime",
};

// ---------------------------------------------------------------------------
// invariant

constexpr std::array<std::string_view, 11> kAssignmentOps = {
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};

// Methods that mutate their receiver; calling one inside an
// INTOX_INVARIANT condition makes behavior depend on whether the
// invariant is compiled in.
constexpr std::array<std::string_view, 26> kMutatingMethods = {
    "push",         "push_back",  "push_front", "pop",
    "pop_back",     "pop_front",  "insert",     "erase",
    "clear",        "reset",      "emplace",    "emplace_back",
    "emplace_front", "resize",    "assign",     "swap",
    "store",        "fetch_add",  "fetch_sub",  "exchange",
    "compare_exchange_weak", "compare_exchange_strong",
    "advance",      "consume",    "shuffle",    "merge",
};

template <typename Arr>
bool contains(const Arr& arr, std::string_view s) {
  return std::find(arr.begin(), arr.end(), s) != arr.end();
}

// Keywords the lexer emits as identifiers but that can never be a
// scope qualifier or declaration specifier before a banned call
// (`return ::time(0)` is a global-scope libc call, not `X::time`).
constexpr std::array<std::string_view, 12> kNonQualifierKeywords = {
    "return", "if",    "while", "for",    "do",  "else",
    "case",   "throw", "new",   "delete", "and", "or"};

bool is_integer_literal(const Token& t) {
  if (t.kind != TokenKind::kNumber) return false;
  const std::string& s = t.text;
  if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) return true;
  return s.find('.') == std::string::npos &&
         s.find('e') == std::string::npos && s.find('E') == std::string::npos;
}

std::string strip_spaces(const std::string& s) {
  std::string out;
  for (char c : s)
    if (!std::isspace(static_cast<unsigned char>(c))) out += c;
  return out;
}

const Token* prev_tok(const TokenStream& toks, std::size_t i) {
  return i > 0 ? &toks[i - 1] : nullptr;
}
const Token* next_tok(const TokenStream& toks, std::size_t i) {
  return i + 1 < toks.size() ? &toks[i + 1] : nullptr;
}

void check_determinism(const FileClass& fc, const TokenStream& toks,
                       std::vector<Finding>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;

    if (contains(kBannedIdentifiers, t.text)) {
      out.push_back({fc.rel_path, t.line, "determinism",
                     "'" + t.text +
                         "' reads entropy or a clock; trial results must be "
                         "a pure function of the seed (use sim::Rng / "
                         "sim::Time)"});
      continue;
    }

    if (contains(kBannedCalls, t.text)) {
      const Token* next = next_tok(toks, i);
      if (!next || next->text != "(") continue;
      const Token* prev = prev_tok(toks, i);
      if (prev) {
        // Member call on a project object (`sched.time(...)`) is fine.
        if (prev->text == "." || prev->text == "->") continue;
        // A declaration (`Duration time(...)`) is fine — but a keyword
        // before the name (`return time(0)`) is still a call.
        if ((prev->kind == TokenKind::kIdentifier &&
             !contains(kNonQualifierKeywords, prev->text)) ||
            prev->text == ">" || prev->text == "*" || prev->text == "&" ||
            prev->text == "~")
          continue;
        // Qualified call: `std::time(` and `::time(` are the libc
        // functions; `OtherScope::time(` is not.
        if (prev->text == "::") {
          const Token* qual = i >= 2 ? &toks[i - 2] : nullptr;
          if (qual && qual->kind == TokenKind::kIdentifier &&
              qual->text != "std" &&
              !contains(kNonQualifierKeywords, qual->text))
            continue;
        }
      }
      out.push_back({fc.rel_path, t.line, "determinism",
                     "call to '" + t.text +
                         "()' reads the wall clock or libc PRNG; derive all "
                         "randomness and time from the simulation"});
      continue;
    }

    // Literal-seeded Rng in src/: `Rng(42)`, `Rng{42}`, `Rng rng(42)`.
    if (fc.in_src && t.text == "Rng") {
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier)
        ++j;  // declared variable name
      if (j + 2 < toks.size() &&
          (toks[j].text == "(" || toks[j].text == "{") &&
          is_integer_literal(toks[j + 1]) &&
          (toks[j + 2].text == ")" || toks[j + 2].text == "}")) {
        out.push_back({fc.rel_path, toks[j + 1].line, "determinism",
                       "Rng seeded with literal " + toks[j + 1].text +
                           " in src/; seeds must arrive via Rng::fork or an "
                           "explicit config so sharding stays reproducible"});
      }
    }
  }
}

void check_invariants(const FileClass& fc, const TokenStream& toks,
                      std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        toks[i].text != "INTOX_INVARIANT" || toks[i + 1].text != "(")
      continue;
    // Walk the first macro argument (the condition): everything up to
    // the first top-level comma or the closing paren.
    int depth = 1;
    for (std::size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
      const Token& t = toks[j];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
        if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
        if (depth == 0) break;
        if (depth == 1 && t.text == ",") break;

        if (t.text == "++" || t.text == "--") {
          out.push_back(
              {fc.rel_path, t.line, "invariant",
               "'" + t.text +
                   "' inside an INTOX_INVARIANT condition; the condition "
                   "vanishes under -DINTOX_INVARIANTS_DISABLED, so it must "
                   "be side-effect-free"});
        } else if (contains(kAssignmentOps, t.text)) {
          out.push_back(
              {fc.rel_path, t.line, "invariant",
               "assignment ('" + t.text +
                   "') inside an INTOX_INVARIANT condition; did you mean a "
                   "comparison? The condition compiles out when invariants "
                   "are disabled"});
        } else if ((t.text == "." || t.text == "->") && j + 2 < toks.size() &&
                   toks[j + 1].kind == TokenKind::kIdentifier &&
                   contains(kMutatingMethods, toks[j + 1].text) &&
                   toks[j + 2].text == "(") {
          out.push_back(
              {fc.rel_path, toks[j + 1].line, "invariant",
               "call to mutating method '" + toks[j + 1].text +
                   "()' inside an INTOX_INVARIANT condition; hoist the call "
                   "out so disabled builds behave identically"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// cli

// Bench and example binaries must not parse their command line by hand:
// the scenario registry owns knob declaration and the intox driver owns
// strict --set/--sweep/--config validation, so a binary that indexes
// argv reinvents (and inevitably weakens) that contract. Shim mains
// forward argc/argv wholesale to intox::scenario::run_legacy_shim.
void check_cli(const FileClass& fc, const TokenStream& toks,
               std::vector<Finding>& out) {
  if (!fc.in_bench && !fc.in_examples) return;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier || t.text != "argv") continue;
    if (toks[i + 1].text != "[") continue;
    out.push_back(
        {fc.rel_path, t.line, "cli",
         "hand-rolled argv parsing in a bench/example binary; declare a "
         "scenario knob and forward the command line through "
         "intox::scenario::run_legacy_shim (src/scenario/) so strict "
         "--set/--sweep validation stays in one place"});
  }
}

const std::regex& metric_name_regex() {
  // family.name[.more]: lowercase dotted components, digits and
  // underscores allowed after the leading letter.
  static const std::regex re(
      R"(^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$)");
  return re;
}

constexpr std::array<std::string_view, 4> kRegistrationMethods = {
    "counter", "gauge", "histogram", "register_external_counter"};

void check_headers(const FileClass& fc, const TokenStream& toks,
                   std::vector<Finding>& out) {
  if (!fc.is_header) return;
  bool has_pragma_once = false;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kPreprocessor) {
      const std::string flat = strip_spaces(t.text);
      if (flat == "#pragmaonce") has_pragma_once = true;
      if (fc.in_src && flat.find("#include<iostream>") == 0) {
        out.push_back(
            {fc.rel_path, t.line, "header",
             "<iostream> included from a src/ header; hot-path translation "
             "units must not inherit stream globals — include it in the .cpp "
             "that actually prints"});
      }
    } else if (t.kind == TokenKind::kIdentifier && t.text == "using" &&
               i + 1 < toks.size() &&
               toks[i + 1].kind == TokenKind::kIdentifier &&
               toks[i + 1].text == "namespace") {
      out.push_back({fc.rel_path, t.line, "header",
                     "'using namespace' in a header leaks into every "
                     "includer; qualify names or alias them instead"});
    }
  }
  if (!has_pragma_once) {
    out.push_back({fc.rel_path, 1, "header", "header is missing #pragma once"});
  }
}

}  // namespace

FileClass classify(const std::string& rel_path) {
  FileClass fc;
  fc.rel_path = rel_path;
  auto starts_with = [&](std::string_view prefix) {
    return rel_path.rfind(prefix, 0) == 0;
  };
  fc.in_src = starts_with("src/");
  fc.in_bench = starts_with("bench/");
  fc.in_examples = starts_with("examples/");
  fc.in_tests = starts_with("tests/");
  auto ends_with = [&](std::string_view suffix) {
    return rel_path.size() >= suffix.size() &&
           rel_path.compare(rel_path.size() - suffix.size(), suffix.size(),
                            suffix) == 0;
  };
  fc.is_header = ends_with(".hpp") || ends_with(".h");
  return fc;
}

const std::vector<std::string>& check_names() {
  static const std::vector<std::string> names = {
      "determinism", "invariant", "metrics", "header", "cli", "pragma"};
  return names;
}

void Checker::scan_file(const FileClass& fc, const TokenStream& toks,
                        std::vector<Finding>& out) {
  // The invariant macro's own definition (and its doc examples) live in
  // src/validate/invariant.hpp; every other check still applies there.
  const bool is_macro_home = fc.rel_path == "src/validate/invariant.hpp";

  if (fc.in_src || fc.in_bench || fc.in_examples)
    check_determinism(fc, toks, out);
  if (!is_macro_home) check_invariants(fc, toks, out);
  check_headers(fc, toks, out);
  check_cli(fc, toks, out);

  // metrics: record registration sites; duplicates resolve in finish().
  if (fc.in_src || fc.in_bench || fc.in_examples) {
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier ||
          !contains(kRegistrationMethods, t.text))
        continue;
      const Token* prev = prev_tok(toks, i);
      if (!prev || (prev->text != "." && prev->text != "->")) continue;
      if (toks[i + 1].text != "(" ||
          toks[i + 2].kind != TokenKind::kString)
        continue;
      const std::string& name = toks[i + 2].text;
      if (!std::regex_match(name, metric_name_regex())) {
        out.push_back(
            {fc.rel_path, toks[i + 2].line, "metrics",
             "metric name \"" + name +
                 "\" does not match the family.name grammar "
                 "(lowercase dotted components: ^[a-z][a-z0-9_]*(\\.[a-z]"
                 "[a-z0-9_]*)+$)"});
      }
      metric_sites_[name].push_back({fc.rel_path, toks[i + 2].line});
    }
  }
}

void Checker::finish(std::vector<Finding>& out) {
  for (const auto& [name, sites] : metric_sites_) {
    if (sites.size() < 2) continue;
    for (std::size_t i = 1; i < sites.size(); ++i) {
      out.push_back(
          {sites[i].path, sites[i].line, "metrics",
           "metric \"" + name + "\" is already registered at " +
               sites[0].path + ":" + std::to_string(sites[0].line) +
               "; registration sites must be unique (suppress with a "
               "justified pragma if the metrics are intentionally shared)"});
    }
  }
}

}  // namespace intox::lint
