// Driver: file collection, indexing, suppression/baseline accounting.
//
// Suppression syntax: an "intox-analyze:" comment with an
// allow(check, justification) clause on the finding's line or the line
// directly above it. The justification after the first comma is
// mandatory; a bare allow(check) is itself a finding, as is a
// suppression that suppresses nothing (stale) or names an unknown
// check. (The syntax is spelled indirectly here so the analyzer does
// not parse this header comment as a pragma.)
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "checks.hpp"
#include "index.hpp"

namespace intox::analyze {

struct Options {
  std::string root = ".";
  /// Optional compile_commands.json; when set, translation units come
  /// from it (validating that the build actually exports them) and only
  /// headers are discovered by directory walk.
  std::string compdb_path;
  /// Subtrees (relative to root) to analyze; default src/ and tools/.
  std::vector<std::string> paths;
  std::vector<std::string> only_checks;
  std::string baseline_path;
  /// When non-empty, print that check's evidence (reachable sets, lock
  /// edges, pairing tables) to stdout before the findings.
  std::string explain_check;
};

struct RunResult {
  std::vector<Finding> findings;   // fail the run
  std::vector<Finding> baselined;  // matched a baseline allowance
  int files_scanned = 0;
  int suppressed = 0;
};

/// Builds the index over the configured file set (no checks run). Used
/// by --dump-metric-names and the tests.
Index build_index(const Options& opts);

RunResult run_analyze(const Options& opts, std::ostream& explain_out);

void print_findings(std::ostream& out, const std::vector<Finding>& findings);

}  // namespace intox::analyze
