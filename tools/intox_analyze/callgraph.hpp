// Conservative call-graph construction over the index.
//
// Resolution is name-based: a call site resolves to every indexed
// function whose name matches under the rules below, and to "external"
// when nothing matches. This over-approximates real call targets —
// exactly the right direction for reachability-style checks (a function
// is only declared safe if *every* resolution of every call is safe).
//
// Rules:
//  - chains starting with `::` or `std::` are always external (project
//    code lives under intox::*, so `::open` is the libc symbol even
//    though TaskFile::open exists);
//  - an unqualified or member call resolves to all functions whose last
//    name component matches;
//  - a qualified chain (`validate::invariant_violations`) additionally
//    requires the chain to be a `::`-boundary suffix of the candidate's
//    qualified name.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "index.hpp"

namespace intox::analyze {

class CallGraph {
 public:
  explicit CallGraph(const Index& index);

  const Index& index() const { return *index_; }

  /// Indices into index().functions that a call chain may target; empty
  /// means the call is external.
  const std::vector<int>& resolve(const std::string& chain) const;

  /// Like resolve(), narrowed by the calling context:
  ///  - an unqualified call (`foo()`) targets free functions plus
  ///    methods of the caller's own class (implicit this);
  ///  - a member call (`obj.foo()`) targets methods only; when obj's
  ///    declared type is known and names an indexed class, only that
  ///    class's methods; when it names only non-indexed (std) types,
  ///    nothing; when unknown, any method of a matching name;
  ///  - `this->foo()` targets the caller's class.
  /// `caller` indexes index().functions.
  std::vector<int> resolve_call(int caller, const CallSite& call) const;

  /// All function indices reachable from `roots` (inclusive) by
  /// following resolved calls breadth-first.
  std::vector<int> reachable(const std::vector<int>& roots) const;

  /// Function indices whose name matches `name` (last component), or
  /// whose qualified name ends with `name` on a `::` boundary.
  std::vector<int> find_functions(const std::string& name) const;

  /// Lock nodes a function may acquire, directly or through any callee
  /// (interprocedural fixpoint over the resolved graph).
  const std::set<std::string>& may_acquire(int fn) const;

 private:
  const Index* index_;
  std::map<std::string, std::vector<int>> by_name_;  // last component
  std::set<std::string> classes_;  // classes with at least one method
  mutable std::map<std::string, std::vector<int>> resolve_cache_;
  std::vector<std::set<std::string>> may_acquire_;

  std::vector<int> resolve_uncached(const std::string& chain) const;
  void compute_may_acquire();
};

}  // namespace intox::analyze
