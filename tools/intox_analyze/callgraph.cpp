#include "callgraph.hpp"

#include <algorithm>
#include <cstring>
#include <deque>

namespace intox::analyze {
namespace {

// Last named component of a receiver expression: "slot->ring" -> "ring",
// "g_slots[idx]" -> "g_slots", "this" -> "this".
std::string receiver_base(const std::string& expr) {
  std::string s = expr;
  if (const auto b = s.find('['); b != std::string::npos) s.resize(b);
  std::size_t cut = 0;
  for (const char* sep : {"->", "."}) {
    if (const auto p = s.rfind(sep); p != std::string::npos) {
      cut = std::max(cut, p + std::strlen(sep));
    }
  }
  return s.substr(cut);
}

std::string last_component(const std::string& chain) {
  const auto pos = chain.rfind("::");
  return pos == std::string::npos ? chain : chain.substr(pos + 2);
}

// True when `suffix` matches the tail of `qname` on a `::` boundary:
// "validate::invariant_violations" matches
// "intox::validate::invariant_violations" but not
// "intox::invalidate::invariant_violations".
bool qname_suffix_match(const std::string& qname, const std::string& suffix) {
  if (suffix.size() > qname.size()) return false;
  if (qname.compare(qname.size() - suffix.size(), suffix.size(), suffix) != 0)
    return false;
  if (suffix.size() == qname.size()) return true;
  const std::size_t cut = qname.size() - suffix.size();
  return cut >= 2 && qname.compare(cut - 2, 2, "::") == 0;
}

}  // namespace

CallGraph::CallGraph(const Index& index) : index_(&index) {
  for (std::size_t f = 0; f < index.functions.size(); ++f) {
    by_name_[index.functions[f].name].push_back(static_cast<int>(f));
    if (!index.functions[f].cls.empty()) classes_.insert(index.functions[f].cls);
  }
  compute_may_acquire();
}

std::vector<int> CallGraph::resolve_uncached(const std::string& chain) const {
  if (chain.rfind("::", 0) == 0 || chain.rfind("std::", 0) == 0) {
    return {};  // explicitly global / standard library
  }
  const auto it = by_name_.find(last_component(chain));
  if (it == by_name_.end()) return {};
  if (chain.find("::") == std::string::npos) return it->second;
  std::vector<int> out;
  for (int f : it->second) {
    if (qname_suffix_match(index_->functions[f].qname, chain)) {
      out.push_back(f);
    }
  }
  return out;
}

const std::vector<int>& CallGraph::resolve(const std::string& chain) const {
  auto it = resolve_cache_.find(chain);
  if (it == resolve_cache_.end()) {
    it = resolve_cache_.emplace(chain, resolve_uncached(chain)).first;
  }
  return it->second;
}

std::vector<int> CallGraph::resolve_call(int caller,
                                         const CallSite& call) const {
  const std::vector<int>& all = resolve(call.name);
  if (all.empty()) return {};
  const std::string& caller_cls = index_->functions[caller].cls;

  std::vector<int> methods, free_fns;
  for (int f : all) {
    (index_->functions[f].cls.empty() ? free_fns : methods).push_back(f);
  }

  if (call.receiver.empty()) {
    // An unqualified member call can only target the caller's own class.
    std::vector<int> out = std::move(free_fns);
    if (!caller_cls.empty()) {
      for (int f : methods) {
        if (index_->functions[f].cls == caller_cls) out.push_back(f);
      }
    }
    return out;
  }

  const std::string base = receiver_base(call.receiver);
  if (base == "this") {
    std::vector<int> out;
    for (int f : methods) {
      if (index_->functions[f].cls == caller_cls) out.push_back(f);
    }
    return out;
  }
  const auto ty = index_->var_types.find(base);
  if (ty != index_->var_types.end()) {
    bool names_indexed_class = false;
    std::vector<int> out;
    for (const std::string& t : ty->second) {
      if (classes_.count(t)) names_indexed_class = true;
    }
    if (names_indexed_class) {
      for (int f : methods) {
        if (ty->second.count(index_->functions[f].cls)) out.push_back(f);
      }
      return out;
    }
    // Declared with only non-indexed (std/library) types: the call
    // cannot land in project code.
    return {};
  }
  return methods;  // receiver type unknown: any method of this name
}

std::vector<int> CallGraph::reachable(const std::vector<int>& roots) const {
  std::vector<char> seen(index_->functions.size(), 0);
  std::deque<int> queue;
  for (int r : roots) {
    if (r >= 0 && !seen[r]) {
      seen[r] = 1;
      queue.push_back(r);
    }
  }
  std::vector<int> out;
  while (!queue.empty()) {
    const int f = queue.front();
    queue.pop_front();
    out.push_back(f);
    for (const CallSite& c : index_->functions[f].calls) {
      for (int callee : resolve_call(f, c)) {
        if (!seen[callee]) {
          seen[callee] = 1;
          queue.push_back(callee);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> CallGraph::find_functions(const std::string& name) const {
  std::vector<int> out;
  for (std::size_t f = 0; f < index_->functions.size(); ++f) {
    const FunctionDef& fn = index_->functions[f];
    if (fn.name == name || qname_suffix_match(fn.qname, name)) {
      out.push_back(static_cast<int>(f));
    }
  }
  return out;
}

const std::set<std::string>& CallGraph::may_acquire(int fn) const {
  return may_acquire_[fn];
}

void CallGraph::compute_may_acquire() {
  may_acquire_.assign(index_->functions.size(), {});
  for (std::size_t f = 0; f < index_->functions.size(); ++f) {
    for (const LockEvent& e : index_->functions[f].lock_events) {
      if (e.kind == LockEvent::kScopedAcquire || e.kind == LockEvent::kAcquire)
        may_acquire_[f].insert(e.node);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t f = 0; f < index_->functions.size(); ++f) {
      for (const CallSite& c : index_->functions[f].calls) {
        for (int callee : resolve_call(static_cast<int>(f), c)) {
          for (const std::string& n : may_acquire_[callee]) {
            if (may_acquire_[f].insert(n).second) changed = true;
          }
        }
      }
    }
  }
}

}  // namespace intox::analyze
