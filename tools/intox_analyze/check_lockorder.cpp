#include <algorithm>
#include <map>
#include <set>

#include "checks.hpp"

namespace intox::analyze {
namespace {

struct Site {
  std::string file;
  int line = 0;
};

struct Held {
  std::string node;
  bool scoped = false;
  int depth = 0;
};

// Ordered acquisition edge H -> L: L was acquired (directly or through a
// call) while H was held. First site wins for reporting.
using EdgeMap = std::map<std::pair<std::string, std::string>, Site>;

void add_edge(EdgeMap& edges, const std::string& h, const std::string& l,
              const std::string& file, int line) {
  edges.emplace(std::make_pair(h, l), Site{file, line});
}

// Merges a function's lock events and call sites into seq order and
// simulates the held-lock set.
void simulate_function(const CallGraph& graph, int fn_idx, EdgeMap& edges,
                       std::vector<Finding>& out) {
  const FunctionDef& fn = graph.index().functions[fn_idx];
  struct Ev {
    int seq;
    const LockEvent* lock = nullptr;
    const CallSite* call = nullptr;
  };
  std::vector<Ev> evs;
  for (const LockEvent& e : fn.lock_events) evs.push_back({e.seq, &e, nullptr});
  for (const CallSite& c : fn.calls) evs.push_back({c.seq, nullptr, &c});
  std::sort(evs.begin(), evs.end(),
            [](const Ev& a, const Ev& b) { return a.seq < b.seq; });

  std::vector<Held> held;
  auto node_is_flock = [](const std::string& n) {
    return n.size() >= 7 && n.compare(n.size() - 7, 7, "(flock)") == 0;
  };

  for (const Ev& ev : evs) {
    if (ev.lock != nullptr) {
      const LockEvent& e = *ev.lock;
      switch (e.kind) {
        case LockEvent::kScopedAcquire:
        case LockEvent::kAcquire:
          for (const Held& h : held) {
            if (h.node == e.node) {
              // flock on the same fd re-enters (the kernel converts the
              // lock); a std::mutex does not.
              if (!node_is_flock(e.node)) {
                out.push_back({fn.file, e.line, "lockorder",
                               "'" + fn.qname + "' acquires '" + e.node +
                                   "' while already holding it "
                                   "(self-deadlock)"});
              }
              continue;
            }
            add_edge(edges, h.node, e.node, fn.file, e.line);
          }
          held.push_back(
              {e.node, e.kind == LockEvent::kScopedAcquire, e.depth});
          break;
        case LockEvent::kRelease: {
          for (auto it = held.rbegin(); it != held.rend(); ++it) {
            if (it->node == e.node) {
              held.erase(std::next(it).base());
              break;
            }
          }
          break;
        }
        case LockEvent::kBlockClose: {
          held.erase(std::remove_if(held.begin(), held.end(),
                                    [&](const Held& h) {
                                      return h.scoped && h.depth >= e.depth;
                                    }),
                     held.end());
          break;
        }
      }
      continue;
    }
    // A call made while holding locks: everything the callee may
    // acquire orders after everything currently held.
    if (held.empty()) continue;
    const std::vector<int> callees = graph.resolve_call(fn_idx, *ev.call);
    for (int callee : callees) {
      for (const std::string& l : graph.may_acquire(callee)) {
        for (const Held& h : held) {
          if (h.node != l) add_edge(edges, h.node, l, fn.file, ev.call->line);
        }
      }
    }
    // Re-acquisition through a call is only reported when *every*
    // candidate callee may take the held lock — with name-based
    // resolution a single colliding candidate would otherwise flag
    // every `x->snapshot()` made under a registry lock.
    if (!callees.empty()) {
      for (const Held& h : held) {
        if (node_is_flock(h.node)) continue;
        const bool all = std::all_of(
            callees.begin(), callees.end(), [&](int callee) {
              return graph.may_acquire(callee).count(h.node) > 0;
            });
        if (all) {
          out.push_back(
              {fn.file, ev.call->line, "lockorder",
               "'" + fn.qname + "' holds '" + h.node + "' across a call to '" +
                   ev.call->name +
                   "', which may acquire it again (self-deadlock)"});
        }
      }
    }
  }
}

// DFS cycle detection with path reconstruction.
struct CycleFinder {
  const std::map<std::string, std::set<std::string>>& adj;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> cycles;
  std::set<std::string> reported;  // canonical cycle keys

  void dfs(const std::string& n) {
    color[n] = 1;
    stack.push_back(n);
    const auto it = adj.find(n);
    if (it != adj.end()) {
      for (const std::string& m : it->second) {
        if (color[m] == 1) {
          // Back edge: the cycle is stack from m's position to n.
          const auto pos = std::find(stack.begin(), stack.end(), m);
          std::vector<std::string> cyc(pos, stack.end());
          // Canonicalize by rotating the smallest node first.
          const auto min_it = std::min_element(cyc.begin(), cyc.end());
          std::rotate(cyc.begin(), min_it, cyc.end());
          std::string key;
          for (const std::string& c : cyc) key += c + "|";
          if (reported.insert(key).second) cycles.push_back(std::move(cyc));
        } else if (color[m] == 0) {
          dfs(m);
        }
      }
    }
    stack.pop_back();
    color[n] = 2;
  }
};

}  // namespace

void check_lockorder(const CallGraph& graph, std::vector<Finding>& out,
                     std::ostream* explain) {
  const Index& index = graph.index();

  EdgeMap edges;
  for (std::size_t f = 0; f < index.functions.size(); ++f) {
    simulate_function(graph, static_cast<int>(f), edges, out);
  }

  if (explain != nullptr) {
    *explain << "lock-order edges (" << edges.size() << "):\n";
    for (const auto& [edge, site] : edges) {
      *explain << "  " << edge.first << " -> " << edge.second << "  ("
               << site.file << ":" << site.line << ")\n";
    }
  }

  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [edge, site] : edges) {
    (void)site;
    adj[edge.first].insert(edge.second);
  }

  CycleFinder finder{adj, {}, {}, {}, {}};
  for (const auto& [node, succs] : adj) {
    (void)succs;
    if (finder.color[node] == 0) finder.dfs(node);
  }

  for (const std::vector<std::string>& cyc : finder.cycles) {
    std::string path;
    for (const std::string& n : cyc) path += n + " -> ";
    path += cyc.front();
    // Anchor the finding at the edge closing the cycle.
    const auto site_it =
        edges.find({cyc.back(), cyc.front()});
    const Site site = site_it != edges.end() ? site_it->second : Site{};
    out.push_back({site.file, site.line, "lockorder",
                   "lock-order cycle: " + path +
                       " (deadlock if threads interleave)"});
  }
}

}  // namespace intox::analyze
