// The whole-program index intox_analyze builds before running checks.
//
// This is a *lightweight* semantic model, not a compiler front end: a
// scope-tracking pass over the shared cxxlex token stream recovers
// namespaces, classes, function definitions with qualified names, and —
// inside each function body — the events the checks care about: call
// sites, lock acquisitions/releases, atomic operations with their
// memory orders, range-for iteration over unordered containers, and
// "danger" mentions (new-expressions, throw, std::string, iostreams).
// The soundness boundary of this model is documented in DESIGN.md §9:
// names are resolved textually (no overload resolution, no type
// inference), so the checks over-approximate call targets and treat
// unresolved callees as external functions.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace intox::analyze {

/// One call site inside a function body. `name` is the callee text as
/// written ("std::strlen", "flock", "invariant_violations"); `receiver`
/// is the object chain of a member call ("w", "ring.head") or empty.
struct CallSite {
  std::string name;
  std::string receiver;
  int line = 0;
  int seq = 0;  // body-order position, shared with LockEvent
};

/// Lock activity, in body order. Scoped acquisitions (lock_guard /
/// unique_lock / scoped_lock) release when their block closes; manual
/// .lock() / flock(LOCK_*) acquisitions release at .unlock() /
/// flock(LOCK_UN) or function end.
struct LockEvent {
  enum Kind { kScopedAcquire, kAcquire, kRelease, kBlockClose } kind;
  std::string node;  // normalized lock name ("TaskFile::mu_"); empty for
                     // kBlockClose
  int line = 0;
  int depth = 0;  // brace depth inside the function at the event
  int seq = 0;
};

/// One atomic member operation (load/store/RMW) with its memory order.
struct AtomicOp {
  std::string receiver;  // normalized last component ("Ring::head")
  std::string op;        // "load", "store", "fetch_add", ...
  std::string order;     // "relaxed".."seq_cst"; implicit => "seq_cst"
  bool implicit = false;
  int line = 0;
};

/// A range-for over a container declared with an unordered type.
struct UnorderedIter {
  std::string container;  // root variable of the range expression
  int line = 0;
};

/// A non-call token event the checks flag: "new-expression", "throw",
/// or a mention of a watched qualified name ("std::string",
/// "std::random_device", "std::chrono::steady_clock", ...).
struct DangerEvent {
  std::string what;
  int line = 0;
};

struct FunctionDef {
  std::string qname;  // "intox::obs::flightrec_dump", "SigWriter::put"
  std::string name;   // last component
  std::string cls;    // innermost enclosing class ("" for free functions)
  std::string file;   // repo-relative path
  int line = 0;
  int end_line = 0;
  bool hot_lane = false;  // marked `// intox-analyze: hot-lane`
  std::vector<CallSite> calls;
  std::vector<LockEvent> lock_events;
  std::vector<AtomicOp> atomic_ops;
  std::vector<UnorderedIter> unordered_iters;
  std::vector<DangerEvent> dangers;
};

/// A metric registered by name from C++ (`.counter("x")`, `.gauge("x")`,
/// `.histogram("x", ...)`, `register_external_counter("x", ...)`).
struct MetricReg {
  std::string kind;  // "counter" | "gauge" | "histogram" | "external"
  std::string name;
  std::string file;
  int line = 0;
};

/// A function installed as a signal handler (`action.sa_handler = &fn`
/// or `::signal(SIG, fn)`).
struct SignalHandlerReg {
  std::string handler;  // function name as written
  std::string file;
  int line = 0;
};

/// A scenario registration: the run function named last in the braced
/// initializer of INTOX_REGISTER_SCENARIO(ident, {...}).
struct ScenarioReg {
  std::string run_fn;
  std::string file;
  int line = 0;
};

struct Index {
  std::vector<FunctionDef> functions;
  std::vector<MetricReg> metric_regs;
  std::vector<SignalHandlerReg> signal_handlers;
  std::vector<ScenarioReg> scenarios;
  /// Variables declared anywhere with an unordered container type
  /// (std::unordered_map / set / multimap / multiset, or an alias of
  /// one). Collected globally so a member declared in a header is
  /// recognized when iterated in a .cpp.
  std::set<std::string> unordered_vars;
  /// Declared name (local, member, or parameter) -> type names it was
  /// declared with (last component, plus the first template argument for
  /// wrapper types), merged program-wide. Narrows member-call
  /// resolution: `w.text()` with `SigWriter w` only targets
  /// SigWriter::text. Same-named variables of different types merge,
  /// which only widens resolution.
  std::map<std::string, std::set<std::string>> var_types;
};

/// Indexes one file's source into `index`. `rel_path` is repo-relative.
void index_file(const std::string& rel_path, const std::string& source,
                Index& index);

/// Second pass after all files are indexed: resolves unordered-iteration
/// events that were deferred because the container's declaration lives
/// in another file (e.g. a member declared in a header).
void finalize_index(Index& index);

}  // namespace intox::analyze
