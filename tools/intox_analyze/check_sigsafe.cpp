#include <algorithm>
#include <array>
#include <set>

#include "checks.hpp"

namespace intox::analyze {
namespace {

// POSIX async-signal-safe functions (subset the codebase could plausibly
// reach), the mem*/str* helpers POSIX.1-2016 added to the safe list, and
// a few allocation-free pure std helpers (move/min/max/to_chars).
const std::set<std::string>& sigsafe_allowlist() {
  static const std::set<std::string> kAllow = {
      "move",       "min",        "max",         "clamp",      "abs",
      "isfinite",   "isnan",      "to_chars",    "from_chars", "forward",
      "abort",      "access",     "alarm",       "chdir",      "chmod",
      "close",      "clock_gettime",             "creat",      "dup",
      "dup2",       "_exit",      "_Exit",       "faccessat",  "fchmod",
      "fcntl",      "fdatasync",  "fstat",       "fsync",      "ftruncate",
      "getegid",    "geteuid",    "getgid",      "getpgrp",    "getpid",
      "getppid",    "gettid",     "getuid",      "kill",       "link",
      "lseek",      "lstat",      "memchr",      "memcmp",     "memcpy",
      "memmove",    "memset",     "mkdir",       "open",       "openat",
      "pause",      "pipe",       "poll",        "pread",      "pwrite",
      "raise",      "read",       "readlink",    "rename",     "rmdir",
      "sigaction",  "sigaddset",  "sigdelset",   "sigemptyset",
      "sigfillset", "signal",     "sigprocmask", "stat",       "strcat",
      "strchr",     "strcmp",     "strcpy",      "strlen",     "strncat",
      "strncmp",    "strncpy",    "strrchr",     "strstr",     "symlink",
      "time",       "umask",      "uname",       "unlink",     "write"};
  return kAllow;
}

// DangerEvents fatal on the signal path. Clock mentions are excluded —
// they are a determinism concern (check_taint), not a safety one.
bool danger_is_signal_unsafe(const std::string& what) {
  static const std::array<const char*, 9> kUnsafe = {
      "new-expression",     "throw",
      "std::string",        "std::cout",
      "std::cerr",          "std::clog",
      "std::ostringstream", "std::stringstream",
      "std::istringstream"};
  return std::find_if(kUnsafe.begin(), kUnsafe.end(), [&](const char* k) {
           return what == k;
         }) != kUnsafe.end();
}

std::string strip_qualifiers(const std::string& chain) {
  std::string s = chain;
  if (s.rfind("::", 0) == 0) s = s.substr(2);
  if (s.rfind("std::", 0) == 0) s = s.substr(5);
  return s;
}

}  // namespace

void check_sigsafe(const CallGraph& graph, std::vector<Finding>& out,
                   std::ostream* explain) {
  const Index& index = graph.index();

  // Roots: every registered handler plus the crash-dump entry points,
  // which are documented to be callable from a fatal-signal context.
  std::set<int> root_set;
  std::vector<std::string> root_names;
  for (const SignalHandlerReg& reg : index.signal_handlers) {
    for (int f : graph.find_functions(reg.handler)) root_set.insert(f);
    root_names.push_back(reg.handler);
  }
  for (const char* builtin : {"flightrec_dump", "flightrec_dump_on_crash"}) {
    const std::vector<int> fns = graph.find_functions(builtin);
    if (!fns.empty()) root_names.push_back(builtin);
    for (int f : fns) root_set.insert(f);
  }

  const std::vector<int> reach =
      graph.reachable({root_set.begin(), root_set.end()});

  if (explain != nullptr) {
    *explain << "sigsafe roots:";
    for (const std::string& r : root_names) *explain << " " << r;
    *explain << "\nsigsafe reachable (" << reach.size() << "):\n";
    for (int f : reach) {
      const FunctionDef& fn = index.functions[f];
      *explain << "  " << fn.qname << "  (" << fn.file << ":" << fn.line
               << ")\n";
    }
  }

  for (int f : reach) {
    const FunctionDef& fn = index.functions[f];
    for (const CallSite& c : fn.calls) {
      if (!graph.resolve_call(f, c).empty()) continue;  // proven by recursion
      if (!c.receiver.empty()) continue;  // unresolvable method on a value
      const std::string name = strip_qualifiers(c.name);
      if (sigsafe_allowlist().count(name)) continue;
      out.push_back({fn.file, c.line, "sigsafe",
                     "'" + fn.qname +
                         "' is on the fatal-signal path but calls '" +
                         c.name + "', which is not async-signal-safe"});
    }
    for (const DangerEvent& d : fn.dangers) {
      if (!danger_is_signal_unsafe(d.what)) continue;
      out.push_back({fn.file, d.line, "sigsafe",
                     "'" + fn.qname + "' is on the fatal-signal path but uses " +
                         d.what + " (may allocate or throw)"});
    }
    for (const LockEvent& e : fn.lock_events) {
      if (e.kind != LockEvent::kScopedAcquire && e.kind != LockEvent::kAcquire)
        continue;
      out.push_back({fn.file, e.line, "sigsafe",
                     "'" + fn.qname +
                         "' is on the fatal-signal path but acquires lock '" +
                         e.node + "' (deadlocks if the interrupted thread "
                         "holds it)"});
    }
  }
}

}  // namespace intox::analyze
