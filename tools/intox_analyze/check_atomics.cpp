#include <algorithm>
#include <map>
#include <sstream>

#include "checks.hpp"

namespace intox::analyze {
namespace {

bool is_write_op(const std::string& op) { return op != "load"; }
bool is_read_op(const std::string& op) { return op != "store"; }

struct OrderSides {
  bool release = false;  // publishes (write side)
  bool acquire = false;  // observes (read side)
  bool seq_cst = false;
  bool relaxed_only = true;
};

OrderSides classify(const AtomicOp& a) {
  OrderSides s;
  std::istringstream parts(a.order);
  std::string comp;
  while (std::getline(parts, comp, ',')) {
    if (comp == "relaxed") continue;
    s.relaxed_only = false;
    if (comp == "seq_cst") {
      s.seq_cst = true;
      s.release = s.release || is_write_op(a.op);
      s.acquire = s.acquire || is_read_op(a.op);
    } else if (comp == "release") {
      s.release = true;
    } else if (comp == "acquire" || comp == "consume") {
      s.acquire = true;
    } else if (comp == "acq_rel") {
      s.release = true;
      s.acquire = true;
    }
  }
  return s;
}

struct ReceiverState {
  bool has_release = false;  // some write-op publishes with release
  bool has_acquire = false;  // some read-op observes with acquire
  // First unmatched site of each side for reporting.
  std::string release_file, acquire_file;
  int release_line = 0, acquire_line = 0;
  std::string fn_release, fn_acquire;
};

}  // namespace

void check_atomics(const CallGraph& graph, std::vector<Finding>& out,
                   std::ostream* explain) {
  const Index& index = graph.index();

  // Program-wide pairing table, keyed by normalized receiver name: the
  // hot lane writes `head` with release, the fold side reads `head`
  // with acquire — possibly in another file.
  std::map<std::string, ReceiverState> receivers;
  for (const FunctionDef& fn : index.functions) {
    for (const AtomicOp& a : fn.atomic_ops) {
      const OrderSides s = classify(a);
      ReceiverState& r = receivers[a.receiver];
      if (s.release && is_write_op(a.op) && !r.has_release) {
        r.has_release = true;
        r.release_file = fn.file;
        r.release_line = a.line;
        r.fn_release = fn.qname;
      }
      if (s.acquire && is_read_op(a.op) && !r.has_acquire) {
        r.has_acquire = true;
        r.acquire_file = fn.file;
        r.acquire_line = a.line;
        r.fn_acquire = fn.qname;
      }
    }
  }

  if (explain != nullptr) {
    *explain << "atomic receivers (" << receivers.size() << "):\n";
    for (const auto& [name, r] : receivers) {
      *explain << "  " << name << "  release="
               << (r.has_release ? "yes" : "no")
               << " acquire=" << (r.has_acquire ? "yes" : "no") << "\n";
    }
    *explain << "hot lanes:\n";
    for (const FunctionDef& fn : index.functions) {
      if (fn.hot_lane) {
        *explain << "  " << fn.qname << "  (" << fn.file << ":" << fn.line
                 << ")\n";
      }
    }
  }

  // Policy 1: hot lanes must not pay seq_cst fences (explicit or by
  // defaulting the order argument).
  for (const FunctionDef& fn : index.functions) {
    if (!fn.hot_lane) continue;
    for (const AtomicOp& a : fn.atomic_ops) {
      const OrderSides s = classify(a);
      if (!s.seq_cst) continue;
      out.push_back(
          {fn.file, a.line, "atomics",
           "'" + fn.qname + "' is a hot lane but '" + a.receiver + "." +
               a.op + "' uses " +
               (a.implicit ? std::string("the implicit seq_cst default")
                           : std::string("seq_cst")) +
               "; use relaxed (or a paired release/acquire at the fold "
               "boundary)"});
    }
  }

  // Policy 2: one-sided protocols publish nothing. A release store whose
  // receiver is never loaded with acquire (or the reverse) is either a
  // wasted fence or a missing one on the other side.
  for (const auto& [name, r] : receivers) {
    if (r.has_release && !r.has_acquire) {
      out.push_back({r.release_file, r.release_line, "atomics",
                     "release-side write to '" + name + "' in '" +
                         r.fn_release +
                         "' has no acquire-side load anywhere; the release "
                         "fence publishes nothing (add the acquire or relax "
                         "both sides)"});
    }
    if (r.has_acquire && !r.has_release) {
      out.push_back({r.acquire_file, r.acquire_line, "atomics",
                     "acquire-side load of '" + name + "' in '" +
                         r.fn_acquire +
                         "' has no release-side write anywhere; the acquire "
                         "fence observes nothing (add the release or relax "
                         "both sides)"});
    }
  }
}

const std::vector<std::string>& check_names() {
  static const std::vector<std::string> kNames = {"atomics", "lockorder",
                                                  "sigsafe", "taint"};
  return kNames;
}

}  // namespace intox::analyze
