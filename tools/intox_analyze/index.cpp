#include "index.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <sstream>

#include "lexer.hpp"

namespace intox::analyze {

using cxxlex::Token;
using cxxlex::TokenKind;
using cxxlex::TokenStream;

namespace {

bool is_kw(const Token& t, const char* kw) {
  return t.kind == TokenKind::kIdentifier && t.text == kw;
}
bool is_punct(const Token& t, const char* p) {
  return t.kind == TokenKind::kPunct && t.text == p;
}
bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }

// Keywords that look like `name (` but never open a function definition
// or denote a call target.
const std::array<const char*, 16> kControlKeywords = {
    "if",     "for",    "while",  "switch",   "catch",  "return",
    "sizeof", "alignof", "alignas", "decltype", "typeid", "co_return",
    "co_await", "co_yield", "case", "do"};

bool is_control_keyword(const std::string& s) {
  return std::find_if(kControlKeywords.begin(), kControlKeywords.end(),
                      [&](const char* k) { return s == k; }) !=
         kControlKeywords.end();
}

// Functional-cast targets recorded as calls would only be noise:
// primitive and fixed-width type names are never check-relevant callees.
bool is_type_name(const std::string& s) {
  static const std::array<const char*, 24> kTypes = {
      "int",      "char",     "bool",     "float",    "double",   "long",
      "short",    "unsigned", "signed",   "void",     "size_t",   "ssize_t",
      "off_t",    "time_t",   "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
      "int8_t",   "int16_t",  "int32_t",  "int64_t",  "uintptr_t", "intptr_t"};
  std::string base = s;
  if (base.rfind("std::", 0) == 0) base = base.substr(5);
  return std::find_if(kTypes.begin(), kTypes.end(), [&](const char* k) {
           return base == k;
         }) != kTypes.end();
}

bool is_unordered_type_name(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

// Qualified-name mentions the checks watch even when not called.
bool is_watched_mention(const std::string& chain) {
  static const std::array<const char*, 12> kWatched = {
      "std::string",        "std::cout",
      "std::cerr",          "std::clog",
      "std::ostringstream", "std::stringstream",
      "std::istringstream", "std::random_device",
      "random_device",      "std::chrono::system_clock",
      "std::chrono::steady_clock", "std::chrono::high_resolution_clock"};
  return std::find_if(kWatched.begin(), kWatched.end(), [&](const char* k) {
           return chain == k;
         }) != kWatched.end();
}

bool is_atomic_op_name(const std::string& s) {
  return s == "load" || s == "store" || s == "exchange" ||
         s == "fetch_add" || s == "fetch_sub" || s == "fetch_or" ||
         s == "fetch_and" || s == "fetch_xor" ||
         s == "compare_exchange_weak" || s == "compare_exchange_strong";
}

bool is_lock_guard_type(const std::string& last) {
  return last == "lock_guard" || last == "unique_lock" ||
         last == "scoped_lock";
}

std::string last_component(const std::string& chain) {
  const auto pos = chain.rfind("::");
  return pos == std::string::npos ? chain : chain.substr(pos + 2);
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
  std::string name;  // namespace / class name; "" for anonymous
  int fn = -1;       // index into Index::functions for kFunction
  int depth = 0;     // function-relative brace depth (kBlock only)
};

class Indexer {
 public:
  Indexer(const std::string& rel, const TokenStream& toks, Index& out)
      : rel_(rel), toks_(toks), out_(out) {}

  void run() {
    while (i_ < toks_.size()) {
      if (current_fn() >= 0) {
        scan_body_token();
      } else {
        scan_decl_token();
      }
    }
    // Unterminated scopes (lexer tolerance): close any function so its
    // end_line is valid.
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::kFunction) {
        out_.functions[s.fn].end_line =
            toks_.empty() ? 0 : toks_.back().line;
      }
    }
  }

 private:
  const Token& tok(std::size_t j) const { return toks_[j]; }
  bool at_end(std::size_t j) const { return j >= toks_.size(); }

  int current_fn() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return it->fn;
      if (it->kind != Scope::kBlock) return -1;
    }
    return -1;
  }

  int block_depth() const {
    int d = 0;
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kBlock) {
        ++d;
      } else {
        break;
      }
    }
    return d;
  }

  std::string enclosing_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
      if (it->kind == Scope::kNamespace) break;
    }
    return "";
  }

  std::string qualified_prefix() const {
    std::string q;
    for (const Scope& s : scopes_) {
      if ((s.kind == Scope::kNamespace || s.kind == Scope::kClass) &&
          !s.name.empty()) {
        if (!q.empty()) q += "::";
        q += s.name;
      }
    }
    return q;
  }

  // ----- balanced-token helpers -------------------------------------

  // j at '('; returns index one past the matching ')'.
  std::size_t skip_parens(std::size_t j) const {
    int depth = 0;
    for (; !at_end(j); ++j) {
      if (is_punct(tok(j), "(")) ++depth;
      if (is_punct(tok(j), ")") && --depth == 0) return j + 1;
    }
    return j;
  }

  // j at '{'; returns index one past the matching '}'.
  std::size_t skip_braces(std::size_t j) const {
    int depth = 0;
    for (; !at_end(j); ++j) {
      if (is_punct(tok(j), "{")) ++depth;
      if (is_punct(tok(j), "}") && --depth == 0) return j + 1;
    }
    return j;
  }

  // j at '<'; returns one past the matching '>'. `>>` closes two levels.
  // Bails (returns j) if the angles do not balance within the statement,
  // so a stray `a < b` comparison cannot eat the rest of the file.
  std::size_t skip_angles(std::size_t j) const {
    int depth = 0;
    for (std::size_t k = j; !at_end(k); ++k) {
      const Token& t = tok(k);
      if (is_punct(t, "<")) ++depth;
      else if (is_punct(t, "<<")) depth += 2;
      else if (is_punct(t, ">") && --depth <= 0) return k + 1;
      else if (is_punct(t, ">>")) {
        depth -= 2;
        if (depth <= 0) return k + 1;
      } else if (is_punct(t, ";") || is_punct(t, "{")) {
        return j;  // not template arguments after all
      }
    }
    return j;
  }

  // Reads a qualified identifier chain starting at j ("std :: mutex" ->
  // "std::mutex"); sets *end to one past the chain.
  std::string read_chain(std::size_t j, std::size_t* end) const {
    std::string chain;
    if (!at_end(j) && is_punct(tok(j), "::")) {
      chain = "::";
      ++j;
    }
    while (!at_end(j) && is_ident(tok(j))) {
      chain += tok(j).text;
      if (!at_end(j + 1) && is_punct(tok(j + 1), "::") && !at_end(j + 2) &&
          is_ident(tok(j + 2))) {
        chain += "::";
        j += 2;
      } else {
        ++j;
        break;
      }
    }
    *end = j;
    return chain;
  }

  // Walks backward from the token *before* `chain_start` to recover the
  // receiver of a member call: `ring.head` in `ring.head.load(...)`.
  // Returns "" when the chain is not a member access.
  std::string receiver_before(std::size_t chain_start) const {
    if (chain_start < 2) return "";
    std::size_t j = chain_start - 1;
    if (!is_punct(tok(j), ".") && !is_punct(tok(j), "->")) return "";
    // Walk backward alternating component / accessor, so `return
    // g_x.load()` yields "g_x", never "returng_x".
    std::vector<std::string> parts;  // reversed
    parts.push_back(tok(j).text);
    --j;
    while (true) {
      // One component, ending at j.
      if (is_punct(tok(j), "]") || is_punct(tok(j), ")")) {
        // Balanced group, represented as "[]"/"()" so indexing cannot
        // merge distinct receivers.
        const char open = tok(j).text == "]" ? '[' : '(';
        const char close = tok(j).text[0];
        int depth = 0;
        while (true) {
          const std::string& txt = tok(j).text;
          if (txt.size() == 1 && txt[0] == close) ++depth;
          if (txt.size() == 1 && txt[0] == open && --depth == 0) break;
          if (j == 0) return "";
          --j;
        }
        parts.push_back(close == ']' ? "[]" : "()");
        // `arr[i]` / `get(x)`: the name belongs to the same component.
        if (j > 0 && is_ident(tok(j - 1)) &&
            !is_control_keyword(tok(j - 1).text)) {
          --j;
          parts.push_back(tok(j).text);
        }
      } else if (is_ident(tok(j)) && !is_control_keyword(tok(j).text) &&
                 tok(j).text != "delete" && tok(j).text != "new" &&
                 tok(j).text != "throw") {
        parts.push_back(tok(j).text);
      } else {
        return "";  // e.g. `(cond).x()` with no named receiver
      }
      // Continue only through an accessor.
      if (j == 0 || (!is_punct(tok(j - 1), ".") &&
                     !is_punct(tok(j - 1), "->") &&
                     !is_punct(tok(j - 1), "::"))) {
        break;
      }
      --j;
      parts.push_back(tok(j).text);
      if (j == 0) return "";
      --j;
    }
    std::string recv;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) recv += *it;
    // Drop the trailing accessor that led us here.
    if (recv.size() >= 2 && recv.compare(recv.size() - 2, 2, "->") == 0) {
      recv.resize(recv.size() - 2);
    } else if (!recv.empty() && recv.back() == '.') {
      recv.resize(recv.size() - 1);
    }
    return recv;
  }

  // Last named component of a receiver/argument expression:
  // "ring.head" -> "head"; "g_slots[idx]" -> "g_slots"; "this->mu_" ->
  // "mu_".
  static std::string base_name(const std::string& expr) {
    std::string s = expr;
    if (const auto b = s.find('['); b != std::string::npos) s.resize(b);
    std::size_t cut = 0;
    for (const char* sep : {"->", "."}) {
      if (const auto p = s.rfind(sep); p != std::string::npos) {
        cut = std::max(cut, p + std::strlen(sep));
      }
    }
    s = s.substr(cut);
    while (!s.empty() && (s.front() == '&' || s.front() == '*')) s.erase(0, 1);
    return s;
  }

  // Lock node name: member-looking names (trailing underscore per the
  // codebase convention, or explicit this->) are qualified with the
  // function's class so `mu_` of two classes never alias, while a
  // namespace-scope mutex keeps one name from free functions and
  // methods alike.
  std::string lock_node(const std::string& expr) const {
    std::string base = base_name(expr);
    const int f = current_fn();
    const std::string cls =
        f >= 0 ? out_.functions[f].cls : enclosing_class();
    const bool memberish = (!base.empty() && base.back() == '_') ||
                           expr.rfind("this->", 0) == 0;
    if (memberish && !cls.empty()) return cls + "::" + base;
    return base;
  }

  // ----- declaration-scope scanning ---------------------------------

  void scan_decl_token() {
    const Token& t = tok(i_);
    if (t.kind == TokenKind::kPreprocessor) {
      ++i_;
      return;
    }
    if (is_punct(t, "{")) {
      scopes_.push_back({Scope::kBlock, "", -1, 0});
      ++i_;
      return;
    }
    if (is_punct(t, "}")) {
      if (!scopes_.empty()) scopes_.pop_back();
      ++i_;
      return;
    }
    if (is_kw(t, "namespace")) {
      parse_namespace();
      return;
    }
    if (is_kw(t, "class") || is_kw(t, "struct") || is_kw(t, "union")) {
      parse_class();
      return;
    }
    if (is_kw(t, "enum")) {
      parse_enum();
      return;
    }
    if (is_kw(t, "template")) {
      ++i_;
      if (!at_end(i_) && is_punct(tok(i_), "<")) i_ = skip_angles(i_);
      return;
    }
    if (is_kw(t, "using") || is_kw(t, "typedef")) {
      parse_alias();
      return;
    }
    if (is_kw(t, "INTOX_REGISTER_SCENARIO")) {
      parse_scenario_registration();
      return;
    }
    if (is_ident(t) && is_unordered_type_name(last_component(t.text))) {
      note_unordered_decl(i_);
    }
    if (is_ident(t) || is_punct(t, "::")) {
      parse_declaration();
      return;
    }
    ++i_;
  }

  void parse_namespace() {
    std::size_t j = i_ + 1;
    std::string name;
    while (!at_end(j)) {
      if (is_ident(tok(j))) {
        if (!name.empty()) name += "::";
        name += tok(j).text;
        ++j;
      } else if (is_punct(tok(j), "::")) {
        ++j;
      } else {
        break;
      }
    }
    if (!at_end(j) && is_punct(tok(j), "{")) {
      // Anonymous namespaces are transparent in qualified names.
      scopes_.push_back({Scope::kNamespace, name, -1, 0});
      i_ = j + 1;
      return;
    }
    // namespace alias or malformed: skip the statement.
    skip_statement(j);
  }

  void parse_class() {
    std::size_t j = i_ + 1;
    // Skip attributes / alignas.
    while (!at_end(j)) {
      if (is_punct(tok(j), "[") && !at_end(j + 1) &&
          is_punct(tok(j + 1), "[")) {
        int depth = 0;
        for (; !at_end(j); ++j) {
          if (is_punct(tok(j), "[")) ++depth;
          if (is_punct(tok(j), "]") && --depth == 0) {
            ++j;
            break;
          }
        }
      } else if (is_kw(tok(j), "alignas") && !at_end(j + 1) &&
                 is_punct(tok(j + 1), "(")) {
        j = skip_parens(j + 1);
      } else {
        break;
      }
    }
    std::string name;
    if (!at_end(j) && is_ident(tok(j))) {
      name = tok(j).text;
      ++j;
    }
    // Specialization arguments.
    if (!at_end(j) && is_punct(tok(j), "<")) j = skip_angles(j);
    if (!at_end(j) && is_kw(tok(j), "final")) ++j;
    if (!at_end(j) && is_punct(tok(j), ":")) {
      // Base clause: anything until the body brace.
      while (!at_end(j) && !is_punct(tok(j), "{") && !is_punct(tok(j), ";")) {
        if (is_punct(tok(j), "<")) {
          const std::size_t adv = skip_angles(j);
          j = adv == j ? j + 1 : adv;
        } else {
          ++j;
        }
      }
    }
    if (!at_end(j) && is_punct(tok(j), "{")) {
      scopes_.push_back({Scope::kClass, name, -1, 0});
      i_ = j + 1;
      return;
    }
    // `struct stat st;`-style declaration or forward declaration: not a
    // class body. Re-scan from past the keyword as a plain declaration.
    ++i_;
  }

  void parse_enum() {
    std::size_t j = i_ + 1;
    if (!at_end(j) && (is_kw(tok(j), "class") || is_kw(tok(j), "struct")))
      ++j;
    if (!at_end(j) && is_ident(tok(j))) ++j;
    while (!at_end(j) && !is_punct(tok(j), "{") && !is_punct(tok(j), ";"))
      ++j;
    if (!at_end(j) && is_punct(tok(j), "{")) {
      i_ = skip_braces(j);
    } else {
      i_ = at_end(j) ? j : j + 1;
    }
  }

  void parse_alias() {
    // `using X = std::unordered_map<...>;` marks X as an unordered
    // alias; any later `X var` declaration marks `var` unordered.
    std::size_t j = i_ + 1;
    if (!at_end(j) && is_ident(tok(j)) && !is_kw(tok(j), "namespace")) {
      const std::string alias = tok(j).text;
      if (!at_end(j + 1) && is_punct(tok(j + 1), "=")) {
        std::size_t k = j + 2;
        std::size_t end = k;
        const std::string target = read_chain(k, &end);
        if (is_unordered_type_name(last_component(target))) {
          unordered_aliases_.insert(alias);
        }
      }
    }
    skip_statement(j);
  }

  void parse_scenario_registration() {
    // INTOX_REGISTER_SCENARIO(ident, {..., run_fn});
    const int line = tok(i_).line;
    std::size_t j = i_ + 1;
    if (at_end(j) || !is_punct(tok(j), "(")) {
      ++i_;
      return;
    }
    const std::size_t close = skip_parens(j);
    std::string last_ident;
    for (std::size_t k = j; k < close; ++k) {
      if (is_ident(tok(k))) last_ident = tok(k).text;
    }
    if (!last_ident.empty()) {
      out_.scenarios.push_back({last_ident, rel_, line});
    }
    i_ = close;
  }

  // Words that can directly precede an identifier without being its
  // declared type.
  bool is_decl_stop_word(const std::string& s) const {
    static const std::set<std::string> kStop = {
        "return",   "delete",    "new",      "throw",     "auto",
        "const",    "constexpr", "static",   "else",      "case",
        "using",    "typename",  "template", "inline",    "mutable",
        "volatile", "thread_local",          "operator",  "goto",
        "break",    "continue",  "public",   "private",   "protected",
        "virtual",  "explicit",  "friend",   "extern",    "register",
        "struct",   "class",     "enum",     "union",     "namespace",
        "co_await", "co_return", "co_yield", "this",      "nullptr",
        "true",     "false",     "default"};
    return kStop.count(s) > 0 || is_control_keyword(s);
  }

  // If tokens at `pos` read `Type [<...>] [*&]* name <follower>`, record
  // name -> {Type's last component, first template argument's last
  // component}. Direct-init (`Ring r(fd)`) only counts as a declaration
  // at body scope, where a method declaration cannot occur.
  void capture_var_decl(std::size_t pos, bool allow_paren_init) {
    std::size_t end = pos;
    const std::string chain = read_chain(pos, &end);
    if (chain.empty()) return;
    const std::string tylast = last_component(chain);
    if (is_decl_stop_word(tylast)) return;
    std::set<std::string> types = {tylast};
    std::size_t j = end;
    if (!at_end(j) && is_punct(tok(j), "<")) {
      const std::size_t adv = skip_angles(j);
      if (adv == j) return;  // comparison, not a template type
      // The first template argument usually names the element type
      // (unique_ptr<Metric>, vector<Event>); record it too so virtual
      // calls through wrappers keep a class candidate.
      std::size_t k = j + 1;
      while (!at_end(k) &&
             (is_kw(tok(k), "const") || is_punct(tok(k), "::"))) {
        ++k;
      }
      std::size_t aend = k;
      const std::string arg = read_chain(k, &aend);
      if (!arg.empty() && !is_decl_stop_word(last_component(arg))) {
        types.insert(last_component(arg));
      }
      j = adv;
    }
    while (!at_end(j) && (is_punct(tok(j), "*") || is_punct(tok(j), "&") ||
                          is_punct(tok(j), "&&") || is_kw(tok(j), "const"))) {
      ++j;
    }
    if (at_end(j) || !is_ident(tok(j)) || is_decl_stop_word(tok(j).text)) {
      return;
    }
    const std::string var = tok(j).text;
    ++j;
    if (at_end(j)) return;
    const Token& f = tok(j);
    const bool declaration_follower =
        is_punct(f, ";") || is_punct(f, "=") || is_punct(f, ",") ||
        is_punct(f, "{") || is_punct(f, ")") || is_punct(f, ":") ||
        (allow_paren_init && is_punct(f, "("));
    if (!declaration_follower) return;
    for (const std::string& ty : types) out_.var_types[var].insert(ty);
  }

  // Captures `Type name` pairs for each top-level parameter in the list
  // delimited by tokens (open, close).
  void capture_params(std::size_t open, std::size_t close) {
    bool at_arg_start = true;
    int depth = 0;
    for (std::size_t j = open + 1; j < close && !at_end(j); ++j) {
      const Token& t = tok(j);
      if (at_arg_start && is_ident(t)) {
        std::size_t k = j;
        while (k < close && is_ident(tok(k)) &&
               (is_kw(tok(k), "const") || is_kw(tok(k), "struct") ||
                is_kw(tok(k), "class"))) {
          ++k;
        }
        if (k < close && is_ident(tok(k))) capture_var_decl(k, false);
        at_arg_start = false;
      }
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "<") ++depth;
      else if (t.text == ")" || t.text == "]" || t.text == ">") --depth;
      else if (t.text == "," && depth == 0) at_arg_start = true;
    }
  }

  // `std::unordered_map<...> name` (declaration at any scope): record
  // `name` as an unordered variable. `pos` is at the type's last
  // identifier (the unordered_* component).
  void note_unordered_decl(std::size_t pos) {
    std::size_t j = pos + 1;
    if (!at_end(j) && is_punct(tok(j), "<")) {
      const std::size_t adv = skip_angles(j);
      if (adv == j) return;
      j = adv;
    }
    while (!at_end(j) &&
           (is_punct(tok(j), "&") || is_punct(tok(j), "*") ||
            is_kw(tok(j), "const"))) {
      ++j;
    }
    if (!at_end(j) && is_ident(tok(j))) {
      out_.unordered_vars.insert(tok(j).text);
    }
  }

  // Statement at declaration scope that is not a namespace/class/enum:
  // a function definition, a function declaration, or a variable.
  void parse_declaration() {
    std::size_t j = i_;
    while (!at_end(j)) {
      const Token& t = tok(j);
      if (t.kind == TokenKind::kPreprocessor) {
        ++j;
        continue;
      }
      if (is_punct(t, ";")) {
        i_ = j + 1;
        return;
      }
      if (is_punct(t, "=")) {
        // Variable initializer (possibly a lambda): skip to the
        // statement end, braces balanced.
        skip_statement(j);
        return;
      }
      if (is_punct(t, "{")) {
        // Brace initializer at declaration scope.
        j = skip_braces(j);
        continue;
      }
      if (is_punct(t, "<")) {
        const std::size_t adv = skip_angles(j);
        j = adv == j ? j + 1 : adv;
        continue;
      }
      if (is_ident(t) && is_unordered_type_name(last_component(t.text))) {
        note_unordered_decl(j);
        ++j;
        continue;
      }
      if (is_ident(t) && unordered_aliases_.count(t.text) && !at_end(j + 1) &&
          is_ident(tok(j + 1))) {
        out_.unordered_vars.insert(tok(j + 1).text);
        j += 2;
        continue;
      }
      if (is_punct(t, "(")) {
        // Parameter list if the previous token names the declarator.
        std::string name_chain;
        if (j > i_) {
          if (is_ident(tok(j - 1)) && !is_control_keyword(tok(j - 1).text)) {
            // Walk the chain backward to its start.
            std::size_t start = j - 1;
            while (start >= 2 && is_punct(tok(start - 1), "::") &&
                   is_ident(tok(start - 2))) {
              start -= 2;
            }
            std::size_t end = start;
            name_chain = read_chain(start, &end);
          } else if (is_punct(tok(j - 1), "=") && j >= 2 &&
                     is_kw(tok(j - 2), "operator")) {
            name_chain = "operator=";
          } else if (tok(j - 1).kind == TokenKind::kPunct && j >= 2 &&
                     is_kw(tok(j - 2), "operator")) {
            name_chain = "operator" + tok(j - 1).text;
          }
        }
        const std::size_t after = skip_parens(j);
        if (name_chain.empty()) {
          j = after;
          continue;
        }
        capture_params(j, after - 1);
        if (parse_function_tail(name_chain, tok(j).line, after)) return;
        j = after;
        continue;
      }
      if (is_ident(t)) capture_var_decl(j, false);
      ++j;
    }
    i_ = j;
  }

  // After a candidate `name(params)` at declaration scope, decide
  // whether a body follows. Returns true when it consumed up to and
  // including the body's opening brace (scope pushed) or the statement
  // end.
  bool parse_function_tail(const std::string& name_chain, int line,
                           std::size_t k) {
    while (!at_end(k)) {
      const Token& t = tok(k);
      if (is_kw(t, "const") || is_kw(t, "override") || is_kw(t, "final") ||
          is_kw(t, "mutable") || is_kw(t, "try")) {
        ++k;
        continue;
      }
      if (is_kw(t, "noexcept")) {
        ++k;
        if (!at_end(k) && is_punct(tok(k), "(")) k = skip_parens(k);
        continue;
      }
      if (is_punct(t, "&") || is_punct(t, "&&")) {
        ++k;
        continue;
      }
      if (is_punct(t, "[") && !at_end(k + 1) && is_punct(tok(k + 1), "[")) {
        int depth = 0;
        for (; !at_end(k); ++k) {
          if (is_punct(tok(k), "[")) ++depth;
          if (is_punct(tok(k), "]") && --depth == 0) {
            ++k;
            break;
          }
        }
        continue;
      }
      if (is_punct(t, "->")) {
        // Trailing return type: consume its tokens.
        ++k;
        while (!at_end(k) && !is_punct(tok(k), "{") &&
               !is_punct(tok(k), ";") && !is_punct(tok(k), "=")) {
          if (is_punct(tok(k), "<")) {
            const std::size_t adv = skip_angles(k);
            k = adv == k ? k + 1 : adv;
          } else if (is_punct(tok(k), "(")) {
            k = skip_parens(k);
          } else {
            ++k;
          }
        }
        continue;
      }
      if (is_punct(t, ":")) {
        // Constructor initializer list: `ident(...)` / `ident{...}`
        // entries until the body brace.
        ++k;
        while (!at_end(k)) {
          if (is_punct(tok(k), "(")) {
            k = skip_parens(k);
          } else if (is_punct(tok(k), "{")) {
            // A brace directly after an identifier or '>' is a
            // member brace-init; otherwise it is the body.
            const Token& prev = tok(k - 1);
            if (is_ident(prev) || is_punct(prev, ">")) {
              k = skip_braces(k);
            } else {
              break;
            }
          } else if (is_punct(tok(k), ";")) {
            break;
          } else {
            ++k;
          }
        }
        continue;
      }
      if (is_punct(t, "{")) {
        push_function(name_chain, line);
        i_ = k + 1;
        return true;
      }
      if (is_punct(t, ";")) {
        i_ = k + 1;  // declaration only
        return true;
      }
      if (is_punct(t, "=")) {
        // `= default;`, `= delete;`, or a variable initializer.
        skip_statement(k);
        return true;
      }
      if (is_punct(t, ",")) {
        skip_statement(k);  // `int a(1), b(2);`
        return true;
      }
      // Unknown macro-ish token between ')' and '{'; tolerate it.
      ++k;
    }
    i_ = k;
    return true;
  }

  void push_function(const std::string& name_chain, int line) {
    FunctionDef fn;
    const std::string prefix = qualified_prefix();
    std::string chain = name_chain;
    if (chain.rfind("::", 0) == 0) chain = chain.substr(2);
    fn.qname = prefix.empty() ? chain : prefix + "::" + chain;
    fn.name = last_component(chain);
    // Enclosing class: out-of-line `TaskFile::claim` carries it in the
    // chain; in-class definitions take it from the scope stack.
    if (const auto pos = chain.rfind("::"); pos != std::string::npos) {
      const std::string qual = chain.substr(0, pos);
      fn.cls = last_component(qual);
    } else {
      fn.cls = enclosing_class();
    }
    fn.file = rel_;
    fn.line = line;
    out_.functions.push_back(std::move(fn));
    scopes_.push_back(
        {Scope::kFunction, "", static_cast<int>(out_.functions.size() - 1),
         0});
  }

  // Skips to one past the `;` ending the statement containing j,
  // balancing parens and braces (lambda bodies, brace initializers).
  void skip_statement(std::size_t j) {
    while (!at_end(j)) {
      if (is_punct(tok(j), "(")) {
        j = skip_parens(j);
      } else if (is_punct(tok(j), "{")) {
        j = skip_braces(j);
      } else if (is_punct(tok(j), ";")) {
        i_ = j + 1;
        return;
      } else if (is_punct(tok(j), "}")) {
        i_ = j;  // scope close belongs to the caller
        return;
      } else {
        ++j;
      }
    }
    i_ = j;
  }

  // ----- function-body scanning -------------------------------------

  FunctionDef& fn() { return out_.functions[current_fn()]; }

  void scan_body_token() {
    const Token& t = tok(i_);
    if (t.kind == TokenKind::kPreprocessor) {
      ++i_;
      return;
    }
    if (is_punct(t, "{")) {
      scopes_.push_back({Scope::kBlock, "", -1, block_depth() + 1});
      ++i_;
      return;
    }
    if (is_punct(t, "}")) {
      Scope top = scopes_.back();
      scopes_.pop_back();
      if (top.kind == Scope::kBlock) {
        FunctionDef& f = out_.functions[current_fn()];
        f.lock_events.push_back(
            {LockEvent::kBlockClose, "", t.line, top.depth, seq_++});
      } else if (top.kind == Scope::kFunction) {
        out_.functions[top.fn].end_line = t.line;
      }
      ++i_;
      return;
    }
    if (is_ident(t)) {
      if (t.text == "new") {
        fn().dangers.push_back({"new-expression", t.line});
        ++i_;
        return;
      }
      if (t.text == "throw") {
        fn().dangers.push_back({"throw", t.line});
        ++i_;
        return;
      }
      if (t.text == "for") {
        maybe_record_range_for();
        ++i_;
        return;
      }
      if (t.text == "sa_handler" || t.text == "sa_sigaction") {
        maybe_record_handler_assignment();
        ++i_;
        return;
      }
      if (t.text == "INTOX_INVARIANT") {
        // The macro's failure path calls validate::invariant_failed.
        fn().calls.push_back({"invariant_failed", "", t.line, seq_++});
        ++i_;
        return;
      }
      if (is_unordered_type_name(last_component(t.text))) {
        note_unordered_decl(i_);
      }
      scan_chain();
      return;
    }
    ++i_;
  }

  void scan_chain() {
    const std::size_t start = i_;
    std::size_t end = start;
    const std::string chain = read_chain(start, &end);
    if (chain.empty()) {
      ++i_;
      return;
    }
    const int line = tok(start).line;
    const std::string last = last_component(chain);

    // `std::lock_guard<std::mutex> g(expr)` and friends.
    if (is_lock_guard_type(last)) {
      record_scoped_lock(end, line);
      i_ = end;
      return;
    }

    // Watched mentions are recorded whether or not the chain is called:
    // `std::chrono::steady_clock::now()` must register the clock even
    // though the full chain is a call expression.
    record_mentions(chain, line);
    capture_var_decl(start, /*allow_paren_init=*/true);
    // Body-local `std::unordered_map<...> m` declarations: the chain
    // starts at `std`, so the per-token check in scan_body_token never
    // sees the unordered_* component.
    if (is_unordered_type_name(last)) {
      note_unordered_decl(end - 1);
    } else if (unordered_aliases_.count(chain) && !at_end(end) &&
               is_ident(tok(end))) {
      out_.unordered_vars.insert(tok(end).text);
    }

    const bool called = !at_end(end) && is_punct(tok(end), "(");
    if (!called) {
      i_ = end;
      return;
    }

    if (is_control_keyword(last) || is_type_name(chain) ||
        chain == "static_cast" || chain == "dynamic_cast" ||
        chain == "const_cast" || chain == "reinterpret_cast") {
      i_ = end;
      return;
    }

    // Declarations like `SigWriter w(fd);`: the token before a genuine
    // call is never a plain identifier (those are `Type name(...)`).
    if (start > 0 && is_ident(tok(start - 1)) &&
        !is_control_keyword(tok(start - 1).text) &&
        !is_punct(tok(start - 1), "::")) {
      i_ = end;
      return;
    }
    if (start > 0 &&
        (is_punct(tok(start - 1), ">") || is_punct(tok(start - 1), "*"))) {
      i_ = end;
      return;
    }

    const std::string receiver = receiver_before(start);

    // Atomic member operations become AtomicOps, not call sites.
    if (!receiver.empty() && chain == last && is_atomic_op_name(last)) {
      record_atomic_op(receiver, last, end, line);
      i_ = end;
      return;
    }

    // Manual mutex protocol.
    if (!receiver.empty() && chain == last &&
        (last == "lock" || last == "unlock")) {
      const std::size_t close = skip_parens(end);
      if (close == end + 2) {  // zero-argument call
        fn().lock_events.push_back(
            {last == "lock" ? LockEvent::kAcquire : LockEvent::kRelease,
             lock_node(receiver), line, block_depth(), seq_++});
        i_ = end;
        return;
      }
    }

    // flock-style regions: any call whose arguments name LOCK_EX /
    // LOCK_SH acquires the first argument; LOCK_UN releases it.
    record_flock_if_present(end, line);

    // Metric registrations.
    if (last == "counter" || last == "gauge" || last == "histogram" ||
        last == "register_external_counter") {
      maybe_record_metric(last, end, line);
    }

    // `::signal(SIGINT, handler)` registrations.
    if (last == "signal" || last == "bsd_signal") {
      maybe_record_signal_call(end, line);
    }

    fn().calls.push_back({chain, receiver, line, seq_++});
    i_ = end;
  }

  // Chains containing a clock or random_device component are watched at
  // any position ("steady_clock::now" under a using-declaration too);
  // string/iostream names match the whole chain only.
  void record_mentions(const std::string& chain, int line) {
    std::istringstream parts(chain);
    std::string comp;
    bool recorded = false;
    while (std::getline(parts, comp, ':')) {
      if (comp.empty()) continue;
      if (comp == "random_device") {
        fn().dangers.push_back({"std::random_device", line});
        recorded = true;
      } else if (comp == "system_clock" || comp == "steady_clock" ||
                 comp == "high_resolution_clock") {
        fn().dangers.push_back({"std::chrono::" + comp, line});
        recorded = true;
      }
    }
    if (!recorded && is_watched_mention(chain)) {
      fn().dangers.push_back({chain, line});
    }
  }

  void record_scoped_lock(std::size_t j, int line) {
    if (!at_end(j) && is_punct(tok(j), "<")) {
      const std::size_t adv = skip_angles(j);
      if (adv == j) return;
      j = adv;
    }
    if (at_end(j) || !is_ident(tok(j))) return;  // needs a variable name
    ++j;
    if (at_end(j) || !is_punct(tok(j), "(")) return;
    // Split the argument list at top-level commas; each names a lock.
    const std::size_t close = skip_parens(j) - 1;
    std::string arg;
    int depth = 0;
    for (std::size_t k = j + 1; k < close; ++k) {
      const Token& t = tok(k);
      if (t.kind == TokenKind::kPunct &&
          (t.text == "(" || t.text == "[" || t.text == "<"))
        ++depth;
      if (t.kind == TokenKind::kPunct &&
          (t.text == ")" || t.text == "]" || t.text == ">"))
        --depth;
      if (depth == 0 && is_punct(t, ",")) {
        if (!arg.empty()) {
          fn().lock_events.push_back({LockEvent::kScopedAcquire,
                                      lock_node(arg), line, block_depth(),
                                      seq_++});
        }
        arg.clear();
        continue;
      }
      arg += t.text;
    }
    if (!arg.empty()) {
      fn().lock_events.push_back({LockEvent::kScopedAcquire, lock_node(arg),
                                  line, block_depth(), seq_++});
    }
  }

  void record_atomic_op(const std::string& receiver, const std::string& op,
                        std::size_t open, int line) {
    const std::size_t close = skip_parens(open);
    std::string orders;
    for (std::size_t k = open; k < close; ++k) {
      if (is_ident(tok(k)) &&
          tok(k).text.rfind("memory_order_", 0) == 0) {
        if (!orders.empty()) orders += ",";
        orders += tok(k).text.substr(std::strlen("memory_order_"));
      }
    }
    AtomicOp a;
    a.receiver = base_name(receiver);
    a.op = op;
    a.implicit = orders.empty();
    a.order = orders.empty() ? "seq_cst" : orders;
    a.line = line;
    fn().atomic_ops.push_back(std::move(a));
  }

  void record_flock_if_present(std::size_t open, int line) {
    const std::size_t close = skip_parens(open);
    bool acquire = false, shared = false, release = false;
    for (std::size_t k = open; k < close; ++k) {
      if (!is_ident(tok(k))) continue;
      if (tok(k).text == "LOCK_EX") acquire = true;
      if (tok(k).text == "LOCK_SH") acquire = shared = true;
      if (tok(k).text == "LOCK_UN") release = true;
    }
    (void)shared;  // shared/exclusive both order against other locks
    if (!acquire && !release) return;
    // First top-level argument names the file descriptor.
    std::string arg;
    int depth = 0;
    for (std::size_t k = open + 1; k + 1 < close; ++k) {
      const Token& t = tok(k);
      if (t.kind == TokenKind::kPunct && (t.text == "(" || t.text == "["))
        ++depth;
      if (t.kind == TokenKind::kPunct && (t.text == ")" || t.text == "]"))
        --depth;
      if (depth == 0 && is_punct(t, ",")) break;
      arg += t.text;
    }
    if (arg.empty()) return;
    fn().lock_events.push_back(
        {acquire ? LockEvent::kAcquire : LockEvent::kRelease,
         lock_node(arg) + "(flock)", line, block_depth(), seq_++});
  }

  void maybe_record_metric(const std::string& kind_fn, std::size_t open,
                           int line) {
    std::size_t j = open + 1;
    if (at_end(j)) return;
    if (tok(j).kind != TokenKind::kString) return;
    std::string kind = kind_fn == "register_external_counter"
                           ? "external"
                           : kind_fn;
    out_.metric_regs.push_back({kind, tok(j).text, rel_, line});
  }

  void maybe_record_signal_call(std::size_t open, int line) {
    // signal(SIG, handler): handler is the last identifier of the
    // second argument.
    const std::size_t close = skip_parens(open);
    int depth = 0;
    std::size_t comma = 0;
    for (std::size_t k = open; k < close; ++k) {
      const Token& t = tok(k);
      if (t.kind == TokenKind::kPunct && (t.text == "(" || t.text == "["))
        ++depth;
      if (t.kind == TokenKind::kPunct && (t.text == ")" || t.text == "]"))
        --depth;
      if (depth == 1 && is_punct(t, ",")) {
        comma = k;
        break;
      }
    }
    if (comma == 0) return;
    std::string handler;
    for (std::size_t k = comma + 1; k + 1 < close; ++k) {
      if (is_ident(tok(k))) handler = tok(k).text;
    }
    if (!handler.empty() && handler != "SIG_DFL" && handler != "SIG_IGN") {
      out_.signal_handlers.push_back({handler, rel_, line});
    }
  }

  void maybe_record_handler_assignment() {
    // `action.sa_handler = &crash_handler;` (or without '&').
    std::size_t j = i_ + 1;
    if (at_end(j) || !is_punct(tok(j), "=")) return;
    ++j;
    if (!at_end(j) && is_punct(tok(j), "&")) ++j;
    if (at_end(j) || !is_ident(tok(j))) return;
    const std::string handler = tok(j).text;
    if (handler != "SIG_DFL" && handler != "SIG_IGN") {
      out_.signal_handlers.push_back({handler, rel_, tok(j).line});
    }
  }

  void maybe_record_range_for() {
    // for ( decl : expr ) — flag when expr's root variable is unordered.
    std::size_t j = i_ + 1;
    if (at_end(j) || !is_punct(tok(j), "(")) return;
    const std::size_t close = skip_parens(j);
    int depth = 0;
    std::size_t colon = 0;
    for (std::size_t k = j; k < close; ++k) {
      const Token& t = tok(k);
      if (t.kind == TokenKind::kPunct &&
          (t.text == "(" || t.text == "[" || t.text == "{"))
        ++depth;
      if (t.kind == TokenKind::kPunct &&
          (t.text == ")" || t.text == "]" || t.text == "}"))
        --depth;
      if (depth == 1 && is_punct(t, ":")) {
        colon = k;
        break;
      }
    }
    if (colon == 0) return;
    std::string root;
    for (std::size_t k = colon + 1; k + 1 < close; ++k) {
      if (is_ident(tok(k)) && !is_kw(tok(k), "this")) {
        root = tok(k).text;
        break;
      }
    }
    if (!root.empty()) {
      fn().unordered_iters.push_back({root, tok(i_).line});
    }
  }

  const std::string& rel_;
  const TokenStream& toks_;
  Index& out_;
  std::vector<Scope> scopes_;
  std::set<std::string> unordered_aliases_;
  std::size_t i_ = 0;
  int seq_ = 0;
};

}  // namespace

void index_file(const std::string& rel_path, const std::string& source,
                Index& index) {
  const std::size_t first_fn = index.functions.size();
  const cxxlex::TokenStream toks = cxxlex::tokenize(source);
  Indexer(rel_path, toks, index).run();

  // Attach hot-lane markers from raw lines: a marker applies to the
  // function whose body contains it, else to the next function defined
  // after it.
  std::vector<int> marker_lines;
  {
    // Spelled in two parts so the analyzer does not mark its own
    // detector function when indexing tools/.
    const std::string marker = std::string("intox-analyze: ") + "hot-lane";
    std::istringstream in(source);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.find(marker) != std::string::npos) {
        marker_lines.push_back(lineno);
      }
    }
  }
  for (int m : marker_lines) {
    FunctionDef* best = nullptr;
    for (std::size_t f = first_fn; f < index.functions.size(); ++f) {
      FunctionDef& fn = index.functions[f];
      if (fn.line <= m && m <= fn.end_line) {
        // Innermost containing definition wins (nested classes).
        if (best == nullptr || fn.line > best->line) best = &fn;
      }
    }
    if (best == nullptr) {
      for (std::size_t f = first_fn; f < index.functions.size(); ++f) {
        FunctionDef& fn = index.functions[f];
        if (fn.line > m && (best == nullptr || fn.line < best->line))
          best = &fn;
      }
    }
    if (best != nullptr) best->hot_lane = true;
  }
}

void finalize_index(Index& index) {
  // Range-for events were recorded for every container; keep only those
  // whose root variable is known to be unordered (declared anywhere in
  // the indexed tree, headers included).
  for (FunctionDef& fn : index.functions) {
    std::vector<UnorderedIter> kept;
    for (UnorderedIter& it : fn.unordered_iters) {
      if (index.unordered_vars.count(it.container)) {
        kept.push_back(std::move(it));
      }
    }
    fn.unordered_iters = std::move(kept);
  }
}

}  // namespace intox::analyze
