// Minimal compile_commands.json reader: the analyzer only needs the
// "file" entries (which translation units are part of the program), not
// flags — it never preprocesses for real. Headers are discovered by
// scanning the same directories, so declarations in .hpp files are
// indexed too.
#pragma once

#include <string>
#include <vector>

namespace intox::analyze {

/// Returns the repo-relative paths of all translation units listed in
/// the compile database that live under one of `subtrees` (e.g. "src",
/// "tools") relative to `root`. Throws on unreadable/garbled input.
std::vector<std::string> compdb_files(const std::string& compdb_path,
                                      const std::string& root,
                                      const std::vector<std::string>& subtrees);

/// Returns the repo-relative paths of all C++ sources and headers found
/// by walking `subtrees` under `root` directly (used without a compile
/// database, and always used to pick up headers).
std::vector<std::string> walk_files(const std::string& root,
                                    const std::vector<std::string>& subtrees);

}  // namespace intox::analyze
