#include <algorithm>
#include <array>
#include <set>

#include "checks.hpp"

namespace intox::analyze {
namespace {

// libc entropy and wall-clock sources. Scenario code draws randomness
// through sim::Rng (explicit seed, fork discipline) and time through the
// simulated clock, so any of these on a scenario path makes runs
// unreproducible.
const std::set<std::string>& banned_calls() {
  static const std::set<std::string> kBanned = {
      "rand",     "srand",        "rand_r",     "random",
      "srandom",  "drand48",      "lrand48",    "mrand48",
      "time",     "gettimeofday", "clock",      "clock_gettime",
      "timespec_get",             "getrandom",  "getentropy"};
  return kBanned;
}

bool mention_is_nondeterministic(const std::string& what) {
  static const std::array<const char*, 4> kBanned = {
      "std::random_device", "std::chrono::system_clock",
      "std::chrono::steady_clock", "std::chrono::high_resolution_clock"};
  return std::find_if(kBanned.begin(), kBanned.end(), [&](const char* k) {
           return what == k;
         }) != kBanned.end();
}

std::string strip_qualifiers(const std::string& chain) {
  std::string s = chain;
  if (s.rfind("::", 0) == 0) s = s.substr(2);
  if (s.rfind("std::", 0) == 0) s = s.substr(5);
  return s;
}

}  // namespace

void check_taint(const CallGraph& graph, std::vector<Finding>& out,
                 std::ostream* explain) {
  const Index& index = graph.index();

  std::set<int> root_set;
  std::vector<std::string> root_names;
  for (const ScenarioReg& reg : index.scenarios) {
    for (int f : graph.find_functions(reg.run_fn)) root_set.insert(f);
    root_names.push_back(reg.run_fn);
  }

  const std::vector<int> reach =
      graph.reachable({root_set.begin(), root_set.end()});

  if (explain != nullptr) {
    *explain << "taint roots (" << root_names.size() << "):";
    for (const std::string& r : root_names) *explain << " " << r;
    *explain << "\ntaint reachable (" << reach.size() << "):\n";
    for (int f : reach) {
      const FunctionDef& fn = index.functions[f];
      *explain << "  " << fn.qname << "  (" << fn.file << ":" << fn.line
               << ")\n";
    }
  }

  for (int f : reach) {
    const FunctionDef& fn = index.functions[f];
    for (const CallSite& c : fn.calls) {
      if (!graph.resolve_call(f, c).empty()) continue;
      if (!c.receiver.empty()) continue;
      const std::string name = strip_qualifiers(c.name);
      if (!banned_calls().count(name)) continue;
      out.push_back({fn.file, c.line, "taint",
                     "'" + fn.qname +
                         "' is reachable from a scenario run function but "
                         "calls '" + c.name +
                         "' (nondeterministic source; use sim::Rng / the "
                         "simulated clock)"});
    }
    for (const DangerEvent& d : fn.dangers) {
      if (!mention_is_nondeterministic(d.what)) continue;
      out.push_back({fn.file, d.line, "taint",
                     "'" + fn.qname +
                         "' is reachable from a scenario run function but "
                         "uses " + d.what +
                         " (nondeterministic source; use sim::Rng / the "
                         "simulated clock)"});
    }
    for (const UnorderedIter& it : fn.unordered_iters) {
      out.push_back({fn.file, it.line, "taint",
                     "'" + fn.qname +
                         "' is reachable from a scenario run function but "
                         "iterates unordered container '" + it.container +
                         "' (iteration order is hash/address-dependent; sort "
                         "before emitting)"});
    }
  }
}

}  // namespace intox::analyze
