// intox_analyze — whole-program semantic checks over the intox tree.
//
// Usage:
//   intox_analyze [--root DIR] [--compdb FILE] [--baseline FILE]
//                 [--check NAME]... [--explain NAME]
//                 [--dump-metric-names] [--list-checks] [PATH]...
//
// PATHs are subtrees relative to --root (default: src tools). Exit 0 on
// a clean run, 1 when findings remain, 2 on usage/environment errors.
#include <algorithm>
#include <exception>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: intox_analyze [--root DIR] [--compdb FILE]\n"
         "                     [--baseline FILE] [--check NAME]...\n"
         "                     [--explain NAME] [--dump-metric-names]\n"
         "                     [--list-checks] [PATH]...\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  intox::analyze::Options opts;
  bool dump_metric_names = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "intox_analyze: " << what << " requires an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opts.root = next("--root");
    } else if (arg == "--compdb") {
      opts.compdb_path = next("--compdb");
    } else if (arg == "--baseline") {
      opts.baseline_path = next("--baseline");
    } else if (arg == "--check") {
      opts.only_checks.push_back(next("--check"));
    } else if (arg == "--explain") {
      opts.explain_check = next("--explain");
    } else if (arg == "--dump-metric-names") {
      dump_metric_names = true;
    } else if (arg == "--list-checks") {
      for (const std::string& c : intox::analyze::check_names())
        std::cout << c << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "intox_analyze: unknown option: " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      opts.paths.push_back(arg);
    }
  }

  const auto& known = intox::analyze::check_names();
  for (const std::string& c : opts.only_checks) {
    if (std::find(known.begin(), known.end(), c) == known.end()) {
      std::cerr << "intox_analyze: unknown check: " << c
                << " (see --list-checks)\n";
      return 2;
    }
  }
  if (!opts.explain_check.empty() &&
      std::find(known.begin(), known.end(), opts.explain_check) ==
          known.end()) {
    std::cerr << "intox_analyze: unknown check: " << opts.explain_check
              << " (see --list-checks)\n";
    return 2;
  }

  try {
    if (dump_metric_names) {
      const intox::analyze::Index index = intox::analyze::build_index(opts);
      std::set<std::string> names;
      for (const intox::analyze::MetricReg& m : index.metric_regs)
        names.insert(m.name);
      for (const std::string& n : names) std::cout << n << "\n";
      return 0;
    }

    const intox::analyze::RunResult result =
        intox::analyze::run_analyze(opts, std::cout);
    intox::analyze::print_findings(std::cout, result.findings);
    std::cerr << "intox_analyze: " << result.files_scanned << " files, "
              << result.findings.size() << " findings, "
              << result.baselined.size() << " baselined, "
              << result.suppressed << " suppressed\n";
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
