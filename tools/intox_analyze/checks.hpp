// The four whole-program checks. Each walks the call graph and appends
// findings; when `explain` is non-null it also prints the evidence the
// check ran on (reachable-function lists, lock-order edges, atomic
// pairing tables) for humans and for CI assertions.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "callgraph.hpp"

namespace intox::analyze {

struct Finding {
  std::string path;
  int line = 0;
  std::string check;
  std::string message;
};

/// Functions reachable from fatal-signal handlers (auto-detected
/// `sa_handler =` / `signal(SIG, fn)` registrations plus the
/// flightrec_dump entry points) may only call a POSIX async-signal-safe
/// allowlist or functions proven safe by recursion. Allocation, throw,
/// iostreams, std::string and lock acquisition are flagged.
void check_sigsafe(const CallGraph& graph, std::vector<Finding>& out,
                   std::ostream* explain);

/// Nothing reachable from a scenario run function (INTOX_REGISTER_SCENARIO)
/// may draw from wall clocks, libc randomness, std::random_device, or
/// iterate an unordered container in a way that can feed output bytes.
/// Sanctioned randomness flows through sim::Rng, which is seeded
/// explicitly and never hits these sources.
void check_taint(const CallGraph& graph, std::vector<Finding>& out,
                 std::ostream* explain);

/// Builds the lock-acquisition order graph (mutexes and flock regions,
/// interprocedural via may-acquire sets) and reports cycles and
/// recursive self-acquisition.
void check_lockorder(const CallGraph& graph, std::vector<Finding>& out,
                     std::ostream* explain);

/// In functions marked `// intox-analyze: hot-lane`, atomics must be
/// relaxed or participate in a properly paired release/acquire protocol;
/// seq_cst (explicit or defaulted) is always flagged. Pairing is checked
/// program-wide per receiver: a release store with no acquire-side load
/// anywhere (or vice versa) publishes nothing and is flagged.
void check_atomics(const CallGraph& graph, std::vector<Finding>& out,
                   std::ostream* explain);

/// Names accepted by `--check` and in allow() pragmas, sorted.
const std::vector<std::string>& check_names();

}  // namespace intox::analyze
