#include "analyze.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "compdb.hpp"

namespace fs = std::filesystem;

namespace intox::analyze {
namespace {

const std::vector<std::string> kDefaultPaths = {"src", "tools"};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in)
    throw std::runtime_error("intox_analyze: cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> collect_files(const Options& opts) {
  const std::vector<std::string>& subtrees =
      opts.paths.empty() ? kDefaultPaths : opts.paths;
  std::vector<std::string> files = walk_files(opts.root, subtrees);
  if (!opts.compdb_path.empty()) {
    // The compile DB is authoritative for translation units: keep its
    // TU set (validating the export), plus all walked headers.
    const std::set<std::string> tus = [&] {
      const auto v = compdb_files(opts.compdb_path, opts.root, subtrees);
      return std::set<std::string>(v.begin(), v.end());
    }();
    auto ends_with = [](const std::string& s, const std::string& suf) {
      return s.size() >= suf.size() &&
             s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
    };
    std::vector<std::string> merged;
    for (const std::string& f : files) {
      if (ends_with(f, ".hpp") || ends_with(f, ".h") || tus.count(f))
        merged.push_back(f);
    }
    files = std::move(merged);
  }
  return files;
}

struct Suppression {
  std::string check;
  bool justified = false;
};

// line -> suppressions declared on that line.
using SuppressionMap = std::map<int, std::vector<Suppression>>;

SuppressionMap parse_suppressions(const std::string& source,
                                  const std::string& rel_path,
                                  std::vector<Finding>& malformed) {
  static const std::regex re(R"(intox-analyze:\s*allow\(([^)]*)\))");
  SuppressionMap out;
  std::istringstream in(source);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::smatch m;
    if (!std::regex_search(line, m, re)) continue;
    const std::string body = m[1].str();
    const auto comma = body.find(',');
    std::string check = body.substr(0, comma);
    check.erase(0, check.find_first_not_of(" \t"));
    check.erase(check.find_last_not_of(" \t") + 1);
    std::string why =
        comma == std::string::npos ? "" : body.substr(comma + 1);
    why.erase(0, why.find_first_not_of(" \t"));
    why.erase(why.find_last_not_of(" \t") + 1);
    const auto& known = check_names();
    if (std::find(known.begin(), known.end(), check) == known.end()) {
      malformed.push_back(
          {rel_path, lineno, "pragma",
           "unknown check '" + check +
               "' in intox-analyze pragma (see --list-checks)"});
      continue;
    }
    if (why.empty()) {
      malformed.push_back(
          {rel_path, lineno, "pragma",
           "suppression for '" + check +
               "' has no justification; write allow(" + check +
               ", why this is safe here)"});
      continue;
    }
    out[lineno].push_back({check, true});
  }
  return out;
}

struct BaselineEntry {
  std::string path;
  std::string check;
  int allowed = 0;
  int used = 0;
};

std::vector<BaselineEntry> load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("intox_analyze: cannot read baseline: " + path);
  }
  std::vector<BaselineEntry> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line.erase(0, line.find_first_not_of(" \t"));
    line.erase(line.find_last_not_of(" \t\r") + 1);
    if (line.empty()) continue;
    const auto last = line.rfind(':');
    const auto mid = last == std::string::npos ? std::string::npos
                                               : line.rfind(':', last - 1);
    if (mid == std::string::npos) {
      throw std::runtime_error("intox_analyze: malformed baseline line " +
                               std::to_string(lineno) +
                               " (want path:check:count): " + line);
    }
    BaselineEntry e;
    e.path = line.substr(0, mid);
    e.check = line.substr(mid + 1, last - mid - 1);
    try {
      e.allowed = std::stoi(line.substr(last + 1));
    } catch (const std::exception&) {
      throw std::runtime_error("intox_analyze: bad count in baseline line " +
                               std::to_string(lineno) + ": " + line);
    }
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace

Index build_index(const Options& opts) {
  const fs::path root(opts.root);
  if (!fs::is_directory(root)) {
    throw std::runtime_error("intox_analyze: root is not a directory: " +
                             opts.root);
  }
  Index index;
  for (const std::string& rel : collect_files(opts)) {
    index_file(rel, read_file(root / rel), index);
  }
  finalize_index(index);
  return index;
}

RunResult run_analyze(const Options& opts, std::ostream& explain_out) {
  const fs::path root(opts.root);
  if (!fs::is_directory(root)) {
    throw std::runtime_error("intox_analyze: root is not a directory: " +
                             opts.root);
  }

  std::vector<BaselineEntry> baseline;
  if (!opts.baseline_path.empty()) baseline = load_baseline(opts.baseline_path);

  RunResult result;
  std::vector<Finding> raw;

  struct FileState {
    SuppressionMap suppressions;
    std::set<int> used_pragma_lines;
  };
  std::map<std::string, FileState> files;

  Index index;
  for (const std::string& rel : collect_files(opts)) {
    const std::string source = read_file(root / rel);
    files[rel].suppressions = parse_suppressions(source, rel, raw);
    index_file(rel, source, index);
    ++result.files_scanned;
  }
  finalize_index(index);

  const CallGraph graph(index);

  auto check_enabled = [&](const std::string& check) {
    return opts.only_checks.empty() ||
           std::find(opts.only_checks.begin(), opts.only_checks.end(),
                     check) != opts.only_checks.end();
  };
  auto explain_for = [&](const std::string& check) -> std::ostream* {
    return opts.explain_check == check ? &explain_out : nullptr;
  };

  if (check_enabled("sigsafe") || opts.explain_check == "sigsafe")
    check_sigsafe(graph, raw, explain_for("sigsafe"));
  if (check_enabled("taint") || opts.explain_check == "taint")
    check_taint(graph, raw, explain_for("taint"));
  if (check_enabled("lockorder") || opts.explain_check == "lockorder")
    check_lockorder(graph, raw, explain_for("lockorder"));
  if (check_enabled("atomics") || opts.explain_check == "atomics")
    check_atomics(graph, raw, explain_for("atomics"));

  for (Finding& f : raw) {
    if (!check_enabled(f.check)) continue;
    if (f.check != "pragma") {
      FileState& st = files[f.path];
      bool suppressed = false;
      for (int line : {f.line, f.line - 1}) {
        const auto it = st.suppressions.find(line);
        if (it == st.suppressions.end()) continue;
        for (const Suppression& s : it->second) {
          if (s.check == f.check) {
            st.used_pragma_lines.insert(line);
            suppressed = true;
            break;
          }
        }
        if (suppressed) break;
      }
      if (suppressed) {
        ++result.suppressed;
        continue;
      }
    }
    bool baselined = false;
    for (BaselineEntry& e : baseline) {
      if (e.path == f.path && e.check == f.check && e.used < e.allowed) {
        ++e.used;
        baselined = true;
        break;
      }
    }
    (baselined ? result.baselined : result.findings).push_back(std::move(f));
  }

  // Stale pragmas rot the suppression inventory; only meaningful when
  // every check ran.
  if (opts.only_checks.empty()) {
    for (auto& [path, st] : files) {
      for (const auto& [line, supps] : st.suppressions) {
        if (st.used_pragma_lines.count(line)) continue;
        std::string joined;
        for (const Suppression& s : supps)
          joined += (joined.empty() ? "" : ", ") + s.check;
        result.findings.push_back(
            {path, line, "pragma",
             "suppression for '" + joined +
                 "' matches no finding; delete the stale pragma"});
      }
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.check, a.message) <
                     std::tie(b.path, b.line, b.check, b.message);
            });
  return result;
}

void print_findings(std::ostream& out, const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    out << f.path << ":" << f.line << ": [" << f.check << "] " << f.message
        << "\n";
  }
}

}  // namespace intox::analyze
