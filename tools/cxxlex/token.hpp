// Token model shared by the intox static-analysis tools.
//
// The tools (intox_lint, intox_analyze) do not parse C++ — they scan
// a token stream plus raw lines, which is exactly enough for the
// project-specific conventions they enforce and keeps them
// dependency-free so they build everywhere CI does (no libclang).
#pragma once

#include <string>
#include <vector>

namespace intox::cxxlex {

enum class TokenKind {
  kIdentifier,   // foo, std, INTOX_INVARIANT
  kNumber,       // 42, 0x1f, 1e-3, 42ull
  kString,       // "..." (text excludes quotes; raw strings unescaped)
  kCharLiteral,  // 'x'
  kPunct,        // one operator/punctuator per token ("++", "<<=", "(")
  kPreprocessor, // one token per logical directive line ("#pragma once")
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  // 1-based line of the token's first character
};

using TokenStream = std::vector<Token>;

}  // namespace intox::cxxlex
