#include "lexer.hpp"

#include <array>
#include <cctype>
#include <string>

namespace intox::cxxlex {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Longest-match punctuator table, three-char entries first.
constexpr std::array<std::string_view, 5> kPunct3 = {"<<=", ">>=", "...",
                                                     "->*", "<=>"};
constexpr std::array<std::string_view, 19> kPunct2 = {
    "++", "--", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "->"};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  TokenStream run() {
    TokenStream out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '\\' && pos_ + 1 < src_.size() &&
          (src_[pos_ + 1] == '\n' ||
           (src_[pos_ + 1] == '\r' && pos_ + 2 < src_.size() &&
            src_[pos_ + 2] == '\n'))) {
        // Line continuation outside a directive: skip it.
        pos_ += (src_[pos_ + 1] == '\r') ? 3 : 2;
        ++line_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        skip_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_preprocessor(out);
        continue;
      }
      at_line_start_ = false;
      if (c == '"' || is_string_prefix_at(pos_)) {
        lex_string(out);
        continue;
      }
      if (c == '\'') {
        lex_char(out);
        continue;
      }
      if (is_ident_start(c)) {
        lex_identifier(out);
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        lex_number(out);
        continue;
      }
      lex_punct(out);
    }
    return out;
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  // Detects encoding/raw prefixes (R", u8R", L", ...) so prefixed
  // literals are lexed as strings instead of identifier + string.
  bool is_string_prefix_at(std::size_t p) const {
    std::size_t q = p;
    if (q < src_.size() && (src_[q] == 'u' || src_[q] == 'U' ||
                            src_[q] == 'L')) {
      if (src_[q] == 'u' && q + 1 < src_.size() && src_[q + 1] == '8') ++q;
      ++q;
    }
    if (q < src_.size() && src_[q] == 'R') ++q;
    return q > p && q < src_.size() && src_[q] == '"';
  }

  void skip_line_comment() {
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
  }

  void skip_block_comment() {
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && peek(1) == '/') {
        pos_ += 2;
        return;
      }
      ++pos_;
    }
  }

  void lex_preprocessor(TokenStream& out) {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && (peek(1) == '\n' ||
                        (peek(1) == '\r' && peek(2) == '\n'))) {
        pos_ += (peek(1) == '\r') ? 3 : 2;
        ++line_;
        text += ' ';
        continue;
      }
      if (c == '\n') break;  // leave the newline for run()
      if (c == '/' && peek(1) == '/') {
        skip_line_comment();
        break;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        text += ' ';
        continue;
      }
      text += c;
      ++pos_;
    }
    out.push_back({TokenKind::kPreprocessor, text, start_line});
  }

  void lex_string(TokenStream& out) {
    const int start_line = line_;
    // Skip the prefix up to the opening quote.
    bool raw = false;
    while (src_[pos_] != '"') {
      if (src_[pos_] == 'R') raw = true;
      ++pos_;
    }
    ++pos_;  // opening quote
    std::string text;
    if (raw) {
      std::string delim;
      while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
      ++pos_;  // '('
      const std::string closer = ")" + delim + "\"";
      while (pos_ < src_.size() &&
             src_.compare(pos_, closer.size(), closer) != 0) {
        if (src_[pos_] == '\n') ++line_;
        text += src_[pos_++];
      }
      pos_ += closer.size();
    } else {
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
          text += src_[pos_];
          text += src_[pos_ + 1];
          pos_ += 2;
          continue;
        }
        if (src_[pos_] == '\n') ++line_;  // unterminated; keep scanning
        text += src_[pos_++];
      }
      if (pos_ < src_.size()) ++pos_;  // closing quote
    }
    out.push_back({TokenKind::kString, text, start_line});
  }

  void lex_char(TokenStream& out) {
    const int start_line = line_;
    std::string text;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      text += src_[pos_++];
    }
    if (pos_ < src_.size()) ++pos_;
    out.push_back({TokenKind::kCharLiteral, text, start_line});
  }

  void lex_identifier(TokenStream& out) {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size() && is_ident_char(src_[pos_]))
      text += src_[pos_++];
    out.push_back({TokenKind::kIdentifier, text, start_line});
  }

  void lex_number(TokenStream& out) {
    const int start_line = line_;
    std::string text;
    // pp-number: digits, idents, dots, digit separators, and signs that
    // directly follow an exponent marker.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.' || c == '\'') {
        text += c;
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && !text.empty()) {
        const char prev = text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          text += c;
          ++pos_;
          continue;
        }
      }
      break;
    }
    out.push_back({TokenKind::kNumber, text, start_line});
  }

  void lex_punct(TokenStream& out) {
    const int start_line = line_;
    for (std::string_view p : kPunct3) {
      if (src_.compare(pos_, p.size(), p) == 0) {
        out.push_back({TokenKind::kPunct, std::string(p), start_line});
        pos_ += p.size();
        return;
      }
    }
    // "::" is not in kPunct2 because it needs no disambiguation from
    // ":" pairs — but checks rely on it being one token.
    if (src_.compare(pos_, 2, "::") == 0) {
      out.push_back({TokenKind::kPunct, "::", start_line});
      pos_ += 2;
      return;
    }
    for (std::string_view p : kPunct2) {
      if (src_.compare(pos_, p.size(), p) == 0) {
        out.push_back({TokenKind::kPunct, std::string(p), start_line});
        pos_ += p.size();
        return;
      }
    }
    out.push_back({TokenKind::kPunct, std::string(1, src_[pos_]), start_line});
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

TokenStream tokenize(std::string_view source) { return Lexer(source).run(); }

}  // namespace intox::cxxlex
