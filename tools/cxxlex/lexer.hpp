// Tokenizer shared by the intox static-analysis tools: comments and
// literals are handled exactly (including raw strings and line
// continuations), so checks never fire on commented-out or quoted code.
#pragma once

#include <string_view>

#include "token.hpp"

namespace intox::cxxlex {

/// Tokenizes a translation unit. Comments are skipped (suppression
/// pragmas are read from raw lines by the drivers, not from tokens);
/// each preprocessor directive becomes a single kPreprocessor token
/// whose text is the whole logical line, continuations folded.
TokenStream tokenize(std::string_view source);

}  // namespace intox::cxxlex
