// §3.2 adversarial examples against the deployed in-network classifier.
#include <gtest/gtest.h>

#include "innet/attack.hpp"

namespace intox::innet {
namespace {

TEST(InNetEvasion, AdversarialPerturbationEvadesDetection) {
  const auto outcome = run_evasion_experiment(11);
  EXPECT_GT(outcome.clean_detection_rate, 0.9);
  EXPECT_GT(outcome.evasion_rate, 0.7);
}

TEST(InNetEvasion, BeatsRandomPerturbationControl) {
  const auto outcome = run_evasion_experiment(12);
  EXPECT_GT(outcome.evasion_rate, outcome.random_flip_rate + 0.3);
}

TEST(InNetEvasion, PerturbationsRespectBudget) {
  const auto clf = train_classifier(13);
  const auto data = make_dataset(200, 77);
  EvasionConfig cfg;
  for (const auto& s : data) {
    if (s.label != 1 || clf.deployed.predict(s.x) != 1) continue;
    const Features adv = craft_adversarial(clf.deployed, s.x, 0, cfg);
    for (std::size_t i = 0; i < kFeatures; ++i) {
      EXPECT_LE(std::abs(adv[i] - s.x[i]), cfg.budget);
      EXPECT_GE(adv[i], 0);
    }
  }
}

TEST(InNetEvasion, TighterBudgetLowersEvasionRate) {
  EvasionConfig tight;
  tight.budget = 4;
  EvasionConfig loose;
  loose.budget = 48;
  const auto r_tight = run_evasion_experiment(14, tight);
  const auto r_loose = run_evasion_experiment(14, loose);
  EXPECT_LE(r_tight.evasion_rate, r_loose.evasion_rate + 1e-9);
}

TEST(InNetEvasion, FalseAlarmDirectionAlsoWorks) {
  // The dual attack: perturb *benign* samples until they classify as
  // attacks — anyone can make the classifier cry wolf.
  const auto clf = train_classifier(15);
  const auto data = make_dataset(200, 88);
  EvasionConfig cfg;
  std::size_t benign = 0, flipped = 0;
  for (const auto& s : data) {
    if (s.label != 0 || clf.deployed.predict(s.x) != 0) continue;
    ++benign;
    const Features adv = craft_adversarial(clf.deployed, s.x, 1, cfg);
    flipped += clf.deployed.predict(adv) == 1;
  }
  ASSERT_GT(benign, 50u);
  EXPECT_GT(static_cast<double>(flipped) / static_cast<double>(benign), 0.5);
}

}  // namespace
}  // namespace intox::innet
