#include "innet/classifier.hpp"

#include <gtest/gtest.h>

namespace intox::innet {
namespace {

TEST(InNetClassifier, TrainingReachesHighAccuracy) {
  const auto clf = train_classifier(1);
  EXPECT_GT(clf.train_accuracy, 0.9);
  EXPECT_GT(clf.test_accuracy, 0.9);
}

TEST(InNetClassifier, QuantizationPreservesAccuracy) {
  const auto clf = train_classifier(2);
  EXPECT_GT(clf.quantized_test_accuracy, clf.test_accuracy - 0.03);
}

TEST(InNetClassifier, QuantizedAgreesWithFloatOnMostInputs) {
  const auto clf = train_classifier(3);
  const auto data = make_dataset(500, 99);
  std::size_t agree = 0;
  for (const auto& s : data) {
    agree += clf.model.predict(s.x) == clf.deployed.predict(s.x);
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(data.size()),
            0.97);
}

TEST(InNetClassifier, FeatureExtractionCoversHeaderFields) {
  net::Packet p;
  p.src = net::Ipv4Addr{1, 2, 3, 4};
  p.dst = net::Ipv4Addr{10, 0, 0, 77};
  p.ttl = 63;
  net::TcpHeader t;
  t.src_port = 51000;
  t.dst_port = 443;
  t.syn = true;
  t.window = 12800;
  p.l4 = t;
  p.payload_bytes = 512;

  const Features f = extract_features(p);
  EXPECT_EQ(f[0], 32);          // 512 / 16
  EXPECT_EQ(f[1], 63);          // ttl
  EXPECT_EQ(f[2], 51000 >> 8);  // src port high byte
  EXPECT_EQ(f[3], 443 >> 8);
  EXPECT_EQ(f[4], 6);           // tcp
  EXPECT_EQ(f[5], 1);           // SYN only
  EXPECT_EQ(f[6], 12800 >> 8);
  EXPECT_EQ(f[7], 77);          // dst last octet
}

TEST(InNetClassifier, DatasetIsBalancedAndLabelled) {
  const auto data = make_dataset(300, 5);
  std::size_t attacks = 0;
  for (const auto& s : data) attacks += s.label == 1;
  EXPECT_EQ(data.size(), 600u);
  EXPECT_EQ(attacks, 300u);
}

TEST(InNetClassifier, DeterministicTraining) {
  const auto a = train_classifier(7);
  const auto b = train_classifier(7);
  EXPECT_DOUBLE_EQ(a.test_accuracy, b.test_accuracy);
}

}  // namespace
}  // namespace intox::innet
