#include "nethide/topology.hpp"

#include <gtest/gtest.h>

namespace intox::nethide {
namespace {

TEST(Topology, AddRemoveLinks) {
  Topology t{4};
  t.add_link(0, 1);
  t.add_link(1, 2);
  EXPECT_TRUE(t.has_link(0, 1));
  EXPECT_TRUE(t.has_link(1, 0));  // undirected
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_TRUE(t.remove_link(0, 1));
  EXPECT_FALSE(t.has_link(0, 1));
  EXPECT_FALSE(t.remove_link(0, 1));
}

TEST(Topology, IgnoresSelfLoopsAndDuplicates) {
  Topology t{3};
  t.add_link(1, 1);
  t.add_link(0, 1);
  t.add_link(1, 0);
  EXPECT_EQ(t.link_count(), 1u);
}

TEST(Topology, ShortestPathOnLine) {
  auto t = Topology::line(5);
  auto p = t.shortest_path(0, 4);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{0, 1, 2, 3, 4}));
}

TEST(Topology, ShortestPathSameNode) {
  auto t = Topology::line(3);
  EXPECT_EQ(t.shortest_path(1, 1).value(), (Path{1}));
}

TEST(Topology, UnreachableReturnsNullopt) {
  Topology t{4};
  t.add_link(0, 1);
  t.add_link(2, 3);
  EXPECT_FALSE(t.shortest_path(0, 3).has_value());
  EXPECT_FALSE(t.connected());
}

TEST(Topology, RingOffersTwoWays) {
  auto t = Topology::ring(6);
  auto direct = t.shortest_path(0, 2);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->size(), 3u);
  auto detour = t.shortest_path_avoiding(0, 2, Edge{1, 2});
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ(detour->size(), 5u);  // the long way round
  EXPECT_TRUE(t.is_valid_path(*detour));
}

TEST(Topology, AvoidingOnlyLinkFails) {
  auto t = Topology::line(2);
  EXPECT_FALSE(t.shortest_path_avoiding(0, 1, Edge{0, 1}).has_value());
}

TEST(Topology, GridDimensions) {
  auto t = Topology::grid(3, 4);
  EXPECT_EQ(t.node_count(), 12u);
  EXPECT_EQ(t.link_count(), 3u * 3 + 2u * 4);  // 17
  EXPECT_TRUE(t.connected());
  // Manhattan distance in hops.
  EXPECT_EQ(t.shortest_path(0, 11)->size(), 6u);
}

TEST(Topology, LeafSpineAllLeafPairsTwoHops) {
  auto t = Topology::leaf_spine(2, 4);
  EXPECT_EQ(t.link_count(), 8u);
  for (NodeId a = 2; a < 6; ++a) {
    for (NodeId b = 2; b < 6; ++b) {
      if (a == b) continue;
      EXPECT_EQ(t.shortest_path(a, b)->size(), 3u);  // leaf-spine-leaf
    }
  }
}

TEST(Topology, AddrDeterministicAndDistinct) {
  Topology t{300};
  EXPECT_EQ(t.addr(0), t.addr(0));
  EXPECT_NE(t.addr(1), t.addr(2));
  EXPECT_NE(t.addr(0), t.addr(256));
}

TEST(Topology, IsValidPathChecksLinks) {
  auto t = Topology::line(4);
  EXPECT_TRUE(t.is_valid_path({0, 1, 2}));
  EXPECT_FALSE(t.is_valid_path({0, 2}));
  EXPECT_FALSE(t.is_valid_path({}));
}

}  // namespace
}  // namespace intox::nethide
