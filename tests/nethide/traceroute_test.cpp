#include "nethide/traceroute.hpp"

#include <gtest/gtest.h>

#include "nethide/metrics.hpp"

namespace intox::nethide {
namespace {

TEST(PathTable, AllShortestPathsPopulated) {
  auto t = Topology::ring(5);
  auto paths = PathTable::all_shortest_paths(t);
  for (NodeId s = 0; s < 5; ++s) {
    for (NodeId d = 0; d < 5; ++d) {
      if (s == d) continue;
      const Path& p = paths.get(s, d);
      ASSERT_FALSE(p.empty());
      EXPECT_EQ(p.front(), s);
      EXPECT_EQ(p.back(), d);
      EXPECT_TRUE(t.is_valid_path(p));
    }
  }
}

TEST(Traceroute, HopsFollowPresentedPath) {
  auto t = Topology::line(4);
  auto paths = PathTable::all_shortest_paths(t);
  auto hops = traceroute(t, paths, 0, 3);
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_EQ(hops[0].ttl, 1);
  EXPECT_EQ(hops[0].from, t.addr(1));
  EXPECT_EQ(hops[2].from, t.addr(3));
}

TEST(Traceroute, LyingTableControlsWhatUserSees) {
  // The §4.3 point: replies follow the *presented* path, not reality.
  auto t = Topology::ring(6);
  auto honest = PathTable::all_shortest_paths(t);
  PathTable lying = honest;
  lying.set(0, 2, Path{0, 5, 4, 3, 2});  // claim the long way round
  auto hops = traceroute(t, lying, 0, 2);
  ASSERT_EQ(hops.size(), 4u);
  EXPECT_EQ(hops[0].from, t.addr(5));
}

TEST(InferTopology, HonestPathsRecoverUsedLinks) {
  auto t = Topology::grid(3, 3);
  auto paths = PathTable::all_shortest_paths(t);
  auto inferred = infer_topology(t, paths);
  // Every inferred link exists physically; most physical links carry at
  // least one shortest path in a grid.
  for (const Edge& e : inferred.links()) {
    EXPECT_TRUE(t.has_link(e.a, e.b));
  }
  EXPECT_GE(inferred.link_count(), t.link_count() - 2);
}

TEST(InferTopology, FakePathsProduceFakeLinks) {
  auto t = Topology::line(4);
  PathTable fake{4};
  fake.set(0, 3, Path{0, 2, 3});  // link 0-2 does not exist
  auto inferred = infer_topology(t, fake);
  EXPECT_TRUE(inferred.has_link(0, 2));
  EXPECT_FALSE(t.has_link(0, 2));
}

TEST(Metrics, LevenshteinBasics) {
  EXPECT_EQ(levenshtein({1, 2, 3}, {1, 2, 3}), 0u);
  EXPECT_EQ(levenshtein({1, 2, 3}, {1, 3}), 1u);
  EXPECT_EQ(levenshtein({}, {1, 2}), 2u);
  EXPECT_EQ(levenshtein({1, 2, 3}, {4, 5, 6}), 3u);
}

TEST(Metrics, IdenticalTablesScorePerfect) {
  auto t = Topology::grid(3, 3);
  auto paths = PathTable::all_shortest_paths(t);
  EXPECT_DOUBLE_EQ(accuracy(paths, paths), 1.0);
  EXPECT_DOUBLE_EQ(utility(paths, paths), 1.0);
}

TEST(Metrics, FlowDensityCountsCrossingPairs) {
  // 0-1-2: link 0-1 carried by (0,1),(1,0),(0,2),(2,0)
  auto t = Topology::line(3);
  auto paths = PathTable::all_shortest_paths(t);
  auto density = flow_density(paths);
  EXPECT_EQ(density[(Edge{0, 1})], 4u);
  EXPECT_EQ(density[(Edge{1, 2})], 4u);
  EXPECT_EQ(max_flow_density(paths), 4u);
}

TEST(Metrics, DivergingTableScoresLower) {
  auto t = Topology::ring(6);
  auto honest = PathTable::all_shortest_paths(t);
  PathTable lying = honest;
  for (NodeId d = 1; d < 6; ++d) {
    Path detour{0};
    for (NodeId h = 5; h >= d && h > 0; --h) detour.push_back(h);
    // crude: claim everything from 0 goes the long way
    if (detour.size() > 1) lying.set(0, d, detour);
  }
  EXPECT_LT(accuracy(honest, lying), 1.0);
  EXPECT_LT(utility(honest, lying), 1.0);
}

}  // namespace
}  // namespace intox::nethide
