#include "nethide/obfuscate.hpp"

#include <gtest/gtest.h>

namespace intox::nethide {
namespace {

// A topology with an attractive bottleneck: two grids joined by one
// bridge link — every cross pair funnels through it.
Topology dumbbell() {
  Topology t{10};
  // Left clique-ish square 0-3, right square 5-8, bridge 4-5 via 3-4.
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) t.add_link(i, j);
  }
  for (NodeId i = 5; i < 9; ++i) {
    for (NodeId j = i + 1; j < 9; ++j) t.add_link(i, j);
  }
  t.add_link(3, 4);
  t.add_link(4, 5);
  t.add_link(9, 0);   // stub
  t.add_link(2, 9);   // redundancy on the left
  // A second (longer) bridge so detours exist.
  t.add_link(1, 9);
  t.add_link(9, 6);
  return t;
}

TEST(Obfuscate, ReducesMaxFlowDensity) {
  ObfuscationConfig cfg;
  const auto r = obfuscate(dumbbell(), cfg);
  EXPECT_LT(r.presented_max_density, r.physical_max_density);
  EXPECT_GT(r.rerouted_pairs, 0u);
}

TEST(Obfuscate, RespectsAccuracyFloor) {
  ObfuscationConfig cfg;
  cfg.accuracy_floor = 0.9;
  const auto r = obfuscate(dumbbell(), cfg);
  // One reroute past the floor may land before the check; allow slack.
  EXPECT_GT(r.accuracy, 0.85);
}

TEST(Obfuscate, PresentedPathsStayPlausible) {
  const auto topo = dumbbell();
  const auto r = obfuscate(topo, ObfuscationConfig{});
  for (NodeId s = 0; s < r.presented.nodes(); ++s) {
    for (NodeId d = 0; d < r.presented.nodes(); ++d) {
      if (s == d) continue;
      EXPECT_TRUE(topo.is_valid_path(r.presented.get(s, d)));
    }
  }
}

TEST(Obfuscate, ExplicitDensityTargetHonoredWhenFeasible) {
  ObfuscationConfig cfg;
  cfg.max_density = 1000000;  // trivially satisfied: nothing to do
  const auto r = obfuscate(dumbbell(), cfg);
  EXPECT_EQ(r.rerouted_pairs, 0u);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
}

TEST(FakeTopology, ArbitraryDecoyScoresTerribly) {
  const auto real_topo = Topology::grid(3, 3);
  const auto decoy = Topology::ring(9);
  const auto r = present_fake_topology(real_topo, decoy);
  // The malicious operator's answers share almost nothing with reality.
  EXPECT_LT(r.accuracy, 0.75);
  EXPECT_LT(r.utility, 0.4);
}

TEST(FakeTopology, UserInfersTheDecoyNotTheNetwork) {
  const auto real_topo = Topology::grid(3, 3);
  const auto decoy = Topology::ring(9);
  const auto r = present_fake_topology(real_topo, decoy);
  const auto inferred = infer_topology(real_topo, r.presented);
  // Every link the prober "discovers" is a decoy link.
  for (const Edge& e : inferred.links()) {
    EXPECT_TRUE(decoy.has_link(e.a, e.b));
  }
  EXPECT_EQ(inferred.link_count(), decoy.link_count());
}

TEST(FakeTopology, DefensiveVsMaliciousContrast) {
  // NetHide lies minimally; the malicious operator lies arbitrarily.
  const auto topo = dumbbell();
  const auto defended = obfuscate(topo, ObfuscationConfig{});
  const auto decoy = Topology::ring(10);
  const auto attacked = present_fake_topology(topo, decoy);
  EXPECT_GT(defended.accuracy, attacked.accuracy);
  EXPECT_GT(defended.utility, attacked.utility);
}

}  // namespace
}  // namespace intox::nethide
