#include "blink/flow_selector.hpp"

#include <gtest/gtest.h>

namespace intox::blink {
namespace {

net::FiveTuple tuple(std::uint16_t src_port) {
  return {net::Ipv4Addr{1, 2, 3, 4}, net::Ipv4Addr{10, 0, 0, 1}, src_port, 80,
          net::IpProto::kTcp};
}

// Finds two distinct 5-tuples that collide in the selector's cell array.
std::pair<net::FiveTuple, net::FiveTuple> colliding_pair(std::size_t cells,
                                                         std::uint32_t seed) {
  const net::FiveTuple a = tuple(1000);
  const std::size_t target = net::flow_hash(a, seed) % cells;
  for (std::uint16_t p = 1001;; ++p) {
    const net::FiveTuple b = tuple(p);
    if (net::flow_hash(b, seed) % cells == target) return {a, b};
  }
}

BlinkConfig small_config() {
  BlinkConfig c;
  c.cells = 16;
  return c;
}

TEST(FlowSelector, SamplesFirstFlowIntoEmptyCell) {
  FlowSelector s{small_config()};
  auto v = s.observe(tuple(1000), 1, 100, false, 0);
  EXPECT_TRUE(v.monitored);
  EXPECT_TRUE(v.newly_sampled);
  EXPECT_FALSE(v.retransmission);
  EXPECT_EQ(s.occupied_count(), 1u);
}

TEST(FlowSelector, DetectsDuplicateSeqAsRetransmission) {
  FlowSelector s{small_config()};
  s.observe(tuple(1000), 1, 100, false, 0);
  auto v1 = s.observe(tuple(1000), 1, 200, false, sim::millis(10));
  EXPECT_FALSE(v1.retransmission);  // fresh seq
  auto v2 = s.observe(tuple(1000), 1, 200, false, sim::millis(20));
  EXPECT_TRUE(v2.retransmission);   // duplicate
  auto v3 = s.observe(tuple(1000), 1, 300, false, sim::millis(30));
  EXPECT_FALSE(v3.retransmission);
}

TEST(FlowSelector, CollidingFlowIgnoredWhileOccupantActive) {
  auto cfg = small_config();
  auto [a, b] = colliding_pair(cfg.cells, cfg.hash_seed);
  FlowSelector s{cfg};
  s.observe(a, 1, 100, false, 0);
  auto v = s.observe(b, 2, 500, false, sim::millis(100));
  EXPECT_FALSE(v.monitored);
  EXPECT_FALSE(v.newly_sampled);
  EXPECT_EQ(s.occupied_count(), 1u);
}

TEST(FlowSelector, CollidingFlowTakesOverAfterEvictionTimeout) {
  auto cfg = small_config();
  auto [a, b] = colliding_pair(cfg.cells, cfg.hash_seed);
  FlowSelector s{cfg};
  s.observe(a, 1, 100, false, 0);
  // b arrives 2.5 s later; a has been silent past the 2 s timeout.
  auto v = s.observe(b, 2, 500, false, sim::millis(2500));
  EXPECT_TRUE(v.monitored);
  EXPECT_TRUE(v.newly_sampled);
  EXPECT_TRUE(v.evicted_occupant);
  EXPECT_EQ(s.count_tagged([](std::uint64_t t) { return t == 2; }), 1u);
}

TEST(FlowSelector, ActiveOccupantRefreshesTimeout) {
  auto cfg = small_config();
  auto [a, b] = colliding_pair(cfg.cells, cfg.hash_seed);
  FlowSelector s{cfg};
  s.observe(a, 1, 100, false, 0);
  s.observe(a, 1, 200, false, sim::millis(1500));  // keeps cell fresh
  auto v = s.observe(b, 2, 500, false, sim::millis(2500));  // only 1 s idle
  EXPECT_FALSE(v.monitored);
  EXPECT_EQ(s.count_tagged([](std::uint64_t t) { return t == 1; }), 1u);
}

TEST(FlowSelector, FinFreesCellImmediately) {
  auto cfg = small_config();
  auto [a, b] = colliding_pair(cfg.cells, cfg.hash_seed);
  FlowSelector s{cfg};
  s.observe(a, 1, 100, false, 0);
  auto fin = s.observe(a, 1, 200, /*fin_or_rst=*/true, sim::millis(50));
  EXPECT_TRUE(fin.evicted_occupant);
  EXPECT_EQ(s.occupied_count(), 0u);
  // The colliding flow can take the cell right away.
  auto v = s.observe(b, 2, 1, false, sim::millis(60));
  EXPECT_TRUE(v.newly_sampled);
}

TEST(FlowSelector, FinDoesNotSampleNewFlow) {
  FlowSelector s{small_config()};
  auto v = s.observe(tuple(1000), 1, 100, /*fin_or_rst=*/true, 0);
  EXPECT_FALSE(v.monitored);
  EXPECT_EQ(s.occupied_count(), 0u);
}

TEST(FlowSelector, ResetFreesEverything) {
  FlowSelector s{small_config()};
  for (std::uint16_t p = 0; p < 64; ++p) {
    s.observe(tuple(static_cast<std::uint16_t>(2000 + p)), p, 1, false, 0);
  }
  EXPECT_GT(s.occupied_count(), 0u);
  s.reset(sim::seconds(1));
  EXPECT_EQ(s.occupied_count(), 0u);
}

TEST(FlowSelector, RetransmittingCountUsesSlidingWindow) {
  FlowSelector s{small_config()};
  // Two flows in different cells, both retransmit at t=1s.
  net::FiveTuple a = tuple(1000);
  net::FiveTuple b = tuple(1001);
  for (std::uint16_t p = 1001;
       net::flow_hash(a, 0) % 16 == net::flow_hash(b, 0) % 16; ++p) {
    b = tuple(p);
  }
  s.observe(a, 1, 100, false, 0);
  s.observe(b, 2, 100, false, 0);
  s.observe(a, 1, 100, false, sim::seconds(1));
  s.observe(b, 2, 100, false, sim::seconds(1));
  EXPECT_EQ(s.retransmitting_count(sim::seconds(1)), 2u);
  // 800 ms later the window has slid past the retransmissions.
  EXPECT_EQ(s.retransmitting_count(sim::seconds(1) + sim::millis(801)), 0u);
}

TEST(FlowSelector, ResidencyStatsTrackEvictions) {
  auto cfg = small_config();
  auto [a, b] = colliding_pair(cfg.cells, cfg.hash_seed);
  FlowSelector s{cfg};
  s.observe(a, 1, 1, false, 0);
  s.observe(b, 2, 1, false, sim::seconds(3));  // evicts a after 3 s
  EXPECT_EQ(s.residency_stats().count(), 1u);
  EXPECT_NEAR(s.residency_stats().mean(), 3.0, 1e-9);
}

TEST(FlowSelector, MaliciousFlowNeverEvictedWhileActive) {
  // Property at the heart of §3.1: an always-active occupant holds its
  // cell against any number of collisions.
  auto cfg = small_config();
  auto [bad, legit] = colliding_pair(cfg.cells, cfg.hash_seed);
  FlowSelector s{cfg};
  sim::Time t = 0;
  s.observe(bad, 99, 1, false, t);
  for (int i = 0; i < 1000; ++i) {
    t += sim::millis(500);
    s.observe(bad, 99, static_cast<std::uint32_t>(i), false, t);
    s.observe(legit, 1, static_cast<std::uint32_t>(i), false, t + 1);
  }
  EXPECT_EQ(s.count_tagged([](std::uint64_t tag) { return tag == 99; }), 1u);
}

}  // namespace
}  // namespace intox::blink
